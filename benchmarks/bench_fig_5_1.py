"""Figure 5.1 — execution time comparisons (panels a-d, one per station).

The paper plots the execution-time rate theta = tau_O / tau_NR * 100 %
against the number of satellites m for DLO and DLG.  Claimed shape:
DLO typically below 20 %, DLG higher than DLO but far below NR (about
50 % at m = 10); both are dramatic wins over the iterative baseline.

The pytest-benchmark cases below time the three solvers head-to-head
on identical epochs (their relative means *are* the figure's data);
the full per-station rate panels print at session end.
"""

import pytest

from conftest import BENCH_EXPERIMENT_CONFIG, add_report, REPORTS
from repro.core import DLGSolver, DLOSolver, NewtonRaphsonSolver
from repro.evaluation import StationPipeline, format_ascii_series, format_rate_table
from repro.evaluation.experiments import prn_order_subset
from repro.stations import get_station

_SOLVER_FACTORIES = {
    "NR": lambda replay: NewtonRaphsonSolver(),
    "DLO": lambda replay: DLOSolver(replay),
    "DLG": lambda replay: DLGSolver(replay),
}


@pytest.fixture(scope="module")
def fig_5_1_report(station_results):
    blocks = ["Figure 5.1 reproduction: execution time rate theta (eq. 5-3)"]
    for site_id, result in station_results.items():
        blocks.append(
            format_rate_table(
                f"Fig 5.1 panel {site_id} ({result.station.clock_correction} clock)",
                result.time_rate_pct,
                result.satellite_counts,
            )
        )
        # The paper's qualitative claims, asserted.
        for m, theta in result.time_rate_pct["DLO"].items():
            assert theta < 70.0, f"{site_id} DLO theta at m={m}: {theta}"
        for m, theta in result.time_rate_pct["DLG"].items():
            assert theta < 90.0, f"{site_id} DLG theta at m={m}: {theta}"

    # Aggregate chart: mean rate over stations, per algorithm.
    counts = next(iter(station_results.values())).satellite_counts
    aggregate = {}
    for algorithm in ("DLO", "DLG"):
        aggregate[algorithm] = {}
        for m in counts:
            values = [
                result.time_rate_pct[algorithm][m]
                for result in station_results.values()
                if m in result.time_rate_pct[algorithm]
            ]
            if values:
                aggregate[algorithm][m] = sum(values) / len(values)
    blocks.append(
        format_ascii_series(
            "Fig 5.1 (all stations, mean): theta vs satellite count",
            aggregate,
            counts,
        )
    )

    # Section 6 headline: DLO around one fifth of NR's time.
    dlo_rates = [
        theta
        for result in station_results.values()
        for theta in result.time_rate_pct["DLO"].values()
    ]
    average = sum(dlo_rates) / len(dlo_rates)
    blocks.append(
        f"Headline: average DLO time rate across all panels = {average:.1f}% "
        "(paper: 'about one fifth', i.e. ~20%)"
    )
    report = "\n\n".join(blocks)
    add_report(report)
    return report


@pytest.fixture(scope="module")
def timing_epochs():
    """A fixed batch of m=8 subsets from SRZN with causal clock biases."""
    pipeline = StationPipeline(get_station("SRZN"), BENCH_EXPERIMENT_CONFIG)
    epochs, replay = pipeline.collect()
    subsets = [
        prn_order_subset(epoch, 8) for epoch in epochs if epoch.satellite_count >= 8
    ][:30]
    return subsets, replay


@pytest.mark.parametrize("algorithm", ["NR", "DLO", "DLG"])
def bench_solver_at_eight_satellites(benchmark, fig_5_1_report, timing_epochs, algorithm):
    """Head-to-head solver cost on identical m=8 epochs.

    The ratio of the DLO/DLG rows to the NR row in the
    pytest-benchmark table is exactly the figure's theta at m=8.
    """
    subsets, replay = timing_epochs
    solver = _SOLVER_FACTORIES[algorithm](replay)
    counter = {"index": 0}

    def solve_one():
        index = counter["index"] % len(subsets)
        counter["index"] += 1
        return solver.solve(subsets[index])

    fix = benchmark(solve_one)
    assert fix.converged
