"""Throughput and latency benchmark for the sharded serving tier.

Four phases over the same synthetic mixed-satellite-count stream:

* **capacity** — closed-loop max throughput at 1/2/4 workers, plus the
  inline (``workers=0``) single-process ceiling: what the shared-memory
  transport and supervision cost, and how throughput scales when the
  box actually has cores to scale onto.
* **poisson** — open-loop replay with seeded exponential inter-arrival
  times at a fraction of measured capacity; per-request latency is
  completion minus *arrival* (queueing included), which is what the
  p99 gate is about.
* **burst** — alternating idle/burst phases: a parked shard absorbing
  a full burst, measuring drain time and in-burst latency.
* **slow_clients** — singleton requests trickling through the shard:
  the per-request shared-memory round-trip floor, no batching help.

Gates are *honest about the machine*: scaling gates only apply when
the effective core count can express them; on a smaller box they are
recorded as skipped (with the reason) in ``BENCH_shard.json``, never
silently passed.  The committed asyncio-service baseline
(``BENCH_service.json``) provides the cross-tier comparison targets.

Run::

    PYTHONPATH=src python benchmarks/bench_shard.py [--quick]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from bench_engine_throughput import BIAS_METERS, synthetic_stream

from repro.api import SolverConfig
from repro.service import ServiceConfig, ShardConfig, ShardedPositioningService

#: Shard batch cut for every phase (matches the service bench's
#: micro-batch flush size, so the comparison is batching-for-batching).
BATCH_SIZE = 64

#: Worker counts swept in the capacity phase.
WORKER_COUNTS = (1, 2, 4)


def effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _percentiles(samples: np.ndarray) -> Dict[str, float]:
    return {
        "p50": float(np.percentile(samples, 50)),
        "p90": float(np.percentile(samples, 90)),
        "p99": float(np.percentile(samples, 99)),
        "max": float(samples.max()),
    }


def _service_arm(workers: int) -> ServiceConfig:
    return ServiceConfig(
        solver=SolverConfig(algorithm="dlg", clock_bias_meters=BIAS_METERS),
        max_batch_size=BATCH_SIZE,
    )


def _shard(workers: int) -> ShardedPositioningService:
    return ShardedPositioningService(
        ShardConfig(
            service=_service_arm(workers),
            workers=workers,
            batch_size=BATCH_SIZE,
        )
    )


def capacity_phase(epochs, repeats: int) -> Dict:
    """Closed-loop best-of-``repeats`` throughput per worker count."""
    record: Dict = {}
    for workers in (0,) + WORKER_COUNTS:
        with _shard(workers) as shard:
            shard.solve_many(epochs[: 4 * BATCH_SIZE])  # warm
            best_wall = float("inf")
            ok = 0
            for _ in range(repeats):
                gc.collect()
                started = time.monotonic()
                results = shard.solve_many(epochs)
                wall = time.monotonic() - started
                if wall < best_wall:
                    best_wall = wall
                    ok = sum(1 for r in results if r.status == "ok")
        key = "inline" if workers == 0 else str(workers)
        record[key] = {
            "workers": workers,
            "wall_seconds": best_wall,
            "requests_per_second": len(epochs) / best_wall,
            "ok": ok,
            "requests": len(epochs),
        }
        print(
            f"capacity[{key}]: {len(epochs) / best_wall:,.0f} req/s "
            f"({ok}/{len(epochs)} ok)"
        )
    return record


def poisson_phase(epochs, workers: int, rate_rps: float, seed: int) -> Dict:
    """Open-loop Poisson replay; latency = completion − arrival.

    The driver is the shard's natural shape: whatever has *arrived* by
    the time the router is free forms the next submission (the shard
    re-cuts it into ``BATCH_SIZE`` batches internally), so queueing
    delay under the offered load is part of every latency sample.
    """
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_rps, size=len(epochs)))
    latencies = np.zeros(len(epochs))
    statuses: Dict[str, int] = {}
    with _shard(workers) as shard:
        shard.solve_many(epochs[: 4 * BATCH_SIZE])  # warm
        gc.collect()
        started = time.monotonic()
        cursor = 0
        while cursor < len(epochs):
            now = time.monotonic() - started
            due = int(np.searchsorted(arrivals, now, side="right"))
            if due <= cursor:
                time.sleep(min(arrivals[cursor] - now, 0.001))
                continue
            chunk = epochs[cursor:due]
            results = shard.solve_many(chunk)
            completed = time.monotonic() - started
            for offset, result in enumerate(results):
                latencies[cursor + offset] = (
                    completed - arrivals[cursor + offset]
                )
                statuses[result.status] = statuses.get(result.status, 0) + 1
            cursor = due
        wall = time.monotonic() - started
    record = {
        "workers": workers,
        "offered_rps": rate_rps,
        "achieved_rps": len(epochs) / wall,
        "statuses": statuses,
        "latency_seconds": _percentiles(latencies),
    }
    print(
        f"poisson[{workers}w @ {rate_rps:,.0f} rps]: "
        f"p99 {1e3 * record['latency_seconds']['p99']:.2f}ms"
    )
    return record


def burst_phase(epochs, workers: int, bursts: int, idle_seconds: float) -> Dict:
    """Idle/burst alternation: drain time of a cold backlog."""
    burst_size = 8 * BATCH_SIZE
    needed = bursts * burst_size
    stream = [epochs[i % len(epochs)] for i in range(needed)]
    drains: List[float] = []
    latencies: List[float] = []
    with _shard(workers) as shard:
        shard.solve_many(epochs[: 4 * BATCH_SIZE])  # warm
        for burst in range(bursts):
            time.sleep(idle_seconds)
            chunk = stream[burst * burst_size : (burst + 1) * burst_size]
            started = time.monotonic()
            results = shard.solve_many(chunk)
            wall = time.monotonic() - started
            drains.append(wall)
            # Everything in the burst arrived at t=0; the whole-burst
            # drain bounds each request's latency.
            latencies.extend([wall] * len(results))
    record = {
        "workers": workers,
        "bursts": bursts,
        "burst_size": burst_size,
        "drain_seconds": _percentiles(np.array(drains)),
        "burst_rps": burst_size / float(np.median(drains)),
    }
    print(
        f"burst[{workers}w x {bursts}]: median drain "
        f"{1e3 * float(np.median(drains)):.2f}ms "
        f"({record['burst_rps']:,.0f} req/s inside a burst)"
    )
    return record


def slow_clients_phase(epochs, workers: int, requests: int) -> Dict:
    """Singleton round-trips: the per-request transport floor."""
    latencies = []
    with _shard(workers) as shard:
        shard.solve_many(epochs[: 4 * BATCH_SIZE])  # warm
        for index in range(requests):
            epoch = epochs[index % len(epochs)]
            started = time.monotonic()
            shard.solve_many([epoch])
            latencies.append(time.monotonic() - started)
            time.sleep(0.001)  # a trickling client, not a tight loop
    record = {
        "workers": workers,
        "requests": requests,
        "latency_seconds": _percentiles(np.array(latencies)),
    }
    print(
        f"slow_clients[{workers}w]: p50 "
        f"{1e3 * record['latency_seconds']['p50']:.3f}ms singleton round-trip"
    )
    return record


def load_service_baseline() -> Optional[Dict]:
    path = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    arm = document.get("service_batched")
    if not isinstance(arm, dict):
        return None
    return {
        "requests_per_second": arm.get("requests_per_second"),
        "latency_p99_seconds": (arm.get("latency_seconds") or {}).get("p99"),
    }


def evaluate_gates(
    document: Dict,
    cores: int,
    min_transport_efficiency: float,
    min_two_worker_scaling: float,
    min_fleet_speedup: float,
    max_p99_ratio: float,
) -> List[Dict]:
    """Every gate, with machine-honest skips recorded, never elided."""
    gates: List[Dict] = []
    capacity = document["capacity"]
    baseline = document.get("service_baseline")

    one = capacity["1"]["requests_per_second"]
    inline = capacity["inline"]["requests_per_second"]
    gates.append(
        {
            "name": "transport_efficiency",
            "description": (
                "1-worker throughput vs the inline single-process "
                "ceiling: what the shm transport + supervision cost"
            ),
            "required_min": min_transport_efficiency,
            "actual": one / inline,
            "status": (
                "passed" if one / inline >= min_transport_efficiency else "failed"
            ),
        }
    )

    two_scaling = capacity["2"]["requests_per_second"] / one
    gate = {
        "name": "two_worker_scaling",
        "description": "2-worker vs 1-worker throughput",
        "required_min": min_two_worker_scaling,
        "actual": two_scaling,
    }
    if cores < 2:
        gate["status"] = "skipped"
        gate["reason"] = f"{cores} effective core(s); scaling needs >= 2"
    else:
        gate["status"] = (
            "passed" if two_scaling >= min_two_worker_scaling else "failed"
        )
    gates.append(gate)

    four = capacity["4"]["requests_per_second"]
    gate = {
        "name": "fleet_vs_asyncio_baseline",
        "description": (
            "4-worker aggregate throughput vs the committed asyncio "
            "service baseline (BENCH_service.json service_batched)"
        ),
        "required_min": min_fleet_speedup,
    }
    if baseline is None or not baseline.get("requests_per_second"):
        gate["status"] = "skipped"
        gate["reason"] = "no committed BENCH_service.json baseline"
    else:
        gate["actual"] = four / baseline["requests_per_second"]
        if cores < 4:
            gate["status"] = "skipped"
            gate["reason"] = f"{cores} effective core(s); fleet gate needs >= 4"
        else:
            gate["status"] = (
                "passed" if gate["actual"] >= min_fleet_speedup else "failed"
            )
    gates.append(gate)

    p99 = document["poisson"]["latency_seconds"]["p99"]
    gate = {
        "name": "poisson_p99_vs_baseline",
        "description": (
            "Poisson-load p99 latency vs the committed asyncio "
            "baseline p99, as a ratio"
        ),
        "required_max": max_p99_ratio,
    }
    if baseline is None or not baseline.get("latency_p99_seconds"):
        gate["status"] = "skipped"
        gate["reason"] = "no committed BENCH_service.json baseline"
    else:
        gate["actual"] = p99 / baseline["latency_p99_seconds"]
        gate["status"] = "passed" if gate["actual"] <= max_p99_ratio else "failed"
    gates.append(gate)
    return gates


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: smaller stream, fewer repeats (~30s)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_shard.json"
        ),
        help="result JSON path",
    )
    parser.add_argument(
        "--min-transport-efficiency",
        type=float,
        default=0.5,
        help="gate: 1-worker rps / inline rps",
    )
    parser.add_argument(
        "--min-two-worker-scaling",
        type=float,
        default=1.6,
        help="gate (cores >= 2): 2-worker rps / 1-worker rps",
    )
    parser.add_argument(
        "--min-fleet-speedup",
        type=float,
        default=3.0,
        help="gate (cores >= 4): 4-worker rps / asyncio baseline rps",
    )
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=1.5,
        help="gate: poisson p99 / asyncio baseline p99",
    )
    args = parser.parse_args(argv)

    requests = 1000 if args.quick else 4000
    repeats = 2 if args.quick else 3
    bursts = 3 if args.quick else 6
    slow_requests = 30 if args.quick else 100
    epochs = synthetic_stream(requests)
    cores = effective_cores()
    print(
        f"bench_shard: {requests} requests, {cores} effective core(s), "
        f"batch {BATCH_SIZE}"
    )

    document: Dict = {
        "config": {
            "requests": requests,
            "repeats": repeats,
            "batch_size": BATCH_SIZE,
            "algorithm": "dlg",
            "effective_cores": cores,
            "cpu_count": os.cpu_count(),
            "quick": bool(args.quick),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "service_baseline": load_service_baseline(),
    }
    document["capacity"] = capacity_phase(epochs, repeats)
    # Offer half the measured 1-worker capacity: a loaded-but-stable
    # operating point where queueing is real and p99 is meaningful.
    offered = 0.5 * document["capacity"]["1"]["requests_per_second"]
    document["poisson"] = poisson_phase(
        epochs, workers=min(2, max(1, cores)), rate_rps=offered, seed=7
    )
    document["burst"] = burst_phase(
        epochs, workers=min(2, max(1, cores)), bursts=bursts, idle_seconds=0.05
    )
    document["slow_clients"] = slow_clients_phase(
        epochs, workers=1, requests=slow_requests
    )
    document["gates"] = evaluate_gates(
        document,
        cores,
        args.min_transport_efficiency,
        args.min_two_worker_scaling,
        args.min_fleet_speedup,
        args.max_p99_ratio,
    )

    out = os.path.abspath(args.out)
    with open(out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")

    failed = [gate for gate in document["gates"] if gate["status"] == "failed"]
    for gate in document["gates"]:
        detail = (
            f"actual {gate['actual']:.3f}" if "actual" in gate else ""
        )
        reason = f" ({gate['reason']})" if "reason" in gate else ""
        print(f"gate {gate['name']}: {gate['status']} {detail}{reason}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
