"""Ablation I — multipath and the smoothing that defeats it.

White noise is what averaging fixes; *multipath* is time-correlated
and elevation-dependent, which is why it is the dominant residual at
real stations.  This bench runs the 2x2 grid (multipath off/on x Hatch
smoothing off/on) under NR with perfect atmospheric correction — the
solver re-estimates the clock each epoch, so the grid isolates exactly
noise + multipath.  Carrier smoothing recovers most of the multipath
damage: the reflection bias oscillates slowly (period 600 s), so the
100 s Hatch window averages a good share of it away along with the
white noise.
"""

import numpy as np
import pytest

from conftest import add_report
from repro.clocks import LinearClockBiasPredictor
from repro.core import DLGSolver, NewtonRaphsonSolver
from repro.errors import ConvergenceError, GeometryError
from repro.signals import HatchFilter
from repro.stations import DatasetConfig, ObservationDataset, get_station


def _run(multipath_amplitude, smooth):
    station = get_station("YYR1")
    # Perfect atmospheric correction isolates the multipath effect:
    # without it the (systematic) iono/tropo residual dominates the
    # median and masks the grid.
    dataset = ObservationDataset(
        station,
        DatasetConfig(
            duration_seconds=700.0,
            track_carrier=True,
            multipath_amplitude_meters=multipath_amplitude,
            ionosphere_scale=1.0,
            troposphere_scale=1.0,
            noise_sigma_meters=0.5,
        ),
    )
    # NR keeps the grid solver-agnostic: it solves the clock per epoch,
    # so the errors measure noise + multipath, nothing else.
    nr = NewtonRaphsonSolver()
    hatch = HatchFilter(window=100)

    errors = []
    for index in range(dataset.epoch_count):
        epoch = dataset.epoch_at(index)
        smoothed = hatch.smooth_epoch(epoch)
        if index < 150 or index % 5:
            continue  # let the Hatch window fill before measuring
        target = smoothed if smooth else epoch
        try:
            fix = nr.solve(target)
        except (GeometryError, ConvergenceError):
            continue
        errors.append(fix.distance_to(station.position))
    return float(np.median(errors))


@pytest.fixture(scope="module")
def multipath_report():
    grid = {
        ("clean", "raw"): _run(0.0, smooth=False),
        ("clean", "hatch"): _run(0.0, smooth=True),
        ("multipath", "raw"): _run(3.0, smooth=False),
        ("multipath", "hatch"): _run(3.0, smooth=True),
    }
    lines = [
        "Ablation I: multipath x Hatch smoothing (NR, YYR1, median error m)",
        f"{'environment':<12} {'raw':>8} {'hatch':>8}",
        f"{'clean':<12} {grid[('clean', 'raw')]:8.2f} {grid[('clean', 'hatch')]:8.2f}",
        f"{'multipath':<12} {grid[('multipath', 'raw')]:8.2f} "
        f"{grid[('multipath', 'hatch')]:8.2f}",
        "Carrier smoothing recovers most of the multipath damage because the "
        "reflection bias is slow relative to the smoothing window, unlike the "
        "white noise it also removes.",
    ]
    report = "\n".join(lines)
    add_report(report)

    # Multipath hurts; smoothing helps in both environments; and the
    # smoothed multipath case beats the raw multipath case decisively.
    assert grid[("multipath", "raw")] > grid[("clean", "raw")]
    assert grid[("clean", "hatch")] < grid[("clean", "raw")]
    assert grid[("multipath", "hatch")] < 0.8 * grid[("multipath", "raw")]
    return report, grid


def bench_multipath_grid(benchmark, multipath_report):
    """Timing of a smoothed DLG solve in the harsh environment (the
    production configuration the grid recommends)."""
    report, grid = multipath_report
    station = get_station("YYR1")
    dataset = ObservationDataset(
        station,
        DatasetConfig(
            duration_seconds=40.0,
            track_carrier=True,
            multipath_amplitude_meters=3.0,
        ),
    )
    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=20)
    dlg = DLGSolver(predictor)
    hatch = HatchFilter(window=100)
    epochs = []
    for index in range(dataset.epoch_count):
        epoch = dataset.epoch_at(index)
        smoothed = hatch.smooth_epoch(epoch)
        if index < 20:
            predictor.observe(epoch.time, nr.solve(epoch).clock_bias_meters)
        else:
            epochs.append(smoothed)
    counter = {"index": 0}

    def solve_one():
        index = counter["index"] % len(epochs)
        counter["index"] += 1
        return dlg.solve(epochs[index])

    fix = benchmark(solve_one)
    assert fix.converged
