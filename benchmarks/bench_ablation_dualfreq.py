"""Ablation H — single- vs dual-frequency ionosphere handling.

The paper's data sets are single-frequency L1 (Table 5.1), so the
residual ionosphere is part of its ``eps_S``.  Dual-frequency
receivers remove the ionosphere exactly with the L1/L2 combination, at
~3x noise amplification.  This bench quantifies the trade under NR and
DLG, separating the *systematic* vertical component (where the iono
residual hides) from the total error.
"""

import numpy as np
import pytest

from conftest import add_report
from repro.clocks import LinearClockBiasPredictor
from repro.core import DLGSolver, NewtonRaphsonSolver
from repro.errors import ConvergenceError, GeometryError
from repro.evaluation import ErrorStatistics, enu_error
from repro.signals import ionosphere_free_epoch
from repro.stations import DatasetConfig, ObservationDataset, get_station


@pytest.fixture(scope="module")
def dualfreq_data():
    station = get_station("SRZN")
    dataset = ObservationDataset(
        station,
        DatasetConfig(
            duration_seconds=420.0,
            dual_frequency=True,
            ionosphere_scale=1.5,  # strong residual, like active-iono days
        ),
    )
    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=60)
    epochs = []
    for index in range(dataset.epoch_count):
        epoch = dataset.epoch_at(index)
        if index < 60:
            predictor.observe(epoch.time, nr.solve(epoch).clock_bias_meters)
            continue
        epochs.append(epoch)
    return station, epochs, predictor


@pytest.fixture(scope="module")
def dualfreq_report(dualfreq_data):
    station, epochs, predictor = dualfreq_data
    nr = NewtonRaphsonSolver()
    dlg = DLGSolver(predictor)

    def stats(solver, combine):
        errors = []
        for epoch in epochs:
            target = ionosphere_free_epoch(epoch) if combine else epoch
            try:
                fix = solver.solve(target)
            except (GeometryError, ConvergenceError):
                continue
            errors.append(enu_error(fix.position, station.position))
        return ErrorStatistics.from_errors(errors)

    table = {
        ("NR", "L1 only"): stats(nr, False),
        ("NR", "iono-free"): stats(nr, True),
        ("DLG", "L1 only"): stats(dlg, False),
        ("DLG", "iono-free"): stats(dlg, True),
    }
    lines = [
        "Ablation H: single- vs dual-frequency (iono scale 1.5), SRZN",
        f"{'config':<18} {'rms3d (m)':>10} {'meanV signed (m)':>17} {'cep95 (m)':>10}",
    ]
    for (solver, band), s in table.items():
        lines.append(
            f"{solver + ' ' + band:<18} {s.rms_3d:10.2f} "
            f"{s.mean_vertical_signed:17.2f} {s.cep95:10.2f}"
        )
    lines.append(
        "The combination trades ~3x noise amplification for exact removal "
        "of the (systematic, vertical-leaking) ionospheric residual — "
        "visible in the signed vertical mean collapsing toward zero."
    )
    report = "\n".join(lines)
    add_report(report)

    for solver in ("NR", "DLG"):
        assert abs(table[(solver, "iono-free")].mean_vertical_signed) < abs(
            table[(solver, "L1 only")].mean_vertical_signed
        )
    return report


@pytest.mark.parametrize("band", ["l1", "iono_free"])
def bench_solver_per_band(benchmark, dualfreq_data, dualfreq_report, band):
    _station, epochs, predictor = dualfreq_data
    solver = DLGSolver(predictor)
    subset = epochs[:30]
    counter = {"index": 0}

    def run():
        index = counter["index"] % len(subset)
        counter["index"] += 1
        epoch = subset[index]
        if band == "iono_free":
            epoch = ionosphere_free_epoch(epoch)
        return solver.solve(epoch)

    fix = benchmark(run)
    assert fix.converged
