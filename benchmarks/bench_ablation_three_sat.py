"""Ablation E — precise-clock positioning (paper Section 2 context).

The paper's related work cites two claims about precise clock time:

* Sturza [30]: three satellites suffice for a position, and
* Misra [27]: precise clock time "could bring additional benefits on
  vertical position accuracy".

With the clock-bias prediction machinery of Section 4.2 in place, both
become testable here:

* the 3SAT solver positions from 3 satellites (where P4P methods
  cannot operate at all), and
* holding the clock (via prediction) instead of solving for it
  improves the *vertical* component specifically — clock bias and the
  vertical trade off in the P4P geometry because every satellite is
  above the receiver.
"""

import numpy as np
import pytest

from conftest import BENCH_EXPERIMENT_CONFIG, add_report
from repro.core import DLGSolver, NewtonRaphsonSolver, ThreeSatelliteSolver
from repro.errors import ConvergenceError, GeometryError
from repro.evaluation import StationPipeline
from repro.evaluation.experiments import prn_order_subset
from repro.geodesy import ecef_to_enu
from repro.stations import get_station


@pytest.fixture(scope="module")
def data():
    pipeline = StationPipeline(get_station("YYR1"), BENCH_EXPERIMENT_CONFIG)
    epochs, replay = pipeline.collect()
    return epochs, replay


def _enu_errors(fix, truth_position):
    enu = ecef_to_enu(fix.position, truth_position)
    horizontal = float(np.hypot(enu[0], enu[1]))
    vertical = abs(float(enu[2]))
    return horizontal, vertical


@pytest.fixture(scope="module")
def three_sat_report(data):
    epochs, replay = data
    pipeline_dataset = data  # noqa: F841 - kept for symmetry with other benches
    three_sat = ThreeSatelliteSolver(replay)
    nr = NewtonRaphsonSolver()
    dlg = DLGSolver(replay)
    # A DLG with *perfect* clock knowledge: the true "precise clock"
    # of refs [30]/[27], only available in simulation.
    from repro.clocks import OracleClockBiasPredictor
    from repro.stations import DatasetConfig, ObservationDataset

    oracle_dataset = ObservationDataset(
        get_station("YYR1"), BENCH_EXPERIMENT_CONFIG.dataset
    )
    dlg_oracle = DLGSolver(OracleClockBiasPredictor(oracle_dataset.clock_model))

    # Part 1: 3-satellite fixes where P4P cannot go.
    errors_3sat = []
    for epoch in epochs:
        subset = prn_order_subset(epoch, 3)
        try:
            fix = three_sat.solve(subset)
        except GeometryError:
            continue
        errors_3sat.append(fix.distance_to(subset.truth.receiver_position))

    # Part 2: vertical accuracy on identical m=6 subsets — clock solved
    # (NR) vs clock predicted (DLG) vs clock perfectly known (oracle).
    nr_h, nr_v, dlg_h, dlg_v, orc_h, orc_v = [], [], [], [], [], []
    for epoch in epochs:
        if epoch.satellite_count < 6:
            continue
        subset = prn_order_subset(epoch, 6)
        truth = subset.truth.receiver_position
        try:
            nr_fix = nr.solve(subset)
            dlg_fix = dlg.solve(subset)
            orc_fix = dlg_oracle.solve(subset)
        except (GeometryError, ConvergenceError):
            continue
        h, v = _enu_errors(nr_fix, truth)
        nr_h.append(h)
        nr_v.append(v)
        h, v = _enu_errors(dlg_fix, truth)
        dlg_h.append(h)
        dlg_v.append(v)
        h, v = _enu_errors(orc_fix, truth)
        orc_h.append(h)
        orc_v.append(v)

    lines = [
        "Ablation E: precise-clock positioning (paper Sec. 2 refs [30][27]), YYR1",
        f"3-satellite fixes (3SAT + predicted clock): median error "
        f"{np.median(errors_3sat):.2f} m over {len(errors_3sat)} epochs "
        "(P4P methods need 4+ satellites)",
        "",
        "Vertical-accuracy effect of the clock treatment (m=6, medians):",
        f"{'solver':<24} {'horizontal (m)':>15} {'vertical (m)':>14}",
        f"{'NR (clock solved)':<24} {np.median(nr_h):15.2f} {np.median(nr_v):14.2f}",
        f"{'DLG (clock predicted)':<24} {np.median(dlg_h):15.2f} {np.median(dlg_v):14.2f}",
        f"{'DLG (clock known/oracle)':<24} {np.median(orc_h):15.2f} {np.median(orc_v):14.2f}",
        f"Measured: oracle/NR vertical = {np.median(orc_v) / np.median(nr_v):.2f}, "
        f"horizontal = {np.median(orc_h) / np.median(nr_h):.2f}.  Ref [27]'s "
        "vertical benefit presumes zero-mean satellite errors; our simulated "
        "eps_S has a *systematic* component (atmospheric under-correction, "
        "all delays positive), which NR hides inside its solved clock but a "
        "clock-holding solver pushes into the height — a real GNSS aliasing "
        "effect the clock-only analysis misses.  The horizontal components "
        "are untouched either way.",
    ]
    report = "\n".join(lines)
    add_report(report)

    # The structural claims: 3SAT works and stays bounded.
    assert len(errors_3sat) > 0
    assert np.median(errors_3sat) < 200.0
    # Holding the clock never disturbs the horizontal solution...
    assert np.median(orc_h) <= np.median(nr_h) * 1.05
    # ...and moves the vertical only by the systematic eps_S scale (meters).
    assert abs(np.median(orc_v) - np.median(nr_v)) < 3.0
    return report


def bench_three_sat_solver(benchmark, data, three_sat_report):
    epochs, replay = data
    solver = ThreeSatelliteSolver(replay)
    subsets = [prn_order_subset(epoch, 3) for epoch in epochs][:30]
    counter = {"index": 0}

    def solve_one():
        index = counter["index"] % len(subsets)
        counter["index"] += 1
        try:
            return solver.solve(subsets[index])
        except GeometryError:
            return None

    benchmark(solve_one)
