"""Ablation B — clock-bias models (paper Section 6, extension 2).

The paper: "Another extension is to consider better clock bias models
so the clock prediction can be further improved along with the
accuracy of the algorithm."

This bench compares DLG under four clock-bias predictors on both clock
regimes (SRZN steering, KYCP threshold):

* ``zero``   — no prediction at all (shows why Section 4.2 exists),
* ``linear`` — the paper's D + r*t model (the baseline configuration),
* ``kalman`` — the proposed extension (two-state filter),
* ``oracle`` — perfect clock knowledge (the simulation-only bound).
"""

import numpy as np
import pytest

from conftest import BENCH_EXPERIMENT_CONFIG, add_report
from repro.clocks import (
    KalmanClockBiasPredictor,
    OracleClockBiasPredictor,
    ZeroClockBiasPredictor,
)
from repro.core import DLGSolver, NewtonRaphsonSolver
from repro.errors import ConvergenceError, GeometryError
from repro.evaluation.experiments import (
    ReplayClockBiasPredictor,
    StationPipeline,
    prn_order_subset,
)
from repro.stations import get_station
from repro.timebase import GpsTime

_SITES = ("SRZN", "KYCP")


def _median_error(solver, subsets):
    errors = []
    for subset in subsets:
        try:
            fix = solver.solve(subset)
        except (GeometryError, ConvergenceError):
            continue
        errors.append(fix.distance_to(subset.truth.receiver_position))
    return float(np.median(errors)) if errors else float("nan")


@pytest.fixture(scope="module")
def clock_ablation():
    """Per-site epochs plus the four predictors, trained causally."""
    data = {}
    for site in _SITES:
        station = get_station(site)
        pipeline = StationPipeline(station, BENCH_EXPERIMENT_CONFIG)
        epochs, replay = pipeline.collect()
        subsets = [
            prn_order_subset(epoch, 8)
            for epoch in epochs
            if epoch.satellite_count >= 8
        ]

        # Train a Kalman predictor causally: walk the data set in time
        # order, observing NR biases at the recalibration cadence and
        # *recording* the filter's prediction at each evaluation epoch
        # before any later observation arrives.  Querying a fully
        # trained filter about past epochs would smear threshold-clock
        # resets backwards in time.
        kalman = KalmanClockBiasPredictor(min_observations=10)
        kalman_replay = ReplayClockBiasPredictor()
        nr = NewtonRaphsonSolver()
        dataset = pipeline.dataset
        config = pipeline.config
        pending = sorted(subset.time.to_gps_seconds() for subset in subsets)
        pending_index = 0
        for index in range(dataset.epoch_count):
            time = config.dataset.start_time + index * config.dataset.interval_seconds
            now = time.to_gps_seconds()
            while pending_index < len(pending) and pending[pending_index] <= now:
                if kalman.is_ready:
                    when = GpsTime.from_gps_seconds(pending[pending_index])
                    kalman_replay.record(when, kalman.predict_bias_meters(when))
                pending_index += 1
            if index % config.recalibration_interval == 0:
                epoch = dataset.epoch_at(index)
                try:
                    fix = nr.solve(epoch)
                except (GeometryError, ConvergenceError):
                    continue
                kalman.observe(epoch.time, fix.clock_bias_meters)

        # Only evaluate epochs every predictor can answer for.
        usable = [subset for subset in subsets if kalman_replay.has(subset.time)]

        predictors = {
            "zero": ZeroClockBiasPredictor(),
            "linear": replay,  # causally recorded paper model
            "kalman": kalman_replay,
            "oracle": OracleClockBiasPredictor(dataset.clock_model),
        }
        data[site] = (usable, predictors)
    return data


@pytest.fixture(scope="module")
def clock_report(clock_ablation):
    lines = [
        "Ablation B: DLG clock-bias model (paper Sec. 6 ext. 2), m=8",
        f"{'predictor':<10}" + "".join(f"{site:>12}" for site in _SITES)
        + "   (median error, m)",
    ]
    table = {}
    for name in ("zero", "linear", "kalman", "oracle"):
        row = []
        for site in _SITES:
            subsets, predictors = clock_ablation[site]
            solver = DLGSolver(predictors[name])
            error = _median_error(solver, subsets)
            table[(name, site)] = error
            row.append(f"{error:12.2f}")
        lines.append(f"{name:<10}" + "".join(row))
    lines.append(
        "Expected: zero >> all others; linear/kalman/oracle cluster at the "
        "geometry+residual error floor (the paper's linear model already "
        "sits near the perfect-clock bound, which is why Sec. 6 calls the "
        "better-clock-model extension an accuracy refinement, not a fix)"
    )
    report = "\n".join(lines)
    add_report(report)

    # The structural claims.
    for site in _SITES:
        assert table[("zero", site)] > 10 * table[("linear", site)]
        assert table[("oracle", site)] <= table[("linear", site)] * 1.5
    return report


@pytest.mark.parametrize("predictor_name", ["zero", "linear", "kalman", "oracle"])
def bench_dlg_with_clock_model(benchmark, clock_ablation, clock_report, predictor_name):
    subsets, predictors = clock_ablation["SRZN"]
    solver = DLGSolver(predictors[predictor_name])
    counter = {"index": 0}

    def solve_one():
        index = counter["index"] % len(subsets)
        counter["index"] += 1
        try:
            return solver.solve(subsets[index])
        except GeometryError:
            return None

    benchmark(solve_one)
