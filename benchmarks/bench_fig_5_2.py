"""Figure 5.2 — accuracy comparisons (panels a-d, one per station).

The paper plots the accuracy rate eta = d_O / d_NR * 100 % against the
number of satellites m.  Claimed shape: DLG stays nearly constant
around 110 %; DLO degrades as satellites are added, reaching ~120 % at
m = 10 — the Theorem 4.1 effect (correlated differencing errors) that
DLG's GLS whitening removes.

The benchmark case measures the cost of one full accuracy sweep; the
per-station eta panels print at session end.
"""

import numpy as np
import pytest

from conftest import add_report
from repro.evaluation import format_ascii_series, format_rate_table


@pytest.fixture(scope="module")
def fig_5_2_report(station_results):
    blocks = ["Figure 5.2 reproduction: accuracy rate eta (eq. 5-2)"]
    for site_id, result in station_results.items():
        blocks.append(
            format_rate_table(
                f"Fig 5.2 panel {site_id} ({result.station.clock_correction} clock)",
                result.accuracy_rate_pct,
                result.satellite_counts,
            )
        )
        # Both methods stay in the paper's "reasonable accuracy" band.
        for algorithm in ("DLO", "DLG"):
            for m, eta in result.accuracy_rate_pct[algorithm].items():
                assert 80.0 < eta < 250.0, f"{site_id} {algorithm} m={m}: {eta}"

    # Aggregate chart: mean accuracy rate over stations.
    counts_all = next(iter(station_results.values())).satellite_counts
    aggregate = {}
    for algorithm in ("DLO", "DLG"):
        aggregate[algorithm] = {}
        for m in counts_all:
            values = [
                result.accuracy_rate_pct[algorithm][m]
                for result in station_results.values()
                if m in result.accuracy_rate_pct[algorithm]
            ]
            if values:
                aggregate[algorithm][m] = float(np.mean(values))
    blocks.append(
        format_ascii_series(
            "Fig 5.2 (all stations, mean): eta vs satellite count",
            aggregate,
            counts_all,
        )
    )

    # Shape claims, aggregated over stations (single-station sweeps are
    # noisy at the span this bench uses).
    def mean_rate(algorithm, counts):
        values = [
            result.accuracy_rate_pct[algorithm][m]
            for result in station_results.values()
            for m in counts
            if m in result.accuracy_rate_pct[algorithm]
        ]
        return float(np.mean(values))

    dlo_low, dlo_high = mean_rate("DLO", (4, 5)), mean_rate("DLO", (8, 9))
    dlg_low, dlg_high = mean_rate("DLG", (4, 5)), mean_rate("DLG", (8, 9))
    blocks.append(
        "Shape check (mean over stations):\n"
        f"  DLO eta m=4-5: {dlo_low:.1f}%  ->  m=8-9: {dlo_high:.1f}%  "
        "(paper: degrades with m, to ~120%)\n"
        f"  DLG eta m=4-5: {dlg_low:.1f}%  ->  m=8-9: {dlg_high:.1f}%  "
        "(paper: ~110%, roughly constant)"
    )
    # DLO degrades with m; DLG degrades strictly less.
    assert dlo_high > dlo_low - 2.0
    assert (dlg_high - dlg_low) < (dlo_high - dlo_low) + 5.0
    # DLG is at least as accurate as DLO where it matters (m > 4).
    assert mean_rate("DLG", (6, 7, 8, 9)) <= mean_rate("DLO", (6, 7, 8, 9)) + 2.0

    report = "\n\n".join(blocks)
    add_report(report)
    return report


def bench_accuracy_sweep(benchmark, fig_5_2_report, station_results):
    """Cost of evaluating one station's full eta sweep from cached
    epochs (the figure-generation workload itself)."""
    result = station_results["SRZN"]

    def compute_rates():
        return result.accuracy_rate_pct

    rates = benchmark(compute_rates)
    assert "DLG" in rates
