"""Ablation G — snapshot solvers vs. a sequential navigation filter.

The paper compares two *snapshot* philosophies (iterative NR vs.
closed-form DLO/DLG).  Production receivers add a third: a sequential
EKF that carries position/velocity/clock state between epochs.  This
bench places all three on the same static-station workload and reports
accuracy and per-epoch cost, completing the design-space picture the
paper's related work sketches.
"""

import numpy as np
import pytest

from conftest import add_report
from repro.clocks import LinearClockBiasPredictor
from repro.core import DLGSolver, NavigationEkf, NewtonRaphsonSolver
from repro.errors import ConvergenceError, GeometryError
from repro.stations import DatasetConfig, ObservationDataset, get_station


@pytest.fixture(scope="module")
def sequential_data():
    station = get_station("YYR1")
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=600.0))
    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=60)
    epochs = []
    for index in range(dataset.epoch_count):
        epoch = dataset.epoch_at(index)
        epochs.append(epoch)
        if index < 60:
            predictor.observe(epoch.time, nr.solve(epoch).clock_bias_meters)
    return station, epochs, predictor


@pytest.fixture(scope="module")
def sequential_report(sequential_data):
    station, epochs, predictor = sequential_data
    nr = NewtonRaphsonSolver()
    dlg = DLGSolver(predictor)
    ekf = NavigationEkf(position_process_noise=0.05)

    nr_errors, dlg_errors, ekf_errors = [], [], []
    for index, epoch in enumerate(epochs):
        ekf_fix = ekf.process(epoch)
        if index < 60:
            continue
        try:
            nr_errors.append(nr.solve(epoch).distance_to(station.position))
            dlg_errors.append(dlg.solve(epoch).distance_to(station.position))
        except (GeometryError, ConvergenceError):
            continue
        ekf_errors.append(ekf_fix.distance_to(station.position))

    rows = {
        "NR (snapshot, iterative)": float(np.median(nr_errors)),
        "DLG (snapshot, closed-form)": float(np.median(dlg_errors)),
        "EKF (sequential)": float(np.median(ekf_errors)),
    }
    lines = [
        "Ablation G: snapshot vs sequential navigation, YYR1 (static), "
        f"{len(ekf_errors)} epochs",
        f"{'method':<28} {'median error (m)':>17}",
    ]
    for name, value in rows.items():
        lines.append(f"{name:<28} {value:17.2f}")
    lines.append(
        "The sequential filter averages noise over time and wins on a "
        "static receiver; the snapshot methods remain the latency-bounded "
        "choice the paper optimizes (no state, no divergence risk after "
        "maneuvers)."
    )
    report = "\n".join(lines)
    add_report(report)

    assert rows["EKF (sequential)"] < rows["NR (snapshot, iterative)"]
    return report


@pytest.mark.parametrize("method", ["nr", "dlg", "ekf"])
def bench_sequential_vs_snapshot(benchmark, sequential_data, sequential_report, method):
    station, epochs, predictor = sequential_data
    subset = epochs[60:90]
    if method == "nr":
        solver = NewtonRaphsonSolver()
        counter = {"index": 0}

        def run():
            index = counter["index"] % len(subset)
            counter["index"] += 1
            return solver.solve(subset[index])

    elif method == "dlg":
        solver = DLGSolver(predictor)
        counter = {"index": 0}

        def run():
            index = counter["index"] % len(subset)
            counter["index"] += 1
            return solver.solve(subset[index])

    else:
        ekf = NavigationEkf()
        counter = {"index": 0}

        def run():
            index = counter["index"] % len(subset)
            if index == 0:
                ekf.reset()
            counter["index"] += 1
            return ekf.process(subset[index])

    fix = benchmark(run)
    assert fix.converged
