"""Solver micro-benchmarks: raw per-call latency across the m sweep.

Not a figure of the paper per se, but the raw material behind Fig 5.1:
per-solve wall time of NR / DLO / DLG / Bancroft on identical epochs
at m = 4, 7, 10.  The pytest-benchmark table shows both the absolute
latencies and (via the ratio column) the rates.
"""

import pytest

from conftest import BENCH_EXPERIMENT_CONFIG
from repro.core import BancroftSolver, DLGSolver, DLOSolver, NewtonRaphsonSolver
from repro.evaluation import StationPipeline
from repro.evaluation.experiments import prn_order_subset
from repro.stations import get_station

_SOLVER_FACTORIES = {
    "NR": lambda replay: NewtonRaphsonSolver(),
    "DLO": lambda replay: DLOSolver(replay),
    "DLG": lambda replay: DLGSolver(replay),
    "Bancroft": lambda replay: BancroftSolver(),
}


@pytest.fixture(scope="module")
def epoch_batches():
    pipeline = StationPipeline(get_station("SRZN"), BENCH_EXPERIMENT_CONFIG)
    epochs, replay = pipeline.collect()
    batches = {}
    for m in (4, 7, 10):
        batches[m] = [
            prn_order_subset(epoch, m) for epoch in epochs if epoch.satellite_count >= m
        ][:25]
    return batches, replay


@pytest.mark.parametrize("m", [4, 7, 10])
@pytest.mark.parametrize("algorithm", ["NR", "DLO", "DLG", "Bancroft"])
def bench_solver(benchmark, epoch_batches, algorithm, m):
    batches, replay = epoch_batches
    subsets = batches[m]
    if not subsets:
        pytest.skip(f"no epochs with {m} satellites in the sampled span")
    solver = _SOLVER_FACTORIES[algorithm](replay)
    counter = {"index": 0}

    def solve_one():
        index = counter["index"] % len(subsets)
        counter["index"] += 1
        return solver.solve(subsets[index])

    fix = benchmark(solve_one)
    assert fix.converged
