"""Throughput benchmark for the positioning engine: scalar vs batched vs parallel.

Measures fixes/second and per-fix nanoseconds for NR / DLO / DLG on a
mixed-satellite-count epoch stream, through three execution shapes:

* **scalar** — one ``solve`` call per epoch (the paper's Section 5.3
  protocol, what `bench_solvers_micro.py` measures per-call);
* **batched** — the whole stream through
  :class:`repro.engine.PositioningEngine` fed a pre-packed
  :class:`repro.PackedStream` (columnar buckets + stacked-tensor
  solvers + Sherman-Morrison covariance fast path), with the decode
  boundary (``pack_stream``) timed separately and the engine's
  per-stage split (pack / validate / solve / fde / scatter) recorded;
* **parallel** — chunked replay of the stream through full
  :class:`repro.GpsReceiver` pipelines on a worker pool.

Results are written to ``BENCH_engine.json`` (machine-readable, one
file per run) so the perf trajectory is trackable across PRs, and a
human-readable table is printed.  The batched-vs-scalar DLG agreement
is checked and recorded: vectorizing must not change the answer.

Run::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List

import numpy as np

from repro import (
    DLGSolver,
    DLOSolver,
    GpsReceiver,
    NewtonRaphsonSolver,
    ParallelReplay,
    PositioningEngine,
    pack_stream,
    telemetry,
)
from repro.evaluation import TimingStats, time_callable, time_solver_stats
from repro.observations import EpochTruth, ObservationEpoch, SatelliteObservation
from repro.timebase import GpsTime

#: The stream's clock bias (meters); constant so scalar closed-form
#: solvers can use a fixed-bias predictor and agree exactly with the
#: batched path fed the same per-epoch biases.
BIAS_METERS = 35.0


class _FixedBias:
    """Minimal clock predictor pinned to the stream's known bias."""

    is_ready = True

    def observe(self, time, bias_meters):
        """No-op: the bias is fixed by construction."""

    def reanchor(self, time, bias_meters):
        """No-op: the bias is fixed by construction."""

    def predict_bias_meters(self, time):
        """The stream's constant bias."""
        return BIAS_METERS


def synthetic_stream(
    count: int,
    satellite_counts=(7, 8, 9, 10, 11),
    noise_sigma: float = 1.0,
    seed: int = 2026,
) -> List[ObservationEpoch]:
    """A mixed-satellite-count epoch stream with known truth.

    Satellites are spread over the upper hemisphere around a fixed
    receiver, pseudoranges carry the constant clock bias plus Gaussian
    noise — the same construction the test suite's ``make_epoch``
    fixture uses, sized for throughput runs.
    """
    rng = np.random.default_rng(seed)
    truth = np.array([3623420.0, -5214015.0, 602359.0])
    up = truth / np.linalg.norm(truth)
    epochs = []
    for index in range(count):
        m = satellite_counts[index % len(satellite_counts)]
        observations = []
        for prn in range(1, m + 1):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            direction += up
            direction /= np.linalg.norm(direction)
            position = truth + direction * rng.uniform(2.0e7, 2.6e7)
            pseudorange = (
                float(np.linalg.norm(position - truth))
                + BIAS_METERS
                + float(rng.normal(0.0, noise_sigma))
            )
            observations.append(
                SatelliteObservation(prn=prn, position=position, pseudorange=pseudorange)
            )
        epochs.append(
            ObservationEpoch(
                time=GpsTime(week=1540, seconds_of_week=float(index)),
                observations=tuple(observations),
                truth=EpochTruth(receiver_position=truth, clock_bias_meters=BIAS_METERS),
            )
        )
    return epochs


def _record(stats: TimingStats) -> Dict:
    return {
        "per_fix_ns": {
            "best": stats.best_ns,
            "mean": stats.mean_ns,
            "p50": stats.p50_ns,
            "p95": stats.p95_ns,
        },
        "fixes_per_second": stats.items_per_second,
        "repeats": stats.repeats,
        "items": stats.items,
    }


def run(epoch_count: int, repeats: int, workers: int, output: str) -> Dict:
    """Run the full benchmark matrix and return the results document."""
    print(f"generating {epoch_count}-epoch mixed-count stream ...", flush=True)
    epochs = synthetic_stream(epoch_count)
    biases = np.full(len(epochs), BIAS_METERS)
    counts = sorted({epoch.satellite_count for epoch in epochs})

    results: Dict = {
        "config": {
            "epochs": epoch_count,
            "repeats": repeats,
            "satellite_counts": counts,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "scalar": {},
        "batched": {},
        "parallel": {},
    }

    # ------------------------------------------------------------- scalar
    scalar_solvers = {
        "NR": NewtonRaphsonSolver(),
        "DLO": DLOSolver(_FixedBias()),
        "DLG": DLGSolver(_FixedBias()),
    }
    for name, solver in scalar_solvers.items():
        stats = time_solver_stats(solver, epochs, repeats=repeats, warmup_rounds=1)
        results["scalar"][name] = _record(stats)
        print(
            f"scalar  {name:4s}  {stats.best_ns / 1e3:9.1f} us/fix  "
            f"{stats.items_per_second:10.0f} fixes/s"
        )

    # ------------------------------------------------------------ batched
    # The batched arm measures the columnar hot path the way the service
    # drives it: the stream is packed into struct-of-arrays buckets once
    # at the decode boundary (``pack_stream``, timed separately and
    # recorded as the decode/pack stage), and ``solve_stream`` consumes
    # the :class:`~repro.PackedStream` zero-copy.  The legacy
    # epochs-list input shape is timed alongside so the decode
    # boundary's cost stays visible instead of silently vanishing from
    # the trend line.  Each algorithm's record carries the engine's own
    # per-stage split (validate / solve / fde / scatter, plus the
    # in-engine pack dispatch, which is ~0 for packed input — that near
    # zero is the point: the boundary repack no longer lives on the hot
    # path).
    # Batched passes cost single-digit milliseconds, so best-of-N can
    # afford a much larger N than the scalar/replay arms: the minimum
    # over nine passes is what keeps the --perf-baseline gate stable on
    # shared boxes whose wall clock has multi-millisecond noise spikes.
    batched_repeats = max(repeats, 9)
    packed = pack_stream(epochs)
    pack_stats = time_callable(
        lambda: pack_stream(epochs),
        items=len(epochs),
        repeats=batched_repeats,
        warmup_rounds=1,
    )
    results["batched"]["pack_stage"] = _record(pack_stats)
    print(
        f"pack    cols  {pack_stats.best_ns / 1e3:9.1f} us/fix  "
        f"{pack_stats.items_per_second:10.0f} fixes/s  (decode boundary)"
    )
    for name, algorithm in (("NR", "nr"), ("DLO", "dlo"), ("DLG", "dlg")):
        engine = PositioningEngine(algorithm=algorithm)
        stage_samples: List[Dict[str, float]] = []

        def _solve_packed(engine=engine, stage_samples=stage_samples):
            result = engine.solve_stream(packed, biases=biases)
            if result.stage_seconds:
                stage_samples.append(result.stage_seconds)
            return result

        stats = time_callable(
            _solve_packed,
            items=len(epochs),
            repeats=batched_repeats,
            warmup_rounds=1,
        )
        list_stats = time_callable(
            lambda engine=engine: engine.solve_stream(epochs, biases=biases),
            items=len(epochs),
            repeats=batched_repeats,
            warmup_rounds=1,
        )
        record = _record(stats)
        record["stages_ns_per_fix"] = {
            stage: min(sample[stage] for sample in stage_samples) * 1e9 / len(epochs)
            for stage in sorted({key for sample in stage_samples for key in sample})
        }
        record["list_input_per_fix_ns"] = {
            "best": list_stats.best_ns,
            "mean": list_stats.mean_ns,
        }
        results["batched"][name] = record
        stage_split = "  ".join(
            f"{stage}={value / 1e3:.2f}"
            for stage, value in record["stages_ns_per_fix"].items()
        )
        print(
            f"batched {name:4s}  {stats.best_ns / 1e3:9.1f} us/fix  "
            f"{stats.items_per_second:10.0f} fixes/s  "
            f"(list input {list_stats.best_ns / 1e3:.1f} us/fix; "
            f"stages us/fix: {stage_split})"
        )

    # ----------------------------------------------------------- parallel
    # Chunked replay through full GpsReceiver pipelines; the thread
    # backend keeps the bench portable (no fork requirements) while
    # the process backend is what a multi-core deployment would use.
    receiver_kwargs = {"algorithm": "dlg", "clock_mode": "steering", "warmup_epochs": 10}
    for worker_count in sorted({1, workers}):
        replay = ParallelReplay(
            receiver_kwargs=receiver_kwargs,
            workers=worker_count,
            backend="thread",
        )
        stats = time_callable(
            lambda: replay.replay(epochs),
            items=len(epochs),
            repeats=max(1, repeats - 1),
            warmup_rounds=1,
        )
        results["parallel"][f"receiver_dlg_threads_{worker_count}"] = _record(stats)
        print(
            f"replay  x{worker_count:<3d}  {stats.best_ns / 1e3:9.1f} us/fix  "
            f"{stats.items_per_second:10.0f} fixes/s"
        )

    # -------------------------------------------- telemetry overhead gate
    # The zero-cost-when-disabled contract, measured: the batched DLG
    # path timed with telemetry uninstalled (the shipping default) and
    # with a live registry+tracer installed.  The *enabled* overhead is
    # a hard upper bound on what the disabled path can possibly pay, so
    # gating it keeps the hot path honest without needing a stored
    # pre-instrumentation baseline from the same machine.  Measured on
    # CPU time with off/on passes interleaved (alternating order), so a
    # shared CI box's scheduler preemption and thermal drift cannot
    # masquerade as instrumentation cost.  The stream is always at
    # least 1000 epochs here, whatever --quick trimmed the main matrix
    # to: instrumentation has a small fixed per-stream cost (stream
    # counters, span setup) that a 200-epoch stream inflates ~5x
    # relative to production stream shapes, which is the regression
    # this gate exists to catch.
    if len(epochs) >= 1000:
        overhead_epochs, overhead_biases = epochs, biases
    else:
        overhead_epochs = synthetic_stream(1000)
        overhead_biases = np.full(len(overhead_epochs), BIAS_METERS)
    overhead_engine = PositioningEngine(algorithm="dlg")
    # Rounds are cheap (two ~10 ms passes each), and shared boxes have
    # multi-second noise episodes, so run enough of them to see past
    # one episode.
    overhead_rounds = max(25, repeats + 2)
    # One long-lived registry/tracer for every enabled pass: metric
    # families are created once, as in a real deployment, instead of
    # re-created inside each timed pass.
    on_registry = telemetry.MetricsRegistry()
    on_tracer = telemetry.SpanTracer()

    def _cpu_pass() -> float:
        start = time.process_time_ns()
        overhead_engine.solve_stream(overhead_epochs, biases=overhead_biases)
        return float(time.process_time_ns() - start)

    def _on_pass() -> float:
        telemetry.install(registry=on_registry, tracer=on_tracer)
        try:
            return _cpu_pass()
        finally:
            telemetry.uninstall()

    telemetry.uninstall()
    _cpu_pass()  # warm the disabled path
    _on_pass()  # warm the enabled path + create metric families
    off_ns: List[float] = []
    on_ns: List[float] = []
    for round_index in range(overhead_rounds):
        if round_index % 2 == 0:
            off_ns.append(_cpu_pass())
            on_ns.append(_on_pass())
        else:
            on_ns.append(_on_pass())
            off_ns.append(_cpu_pass())
    off_best = min(off_ns) / len(overhead_epochs)
    on_best = min(on_ns) / len(overhead_epochs)
    # Each round's off and on passes are adjacent in time, so their
    # ratio cancels slow drift.  A preempted pass inflates (or, on the
    # off side, deflates) individual ratios by far more than the
    # instrumentation costs, so gate on the lower quartile: noise
    # episodes are trimmed away, while a genuine regression — which
    # shifts the entire distribution — still registers in full.
    ratios = sorted(on / off for on, off in zip(on_ns, off_ns))
    enabled_overhead = ratios[len(ratios) // 4] - 1.0
    results["telemetry_overhead"] = {
        "batched_dlg_disabled_cpu_ns_per_fix": off_best,
        "batched_dlg_enabled_cpu_ns_per_fix": on_best,
        "enabled_overhead_fraction": enabled_overhead,
        "rounds": overhead_rounds,
        "overhead_stream_epochs": len(overhead_epochs),
    }
    print(
        f"telemetry  off {off_best / 1e3:9.1f} us/fix   "
        f"on {on_best / 1e3:9.1f} us/fix   "
        f"overhead {enabled_overhead * 100.0:+.2f}% "
        f"(lower-quartile paired cpu-time ratio, {len(overhead_epochs)} epochs)"
    )

    # -------------------------------------------------- agreement + ratio
    scalar_dlg = np.stack(
        [scalar_solvers["DLG"].solve(epoch).position for epoch in epochs]
    )
    batched_dlg = PositioningEngine(algorithm="dlg").solve_stream(
        packed, biases=biases
    )
    agreement = float(
        np.max(np.linalg.norm(batched_dlg.positions - scalar_dlg, axis=1))
    )
    speedup = (
        results["scalar"]["DLG"]["per_fix_ns"]["best"]
        / results["batched"]["DLG"]["per_fix_ns"]["best"]
    )
    results["dlg_batched_vs_scalar"] = {
        "max_position_disagreement_m": agreement,
        "throughput_speedup": speedup,
    }
    print(
        f"\nbatched DLG vs scalar DLG: {speedup:.1f}x throughput, "
        f"max disagreement {agreement:.2e} m"
    )

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--epochs", type=int, default=1000, help="stream length (default 1000)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed passes per measurement"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="parallel replay pool size",
    )
    parser.add_argument(
        "--output", default="BENCH_engine.json", help="JSON results path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer timed passes on the standard "
        "1000-epoch stream (per-fix numbers stay comparable with the "
        "committed full-run baseline; a shorter stream would inflate "
        "fixed per-bucket costs and break the --perf-baseline gate)",
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=0.05,
        help="fail if telemetry-enabled batched DLG is slower than the "
        "disabled path by more than this fraction (default 0.05)",
    )
    parser.add_argument(
        "--perf-baseline",
        default=None,
        help="path to a committed BENCH_engine.json; fail if the batched "
        "DLG per-fix time regresses past --max-perf-regression vs it",
    )
    parser.add_argument(
        "--max-perf-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown of batched DLG best per-fix ns "
        "vs --perf-baseline before failing (default 0.25)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.epochs = min(args.epochs, 1000)
        args.repeats = 2

    results = run(args.epochs, args.repeats, args.workers, args.output)
    disagreement = results["dlg_batched_vs_scalar"]["max_position_disagreement_m"]
    if disagreement > 1e-6:
        print(
            f"ERROR: batched DLG disagrees with scalar DLG by {disagreement:.2e} m",
            file=sys.stderr,
        )
        return 1
    overhead = results["telemetry_overhead"]["enabled_overhead_fraction"]
    if overhead > args.max_telemetry_overhead:
        print(
            f"ERROR: telemetry overhead {overhead * 100.0:.2f}% exceeds the "
            f"{args.max_telemetry_overhead * 100.0:.1f}% budget",
            file=sys.stderr,
        )
        return 1
    if args.perf_baseline:
        with open(args.perf_baseline) as handle:
            baseline = json.load(handle)
        baseline_best = baseline["batched"]["DLG"]["per_fix_ns"]["best"]
        current_best = results["batched"]["DLG"]["per_fix_ns"]["best"]
        regression = current_best / baseline_best - 1.0
        print(
            f"perf gate: batched DLG {current_best / 1e3:.2f} us/fix vs "
            f"baseline {baseline_best / 1e3:.2f} us/fix ({regression:+.1%}, "
            f"budget +{args.max_perf_regression * 100.0:.0f}%)"
        )
        if regression > args.max_perf_regression:
            print(
                f"ERROR: batched DLG per-fix time regressed {regression:+.1%} "
                f"vs {args.perf_baseline}, over the "
                f"{args.max_perf_regression * 100.0:.0f}% budget",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
