"""Ablation D — batched matrix operations (paper Section 6, extension 3).

The paper: "The third extension is to optimize the matrix operations
in the context of our problem so the computation time may be further
reduced."

This bench measures the throughput of the batched DLO/DLG solvers
(one stacked tensor solve for N epochs) against the per-epoch loop,
and against NR — which cannot be batched because each epoch's Newton
iteration follows its own trajectory.  The pytest-benchmark rows show
the per-*fix* cost of each strategy on identical 64-epoch workloads.
"""

import numpy as np
import pytest

from conftest import BENCH_EXPERIMENT_CONFIG, add_report
from repro.core import (
    BatchDLGSolver,
    BatchDLOSolver,
    DLGSolver,
    DLOSolver,
    NewtonRaphsonSolver,
)
from repro.evaluation import StationPipeline, time_solver
from repro.evaluation.experiments import prn_order_subset
from repro.stations import get_station


@pytest.fixture(scope="module")
def workload():
    """64 identical-size (m=8) epochs plus their predicted biases."""
    pipeline = StationPipeline(get_station("SRZN"), BENCH_EXPERIMENT_CONFIG)
    epochs, replay = pipeline.collect()
    subsets = [
        prn_order_subset(epoch, 8) for epoch in epochs if epoch.satellite_count >= 8
    ][:64]
    biases = np.array([replay.predict_bias_meters(s.time) for s in subsets])
    return subsets, biases, replay


@pytest.fixture(scope="module")
def batch_report(workload):
    import time as _time

    subsets, biases, replay = workload
    n = len(subsets)

    def measure(callable_, passes=30):
        best = float("inf")
        for _ in range(passes):
            start = _time.perf_counter_ns()
            callable_()
            best = min(best, _time.perf_counter_ns() - start)
        return best / n  # ns per fix

    loop_dlo = DLOSolver(replay)
    loop_dlg = DLGSolver(replay)
    batch_dlo = BatchDLOSolver()
    batch_dlg = BatchDLGSolver()
    nr = NewtonRaphsonSolver()

    rows = {
        "NR loop": measure(lambda: [nr.solve(s) for s in subsets], passes=5),
        "DLO loop": measure(lambda: [loop_dlo.solve(s) for s in subsets]),
        "DLO batched": measure(lambda: batch_dlo.solve_batch(subsets, biases)),
        "DLG loop": measure(lambda: [loop_dlg.solve(s) for s in subsets]),
        "DLG batched": measure(lambda: batch_dlg.solve_batch(subsets, biases)),
    }
    lines = [
        "Ablation D: batched matrix operations (paper Sec. 6 ext. 3), "
        f"SRZN, m=8, N={n} epochs",
        f"{'strategy':<14} {'ns/fix':>10} {'vs NR':>8}",
    ]
    for name, value in rows.items():
        lines.append(f"{name:<14} {value:10.0f} {100.0 * value / rows['NR loop']:7.1f}%")
    speedup_dlo = rows["DLO loop"] / rows["DLO batched"]
    speedup_dlg = rows["DLG loop"] / rows["DLG batched"]
    lines.append(
        f"Batching speedup: DLO x{speedup_dlo:.1f}, DLG x{speedup_dlg:.1f} over the "
        "per-epoch loop — the extension the paper anticipated"
    )
    report = "\n".join(lines)
    add_report(report)

    # Batching must actually help, and results must match the loop.
    assert rows["DLO batched"] < rows["DLO loop"]
    assert rows["DLG batched"] < rows["DLG loop"]
    looped = np.array([loop_dlo.solve(s).position for s in subsets])
    stacked = batch_dlo.solve_batch(subsets, biases)
    np.testing.assert_allclose(stacked, looped, atol=1e-6)
    return report


@pytest.mark.parametrize("strategy", ["loop_dlo", "batch_dlo", "loop_dlg", "batch_dlg"])
def bench_batch_strategies(benchmark, workload, batch_report, strategy):
    subsets, biases, replay = workload
    if strategy == "loop_dlo":
        solver = DLOSolver(replay)
        run = lambda: [solver.solve(s) for s in subsets]
    elif strategy == "loop_dlg":
        solver = DLGSolver(replay)
        run = lambda: [solver.solve(s) for s in subsets]
    elif strategy == "batch_dlo":
        batch = BatchDLOSolver()
        run = lambda: batch.solve_batch(subsets, biases)
    else:
        batch = BatchDLGSolver()
        run = lambda: batch.solve_batch(subsets, biases)
    benchmark(run)
