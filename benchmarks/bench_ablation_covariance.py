"""Ablation C — the GLS covariance structure (Theorems 4.1 / 4.2).

DLG's entire advantage over DLO is the eq. 4-26 covariance.  This
bench isolates that choice by solving the *same* differenced systems
with three covariance models:

* ``identity``  — M = I, i.e. plain OLS (exactly DLO; Theorem 4.1 says
  this is sub-optimal because differencing correlates the errors),
* ``diagonal``  — only the diagonal of eq. 4-26 (per-equation variance
  right, correlation ignored),
* ``full``      — the complete eq. 4-26 matrix (exactly DLG;
  Theorem 4.2 says this is optimal).

Expected: full <= diagonal <= identity in median error, with the gap
growing with the satellite count.
"""

import numpy as np
import pytest

from conftest import BENCH_EXPERIMENT_CONFIG, add_report
from repro.solvers.direct_linear import build_difference_system, difference_covariance
from repro.errors import EstimationError
from repro.estimation import gls_solve
from repro.evaluation.experiments import StationPipeline, prn_order_subset
from repro.stations import get_station

_MODES = ("identity", "diagonal", "full")


def _solve_with_covariance(subset, bias, mode):
    positions = subset.satellite_positions()
    corrected = subset.pseudoranges() - bias
    design, rhs = build_difference_system(positions, corrected)
    full = difference_covariance(corrected)
    if mode == "identity":
        covariance = np.eye(full.shape[0])
    elif mode == "diagonal":
        covariance = np.diag(np.diag(full))
    else:
        covariance = full
    return gls_solve(design, rhs, covariance)


@pytest.fixture(scope="module")
def covariance_data():
    pipeline = StationPipeline(get_station("YYR1"), BENCH_EXPERIMENT_CONFIG)
    epochs, replay = pipeline.collect()
    return epochs, replay


@pytest.fixture(scope="module")
def covariance_report(covariance_data):
    epochs, replay = covariance_data
    lines = [
        "Ablation C: GLS covariance structure (Theorems 4.1/4.2), YYR1",
        f"{'covariance':<11}" + "".join(f"{f'm={m}':>9}" for m in (6, 8, 10))
        + "   (median error, m)",
    ]
    table = {}
    for mode in _MODES:
        row = []
        for m in (6, 8, 10):
            errors = []
            for epoch in epochs:
                if epoch.satellite_count < m:
                    continue
                subset = prn_order_subset(epoch, m)
                bias = replay.predict_bias_meters(subset.time)
                try:
                    solution = _solve_with_covariance(subset, bias, mode)
                except EstimationError:
                    continue
                errors.append(
                    float(np.linalg.norm(solution - subset.truth.receiver_position))
                )
            value = float(np.median(errors)) if errors else float("nan")
            table[(mode, m)] = value
            row.append(f"{value:9.2f}" if errors else f"{'-':>9}")
        lines.append(f"{mode:<11}" + "".join(row))
    lines.append(
        "Expected: full <= diagonal <= identity (identity == DLO, "
        "full == DLG); the full matrix is what Theorem 4.2 proves optimal."
    )
    report = "\n".join(lines)
    add_report(report)

    # Full covariance never loses to identity at the larger counts.
    for m in (8,):
        if not np.isnan(table[("full", m)]) and not np.isnan(table[("identity", m)]):
            assert table[("full", m)] <= table[("identity", m)] * 1.10
    return report


@pytest.mark.parametrize("mode", _MODES)
def bench_solve_with_covariance(benchmark, covariance_data, covariance_report, mode):
    epochs, replay = covariance_data
    subsets = [prn_order_subset(e, 8) for e in epochs if e.satellite_count >= 8][:25]
    counter = {"index": 0}

    def solve_one():
        index = counter["index"] % len(subsets)
        counter["index"] += 1
        subset = subsets[index]
        bias = replay.predict_bias_meters(subset.time)
        return _solve_with_covariance(subset, bias, mode)

    solution = benchmark(solve_one)
    assert np.all(np.isfinite(solution))
