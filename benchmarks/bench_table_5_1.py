"""Table 5.1 — data-set specifications.

Regenerates the table (station ids, ECEF coordinates, dates, clock
correction types, 86 400 items per set) and verifies the generated data
sets' structural invariants: item count and the 8-12 satellites per
item the paper reports.  The benchmark measures data-item generation
throughput — the substrate cost behind every other experiment.
"""

import pytest

from conftest import add_report
from repro.evaluation import format_table_5_1
from repro.stations import DatasetConfig, ObservationDataset, all_stations, get_station

#: Invariants are checked on items sampled across the full 24 h span
#: (satellite visibility swings over the day); generation is lazy, so
#: only the sampled items are produced.
_CHECK_CONFIG = DatasetConfig()  # the paper's full-day configuration
_CHECK_STRIDE = 3600  # one sampled item per hour

#: The generation benchmark exercises a short dense window instead.
_BENCH_CONFIG = DatasetConfig(duration_seconds=60.0)


@pytest.fixture(scope="module")
def table_report():
    counts = {
        station.site_id: DatasetConfig().epoch_count for station in all_stations()
    }
    text = format_table_5_1(all_stations(), counts)

    # Structural invariants of the generated substitutes.
    lines = [text, "", "Generated data-set invariants (sampled):"]
    for station in all_stations():
        dataset = ObservationDataset(station, _CHECK_CONFIG)
        sat_counts = [
            dataset.epoch_at(index).satellite_count
            for index in range(0, dataset.epoch_count, _CHECK_STRIDE)
        ]
        assert dataset.epoch_count == 86_400
        assert all(6 <= c <= 14 for c in sat_counts)
        lines.append(
            f"  {station.site_id}: {min(sat_counts)}-{max(sat_counts)} satellites "
            f"per item (paper: 8-12), clock={station.clock_correction}"
        )
    report = "\n".join(lines)
    add_report("Table 5.1 reproduction\n" + report)
    return report


@pytest.mark.parametrize("site", ["SRZN", "YYR1", "FAI1", "KYCP"])
def bench_data_item_generation(benchmark, table_report, site):
    """Cost of producing one data item (all visible satellites)."""
    dataset = ObservationDataset(get_station(site), _BENCH_CONFIG)
    counter = {"index": 0}

    def one_item():
        index = counter["index"] % dataset.epoch_count
        counter["index"] += 1
        return dataset.epoch_at(index)

    epoch = benchmark(one_item)
    assert epoch.satellite_count >= 4
