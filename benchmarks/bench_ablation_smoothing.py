"""Ablation F — carrier smoothing under the paper's algorithms.

Not a paper experiment, but the natural production companion: a Hatch
filter smooths the pseudoranges *before* any positioning algorithm
runs, so the paper's speed win (DLO/DLG) composes with the smoothing
accuracy win.  This bench quantifies both layers together: NR and DLG
on raw vs. carrier-smoothed epochs of one station.
"""

import numpy as np
import pytest

from conftest import add_report
from repro.clocks import LinearClockBiasPredictor
from repro.core import DLGSolver, NewtonRaphsonSolver
from repro.errors import ConvergenceError, GeometryError
from repro.signals import HatchFilter
from repro.stations import DatasetConfig, ObservationDataset, get_station


@pytest.fixture(scope="module")
def smoothing_data():
    station = get_station("SRZN")
    dataset = ObservationDataset(
        station,
        DatasetConfig(duration_seconds=900.0, track_carrier=True),
    )
    hatch = HatchFilter(window=100)
    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=60)

    raw_epochs, smoothed_epochs = [], []
    for index in range(dataset.epoch_count):
        epoch = dataset.epoch_at(index)
        smoothed = hatch.smooth_epoch(epoch)
        if index < 60:
            fix = nr.solve(epoch)
            predictor.observe(epoch.time, fix.clock_bias_meters)
            continue
        if index % 5 == 0:  # sample the evaluation set
            raw_epochs.append(epoch)
            smoothed_epochs.append(smoothed)
    return station, raw_epochs, smoothed_epochs, predictor


@pytest.fixture(scope="module")
def smoothing_report(smoothing_data):
    station, raw_epochs, smoothed_epochs, predictor = smoothing_data
    nr = NewtonRaphsonSolver()
    dlg = DLGSolver(predictor)

    def median_error(solver, epochs):
        errors = []
        for epoch in epochs:
            try:
                fix = solver.solve(epoch)
            except (GeometryError, ConvergenceError):
                continue
            errors.append(fix.distance_to(station.position))
        return float(np.median(errors))

    table = {
        ("NR", "raw"): median_error(nr, raw_epochs),
        ("NR", "smoothed"): median_error(nr, smoothed_epochs),
        ("DLG", "raw"): median_error(dlg, raw_epochs),
        ("DLG", "smoothed"): median_error(dlg, smoothed_epochs),
    }
    lines = [
        "Ablation F: carrier smoothing (Hatch filter, window=100), SRZN",
        f"{'solver':<8} {'raw (m)':>9} {'smoothed (m)':>13}",
        f"{'NR':<8} {table[('NR', 'raw')]:9.2f} {table[('NR', 'smoothed')]:13.2f}",
        f"{'DLG':<8} {table[('DLG', 'raw')]:9.2f} {table[('DLG', 'smoothed')]:13.2f}",
        "Smoothing composes with the paper's closed-form speed win: DLG on "
        "smoothed epochs beats NR on raw ones while still solving ~3x faster.",
    ]
    report = "\n".join(lines)
    add_report(report)

    assert table[("NR", "smoothed")] < table[("NR", "raw")]
    assert table[("DLG", "smoothed")] < table[("DLG", "raw")]
    assert table[("DLG", "smoothed")] < table[("NR", "raw")]
    return report


def bench_hatch_filter_epoch(benchmark, smoothing_data, smoothing_report):
    """Per-epoch cost of the smoothing layer itself."""
    _station, raw_epochs, _smoothed, _predictor = smoothing_data
    hatch = HatchFilter(window=100)
    counter = {"index": 0}

    def smooth_one():
        index = counter["index"] % len(raw_epochs)
        counter["index"] += 1
        if index == 0:
            hatch.reset()
        return hatch.smooth_epoch(raw_epochs[index])

    epoch = benchmark(smooth_one)
    assert epoch.satellite_count >= 4
