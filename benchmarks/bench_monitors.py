"""Monitor-suite benchmark: spoof detection quality and clean-stream cost.

Two arms, one verdict file:

* **chaos** — the seeded spoof campaign from
  :mod:`repro.validation.monitorchaos` (meaconing, slow position drag,
  clock pull, jamming ramps against the monitor-armed executor),
  reported as detection / false-alarm / time-to-detect statistics per
  attack family and gated at the campaign's own release gates
  (in-time detection >= 90%, clean false alarms <= 2%);
* **overhead** — the same clean stationary stream through the batch
  executor with monitors disarmed and armed.  The armed pass must keep
  at least ``--min-clean-ratio`` (default 0.80) of the disarmed
  throughput: plausibility checking rides the packed lanes the solver
  already produced, so it must stay cheap.

Results go to ``BENCH_monitors.json``.

Run::

    PYTHONPATH=src python benchmarks/bench_monitors.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict

import numpy as np

from repro.api import SolverConfig
from repro.evaluation import TimingStats
from repro.integrity.monitors import MonitorConfig
from repro.service.executor import BatchExecutor
from repro.service.types import ServiceConfig
from repro.validation.monitorchaos import (
    MonitorChaosConfig,
    build_stream,
    run_monitor_chaos,
)
from repro.validation.scenarios import ScenarioConfig, ScenarioGenerator

#: Seed of the overhead arm's scenario (any well-conditioned sky works;
#: fixed so the stream — and therefore the numbers — are reproducible).
OVERHEAD_SEED = 3


def _record(stats: TimingStats) -> Dict:
    return {
        "per_fix_ns": {
            "best": stats.best_ns,
            "mean": stats.mean_ns,
            "p50": stats.p50_ns,
            "p95": stats.p95_ns,
        },
        "fixes_per_second": stats.items_per_second,
        "repeats": stats.repeats,
        "items": stats.items,
    }


def run_overhead(epoch_count: int, repeats: int) -> Dict:
    """Clean-stream throughput, monitors off vs armed."""
    chaos = MonitorChaosConfig(epochs_per_stream=epoch_count, max_flatness=0.3)
    scenario = ScenarioGenerator(
        ScenarioConfig(
            min_satellites=chaos.min_satellites,
            max_satellites=chaos.max_satellites,
            max_flatness=chaos.max_flatness,
        )
    ).generate(OVERHEAD_SEED)
    stream = build_stream(scenario, chaos, seed=OVERHEAD_SEED)
    biases = [scenario.clock_bias_meters] * len(stream)

    arms = {
        "plain": ServiceConfig(
            solver=SolverConfig(algorithm="dlg"),
            max_batch_size=len(stream),
        ),
        "armed": ServiceConfig(
            solver=SolverConfig(algorithm="dlg"),
            max_batch_size=len(stream),
            monitors=MonitorConfig(),
        ),
    }
    # The arms are interleaved pass-by-pass so slow drift (thermal
    # throttling, allocator state left behind by the chaos campaign)
    # lands on both equally instead of biasing the ratio.  A fresh
    # executor per pass: monitor streaming state is keyed on epoch
    # order, and replaying the same stream through one executor would
    # look like time running backwards.
    samples: Dict[str, list] = {name: [] for name in arms}
    for round_index in range(1 + repeats):  # first round is warm-up
        for name, config in arms.items():
            start = time.perf_counter_ns()
            BatchExecutor(config).execute(stream, biases)
            elapsed = time.perf_counter_ns() - start
            if round_index:
                samples[name].append(elapsed / len(stream))

    results: Dict = {}
    for name in arms:
        stats = TimingStats.from_samples(samples[name], items=len(stream))
        results[name] = _record(stats)
        print(
            f"{name:8s}  {stats.best_ns / 1e3:9.1f} us/fix  "
            f"{stats.items_per_second:10.0f} fixes/s"
        )

    results["clean_throughput_ratio"] = (
        results["armed"]["fixes_per_second"]
        / results["plain"]["fixes_per_second"]
    )

    # Correctness alongside the timing: verdicts on the clean stream
    # count against the campaign's false-alarm budget.
    armed_config = ServiceConfig(
        solver=SolverConfig(algorithm="dlg"),
        max_batch_size=len(stream),
        monitors=MonitorConfig(),
    )
    outcomes, _meta = BatchExecutor(armed_config).execute(stream, biases)
    results["clean_stream_epochs"] = len(stream)
    results["clean_stream_verdicts"] = sum(
        1 for outcome in outcomes if outcome[6] is not None
    )
    results["clean_stream_served"] = sum(
        1 for outcome in outcomes if outcome[0] == "ok"
    )
    return results


def run(
    scenarios: int, epoch_count: int, repeats: int, output: str
) -> Dict:
    """Run both arms and write the results document."""
    print(f"spoof chaos campaign ({scenarios} scenarios) ...", flush=True)
    report = run_monitor_chaos(MonitorChaosConfig(scenarios=scenarios))
    chaos = report.to_dict()
    del chaos["mistakes"]  # seeds are in the --spoof verdict, not here
    print(
        f"  detection {100 * report.detection_rate:.1f}% "
        f"(floor {100 * report.config.detection_floor:.0f}%), "
        f"false alarms {100 * report.false_alarm_rate:.2f}% "
        f"(budget {100 * report.config.false_alarm_budget:.0f}%)"
    )
    for family, stats in report.families.items():
        times = stats.to_dict()["time_to_detect_seconds"]
        mean = f"{times['mean']:.1f}" if times["mean"] is not None else "-"
        print(
            f"    {family:14s} {stats.detected_in_time}/{stats.attacks} "
            f"in time, mean ttd {mean} s"
        )

    print(f"\noverhead arm ({epoch_count}-epoch clean stream) ...", flush=True)
    overhead = run_overhead(epoch_count, repeats)
    print(
        f"monitors armed: {100 * overhead['clean_throughput_ratio']:.1f}% "
        f"of disarmed throughput, {overhead['clean_stream_verdicts']} "
        f"verdicts on the clean stream"
    )

    results = {
        "config": {
            "scenarios": scenarios,
            "overhead_epochs": epoch_count,
            "repeats": repeats,
            "monitors": MonitorConfig().to_dict(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "chaos": chaos,
        "overhead": overhead,
    }
    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios",
        type=int,
        default=400,
        help="chaos campaign size (default 400)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=2000,
        help="overhead-arm stream length (default 2000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed passes per measurement"
    )
    parser.add_argument(
        "--output", default="BENCH_monitors.json", help="JSON results path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 100 scenarios, two timed passes (the "
        "overhead stream keeps its full length so the ratio measures "
        "steady-state throughput, not per-batch fixed cost)",
    )
    parser.add_argument(
        "--min-clean-ratio",
        type=float,
        default=0.80,
        help="fail if monitor-armed clean-stream throughput falls below "
        "this fraction of the disarmed path (default 0.80)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.scenarios = min(args.scenarios, 100)
        args.repeats = min(args.repeats, 2)

    results = run(args.scenarios, args.epochs, args.repeats, args.output)
    failed = False
    if not results["chaos"]["ok"]:
        gates = results["chaos"]["gates"]
        print(
            f"ERROR: spoof chaos gates failed: detection "
            f"{100 * gates['detection']['rate']:.1f}% (floor "
            f"{100 * gates['detection']['floor']:.0f}%), false alarms "
            f"{100 * gates['false_alarm']['rate']:.2f}% (budget "
            f"{100 * gates['false_alarm']['budget']:.0f}%)",
            file=sys.stderr,
        )
        failed = True
    overhead = results["overhead"]
    if overhead["clean_throughput_ratio"] < args.min_clean_ratio:
        print(
            f"ERROR: monitor-armed clean throughput is only "
            f"{100 * overhead['clean_throughput_ratio']:.1f}% of the "
            f"disarmed path (floor {100 * args.min_clean_ratio:.0f}%)",
            file=sys.stderr,
        )
        failed = True
    # The overhead stream is held to the same false-alarm budget as the
    # campaign's clean arm: the occasional suspect epoch on a noisy
    # clean stream is within spec, a pattern of them is not.
    budget = results["chaos"]["config"]["false_alarm_budget"]
    verdict_rate = (
        overhead["clean_stream_verdicts"] / overhead["clean_stream_epochs"]
    )
    if verdict_rate > budget:
        print(
            f"ERROR: monitors raised {overhead['clean_stream_verdicts']} "
            f"verdicts on the {overhead['clean_stream_epochs']}-epoch "
            f"clean overhead stream ({100 * verdict_rate:.2f}% > budget "
            f"{100 * budget:.0f}%)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
