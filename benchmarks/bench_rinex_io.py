"""RINEX I/O throughput.

Not a paper experiment, but the cost that bounds any file-based
pipeline: how fast do the writer, parser, and receiver-style
reconstruction chew through observation data?  The benchmark rows are
per-file operations over a fixed 60-epoch, dual-observable file.
"""

import pytest

from repro.rinex import (
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    reconstruct_epochs,
    write_navigation_file,
    write_observation_file,
)
from repro.stations import DatasetConfig, ObservationDataset, get_station


@pytest.fixture(scope="module")
def rinex_world(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("rinex_bench")
    station = get_station("SRZN")
    dataset = ObservationDataset(
        station, DatasetConfig(duration_seconds=60.0, track_carrier=True)
    )
    epochs = dataset.realize()
    header = ObservationHeader(
        marker_name=station.site_id,
        approx_position=station.ecef,
        interval=1.0,
        observation_types=("C1", "L1"),
    )
    obs_path = tmp / "bench.obs"
    nav_path = tmp / "bench.nav"
    write_observation_file(obs_path, header, epochs)
    write_navigation_file(nav_path, dataset.constellation.ephemerides())
    return tmp, header, epochs, obs_path, nav_path


def bench_write_observation_file(benchmark, rinex_world):
    tmp, header, epochs, _obs, _nav = rinex_world
    target = tmp / "write.obs"
    count = benchmark(lambda: write_observation_file(target, header, epochs))
    assert count == len(epochs)


def bench_read_observation_file(benchmark, rinex_world):
    _tmp, _header, epochs, obs_path, _nav = rinex_world
    data = benchmark(lambda: read_observation_file(obs_path))
    assert len(data) == len(epochs)


def bench_read_navigation_file(benchmark, rinex_world):
    *_rest, nav_path = rinex_world
    ephemerides = benchmark(lambda: read_navigation_file(nav_path))
    assert len(ephemerides) == 31


def bench_reconstruct_epochs(benchmark, rinex_world):
    _tmp, _header, epochs, obs_path, nav_path = rinex_world
    data = read_observation_file(obs_path)
    ephemerides = read_navigation_file(nav_path)
    rebuilt = benchmark(lambda: reconstruct_epochs(data, ephemerides))
    assert len(rebuilt) == len(epochs)
