"""Ablation A — base-satellite selection (paper Section 6, extension 1).

The paper: "the accuracy can be further improved if we can identify a
'good' satellite to be used as the base to construct the linear
system.  In the algorithm we propose in this paper, this satellite is
randomly chosen."

This bench runs *DLO* with four base-selection strategies over the
same epochs and reports each strategy's median position error.  DLO is
the right subject: for DLG the base choice provably cannot matter —
changing the base applies an invertible row transformation ``T`` to
the system, and GLS with the correspondingly transformed covariance
``T M T^T`` yields the identical estimate.  The bench verifies that
invariance too (a nice consistency check on the eq. 4-26 covariance).
"""

import numpy as np
import pytest

from conftest import BENCH_EXPERIMENT_CONFIG, add_report
from repro.core import DLGSolver, DLOSolver
from repro.core.selection import make_selector
from repro.errors import GeometryError
from repro.evaluation import StationPipeline
from repro.evaluation.experiments import prn_order_subset
from repro.stations import get_station

_STRATEGIES = ("first", "random", "highest", "closest")


@pytest.fixture(scope="module")
def ablation_data():
    pipeline = StationPipeline(get_station("SRZN"), BENCH_EXPERIMENT_CONFIG)
    epochs, replay = pipeline.collect()
    subsets = [
        prn_order_subset(epoch, 8) for epoch in epochs if epoch.satellite_count >= 8
    ]
    return subsets, replay


def _median_error(solver, subsets):
    errors = []
    for subset in subsets:
        try:
            fix = solver.solve(subset)
        except GeometryError:
            continue
        errors.append(fix.distance_to(subset.truth.receiver_position))
    return float(np.median(errors))


@pytest.fixture(scope="module")
def selection_report(ablation_data):
    subsets, replay = ablation_data
    rng = np.random.default_rng(2010)
    lines = [
        "Ablation A: DLO base-satellite selection (paper Sec. 6 ext. 1), "
        "SRZN, m=8",
        f"{'strategy':<10} {'DLO median error (m)':>21}",
    ]
    medians = {}
    for name in _STRATEGIES:
        solver = DLOSolver(replay, make_selector(name, rng))
        medians[name] = _median_error(solver, subsets)
        lines.append(f"{name:<10} {medians[name]:21.2f}")
    best = min(medians, key=medians.get)
    lines.append(
        f"Paper's conjecture: a deliberate base choice improves on random; "
        f"measured best={best} ({medians[best]:.2f} m) vs "
        f"random ({medians['random']:.2f} m)"
    )

    # DLG base-invariance: all strategies must coincide.
    dlg_medians = [
        _median_error(DLGSolver(replay, make_selector(name, rng)), subsets)
        for name in _STRATEGIES
    ]
    spread = max(dlg_medians) - min(dlg_medians)
    lines.append(
        f"DLG base-invariance check: median errors across strategies span "
        f"{spread:.3e} m (GLS is equivariant under the base change, so ~0)"
    )
    assert spread < 1e-3
    report = "\n".join(lines)
    add_report(report)
    return report, medians


@pytest.mark.parametrize("strategy", _STRATEGIES)
def bench_dlo_with_selector(benchmark, ablation_data, selection_report, strategy):
    subsets, replay = ablation_data
    solver = DLOSolver(replay, make_selector(strategy, np.random.default_rng(1)))
    counter = {"index": 0}

    def solve_one():
        index = counter["index"] % len(subsets)
        counter["index"] += 1
        return solver.solve(subsets[index])

    fix = benchmark(solve_one)
    assert fix.converged
