"""Overhead benchmark for the batch FDE gate: integrity is not free, but close.

Measures the FDE-armed :class:`repro.engine.PositioningEngine` against
the plain batched DLG path on the same mixed-satellite-count stream,
in three shapes:

* **plain** — batched DLG, no integrity (the PR 1 baseline);
* **fde-clean** — FDE armed, fault-free stream: detection rides the
  whitened norms the solver already computes, so this is the pure gate
  overhead every epoch pays;
* **fde-faulted** — FDE armed with a fraction of epochs spiked: flagged
  epochs additionally pay the stacked leave-one-out exclusion, which is
  the worst-case integrity cost.

Results go to ``BENCH_integrity.json``; the run fails if the fault-free
FDE throughput drops below ``--min-clean-ratio`` (default 0.60) of the
plain path, or if the faulted pass does not repair every spiked epoch.

Run::

    PYTHONPATH=src python benchmarks/bench_integrity.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from dataclasses import replace
from typing import Dict, List

import numpy as np

from repro import FdeConfig, PositioningEngine
from repro.evaluation import TimingStats, time_callable
from repro.observations import ObservationEpoch

from bench_engine_throughput import BIAS_METERS, synthetic_stream

#: Spike magnitude for the faulted pass (meters) — far above the
#: stream's 1 m noise so every spiked epoch must flag and repair.
SPIKE_METERS = 120.0


def spike_stream(
    epochs: List[ObservationEpoch], fault_rate: float, seed: int = 7
) -> "tuple[List[ObservationEpoch], int]":
    """A copy of the stream with ``fault_rate`` of its epochs spiked.

    One satellite per chosen epoch gets ``SPIKE_METERS`` added to its
    pseudorange; returns the corrupted stream and the spike count.
    """
    rng = np.random.default_rng(seed)
    corrupted = list(epochs)
    spiked = 0
    for index, epoch in enumerate(epochs):
        if rng.random() >= fault_rate:
            continue
        victim = int(rng.integers(epoch.satellite_count))
        observations = [
            replace(obs, pseudorange=obs.pseudorange + SPIKE_METERS)
            if j == victim
            else obs
            for j, obs in enumerate(epoch.observations)
        ]
        corrupted[index] = epoch.with_observations(observations)
        spiked += 1
    return corrupted, spiked


def _record(stats: TimingStats) -> Dict:
    return {
        "per_fix_ns": {
            "best": stats.best_ns,
            "mean": stats.mean_ns,
            "p50": stats.p50_ns,
            "p95": stats.p95_ns,
        },
        "fixes_per_second": stats.items_per_second,
        "repeats": stats.repeats,
        "items": stats.items,
    }


def run(epoch_count: int, repeats: int, fault_rate: float, output: str) -> Dict:
    """Run the integrity benchmark matrix and return the results document."""
    print(f"generating {epoch_count}-epoch mixed-count stream ...", flush=True)
    epochs = synthetic_stream(epoch_count)
    biases = np.full(len(epochs), BIAS_METERS)
    faulted_epochs, spiked = spike_stream(epochs, fault_rate)
    fde_config = FdeConfig(sigma_meters=1.0, p_false_alarm=1e-3)

    results: Dict = {
        "config": {
            "epochs": epoch_count,
            "repeats": repeats,
            "fault_rate": fault_rate,
            "spiked_epochs": spiked,
            "spike_meters": SPIKE_METERS,
            "fde": fde_config.to_dict(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }

    plain = PositioningEngine(algorithm="dlg")
    armed = PositioningEngine(algorithm="dlg", fde_config=fde_config)

    matrix = (
        ("plain", plain, epochs),
        ("fde_clean", armed, epochs),
        ("fde_faulted", armed, faulted_epochs),
    )
    for name, engine, stream in matrix:
        stats = time_callable(
            lambda: engine.solve_stream(stream, biases=biases),
            items=len(stream),
            repeats=repeats,
            warmup_rounds=1,
        )
        results[name] = _record(stats)
        print(
            f"{name:12s}  {stats.best_ns / 1e3:9.1f} us/fix  "
            f"{stats.items_per_second:10.0f} fixes/s"
        )

    clean_ratio = (
        results["fde_clean"]["fixes_per_second"]
        / results["plain"]["fixes_per_second"]
    )
    faulted_ratio = (
        results["fde_faulted"]["fixes_per_second"]
        / results["plain"]["fixes_per_second"]
    )

    # Correctness alongside the timing: the clean pass must not flag,
    # the faulted pass must repair every spike (120 m against 1 m
    # noise leaves no statistical excuse).
    clean_counts = armed.solve_stream(
        epochs, biases=biases
    ).diagnostics.fde.counts()
    faulted_result = armed.solve_stream(faulted_epochs, biases=biases)
    faulted_counts = faulted_result.diagnostics.fde.counts()
    repaired_errors = np.linalg.norm(
        faulted_result.positions
        - np.stack([e.truth.receiver_position for e in faulted_epochs]),
        axis=1,
    )
    results["fde_overhead"] = {
        "clean_throughput_ratio": clean_ratio,
        "faulted_throughput_ratio": faulted_ratio,
        "clean_counts": clean_counts,
        "faulted_counts": faulted_counts,
        "faulted_max_position_error_m": float(repaired_errors.max()),
    }
    print(
        f"\nFDE throughput vs plain batched DLG: "
        f"{100 * clean_ratio:.1f}% clean, {100 * faulted_ratio:.1f}% with "
        f"{spiked} spiked epochs ({faulted_counts['repaired']} repaired)"
    )

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--epochs", type=int, default=2000, help="stream length (default 2000)"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed passes per measurement"
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.02,
        help="fraction of epochs spiked in the faulted pass (default 0.02)",
    )
    parser.add_argument(
        "--output", default="BENCH_integrity.json", help="JSON results path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 400 epochs, two timed passes",
    )
    parser.add_argument(
        "--min-clean-ratio",
        type=float,
        default=0.60,
        help="fail if fault-free FDE throughput falls below this fraction "
        "of the plain batched path (default 0.60)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.epochs = min(args.epochs, 400)
        args.repeats = min(args.repeats, 2)

    results = run(args.epochs, args.repeats, args.fault_rate, args.output)
    overhead = results["fde_overhead"]
    failed = False
    if overhead["clean_throughput_ratio"] < args.min_clean_ratio:
        print(
            f"ERROR: fault-free FDE throughput is only "
            f"{100 * overhead['clean_throughput_ratio']:.1f}% of the plain "
            f"batched path (floor {100 * args.min_clean_ratio:.0f}%)",
            file=sys.stderr,
        )
        failed = True
    if overhead["clean_counts"]["repaired"] or overhead["clean_counts"]["unusable"]:
        print(
            f"ERROR: FDE flagged a fault-free stream: {overhead['clean_counts']}",
            file=sys.stderr,
        )
        failed = True
    spiked = results["config"]["spiked_epochs"]
    if overhead["faulted_counts"]["repaired"] < spiked:
        print(
            f"ERROR: only {overhead['faulted_counts']['repaired']} of "
            f"{spiked} spiked epochs were repaired",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
