"""Throughput benchmark for the async positioning service.

Answers the serving question the engine bench cannot: how much of the
batched solvers' ~18x advantage survives when requests arrive *one at
a time* from concurrent clients and must be coalesced on the fly?

Three arms over the same mixed-satellite-count stream:

* **serial_scalar** — the no-service baseline: one facade-built scalar
  solve per request, back to back (what a naive per-request server
  does per core).
* **service_unbatched** — the ablation: the full async service with
  ``max_batch_size=1``, isolating the event-loop and dispatch overhead
  from the batching win.
* **service_batched** — the tentpole: dynamic micro-batching
  (flush on size or deadline), telemetry capturing the batch-size and
  latency distributions.

All requests are fired concurrently (bounded in-flight window) and
per-request latencies are measured at the client.  Results go to
``BENCH_service.json``; the speedup of the batched service over
per-request serial solving under the same concurrent replay (the
unbatched service arm) is gated by ``--min-speedup`` (default 5).
The ratio against the raw serial scalar loop is recorded for context
but not gated — it bounds a different question (service versus no
service at all, where the event loop is pure overhead).

Run::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from bench_engine_throughput import BIAS_METERS, synthetic_stream

from repro import telemetry
from repro.api import SolverConfig
from repro.service import AsyncPositioningClient, PositioningService, ServiceConfig
from repro.telemetry import MetricsRegistry, SpanTracer
from repro.telemetry.recorder import RecorderConfig
from repro.telemetry.slo import SloConfig


def _percentiles(samples: np.ndarray) -> Dict[str, float]:
    return {
        "p50": float(np.percentile(samples, 50)),
        "p90": float(np.percentile(samples, 90)),
        "p99": float(np.percentile(samples, 99)),
        "max": float(samples.max()),
    }


async def _drive(
    service_config: ServiceConfig,
    epochs,
    concurrency: int,
) -> Dict:
    """Fire every epoch as a concurrent request; measure at the client.

    The in-flight window is a pool of ``concurrency`` long-lived pump
    tasks sharing one index iterator, not a per-request semaphore: when
    a 64-request batch resolves, 64 semaphore releases would each
    rescan the woken-but-unresumed waiters at the head of the queue
    (quadratic in the burst), which at these request rates costs more
    than the solves being measured.
    """
    results = [None] * len(epochs)
    latencies = [0.0] * len(epochs)
    indices = iter(range(len(epochs)))
    async with PositioningService(service_config) as service:
        client = AsyncPositioningClient(service)
        loop = asyncio.get_running_loop()

        async def pump():
            for index in indices:
                epoch = epochs[index]
                started = loop.time()
                result = await client.submit(epoch, bias_meters=BIAS_METERS)
                while result.status == "rejected":
                    await asyncio.sleep(result.retry_after_seconds or 0.01)
                    result = await client.submit(epoch, bias_meters=BIAS_METERS)
                latencies[index] = loop.time() - started
                results[index] = result

        started = loop.time()
        await asyncio.gather(
            *(pump() for _ in range(min(concurrency, len(epochs))))
        )
        wall = loop.time() - started
        slo_snapshot = service.slo.snapshot() if service.slo is not None else None
    return {
        "results": results,
        "latencies": np.array(latencies),
        "wall": wall,
        "slo": slo_snapshot,
    }


def _service_arm(
    epochs,
    service_config: ServiceConfig,
    concurrency: int,
    repeats: int,
    capture_telemetry: bool,
) -> Dict:
    """Best-of-``repeats`` run of one service configuration."""
    best: Optional[Dict] = None
    snapshot: Optional[Dict] = None
    for _ in range(repeats):
        if capture_telemetry:
            with telemetry.capture() as (registry, tracer):
                run = asyncio.run(_drive(service_config, epochs, concurrency))
            run_snapshot = {
                name: family
                for name, family in registry.snapshot().items()
                if name.startswith("repro_service")
            }
        else:
            run = asyncio.run(_drive(service_config, epochs, concurrency))
            run_snapshot = None
        if best is None or run["wall"] < best["wall"]:
            best, snapshot = run, run_snapshot

    results = best["results"]
    statuses: Dict[str, int] = {}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    batch_sizes = np.array([r.batch_size for r in results if r.ok] or [0])
    record = {
        "wall_seconds": best["wall"],
        "requests_per_second": len(results) / best["wall"],
        "statuses": statuses,
        "latency_seconds": _percentiles(best["latencies"]),
        "batch_size": {
            "mean": float(batch_sizes.mean()),
            **{k: v for k, v in _percentiles(batch_sizes.astype(float)).items()},
        },
        "config": {
            "max_batch_size": service_config.max_batch_size,
            "max_wait_seconds": service_config.max_wait_seconds,
            "max_queue_depth": service_config.max_queue_depth,
            "concurrency": concurrency,
        },
    }
    if snapshot is not None:
        record["telemetry"] = snapshot
    record["_positions"] = [r.position for r in results]
    return record


def _trace_plane(
    epochs,
    concurrency: int,
    rounds: int,
    budgets: "tuple[float, float]" = (0.05, 0.15),
) -> Dict:
    """Measure the trace plane's cost and characterize a traced run.

    Mirrors the engine bench's telemetry gate, adapted to the serving
    path, with three interleaved arms:

    ``off``
        The shipping default — no registry, no trace plane.
    ``telemetry``
        A metrics registry installed process-wide (the "scraped fleet
        member" configuration) with the span tracer and trace plane
        *off*.  This is the **traced-off** gate: turning on scraping
        alone must stay within 5% of the plain service.
    ``full``
        Registry and span tracer installed plus the whole trace plane —
        per-request span trees, flight recorder, SLO engine.  This is
        the **traced-on** gate (15%).

    Passes are compared on CPU time (the service intentionally *waits*
    on flush deadlines, so wall time would measure the batcher's
    timers, not the trace plane), and the measurement is built for a
    shared, noisy box:

    * **Deterministic wave driver.**  The overhead arms submit exactly
      ``max_batch_size`` requests per wave and gather them, so every
      flush is size-triggered and every pass does bit-identical work —
      the timer-racing pump driver (which feeds the latency/SLO record
      below) flushes at whatever sizes the scheduler produced, which is
      exactly the run-to-run variance a gate cannot afford.
    * **CPU pinning** to one core while measuring, so migration does
      not add noise.
    * **GC fairness.**  ``gc.collect()`` before every timed pass (an
      arm must not collect its predecessor's garbage inside its own
      window) and ``gc.freeze()`` after warmup, so full collections
      scan each arm's own allocations, not the imported heap.
    * **Min-of-rounds estimator.**  Each overhead is the ratio of the
      arms' minimum pass times: the minimum is the least-contaminated
      observation of the fixed workload, so scheduler noise episodes
      drop out while a genuine regression lifts the floor itself.
    * **One re-measure on failure.**  A cache/bandwidth contention
      storm from a co-tenant can outlast an entire measurement phase,
      inflating every round's floor at once — something no
      within-phase estimator can reject.  If a budget in ``budgets``
      is exceeded, one more phase of ``rounds`` rounds runs and the
      floors pool across both phases; the budget itself never loosens,
      so a genuine regression fails twice and still fails.

    The final full-stack run is kept: its span trees supply the
    per-stage latency breakdown and its SLO tracker the latency
    quantiles recorded in ``BENCH_service.json``.
    """
    solver = SolverConfig(algorithm="dlg", clock_bias_meters=BIAS_METERS)
    base = dict(solver=solver, max_batch_size=128, max_wait_seconds=0.002)
    # Wave size for the overhead arms: every wave fills a batch exactly
    # (no timer flushes), and the epoch stream is trimmed to a whole
    # number of waves so every pass solves the same epochs.
    wave = 120
    epochs = epochs[: max(wave, len(epochs) // wave * wave)]
    # Each timed pass sweeps the trimmed stream ``loops`` times, sized
    # so a pass is thousands of requests (~0.1s of CPU), not a handful
    # of milliseconds: the ratio of two 4ms windows moves percents per
    # scheduler tick, the ratio of two 100ms windows does not.  Every
    # arm runs the same loop count, so passes stay bit-identical work.
    loops = max(1, -(-2400 // len(epochs)))
    wave_base = dict(solver=solver, max_batch_size=wave, max_wait_seconds=0.25)
    # One long-lived registry/tracer across every installed pass (the
    # fleet-member configuration a scraper sees): per-pass registries
    # would make allocation/first-touch costs part of the measurement.
    registry, tracer = MetricsRegistry(), SpanTracer()
    configs = {
        "off": (ServiceConfig(**wave_base), None),
        "telemetry": (ServiceConfig(**wave_base), telemetry.NULL_TRACER),
        "full": (
            ServiceConfig(
                **wave_base,
                trace=True,
                recorder=RecorderConfig(),
                slo=SloConfig(),
            ),
            tracer,
        ),
    }
    kept_config = ServiceConfig(
        **base, trace=True, recorder=RecorderConfig(), slo=SloConfig()
    )

    async def _wave_run(config: ServiceConfig) -> None:
        # Nothing is returned: asyncio.run() reprs the main task during
        # its signal-handling teardown, and a result payload full of
        # position arrays would put numpy pretty-printing — pure noise
        # — inside the measurement window.
        async with PositioningService(config) as service:
            client = AsyncPositioningClient(service)
            for _ in range(loops):
                for start in range(0, len(epochs), wave):
                    results = await asyncio.gather(
                        *(
                            client.submit(epoch, bias_meters=BIAS_METERS)
                            for epoch in epochs[start : start + wave]
                        )
                    )
                    bad = sum(1 for r in results if r.status != "ok")
                    if bad:
                        raise RuntimeError(
                            f"overhead wave had {bad} non-ok results; the "
                            "arms are no longer doing identical work"
                        )

    def _cpu_pass(name: str) -> float:
        config, arm_tracer = configs[name]
        gc.collect()
        if arm_tracer is not None:
            with telemetry.capture(registry, arm_tracer):
                start = time.process_time_ns()
                asyncio.run(_wave_run(config))
                return float(time.process_time_ns() - start)
        start = time.process_time_ns()
        asyncio.run(_wave_run(config))
        return float(time.process_time_ns() - start)

    samples: Dict[str, List[float]] = {name: [] for name in configs}
    order = list(configs)

    def _sample_phase() -> None:
        for round_index in range(rounds):
            # Rotate the in-round order so drift cannot systematically
            # favor one arm.
            for offset in range(len(order)):
                name = order[(round_index + offset) % len(order)]
                samples[name].append(_cpu_pass(name))

    def _overhead(name: str) -> float:
        return min(samples[name]) / min(samples["off"]) - 1.0

    affinity = None
    try:
        if hasattr(os, "sched_getaffinity"):
            affinity = os.sched_getaffinity(0)
            os.sched_setaffinity(0, {next(iter(affinity))})
    except OSError:
        affinity = None
    frozen = False
    phases = 1
    try:
        for name in configs:  # warm every arm once
            _cpu_pass(name)
        gc.collect()
        gc.freeze()
        frozen = True
        _sample_phase()
        if rounds and (
            _overhead("telemetry") > budgets[0]
            or _overhead("full") > budgets[1]
        ):
            # Possible phase-long contention storm: re-measure once and
            # pool the floors (see the docstring).
            print(
                "trace plane over budget on phase 1; re-measuring once",
                flush=True,
            )
            _sample_phase()
            phases = 2
    finally:
        if frozen:
            gc.unfreeze()
        if affinity is not None:
            os.sched_setaffinity(0, affinity)

    traced_off = _overhead("telemetry") if rounds else float("nan")
    traced_on = _overhead("full") if rounds else float("nan")

    # One kept full-stack run (pump driver, production batching knobs)
    # for the breakdown record.
    with telemetry.capture(registry, tracer):
        kept = asyncio.run(_drive(kept_config, epochs, concurrency))
    stage_samples: Dict[str, List[float]] = {}
    for result in kept["results"]:
        if result.trace is None:
            continue
        for stage, seconds in result.trace.stage_seconds().items():
            stage_samples.setdefault(stage, []).append(seconds)
    stage_latency = {
        stage: _percentiles(np.array(values))
        for stage, values in sorted(stage_samples.items())
    }
    return {
        # traced-off = registry installed, trace plane off; traced-on =
        # registry + trace + recorder + SLO.  Both relative to the
        # plain (no-registry) service.
        "traced_off_overhead_fraction": traced_off,
        "traced_on_overhead_fraction": traced_on,
        "rounds": rounds,
        "phases": phases,
        "requests": len(epochs) * loops,
        # Raw per-pass CPU times (ns), in measurement order per arm:
        # the evidence behind the ratios, kept so a flaky CI gate can
        # be diagnosed from the artifact instead of re-run blind.
        "samples_ns": {name: list(values) for name, values in samples.items()},
        "stage_latency_seconds": stage_latency,
        "slo": kept["slo"],
    }


def run(
    request_count: int,
    repeats: int,
    concurrency: int,
    output: str,
    trace_rounds: int = 9,
    overhead_only: bool = False,
    trace_budgets: "tuple[float, float]" = (0.05, 0.15),
) -> Dict:
    """Run the three arms and return the results document."""
    print(f"generating {request_count}-epoch mixed-count stream ...", flush=True)
    epochs = synthetic_stream(request_count)
    solver = SolverConfig(algorithm="dlg", clock_bias_meters=BIAS_METERS)

    results: Dict = {
        "config": {
            "requests": request_count,
            "repeats": repeats,
            "concurrency": concurrency,
            "algorithm": solver.algorithm,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }
    # The overhead gate compares ~microsecond per-request deltas, so a
    # pass needs enough requests for the paired CPU-time ratio to rise
    # above scheduler noise; small --quick streams are padded up.
    trace_epochs = (
        epochs if len(epochs) >= 600 else synthetic_stream(600)
    )
    if overhead_only:
        results["trace_plane"] = _trace_plane(
            trace_epochs, concurrency, trace_rounds, trace_budgets
        )
        trace = results["trace_plane"]
        print(
            f"trace plane  off {trace['traced_off_overhead_fraction'] * 100.0:+.2f}%  "
            f"full {trace['traced_on_overhead_fraction'] * 100.0:+.2f}% "
            f"(min-of-rounds cpu-time ratio, {trace_rounds} rounds x "
            f"{trace['phases']} phase(s))"
        )
        with open(output, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote {output}")
        return results

    # ------------------------------------------------------ serial scalar
    scalar = solver.build_solver()
    serial_best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        serial_positions = [scalar.solve(epoch).position for epoch in epochs]
        serial_best = min(serial_best, time.perf_counter() - started)
    results["serial_scalar"] = {
        "wall_seconds": serial_best,
        "requests_per_second": len(epochs) / serial_best,
    }
    print(
        f"serial scalar    {len(epochs) / serial_best:10.0f} req/s "
        f"({serial_best:.3f}s wall)"
    )

    # -------------------------------------------------- service, no batch
    unbatched = _service_arm(
        epochs,
        ServiceConfig(solver=solver, max_batch_size=1, max_wait_seconds=0.0),
        concurrency,
        repeats,
        capture_telemetry=False,
    )
    unbatched.pop("_positions")
    results["service_unbatched"] = unbatched
    print(
        f"service nobatch  {unbatched['requests_per_second']:10.0f} req/s "
        f"(p99 {1e3 * unbatched['latency_seconds']['p99']:.1f}ms)"
    )

    # ----------------------------------------------------- service, batched
    # 128 (not the service's general-purpose default of 64) because the
    # replay holds ~512 requests in flight: bigger flushes amortize the
    # per-bucket solve overhead while the deadline keeps p99 bounded.
    batched = _service_arm(
        epochs,
        ServiceConfig(solver=solver, max_batch_size=128, max_wait_seconds=0.002),
        concurrency,
        repeats,
        capture_telemetry=True,
    )
    batched_positions = batched.pop("_positions")
    results["service_batched"] = batched
    print(
        f"service batched  {batched['requests_per_second']:10.0f} req/s "
        f"(p99 {1e3 * batched['latency_seconds']['p99']:.1f}ms, "
        f"mean batch {batched['batch_size']['mean']:.1f})"
    )

    # ------------------------------------------------- agreement + ratios
    # Micro-batching must not change the answer: compare the batched
    # service's positions to the serial scalar loop's, row for row.
    agreement = float(
        max(
            np.linalg.norm(service_pos - serial_pos)
            for service_pos, serial_pos in zip(batched_positions, serial_positions)
        )
    )
    results["speedups"] = {
        "batched_service_vs_serial_scalar": (
            batched["requests_per_second"]
            / results["serial_scalar"]["requests_per_second"]
        ),
        "batched_service_vs_unbatched_service": (
            batched["requests_per_second"] / unbatched["requests_per_second"]
        ),
        "max_position_disagreement_m": agreement,
    }
    print(
        f"\nbatched service vs serial scalar: "
        f"{results['speedups']['batched_service_vs_serial_scalar']:.1f}x "
        f"(vs unbatched service: "
        f"{results['speedups']['batched_service_vs_unbatched_service']:.1f}x), "
        f"max disagreement {agreement:.2e} m"
    )

    # -------------------------------------------------- trace-plane cost
    results["trace_plane"] = _trace_plane(
        trace_epochs, concurrency, trace_rounds, trace_budgets
    )
    trace = results["trace_plane"]
    print(
        f"trace plane  off {trace['traced_off_overhead_fraction'] * 100.0:+.2f}%  "
        f"full {trace['traced_on_overhead_fraction'] * 100.0:+.2f}% "
        f"(min-of-rounds cpu-time ratio, {trace_rounds} rounds x "
        f"{trace['phases']} phase(s))"
    )

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests",
        type=int,
        default=1000,
        help="concurrent requests per arm (default 1000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="passes per arm, best kept"
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=512,
        help="client-side in-flight request bound",
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", help="JSON results path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 200 requests, single pass",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail unless the batched service beats per-request serial "
        "solving under the same concurrent replay (the unbatched service "
        "arm) by this factor (default 5; CI smoke uses a lower gate for "
        "slow runners)",
    )
    parser.add_argument(
        "--trace-rounds",
        type=int,
        default=9,
        help="interleaved rounds for the trace-plane overhead gate",
    )
    parser.add_argument(
        "--max-traced-off-overhead",
        type=float,
        default=0.05,
        help="fail if the trace-plane-off service costs more than this "
        "fraction over the pre-trace-plane path (default 0.05)",
    )
    parser.add_argument(
        "--max-traced-on-overhead",
        type=float,
        default=0.15,
        help="fail if the full observability stack (trace + recorder + "
        "SLO) costs more than this fraction (default 0.15)",
    )
    parser.add_argument(
        "--overhead-only",
        action="store_true",
        help="skip the throughput arms; run and gate only the "
        "trace-plane overhead section (the CI telemetry-overhead job)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 200)
        args.repeats = 1

    results = run(
        args.requests,
        args.repeats,
        args.concurrency,
        args.output,
        trace_rounds=args.trace_rounds,
        overhead_only=args.overhead_only,
        trace_budgets=(
            args.max_traced_off_overhead,
            args.max_traced_on_overhead,
        ),
    )

    failures = []
    if not args.overhead_only:
        speedup = results["speedups"]["batched_service_vs_unbatched_service"]
        if speedup < args.min_speedup:
            failures.append(
                f"batched service speedup {speedup:.2f}x over per-request "
                f"serial solving is below the {args.min_speedup:g}x gate"
            )
        disagreement = results["speedups"]["max_position_disagreement_m"]
        if disagreement > 1e-6:
            failures.append(
                f"batched service disagrees with serial scalar by {disagreement:.2e} m"
            )
        statuses = results["service_batched"]["statuses"]
        if set(statuses) != {"ok"}:
            failures.append(f"batched service had non-ok requests: {statuses}")
    traced_off = results["trace_plane"]["traced_off_overhead_fraction"]
    if traced_off > args.max_traced_off_overhead:
        failures.append(
            f"traced-off service overhead {traced_off * 100.0:.2f}% exceeds "
            f"the {args.max_traced_off_overhead * 100.0:.1f}% budget"
        )
    traced_on = results["trace_plane"]["traced_on_overhead_fraction"]
    if traced_on > args.max_traced_on_overhead:
        failures.append(
            f"traced-on service overhead {traced_on * 100.0:.2f}% exceeds "
            f"the {args.max_traced_on_overhead * 100.0:.1f}% budget"
        )
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
