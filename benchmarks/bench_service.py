"""Throughput benchmark for the async positioning service.

Answers the serving question the engine bench cannot: how much of the
batched solvers' ~18x advantage survives when requests arrive *one at
a time* from concurrent clients and must be coalesced on the fly?

Three arms over the same mixed-satellite-count stream:

* **serial_scalar** — the no-service baseline: one facade-built scalar
  solve per request, back to back (what a naive per-request server
  does per core).
* **service_unbatched** — the ablation: the full async service with
  ``max_batch_size=1``, isolating the event-loop and dispatch overhead
  from the batching win.
* **service_batched** — the tentpole: dynamic micro-batching
  (flush on size or deadline), telemetry capturing the batch-size and
  latency distributions.

All requests are fired concurrently (bounded in-flight window) and
per-request latencies are measured at the client.  Results go to
``BENCH_service.json``; the speedup of the batched service over
per-request serial solving under the same concurrent replay (the
unbatched service arm) is gated by ``--min-speedup`` (default 5).
The ratio against the raw serial scalar loop is recorded for context
but not gated — it bounds a different question (service versus no
service at all, where the event loop is pure overhead).

Run::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from bench_engine_throughput import BIAS_METERS, synthetic_stream

from repro import telemetry
from repro.api import SolverConfig
from repro.service import AsyncPositioningClient, PositioningService, ServiceConfig


def _percentiles(samples: np.ndarray) -> Dict[str, float]:
    return {
        "p50": float(np.percentile(samples, 50)),
        "p90": float(np.percentile(samples, 90)),
        "p99": float(np.percentile(samples, 99)),
        "max": float(samples.max()),
    }


async def _drive(
    service_config: ServiceConfig,
    epochs,
    concurrency: int,
) -> Dict:
    """Fire every epoch as a concurrent request; measure at the client.

    The in-flight window is a pool of ``concurrency`` long-lived pump
    tasks sharing one index iterator, not a per-request semaphore: when
    a 64-request batch resolves, 64 semaphore releases would each
    rescan the woken-but-unresumed waiters at the head of the queue
    (quadratic in the burst), which at these request rates costs more
    than the solves being measured.
    """
    results = [None] * len(epochs)
    latencies = [0.0] * len(epochs)
    indices = iter(range(len(epochs)))
    async with PositioningService(service_config) as service:
        client = AsyncPositioningClient(service)
        loop = asyncio.get_running_loop()

        async def pump():
            for index in indices:
                epoch = epochs[index]
                started = loop.time()
                result = await client.submit(epoch, bias_meters=BIAS_METERS)
                while result.status == "rejected":
                    await asyncio.sleep(result.retry_after_seconds or 0.01)
                    result = await client.submit(epoch, bias_meters=BIAS_METERS)
                latencies[index] = loop.time() - started
                results[index] = result

        started = loop.time()
        await asyncio.gather(
            *(pump() for _ in range(min(concurrency, len(epochs))))
        )
        wall = loop.time() - started
    return {"results": results, "latencies": np.array(latencies), "wall": wall}


def _service_arm(
    epochs,
    service_config: ServiceConfig,
    concurrency: int,
    repeats: int,
    capture_telemetry: bool,
) -> Dict:
    """Best-of-``repeats`` run of one service configuration."""
    best: Optional[Dict] = None
    snapshot: Optional[Dict] = None
    for _ in range(repeats):
        if capture_telemetry:
            with telemetry.capture() as (registry, tracer):
                run = asyncio.run(_drive(service_config, epochs, concurrency))
            run_snapshot = {
                name: family
                for name, family in registry.snapshot().items()
                if name.startswith("repro_service")
            }
        else:
            run = asyncio.run(_drive(service_config, epochs, concurrency))
            run_snapshot = None
        if best is None or run["wall"] < best["wall"]:
            best, snapshot = run, run_snapshot

    results = best["results"]
    statuses: Dict[str, int] = {}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    batch_sizes = np.array([r.batch_size for r in results if r.ok] or [0])
    record = {
        "wall_seconds": best["wall"],
        "requests_per_second": len(results) / best["wall"],
        "statuses": statuses,
        "latency_seconds": _percentiles(best["latencies"]),
        "batch_size": {
            "mean": float(batch_sizes.mean()),
            **{k: v for k, v in _percentiles(batch_sizes.astype(float)).items()},
        },
        "config": {
            "max_batch_size": service_config.max_batch_size,
            "max_wait_seconds": service_config.max_wait_seconds,
            "max_queue_depth": service_config.max_queue_depth,
            "concurrency": concurrency,
        },
    }
    if snapshot is not None:
        record["telemetry"] = snapshot
    record["_positions"] = [r.position for r in results]
    return record


def run(
    request_count: int, repeats: int, concurrency: int, output: str
) -> Dict:
    """Run the three arms and return the results document."""
    print(f"generating {request_count}-epoch mixed-count stream ...", flush=True)
    epochs = synthetic_stream(request_count)
    solver = SolverConfig(algorithm="dlg", clock_bias_meters=BIAS_METERS)

    results: Dict = {
        "config": {
            "requests": request_count,
            "repeats": repeats,
            "concurrency": concurrency,
            "algorithm": solver.algorithm,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }

    # ------------------------------------------------------ serial scalar
    scalar = solver.build_solver()
    serial_best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        serial_positions = [scalar.solve(epoch).position for epoch in epochs]
        serial_best = min(serial_best, time.perf_counter() - started)
    results["serial_scalar"] = {
        "wall_seconds": serial_best,
        "requests_per_second": len(epochs) / serial_best,
    }
    print(
        f"serial scalar    {len(epochs) / serial_best:10.0f} req/s "
        f"({serial_best:.3f}s wall)"
    )

    # -------------------------------------------------- service, no batch
    unbatched = _service_arm(
        epochs,
        ServiceConfig(solver=solver, max_batch_size=1, max_wait_seconds=0.0),
        concurrency,
        repeats,
        capture_telemetry=False,
    )
    unbatched.pop("_positions")
    results["service_unbatched"] = unbatched
    print(
        f"service nobatch  {unbatched['requests_per_second']:10.0f} req/s "
        f"(p99 {1e3 * unbatched['latency_seconds']['p99']:.1f}ms)"
    )

    # ----------------------------------------------------- service, batched
    # 128 (not the service's general-purpose default of 64) because the
    # replay holds ~512 requests in flight: bigger flushes amortize the
    # per-bucket solve overhead while the deadline keeps p99 bounded.
    batched = _service_arm(
        epochs,
        ServiceConfig(solver=solver, max_batch_size=128, max_wait_seconds=0.002),
        concurrency,
        repeats,
        capture_telemetry=True,
    )
    batched_positions = batched.pop("_positions")
    results["service_batched"] = batched
    print(
        f"service batched  {batched['requests_per_second']:10.0f} req/s "
        f"(p99 {1e3 * batched['latency_seconds']['p99']:.1f}ms, "
        f"mean batch {batched['batch_size']['mean']:.1f})"
    )

    # ------------------------------------------------- agreement + ratios
    # Micro-batching must not change the answer: compare the batched
    # service's positions to the serial scalar loop's, row for row.
    agreement = float(
        max(
            np.linalg.norm(service_pos - serial_pos)
            for service_pos, serial_pos in zip(batched_positions, serial_positions)
        )
    )
    results["speedups"] = {
        "batched_service_vs_serial_scalar": (
            batched["requests_per_second"]
            / results["serial_scalar"]["requests_per_second"]
        ),
        "batched_service_vs_unbatched_service": (
            batched["requests_per_second"] / unbatched["requests_per_second"]
        ),
        "max_position_disagreement_m": agreement,
    }
    print(
        f"\nbatched service vs serial scalar: "
        f"{results['speedups']['batched_service_vs_serial_scalar']:.1f}x "
        f"(vs unbatched service: "
        f"{results['speedups']['batched_service_vs_unbatched_service']:.1f}x), "
        f"max disagreement {agreement:.2e} m"
    )

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests",
        type=int,
        default=1000,
        help="concurrent requests per arm (default 1000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="passes per arm, best kept"
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=512,
        help="client-side in-flight request bound",
    )
    parser.add_argument(
        "--output", default="BENCH_service.json", help="JSON results path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 200 requests, single pass",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail unless the batched service beats per-request serial "
        "solving under the same concurrent replay (the unbatched service "
        "arm) by this factor (default 5; CI smoke uses a lower gate for "
        "slow runners)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 200)
        args.repeats = 1

    results = run(args.requests, args.repeats, args.concurrency, args.output)

    failures = []
    speedup = results["speedups"]["batched_service_vs_unbatched_service"]
    if speedup < args.min_speedup:
        failures.append(
            f"batched service speedup {speedup:.2f}x over per-request "
            f"serial solving is below the {args.min_speedup:g}x gate"
        )
    disagreement = results["speedups"]["max_position_disagreement_m"]
    if disagreement > 1e-6:
        failures.append(
            f"batched service disagrees with serial scalar by {disagreement:.2e} m"
        )
    statuses = results["service_batched"]["statuses"]
    if set(statuses) != {"ok"}:
        failures.append(f"batched service had non-ok requests: {statuses}")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
