"""Multi-constellation solver benchmark: per-fix cost across n x K.

Measures the per-constellation clock-bias paths over a matrix of
epoch sizes (``n`` satellites per epoch) and constellation counts
(``K`` distinct systems), against the single-clock paths at ``K=1``:

* **scalar NR / DLG** — one ``solve`` call per epoch through the
  :mod:`repro.api` facade configs, recording the NR-vs-DLG per-fix
  ratio the paper's Section 5.3 comparison is about, now with
  ``3 + K`` unknowns;
* **batched DLG** — the whole stream through
  :meth:`~repro.solvers.BatchDLGSolver.solve_block` (``K=1``, the
  diag+rank-1 Sherman-Morrison path) or
  :meth:`~repro.solvers.BatchDLGSolver.solve_block_multi` (``K>1``,
  the grouped diag+rank-K path) on a pre-built
  :class:`~repro.blocks.EpochBlock`, so the decode boundary stays off
  the measured hot path exactly as in ``bench_engine_throughput.py``.

Scenes come from :func:`repro.api.build_scene`; each (n, K) cell uses
one deterministic stream with known truth, and the batched-vs-scalar
DLG agreement is checked per cell — widening the state to per-
constellation biases must not change the answer.

Combos the differenced multi solvers cannot admit (``n < 3 + 2K``)
are recorded as skipped rather than silently dropped.

Results are written to ``BENCH_constellation.json``.  The
``--perf-baseline`` gate compares the ``K=1`` batched DLG per-fix time
against the committed ``BENCH_engine.json`` batched DLG number: adding
constellation lanes must not tax the single-constellation fast path.

Run::

    PYTHONPATH=src python benchmarks/bench_constellation.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.api import SolverConfig, build_scene
from repro.blocks import EpochBlock
from repro.evaluation import TimingStats, time_callable, time_solver_stats

#: Clock bias (meters) for every constellation lane: constant so the
#: single-mode DLG arm can use a fixed-bias config and the multi arms
#: have a nonzero bias per system to estimate.
BIAS_METERS = 35.0

#: System codes assigned to constellation lanes, in lane order.
LANE_SYSTEMS = ("G", "R", "E", "C")

#: Benchmark matrix: satellites per epoch x distinct constellations.
SATELLITE_COUNTS = (8, 16, 32, 50)
CONSTELLATION_COUNTS = (1, 2, 4)

#: The stream's (n, K) cell whose batched DLG per-fix time is gated
#: against the committed single-constellation engine baseline; n=8
#: sits inside the engine benchmark's 7-11 satellite band.
GATE_CELL = (8, 1)


def _lane_counts(satellites: int, constellations: int) -> Dict[str, int]:
    """Split ``satellites`` across ``constellations`` systems, every
    lane getting at least its floor share (remainder to the first)."""
    base, extra = divmod(satellites, constellations)
    return {
        LANE_SYSTEMS[lane]: base + (1 if lane < extra else 0)
        for lane in range(constellations)
    }


def synthetic_stream(count, satellites, constellations, noise_sigma=1.0, seed=2026):
    """``count`` deterministic epochs of one (n, K) cell.

    Every epoch shares the satellite split and per-system biases (all
    ``BIAS_METERS``) but draws its own receiver and sky from the seed,
    via :func:`repro.api.build_scene` — the constellation-aware scene
    entry point this benchmark exists to exercise.
    """
    if constellations == 1:
        return [
            build_scene(
                satellites,
                clock_bias_meters=BIAS_METERS,
                seed=seed + index,
                noise_sigma=noise_sigma,
            )
            for index in range(count)
        ]
    lanes = _lane_counts(satellites, constellations)
    biases = {system: BIAS_METERS for system in lanes}
    return [
        build_scene(
            lanes,
            clock_bias_meters=biases,
            seed=seed + index,
            noise_sigma=noise_sigma,
        )
        for index in range(count)
    ]


def _record(stats: TimingStats) -> Dict:
    return {
        "per_fix_ns": {
            "best": stats.best_ns,
            "mean": stats.mean_ns,
            "p50": stats.p50_ns,
            "p95": stats.p95_ns,
        },
        "fixes_per_second": stats.items_per_second,
        "repeats": stats.repeats,
        "items": stats.items,
    }


def _bench_cell(
    satellites: int,
    constellations: int,
    epoch_count: int,
    repeats: int,
) -> Optional[Dict]:
    """One (n, K) cell of the matrix, or ``None`` when inadmissible."""
    if satellites < 3 + 2 * constellations:
        return None
    epochs = synthetic_stream(epoch_count, satellites, constellations)
    if constellations == 1:
        nr_config = SolverConfig(algorithm="nr")
        dlg_config = SolverConfig(algorithm="dlg", clock_bias_meters=BIAS_METERS)
    else:
        nr_config = SolverConfig(algorithm="nr", constellations="per_constellation")
        dlg_config = SolverConfig(
            algorithm="dlg", constellations="per_constellation"
        )

    cell: Dict = {
        "satellites": satellites,
        "constellations": constellations,
        "scalar": {},
        "batched": {},
    }

    # ------------------------------------------------------------- scalar
    scalar_solvers = {
        "NR": nr_config.build_solver(),
        "DLG": dlg_config.build_solver(),
    }
    for name, solver in scalar_solvers.items():
        stats = time_solver_stats(solver, epochs, repeats=repeats, warmup_rounds=1)
        cell["scalar"][name] = _record(stats)
    cell["nr_over_dlg_ratio"] = (
        cell["scalar"]["NR"]["per_fix_ns"]["best"]
        / cell["scalar"]["DLG"]["per_fix_ns"]["best"]
    )

    # ------------------------------------------------------------ batched
    # The block is built once outside the timed region (the decode
    # boundary belongs to pack_stream's line in the engine benchmark),
    # and the mode-specific block entry point is timed directly so K=1
    # measures the Sherman-Morrison rank-1 path and K>1 the grouped
    # rank-K path with zero dispatch in between.  Batched passes are
    # cheap, so best-of-many keeps the perf gate stable on noisy boxes.
    block = EpochBlock.from_epochs(epochs)
    batch_solver = dlg_config.build_batch_solver()
    batched_repeats = max(repeats, 9)
    if constellations == 1:
        biases = np.full(len(epochs), BIAS_METERS)
        run_batch = lambda: batch_solver.solve_block(block, biases)  # noqa: E731
        batched_positions = run_batch()
    else:
        run_batch = lambda: batch_solver.solve_block_multi(block)  # noqa: E731
        batched_positions = run_batch().positions
    stats = time_callable(
        run_batch, items=len(epochs), repeats=batched_repeats, warmup_rounds=1
    )
    cell["batched"]["DLG"] = _record(stats)
    cell["dlg_batched_over_scalar_speedup"] = (
        cell["scalar"]["DLG"]["per_fix_ns"]["best"] / stats.best_ns
    )

    # ---------------------------------------------------------- agreement
    scalar_positions = np.stack(
        [scalar_solvers["DLG"].solve(epoch).position for epoch in epochs]
    )
    truth = np.stack([epoch.truth.receiver_position for epoch in epochs])
    cell["dlg_batched_vs_scalar_max_disagreement_m"] = float(
        np.max(np.linalg.norm(batched_positions - scalar_positions, axis=1))
    )
    cell["dlg_batched_max_truth_error_m"] = float(
        np.max(np.linalg.norm(batched_positions - truth, axis=1))
    )
    return cell


def run(epoch_count: int, repeats: int, output: str) -> Dict:
    """Run the n x K matrix and return the results document."""
    results: Dict = {
        "config": {
            "epochs_per_cell": epoch_count,
            "repeats": repeats,
            "satellite_counts": list(SATELLITE_COUNTS),
            "constellation_counts": list(CONSTELLATION_COUNTS),
            "bias_meters": BIAS_METERS,
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "matrix": [],
        "skipped": [],
    }
    for satellites in SATELLITE_COUNTS:
        for constellations in CONSTELLATION_COUNTS:
            cell = _bench_cell(satellites, constellations, epoch_count, repeats)
            if cell is None:
                results["skipped"].append(
                    {
                        "satellites": satellites,
                        "constellations": constellations,
                        "reason": "differenced multi solve needs n >= 3 + 2K",
                    }
                )
                print(
                    f"n={satellites:<3d} K={constellations}   skipped "
                    f"(needs n >= {3 + 2 * constellations})"
                )
                continue
            results["matrix"].append(cell)
            print(
                f"n={satellites:<3d} K={constellations}   "
                f"scalar NR {cell['scalar']['NR']['per_fix_ns']['best'] / 1e3:8.1f} us/fix   "
                f"scalar DLG {cell['scalar']['DLG']['per_fix_ns']['best'] / 1e3:8.1f} us/fix "
                f"(NR/DLG {cell['nr_over_dlg_ratio']:.2f}x)   "
                f"batched DLG {cell['batched']['DLG']['per_fix_ns']['best'] / 1e3:7.2f} us/fix   "
                f"agree {cell['dlg_batched_vs_scalar_max_disagreement_m']:.2e} m"
            )

    gate_cell = next(
        (
            cell
            for cell in results["matrix"]
            if (cell["satellites"], cell["constellations"]) == GATE_CELL
        ),
        None,
    )
    if gate_cell is not None:
        results["gate"] = {
            "cell": {"satellites": GATE_CELL[0], "constellations": GATE_CELL[1]},
            "batched_dlg_per_fix_ns_best": gate_cell["batched"]["DLG"][
                "per_fix_ns"
            ]["best"],
        }

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--epochs",
        type=int,
        default=256,
        help="stream length per (n, K) cell (default 256)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed passes per measurement"
    )
    parser.add_argument(
        "--output", default="BENCH_constellation.json", help="JSON results path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer timed passes on the standard per-cell "
        "stream (stream length is kept so per-fix numbers stay comparable "
        "with the committed full-run baseline)",
    )
    parser.add_argument(
        "--perf-baseline",
        default=None,
        help="path to a committed BENCH_engine.json; fail if the K=1 "
        "batched DLG per-fix time regresses past --max-perf-regression "
        "vs its batched DLG number",
    )
    parser.add_argument(
        "--max-perf-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown of K=1 batched DLG best per-fix "
        "ns vs --perf-baseline before failing (default 0.25)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.repeats = 2

    results = run(args.epochs, args.repeats, args.output)

    # The scalar path solves each epoch's whitened system on its own;
    # the batched path goes through stacked normal equations.  Near the
    # multi admissibility floor (n = 3 + 2K + 1) the difference system
    # is ill-conditioned enough that the two orderings disagree by a
    # micrometer or so — 1e-5 m still catches any real divergence while
    # tolerating that floating-point jitter.
    worst = max(
        cell["dlg_batched_vs_scalar_max_disagreement_m"]
        for cell in results["matrix"]
    )
    if worst > 1e-5:
        print(
            f"ERROR: batched DLG disagrees with scalar DLG by {worst:.2e} m",
            file=sys.stderr,
        )
        return 1
    if args.perf_baseline:
        with open(args.perf_baseline) as handle:
            baseline = json.load(handle)
        baseline_best = baseline["batched"]["DLG"]["per_fix_ns"]["best"]
        current_best = results["gate"]["batched_dlg_per_fix_ns_best"]
        regression = current_best / baseline_best - 1.0
        print(
            f"perf gate: K=1 batched DLG {current_best / 1e3:.2f} us/fix vs "
            f"engine baseline {baseline_best / 1e3:.2f} us/fix "
            f"({regression:+.1%}, budget +{args.max_perf_regression * 100.0:.0f}%)"
        )
        if regression > args.max_perf_regression:
            print(
                f"ERROR: K=1 batched DLG per-fix time regressed "
                f"{regression:+.1%} vs {args.perf_baseline}, over the "
                f"{args.max_perf_regression * 100.0:.0f}% budget",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
