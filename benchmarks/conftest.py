"""Shared fixtures for the benchmark suite.

Each bench file regenerates one table or figure of the paper.  Timing
numbers come from pytest-benchmark's own table; the paper-style rate
panels (the figures' actual series) are accumulated in ``REPORTS`` and
printed after the benchmark table by the session-finish hook, where
pytest no longer captures stdout.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.evaluation import ExperimentConfig, StationResult, run_station_experiment
from repro.stations import DatasetConfig, all_stations

#: Paper-style report blocks, printed at session end.
REPORTS: List[str] = []

#: One shared experiment configuration for the figure benches: a
#: sampled 70-minute span per station (the paper used a full 24 h; the
#: statistical structure is identical, see DESIGN.md).
BENCH_EXPERIMENT_CONFIG = ExperimentConfig(
    satellite_counts=(4, 5, 6, 7, 8, 9, 10),
    warmup_epochs=120,
    recalibration_interval=60,
    evaluation_stride=20,
    max_evaluation_epochs=150,
    timing_repeats=3,
    timing_epochs=30,
    dataset=DatasetConfig(duration_seconds=4200.0),
)


def add_report(text: str) -> None:
    """Queue a report block for end-of-session printing (idempotent)."""
    if text not in REPORTS:
        REPORTS.append(text)


@pytest.fixture(scope="session")
def station_results() -> Dict[str, StationResult]:
    """Fig 5.1 + Fig 5.2 sweeps for all four stations (run once)."""
    return {
        station.site_id: run_station_experiment(station, BENCH_EXPERIMENT_CONFIG)
        for station in all_stations()
    }


def pytest_sessionfinish(session, exitstatus):
    if REPORTS:
        print("\n" + "=" * 78)
        print("PAPER REPRODUCTION REPORTS (see EXPERIMENTS.md for paper-vs-measured)")
        print("=" * 78)
        for report in REPORTS:
            print(report)
            print("-" * 78)
