"""File-based workflow: RINEX out, RINEX in, positions out.

The paper's data sets are CORS RINEX downloads.  This example runs the
equivalent offline pipeline end to end:

1. simulate a data set for the KYCP station (threshold clock),
2. export it as RINEX 2.11 observation + navigation files,
3. re-read both files with the independent parsers,
4. reconstruct solver-ready epochs (transmit-time satellite positions
   from the navigation data), and
5. position every epoch through the full receiver pipeline.

Run with::

    python examples/rinex_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DatasetConfig, GpsReceiver, ObservationDataset, get_station
from repro.rinex import (
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    reconstruct_epochs,
    write_navigation_file,
    write_observation_file,
)


def main() -> None:
    station = get_station("KYCP")
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=180.0))
    epochs = dataset.realize()

    with tempfile.TemporaryDirectory() as tmp:
        obs_path = Path(tmp) / "kycp.obs"
        nav_path = Path(tmp) / "kycp.nav"

        header = ObservationHeader(
            marker_name=station.site_id,
            approx_position=station.ecef,
            interval=dataset.config.interval_seconds,
        )
        n_obs = write_observation_file(obs_path, header, epochs)
        n_nav = write_navigation_file(nav_path, dataset.constellation.ephemerides())
        print(f"wrote {n_obs} epochs ({obs_path.stat().st_size} bytes) and "
              f"{n_nav} ephemerides ({nav_path.stat().st_size} bytes)")

        observation_data = read_observation_file(obs_path)
        ephemerides = read_navigation_file(nav_path)
        rebuilt = reconstruct_epochs(observation_data, ephemerides)
        print(f"reconstructed {len(rebuilt)} solver-ready epochs from files")

        receiver = GpsReceiver(algorithm="dlg", clock_mode="threshold",
                               warmup_epochs=30)
        errors = [
            receiver.process(epoch).distance_to(station.position)
            for epoch in rebuilt
        ]
        print(f"mean error through the file round-trip: {np.mean(errors):.2f} m")
        print(f"pipeline stats: {receiver.stats}")


if __name__ == "__main__":
    main()
