"""Quickstart: position a station with all three algorithms.

Generates five minutes of simulated observations for the SRZN station
(Table 5.1 row 1), solves every epoch with the classic Newton-Raphson
method and the paper's DLO/DLG closed-form methods, and prints the
error statistics side by side.  A final section goes beyond the
paper's GPS-only model: a two-constellation scene solved with one
clock bias per system.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    DatasetConfig,
    DLGSolver,
    DLOSolver,
    LinearClockBiasPredictor,
    NewtonRaphsonSolver,
    ObservationDataset,
    get_station,
)
from repro.api import SolverConfig, build_scene, solve


def main() -> None:
    station = get_station("SRZN")
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=300.0))
    print(f"Station {station.site_id} at ECEF {station.ecef}")
    print(f"Generated {dataset.epoch_count} epochs, "
          f"{dataset.epoch_at(0).satellite_count} satellites visible at start\n")

    # Bootstrap the clock-bias predictor from NR over the first minute
    # (Section 5.2.2 of the paper: the NR-derived bias stands in for an
    # external time reference).
    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=60)
    epochs = dataset.realize()
    for epoch in epochs[:60]:
        fix = nr.solve(epoch)
        predictor.observe(epoch.time, fix.clock_bias_meters)

    solvers = [nr, DLOSolver(predictor), DLGSolver(predictor)]
    print(f"{'algorithm':<10} {'mean err (m)':>12} {'max err (m)':>12} {'iterations':>11}")
    for solver in solvers:
        errors, iterations = [], []
        for epoch in epochs[60:]:
            fix = solver.solve(epoch)
            errors.append(fix.distance_to(station.position))
            iterations.append(fix.iterations)
        print(
            f"{solver.name:<10} {np.mean(errors):12.2f} {np.max(errors):12.2f} "
            f"{np.mean(iterations):11.1f}"
        )

    print("\nDLO/DLG match NR to within a few tens of percent while doing")
    print("a single linear solve instead of ~6 Newton iterations.")

    # Beyond the paper: two constellations, one clock bias per system.
    # build_scene is the deterministic scene factory — a mapping of
    # system -> satellite count gives a tagged epoch, and the
    # per-constellation config estimates every bias from scratch.
    epoch = build_scene(
        {"G": 6, "R": 5},
        clock_bias_meters={"G": 120.0, "R": -45.0},
        seed=7,
        noise_sigma=0.5,
    )
    fix = solve(epoch, SolverConfig(
        algorithm="dlg", constellations="per_constellation",
    ))
    truth = epoch.truth.receiver_position
    print(f"\nTwo-constellation scene (6 GPS + 5 GLONASS, 0.5 m noise):")
    print(f"  position error {fix.distance_to(truth):.2f} m")
    biases = ", ".join(
        f"{system}={bias:+.1f} m" for system, bias in fix.clock_biases
    )
    print(f"  recovered clock biases: {biases}  (truth G=+120.0, R=-45.0)")


if __name__ == "__main__":
    main()
