"""DGPS workflow: reference-station corrections for a nearby rover.

Section 3.3 of the paper notes that when "satellite dependent errors
can be compensated" — e.g. via Differential GPS — four satellites
suffice and the error model collapses to the clock-only case.  This
example builds that setup:

* the SRZN station acts as the DGPS reference (surveyed position),
* a rover sits 5 km away, applying *no* atmospheric models of its own,
* each second, the reference broadcasts per-satellite corrections and
  the rover differences them out before solving with DLG.

Run with::

    python examples/dgps_rover.py
"""

import numpy as np

from repro import (
    DatasetConfig,
    DgpsReferenceStation,
    DLGSolver,
    LinearClockBiasPredictor,
    NewtonRaphsonSolver,
    ObservationDataset,
    SteeringClock,
    apply_corrections,
    get_station,
)
from repro.signals import MeasurementCorrector, PseudorangeNoiseModel, PseudorangeSimulator


def main() -> None:
    station = get_station("SRZN")
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=120.0))
    rover_position = station.position + np.array([3000.0, 2000.0, 3000.0])
    rover_clock = SteeringClock(
        epoch=dataset.config.start_time, offset_seconds=8e-8, drift=3e-10
    )

    # The rover is a low-cost receiver: no atmospheric models at all.
    truth = dataset._simulator
    rover_simulator = PseudorangeSimulator(
        dataset.constellation,
        rover_clock,
        ionosphere=truth._ionosphere,
        troposphere=truth._troposphere,
        noise=PseudorangeNoiseModel(sigma_meters=0.5),
        elevation_mask=dataset.config.elevation_mask,
    )
    no_atmo = MeasurementCorrector(
        dataset.constellation, ionosphere=None, troposphere=None
    )
    reference = DgpsReferenceStation(station.site_id, station.position)

    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=30)
    dlg = DLGSolver(predictor)
    rng = np.random.default_rng(11)

    raw_errors, dgps_errors = [], []
    for index in range(dataset.epoch_count):
        time = dataset.config.start_time + float(index)

        # Reference side: its own uncorrected epoch -> corrections.
        reference_epoch = no_atmo.correct_epoch(
            truth.simulate_epoch(
                station.position, time, np.random.default_rng([21, index])
            ),
            station.position,
            time,
        )
        corrections = reference.compute_corrections(reference_epoch)

        # Rover side: apply corrections, then position.
        rover_epoch = no_atmo.correct_epoch(
            rover_simulator.simulate_epoch(rover_position, time, rng),
            rover_position,
            time,
        )
        corrected_epoch = apply_corrections(rover_epoch, corrections)

        raw_fix = nr.solve(rover_epoch)
        raw_errors.append(raw_fix.distance_to(rover_position))

        if predictor.is_ready:
            dgps_fix = dlg.solve(corrected_epoch)
        else:  # NR warm-up trains the (relative) clock predictor
            dgps_fix = nr.solve(corrected_epoch)
            predictor.observe(corrected_epoch.time, dgps_fix.clock_bias_meters)
        dgps_errors.append(dgps_fix.distance_to(rover_position))

    print(f"rover without corrections (NR):   mean error {np.mean(raw_errors):6.2f} m")
    print(f"rover with DGPS + DLG:            mean error {np.mean(dgps_errors):6.2f} m")
    print("\nDGPS removes the correlated atmospheric error entirely, so even a")
    print("receiver with no atmosphere models — solving with the paper's fast")
    print("closed-form DLG — beats the uncorrected iterative solution.")


if __name__ == "__main__":
    main()
