"""Mission planning: when should the survey run?

Before a static survey session, operators check satellite coverage:
pass times, satellite counts, and DOP over the planned window.  This
example plans a six-hour session at the FAI1 station (Fairbanks —
high-latitude geometry) using the pass planner, then prints the sky at
the best and worst DOP instants.

Run with::

    python examples/mission_planning.py
"""

import math

import numpy as np

from repro import Constellation, GpsTime, find_passes, get_station
from repro.core import compute_dop
from repro.errors import GeometryError
from repro.evaluation import render_skyplot
from repro.geodesy import elevation_azimuth


def main() -> None:
    start = GpsTime(week=1540, seconds_of_week=0.0)
    constellation = Constellation.nominal(start, rng=np.random.default_rng(20))
    station = get_station("FAI1")
    window_hours = 6.0

    passes = find_passes(
        constellation,
        station.position,
        start,
        duration_seconds=window_hours * 3600.0,
    )
    print(f"{len(passes)} satellite passes over {station.site_id} "
          f"in the next {window_hours:.0f} h:")
    print(f"{'PRN':>4} {'rise (+s)':>10} {'set (+s)':>10} {'max el':>7}")
    for p in passes[:12]:
        rise = f"{p.rise - start:10.0f}" if p.rise else "   (start)"
        set_ = f"{p.set_ - start:10.0f}" if p.set_ else "     (end)"
        print(f"{p.prn:>4} {rise} {set_} {math.degrees(p.max_elevation):6.1f}°")
    if len(passes) > 12:
        print(f"  ... and {len(passes) - 12} more")

    # GDOP over the window, hourly.
    print(f"\n{'t (+h)':>7} {'sats':>5} {'GDOP':>6}")
    dops = []
    for hour in range(int(window_hours) + 1):
        when = start + hour * 3600.0
        visible = constellation.visible_from(station.position, when)
        positions = np.stack([v.position for v in visible])
        try:
            dop = compute_dop(positions, station.position)
            dops.append((dop.gdop, when, visible))
            print(f"{hour:7d} {len(visible):5d} {dop.gdop:6.2f}")
        except GeometryError:
            print(f"{hour:7d} {len(visible):5d}   (degenerate)")

    dops.sort(key=lambda item: item[0])
    best_gdop, best_time, best_visible = dops[0]
    print(f"\nbest geometry at t+{(best_time - start)/3600.0:.0f}h "
          f"(GDOP {best_gdop:.2f}):")
    marks = [
        (v.prn, *elevation_azimuth(v.position, station.position))
        for v in best_visible
    ]
    print(render_skyplot(marks, radius=9))


if __name__ == "__main__":
    main()
