"""High-rate replay of a station dataset through the throughput engine.

The paper's headline is speed: DLO under 20% and DLG around 50% of
NR's per-fix time.  This example pushes that to service scale on a
simulated SRZN stream: the same epochs are positioned four ways —

1. epoch-at-a-time through ``GpsReceiver`` (the latency path),
2. the whole stream through ``PositioningEngine`` with batched DLG
   (bucketed, Sherman-Morrison-whitened, fully vectorized),
3. batched NR for the baseline at the same scale,
4. chunked parallel replay of the full receiver pipeline.

and the fixes/second of each route are printed side by side.

Run with::

    PYTHONPATH=src python examples/high_rate_replay.py
"""

import numpy as np

from repro import (
    DatasetConfig,
    GpsReceiver,
    ObservationDataset,
    ParallelReplay,
    PositioningEngine,
    get_station,
)
from repro.evaluation import time_callable

DURATION_SECONDS = 900.0
RECEIVER_KWARGS = {"algorithm": "dlg", "clock_mode": "steering", "warmup_epochs": 30}


def main() -> None:
    station = get_station("SRZN")
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=DURATION_SECONDS))
    epochs = list(dataset.epochs())
    counts = sorted({epoch.satellite_count for epoch in epochs})
    print(f"{station.site_id}: {len(epochs)} epochs, satellite counts {counts}\n")

    # Route 1: the serial receiver pipeline (fresh receiver per pass).
    serial = time_callable(
        lambda: GpsReceiver(**RECEIVER_KWARGS).process_many(epochs),
        items=len(epochs),
        repeats=2,
    )

    # Routes 2+3: one vectorized call for the whole mixed stream.  The
    # simulated pseudoranges still contain the receiver clock bias, so
    # feed the engine the per-epoch truth biases — the role a warmed-up
    # clock predictor plays in the receiver pipeline.
    biases = np.array([epoch.truth.clock_bias_meters for epoch in epochs])
    engine_dlg = PositioningEngine(algorithm="dlg")
    engine_nr = PositioningEngine(algorithm="nr")
    batched_dlg = time_callable(
        lambda: engine_dlg.solve_stream(epochs, biases=biases),
        items=len(epochs),
        repeats=2,
    )
    batched_nr = time_callable(
        lambda: engine_nr.solve_stream(epochs), items=len(epochs), repeats=2
    )

    # Route 4: chunked multi-core replay of the full pipeline.
    replay = ParallelReplay(RECEIVER_KWARGS, workers=4, backend="thread")
    parallel = time_callable(lambda: replay.replay(epochs), items=len(epochs), repeats=2)

    print(f"{'route':40s} {'us/fix':>10s} {'fixes/s':>12s}")
    for label, stats in (
        ("GpsReceiver, serial epoch loop", serial),
        ("PositioningEngine, batched DLG", batched_dlg),
        ("PositioningEngine, batched NR", batched_nr),
        ("ParallelReplay, 4 thread workers", parallel),
    ):
        print(
            f"{label:40s} {stats.best_ns / 1e3:10.1f} {stats.items_per_second:12.0f}"
        )

    result = engine_dlg.solve_stream(epochs, biases=biases)
    truth = np.stack([epoch.truth.receiver_position for epoch in epochs])
    errors = np.linalg.norm(result.positions - truth, axis=1)
    print(
        f"\nbatched DLG accuracy: mean {errors.mean():.2f} m, "
        f"p95 {np.percentile(errors, 95):.2f} m over {len(epochs)} fixes"
    )
    print("bucket composition:", result.bucket_sizes)


if __name__ == "__main__":
    main()
