"""Full kinematic stack: airliner tracking with the paper's solvers.

Composes the library end to end on the paper's motivating workload —
a fast-moving receiver that needs every fix quickly:

* a great-circle airliner leg at 250 m/s and 10 km altitude,
* per-epoch RAIM integrity checks (affordable precisely because DLG
  is cheap),
* the DLG closed-form solver with NR-bootstrapped clock prediction,
* an alpha-beta tracker smoothing the fix stream,
* a mid-flight satellite failure, detected and excluded by RAIM.

Run with::

    python examples/flight_tracking.py
"""

import math

import numpy as np

from repro import (
    Constellation,
    DLGSolver,
    GpsTime,
    LinearClockBiasPredictor,
    NewtonRaphsonSolver,
    RaimMonitor,
    VelocitySolver,
)
from repro.motion import AlphaBetaFilter, GreatCircleTrajectory, KinematicScenario
from repro.observations import SatelliteObservation


def main() -> None:
    start = GpsTime(week=1540, seconds_of_week=0.0)
    constellation = Constellation.nominal(start, rng=np.random.default_rng(4))
    trajectory = GreatCircleTrajectory(
        start_latitude=math.radians(47.0),
        start_longitude=math.radians(8.0),
        altitude_m=10_000.0,
        heading=math.radians(255.0),
        speed_mps=250.0,
        epoch=start,
    )
    scenario = KinematicScenario(
        trajectory, constellation, start, duration_seconds=300.0, seed=12,
        track_doppler=True,
    )

    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=30)
    dlg = DLGSolver(predictor)
    # DLG reports whitened residuals, so it gates like NR would.
    raim = RaimMonitor(solver=dlg, sigma_meters=4.0)
    tracker = AlphaBetaFilter(alpha=0.4, beta=0.08)

    velocity_solver = VelocitySolver()
    fault_epoch, fault_prn = 150, None
    raw_errors, smoothed_errors, speeds, exclusions = [], [], [], 0

    for index, epoch in enumerate(scenario.epochs()):
        # Inject a satellite fault for 30 s mid-flight.
        if fault_epoch <= index < fault_epoch + 30:
            observations = list(epoch.observations)
            victim = observations[1]
            fault_prn = victim.prn
            observations[1] = SatelliteObservation(
                prn=victim.prn,
                position=victim.position,
                pseudorange=victim.pseudorange + 400.0,
                elevation=victim.elevation,
                azimuth=victim.azimuth,
            )
            epoch = epoch.with_observations(observations)

        truth = trajectory.position_at(epoch.time)

        if not predictor.is_ready:
            fix = nr.solve(epoch)
            predictor.observe(epoch.time, fix.clock_bias_meters)
        else:
            if index % 30 == 0:  # periodic NR clock recalibration
                predictor.observe(epoch.time, nr.solve(epoch).clock_bias_meters)
            result = raim.check(epoch)
            fix = result.fix
            if result.excluded_prn is not None:
                exclusions += 1

        smoothed = tracker.update(epoch.time, fix.position)
        raw_errors.append(np.linalg.norm(fix.position - truth))
        smoothed_errors.append(np.linalg.norm(smoothed - truth))
        speeds.append(velocity_solver.solve(epoch, fix.position).speed)

    raw_errors = np.array(raw_errors)
    smoothed_errors = np.array(smoothed_errors)
    window = slice(60, None)
    print(f"epochs flown: {len(raw_errors)} at 250 m/s "
          f"({250.0 * len(raw_errors) / 1000.0:.0f} km leg)")
    print(f"mean fix error (DLG):         {np.mean(raw_errors[window]):6.2f} m")
    print(f"mean tracked error (a-b):     {np.mean(smoothed_errors[window]):6.2f} m")
    print(f"mean Doppler speed estimate:  {np.mean(speeds[60:]):6.1f} m/s "
          "(truth: 250.0)")
    print(f"satellite fault on PRN {fault_prn} for 30 s: "
          f"RAIM excluded it on {exclusions} epochs")
    fault_window = slice(fault_epoch, fault_epoch + 30)
    print(f"mean error during the fault:  {np.mean(raw_errors[fault_window]):6.2f} m "
          "(a 400 m range fault, contained)")


if __name__ == "__main__":
    main()
