"""The accuracy ladder: stacking the library's layers on one data set.

Starting from the paper's baseline (snapshot NR on raw single-frequency
pseudoranges), each rung adds one production layer and reports the
error statistics:

1. NR on raw L1 epochs (the paper's baseline),
2. DLG with clock prediction (the paper's contribution — same accuracy
   class, ~3x faster),
3. DLG on Hatch-smoothed epochs (carrier smoothing kills noise and
   multipath),
4. NR on ionosphere-free epochs (dual frequency kills the systematic
   iono residual),
5. the sequential EKF (state carried across epochs).

The scenario is deliberately harsh: strong ionosphere residual and
3 m specular multipath.

Run with::

    python examples/precision_ladder.py
"""

import numpy as np

from repro import (
    DatasetConfig,
    DLGSolver,
    HatchFilter,
    LinearClockBiasPredictor,
    NavigationEkf,
    NewtonRaphsonSolver,
    ObservationDataset,
    get_station,
    ionosphere_free_epoch,
)
from repro.evaluation import ErrorStatistics, enu_error


def main() -> None:
    station = get_station("SRZN")
    dataset = ObservationDataset(
        station,
        DatasetConfig(
            duration_seconds=600.0,
            track_carrier=True,
            dual_frequency=True,
            ionosphere_scale=1.5,
            multipath_amplitude_meters=3.0,
        ),
    )

    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=60)
    dlg = DLGSolver(predictor)
    hatch = HatchFilter(window=100)
    ekf = NavigationEkf(position_process_noise=0.05)

    rungs = {name: [] for name in (
        "1. NR raw (paper baseline)",
        "2. DLG + clock prediction",
        "3. DLG + Hatch smoothing",
        "4. NR + ionosphere-free",
        "5. EKF sequential",
    )}

    for index in range(dataset.epoch_count):
        epoch = dataset.epoch_at(index)
        smoothed = hatch.smooth_epoch(epoch)
        ekf_fix = ekf.process(epoch)

        if index < 60:  # NR warm-up trains the clock predictor
            predictor.observe(epoch.time, nr.solve(epoch).clock_bias_meters)
            continue
        if index % 60 == 0:  # periodic recalibration
            predictor.observe(epoch.time, nr.solve(epoch).clock_bias_meters)

        truth = station.position
        rungs["1. NR raw (paper baseline)"].append(
            enu_error(nr.solve(epoch).position, truth)
        )
        rungs["2. DLG + clock prediction"].append(
            enu_error(dlg.solve(epoch).position, truth)
        )
        rungs["3. DLG + Hatch smoothing"].append(
            enu_error(dlg.solve(smoothed).position, truth)
        )
        rungs["4. NR + ionosphere-free"].append(
            enu_error(nr.solve(ionosphere_free_epoch(epoch)).position, truth)
        )
        rungs["5. EKF sequential"].append(enu_error(ekf_fix.position, truth))

    print(f"{'configuration':<30} {'rms3d':>7} {'cep95':>7} {'meanV':>7}  (m)")
    for name, errors in rungs.items():
        stats = ErrorStatistics.from_errors(errors)
        print(
            f"{name:<30} {stats.rms_3d:7.2f} {stats.cep95:7.2f} "
            f"{stats.mean_vertical_signed:7.2f}"
        )
    print("\nEach layer attacks a different error: prediction removes the")
    print("clock, smoothing the noise+multipath, dual-frequency the")
    print("systematic ionosphere, and the EKF averages what remains.")


if __name__ == "__main__":
    main()
