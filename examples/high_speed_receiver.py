"""The paper's motivating scenario: positioning a fast-moving object.

Section 1 motivates the closed-form algorithms with "the object to be
positioned may move at a high speed", where per-request computation
time budgets are tight.  This example puts a receiver on a 900 km/h
trajectory (an airliner), generates pseudoranges along the path, and
compares NR vs DLG on both accuracy *and* the per-fix latency that
determines how stale each fix is at speed.

Run with::

    python examples/high_speed_receiver.py
"""

import time

import numpy as np

from repro import (
    Constellation,
    DLGSolver,
    GpsTime,
    LinearClockBiasPredictor,
    NewtonRaphsonSolver,
    SteeringClock,
)
from repro.geodesy import ecef_to_enu_matrix, ecef_to_geodetic, geodetic_to_ecef
from repro.signals import MeasurementCorrector, PseudorangeNoiseModel, PseudorangeSimulator


def make_trajectory(start_time: GpsTime, seconds: int) -> list:
    """An eastbound great-circle-ish path at 250 m/s, 10 km altitude."""
    latitude, longitude, height = np.radians(40.0), np.radians(-105.0), 10_000.0
    positions = []
    for t in range(seconds):
        # 250 m/s east: convert to a longitude rate at this latitude.
        lon = longitude + (250.0 * t) / (6.371e6 * np.cos(latitude))
        positions.append((start_time + float(t), geodetic_to_ecef(latitude, lon, height)))
    return positions


def main() -> None:
    start = GpsTime(week=1540, seconds_of_week=0.0)
    constellation = Constellation.nominal(start, rng=np.random.default_rng(7))
    clock = SteeringClock(epoch=start, offset_seconds=4e-8, drift=1.5e-10)
    simulator = PseudorangeSimulator(
        constellation, clock, noise=PseudorangeNoiseModel(sigma_meters=0.8)
    )
    corrector = MeasurementCorrector(constellation)
    rng = np.random.default_rng(42)

    trajectory = make_trajectory(start, 120)

    # Warm up the clock predictor with NR on the first 30 fixes.
    nr = NewtonRaphsonSolver()
    predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=30)
    epochs = []
    for when, truth in trajectory:
        raw = simulator.simulate_epoch(truth, when, rng)
        epochs.append((truth, corrector.correct_epoch(raw, truth, when)))
    for truth, epoch in epochs[:30]:
        predictor.observe(epoch.time, nr.solve(epoch).clock_bias_meters)

    dlg = DLGSolver(predictor)
    print(f"{'solver':<6} {'mean err (m)':>12} {'mean fix latency (us)':>22} "
          f"{'meters flown per fix':>21}")
    for solver in (nr, dlg):
        errors, latencies = [], []
        for truth, epoch in epochs[30:]:
            t0 = time.perf_counter_ns()
            fix = solver.solve(epoch)
            latencies.append(time.perf_counter_ns() - t0)
            errors.append(np.linalg.norm(fix.position - truth))
        mean_latency_us = np.mean(latencies) / 1000.0
        # How far a 250 m/s vehicle travels while one fix computes.
        stale_m = 250.0 * mean_latency_us * 1e-6
        print(f"{solver.name:<6} {np.mean(errors):12.2f} {mean_latency_us:22.1f} "
              f"{stale_m:21.6f}")

    print("\nAt speed, the closed-form solver turns fixes around several times")
    print("faster, shrinking the position staleness per request accordingly.")


if __name__ == "__main__":
    main()
