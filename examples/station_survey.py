"""Reproduce the paper's evaluation in miniature: all four stations.

Runs the Fig. 5.1/5.2 experiment over the Table 5.1 stations with a
reduced span (a sampled hour instead of the paper's 24 hours) and
prints the execution-time and accuracy rate panels.  This is exactly
what ``benchmarks/bench_fig_5_1.py`` and ``bench_fig_5_2.py`` do, as a
friendly script.

Run with::

    python examples/station_survey.py
"""

from repro import DatasetConfig, all_stations
from repro.evaluation import (
    ExperimentConfig,
    format_station_report,
    run_station_experiment,
)


def main() -> None:
    config = ExperimentConfig(
        dataset=DatasetConfig(duration_seconds=3600.0),
        max_evaluation_epochs=120,
    )
    for station in all_stations():
        result = run_station_experiment(station, config)
        print(format_station_report(result))
        print()

    print("Compare with the paper: DLO's time rate sits well below NR")
    print("(the paper reports <20%); DLG costs more than DLO but stays far")
    print("below NR; DLG's accuracy rate is nearly flat in the satellite")
    print("count while DLO's degrades as satellites are added (Theorem 4.1).")


if __name__ == "__main__":
    main()
