"""Unit + property tests for repro.utils.stats."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.utils.stats import SummaryStats, percentile, summarize

finite_samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=50
)


class TestSummarize:
    def test_single_value(self):
        stats = summarize([42.0])
        assert stats.count == 1
        assert stats.mean == 42.0
        assert stats.std == 0.0
        assert stats.minimum == stats.maximum == 42.0

    def test_known_sample(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p50 == pytest.approx(2.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="empty"):
            summarize([])

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="finite"):
            summarize([1.0, float("nan")])

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "n=2" in text and "mean=" in text

    @given(finite_samples)
    def test_ordering_invariants(self, sample):
        stats = summarize(sample)
        span = max(abs(stats.minimum), abs(stats.maximum), 1.0)
        ulp_slack = span * 1e-12  # mean may overshoot the extremes by rounding
        assert stats.minimum <= stats.p50 <= stats.p95 <= stats.maximum
        assert stats.minimum - ulp_slack <= stats.mean <= stats.maximum + ulp_slack
        assert stats.count == len(sample)

    @given(finite_samples)
    def test_invariant_under_permutation(self, sample):
        forward = summarize(sample)
        backward = summarize(list(reversed(sample)))
        # Summation order may differ in the last ulp; everything else
        # is order-independent exactly.
        assert forward.count == backward.count
        assert forward.minimum == backward.minimum
        assert forward.maximum == backward.maximum
        assert forward.mean == pytest.approx(backward.mean, rel=1e-12)
        assert forward.std == pytest.approx(backward.std, rel=1e-9, abs=1e-12)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_extremes(self):
        data = list(range(10))
        assert percentile(data, 0.0) == 0.0
        assert percentile(data, 100.0) == 9.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)


class TestSummaryStatsDataclass:
    def test_frozen(self):
        stats = SummaryStats(1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(AttributeError):
            stats.mean = 1.0
