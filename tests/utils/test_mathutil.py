"""Unit + property tests for repro.utils.mathutil."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.mathutil import safe_norm, unit_vector, wrap_angle


class TestWrapAngle:
    def test_zero(self):
        assert wrap_angle(0.0) == 0.0

    def test_pi_stays_pi(self):
        assert wrap_angle(math.pi) == pytest.approx(math.pi)

    def test_wraps_beyond_pi(self):
        assert wrap_angle(3 * math.pi / 2) == pytest.approx(-math.pi / 2)

    def test_wraps_negative(self):
        assert wrap_angle(-3 * math.pi / 2) == pytest.approx(math.pi / 2)

    def test_many_turns(self):
        assert wrap_angle(100 * math.pi + 0.25) == pytest.approx(0.25)

    @given(st.floats(min_value=-1e6, max_value=1e6))
    def test_result_always_in_interval(self, angle):
        wrapped = wrap_angle(angle)
        assert -math.pi < wrapped <= math.pi

    @given(st.floats(min_value=-1e4, max_value=1e4))
    def test_preserves_angle_modulo_two_pi(self, angle):
        wrapped = wrap_angle(angle)
        # sin/cos must agree with the original angle.
        assert math.sin(wrapped) == pytest.approx(math.sin(angle), abs=1e-9)
        assert math.cos(wrapped) == pytest.approx(math.cos(angle), abs=1e-9)


class TestUnitVector:
    def test_normalizes(self):
        result = unit_vector(np.array([3.0, 0.0, 4.0]))
        np.testing.assert_allclose(result, [0.6, 0.0, 0.8])

    def test_rejects_zero_vector(self):
        with pytest.raises(ZeroDivisionError):
            unit_vector(np.zeros(3))

    @given(
        st.lists(
            st.floats(min_value=-1e8, max_value=1e8), min_size=3, max_size=3
        ).filter(lambda v: any(abs(x) > 1e-6 for x in v))
    )
    def test_unit_norm(self, vector):
        assert np.linalg.norm(unit_vector(np.array(vector))) == pytest.approx(1.0)


class TestSafeNorm:
    def test_matches_numpy(self):
        v = np.array([1.0, 2.0, 2.0])
        assert safe_norm(v) == pytest.approx(3.0)

    def test_returns_python_float(self):
        assert isinstance(safe_norm(np.array([1.0, 0.0])), float)
