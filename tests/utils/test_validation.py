"""Unit tests for repro.utils.validation."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    require_finite_array,
    require_in_range,
    require_positive,
    require_shape,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 2.5) == 2.5

    def test_accepts_int(self):
        assert require_positive("x", 3) == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            require_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_positive("x", -1.0)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            require_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError):
            require_positive("x", math.inf)


class TestRequireInRange:
    def test_accepts_inside(self):
        assert require_in_range("x", 0.5, 0.0, 1.0) == 0.5

    def test_accepts_boundaries(self):
        assert require_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert require_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            require_in_range("x", 1.01, 0.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            require_in_range("x", math.nan, 0.0, 1.0)


class TestRequireFiniteArray:
    def test_accepts_list(self):
        result = require_finite_array("v", [1, 2, 3])
        assert result.dtype == float
        np.testing.assert_array_equal(result, [1.0, 2.0, 3.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="empty"):
            require_finite_array("v", [])

    def test_rejects_nan_entry(self):
        with pytest.raises(ConfigurationError, match="finite"):
            require_finite_array("v", [1.0, math.nan])


class TestRequireShape:
    def test_exact_shape(self):
        result = require_shape("v", [1.0, 2.0, 3.0], (3,))
        assert result.shape == (3,)

    def test_wildcard_dimension(self):
        result = require_shape("m", [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], (-1, 2))
        assert result.shape == (3, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ConfigurationError, match="dimensions"):
            require_shape("v", [1.0, 2.0], (2, 1))

    def test_rejects_wrong_size(self):
        with pytest.raises(ConfigurationError, match="shape"):
            require_shape("v", [1.0, 2.0], (3,))

    def test_error_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="receiver_ecef"):
            require_shape("receiver_ecef", [1.0], (3,))
