"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.observations import EpochTruth, ObservationEpoch, SatelliteObservation

# Deterministic property testing: the suite is a reproduction artifact,
# so every run must exercise the same examples (and never trip the
# wall-clock deadline on a loaded CI box).  Local runs keep the default
# example budget for fast iteration; CI (detected via the conventional
# CI env var) spends more examples per property.
settings.register_profile("repro", derandomize=True, deadline=None)
settings.register_profile(
    "repro-ci", derandomize=True, deadline=None, max_examples=250
)
settings.load_profile("repro-ci" if os.environ.get("CI") else "repro")
from repro.stations import DatasetConfig, ObservationDataset, get_station
from repro.timebase import GpsTime


@pytest.fixture
def gps_t0() -> GpsTime:
    """A fixed reference GPS time used across tests."""
    return GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture
def make_epoch(gps_t0):
    """Factory for synthetic epochs with exactly known truth.

    Builds ``count`` satellites on a reproducible sky around a truth
    receiver position, with pseudoranges
    ``rho = ||s - x|| + bias + noise`` — noise-free by default, so
    solvers can be checked for exact recovery.
    """

    def factory(
        truth_position=None,
        bias_meters: float = 0.0,
        count: int = 8,
        noise_sigma: float = 0.0,
        seed: int = 0,
        time: GpsTime = None,
    ) -> ObservationEpoch:
        rng = np.random.default_rng(seed)
        if truth_position is None:
            truth_position = np.array([3623420.0, -5214015.0, 602359.0])
        truth_position = np.asarray(truth_position, dtype=float)
        observations = []
        for prn in range(1, count + 1):
            # Spread satellites over the upper hemisphere around truth.
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            # Bias the direction away from the earth center so the
            # satellite is plausibly overhead.
            direction += truth_position / np.linalg.norm(truth_position)
            direction /= np.linalg.norm(direction)
            # Ranges must differ between satellites (as they do in the
            # sky): several tests rely on a common clock bias NOT
            # cancelling out of the differenced equations.
            radius = rng.uniform(2.0e7, 2.6e7)
            position = truth_position + direction * radius
            pseudorange = float(np.linalg.norm(position - truth_position)) + bias_meters
            if noise_sigma:
                pseudorange += float(rng.normal(0.0, noise_sigma))
            observations.append(
                SatelliteObservation(prn=prn, position=position, pseudorange=pseudorange)
            )
        return ObservationEpoch(
            time=time if time is not None else gps_t0,
            observations=tuple(observations),
            truth=EpochTruth(
                receiver_position=truth_position, clock_bias_meters=bias_meters
            ),
        )

    return factory


@pytest.fixture
def make_stream(make_epoch, gps_t0):
    """Factory for constant-bias epoch streams.

    The shared builder behind the batch/pipeline/parallel suites: a
    list of ``make_epoch`` epochs at consecutive seeds with one common
    clock bias.  ``count`` may be a single satellite count or one per
    epoch (mixed-count streams for the bucketing engine);
    ``time_step`` spaces epoch timestamps (seconds) for pipelines that
    care about time ordering.
    """

    def factory(
        epochs: int,
        bias_meters: float = 0.0,
        count=8,
        noise_sigma: float = 0.0,
        start_seed: int = 0,
        time_step: float = None,
    ):
        counts = [count] * epochs if isinstance(count, int) else list(count)
        assert len(counts) == epochs, "one satellite count per epoch"
        return [
            make_epoch(
                bias_meters=bias_meters,
                count=counts[i],
                noise_sigma=noise_sigma,
                seed=start_seed + i,
                time=(gps_t0 + float(i) * time_step) if time_step is not None else None,
            )
            for i in range(epochs)
        ]

    return factory


@pytest.fixture(scope="session")
def srzn_dataset() -> ObservationDataset:
    """A short SRZN (steering clock) data set shared across tests."""
    return ObservationDataset(
        get_station("SRZN"), DatasetConfig(duration_seconds=120.0)
    )


@pytest.fixture(scope="session")
def kycp_dataset() -> ObservationDataset:
    """A short KYCP (threshold clock) data set shared across tests."""
    return ObservationDataset(
        get_station("KYCP"), DatasetConfig(duration_seconds=120.0)
    )
