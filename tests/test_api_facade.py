"""repro.api facade contract tests.

One frozen :class:`~repro.api.SolverConfig` must subsume every solver
constructor: these tests pin the validation rules (contradictory knobs
rejected, inapplicable knobs ignored), the solve paths' agreement with
the underlying solvers, and the deprecation story — old deep
``repro.core.<module>`` imports keep working but warn, while the
``repro.core`` package surface stays warning-free.
"""

import warnings

import numpy as np
import pytest

import repro.api as api
from repro.api import ALGORITHMS, BATCH_ALGORITHMS, SolverConfig, solve, solve_batch
from repro.clocks import LinearClockBiasPredictor
from repro.errors import ConfigurationError


class TestSolverConfigValidation:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="algorithm"):
            SolverConfig(algorithm="kalman")

    def test_algorithm_names_normalized(self):
        assert SolverConfig(algorithm="DLG").algorithm == "dlg"

    def test_both_bias_sources_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            SolverConfig(
                clock_bias_meters=10.0,
                clock_predictor=LinearClockBiasPredictor(),
            )

    def test_non_finite_bias_rejected(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(clock_bias_meters=float("nan"))

    def test_bad_initial_state_rejected(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(initial_state=(1.0, 2.0, 3.0))  # needs 4

    def test_nr_validation_happens_at_construction(self):
        # Delegated to NewtonRaphsonSolver: bogus NR tuning fails the
        # config, not the first solve.
        with pytest.raises(ConfigurationError):
            SolverConfig(algorithm="nr", convergence="psychic")

    def test_nr_knobs_legal_on_every_algorithm(self):
        for algorithm in ALGORITHMS:
            config = SolverConfig(algorithm=algorithm, tolerance_meters=1e-6)
            assert config.tolerance_meters == 1e-6

    def test_frozen_and_hashable(self):
        config = SolverConfig()
        with pytest.raises(Exception):
            config.algorithm = "nr"
        assert len({config, SolverConfig()}) == 1  # value semantics

    def test_nr_fallback_strips_bias_sources(self):
        config = SolverConfig(algorithm="dlg", clock_bias_meters=35.0)
        fallback = config.nr_fallback()
        assert fallback.algorithm == "nr"
        assert fallback.clock_bias_meters is None
        assert fallback.clock_predictor is None
        assert fallback.tolerance_meters == config.tolerance_meters

    def test_nr_fallback_of_nr_is_itself(self):
        config = SolverConfig(algorithm="nr")
        assert config.nr_fallback() is config


class TestSolvePaths:
    def test_default_is_dlg(self, make_epoch):
        epoch = make_epoch()
        fix = solve(epoch)
        assert fix.algorithm.lower() == "dlg"
        assert np.linalg.norm(fix.position - epoch.truth.receiver_position) < 1e-5

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_recovers_truth(self, make_epoch, algorithm):
        epoch = make_epoch()  # zero bias: every path applies
        fix = solve(epoch, algorithm)
        assert np.linalg.norm(fix.position - epoch.truth.receiver_position) < 1e-4

    def test_fixed_bias_config_recovers_biased_epoch(self, make_epoch):
        epoch = make_epoch(bias_meters=35.0)
        fix = solve(epoch, SolverConfig(algorithm="dlg", clock_bias_meters=35.0))
        assert np.linalg.norm(fix.position - epoch.truth.receiver_position) < 1e-5

    def test_invalid_config_type_rejected(self, make_epoch):
        with pytest.raises(ConfigurationError, match="SolverConfig"):
            solve(make_epoch(), config=42)

    def test_repeated_solves_reuse_cached_solver(self, make_epoch):
        config = SolverConfig(algorithm="dlg")
        solve(make_epoch(), config)
        cached_config, cached_solver = api._LAST_BUILT
        assert cached_config is config
        solve(make_epoch(seed=1), config)
        assert api._LAST_BUILT[1] is cached_solver  # same built instance

    def test_string_configs_are_not_cached(self, make_epoch):
        # Identity-keyed cache: transient configs must not pin solvers.
        solve(make_epoch(), "nr")
        cached_config, _ = api._LAST_BUILT
        assert cached_config is None or isinstance(cached_config, SolverConfig)


class TestBatchPaths:
    @pytest.mark.parametrize("algorithm", BATCH_ALGORITHMS)
    def test_batch_agrees_with_scalar(self, make_stream, algorithm):
        epochs = make_stream(5)
        positions = solve_batch(epochs, algorithm)
        assert positions.shape == (5, 3)
        for epoch, row in zip(epochs, positions):
            assert np.linalg.norm(row - epoch.truth.receiver_position) < 1e-4

    def test_bancroft_has_no_batch_path(self, make_stream):
        with pytest.raises(ConfigurationError, match="[Bb]ancroft"):
            solve_batch(make_stream(3), "bancroft")

    def test_explicit_biases_override_config(self, make_stream):
        epochs = make_stream(4, bias_meters=35.0)
        config = SolverConfig(algorithm="dlg", clock_bias_meters=-999.0)
        positions = solve_batch(epochs, config, biases=[35.0] * 4)
        for epoch, row in zip(epochs, positions):
            assert np.linalg.norm(row - epoch.truth.receiver_position) < 1e-5

    def test_wrong_length_biases_rejected(self, make_stream):
        with pytest.raises(ConfigurationError, match="one per epoch"):
            solve_batch(make_stream(3), "dlg", biases=[0.0, 0.0])

    def test_predictor_resolved_per_epoch(self, make_stream):
        epochs = make_stream(3, bias_meters=12.5, time_step=1.0)
        predictor = LinearClockBiasPredictor(warmup_samples=2)
        for epoch in epochs[:2]:
            predictor.observe(epoch.time, 12.5)
        config = SolverConfig(algorithm="dlg", clock_predictor=predictor)
        biases = config.batch_biases(epochs)
        assert biases == pytest.approx([12.5] * 3)


class TestDeprecationShims:
    DEEP_MODULES = [
        ("repro.core.newton_raphson", "NewtonRaphsonSolver"),
        ("repro.core.direct_linear", "DLGSolver"),
        ("repro.core.bancroft", "BancroftSolver"),
        ("repro.core.batch", "BatchDLGSolver"),
    ]

    @pytest.mark.parametrize("module_name,symbol", DEEP_MODULES)
    def test_deep_import_warns_but_works(self, module_name, symbol):
        import importlib

        module = importlib.import_module(module_name)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            value = getattr(module, symbol)
        import repro.solvers

        assert value is getattr(repro.solvers, symbol)

    def test_core_package_surface_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import (  # noqa: F401
                BancroftSolver,
                BatchDLGSolver,
                DLGSolver,
                DLOSolver,
                NewtonRaphsonSolver,
            )

    def test_root_package_surface_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro import DLGSolver, SolverConfig, solve  # noqa: F401


class TestEngineFromConfig:
    def test_engine_built_from_config_matches_facade(self, make_stream):
        from repro.engine import PositioningEngine

        epochs = make_stream(4, bias_meters=35.0)
        config = SolverConfig(algorithm="dlg", clock_bias_meters=35.0)
        engine = PositioningEngine.from_config(config)
        result = engine.solve_stream(epochs, None)
        scalar = config.build_solver()
        for epoch, row in zip(epochs, result.positions):
            assert np.linalg.norm(row - scalar.solve(epoch).position) < 1e-6
