"""Tests for the columnar epoch store and the zero-copy hot path.

Three layers of confidence in the struct-of-arrays refactor:

* **Losslessness** — property tests prove the
  ``ObservationEpoch ⇄ EpochBlock`` round trip is bit-exact for the
  solver contract (positions, pseudoranges, PRNs, times, truth), for
  same-count blocks and for mixed-count streams through
  :func:`~repro.blocks.pack_stream`, and that structurally invalid
  rows are caught the same way the scalar
  :func:`~repro.observations.epoch_integrity_error` guard catches them.
* **Differential pinning** — the columnar ``solve_stream`` is
  bit-identical across its three input forms (epoch list,
  pre-packed stream, raw block) over 50 seeded mixed scenarios, and
  stays within the documented 1.8e-7 m of the scalar DLG solver.
* **Kernel machinery** — the preallocated workspace actually reuses
  its buffers, and the opt-in float32 kernel is fenced by the
  differential audit (falls back to float64, permanently, on a trip).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    BatchDLGSolver,
    BatchFde,
    ConfigurationError,
    DLGSolver,
    EpochBlock,
    GeometryError,
    PositioningEngine,
    pack_stream,
)
from repro.blocks import PackedStream
from repro.estimation import KernelWorkspace
from repro.observations import (
    EpochTruth,
    ObservationEpoch,
    SatelliteObservation,
    epoch_integrity_error,
)
from repro.timebase import GpsTime
from repro.validation.faults import DuplicateSatellite, NonFiniteMeasurement

TRUTH = np.array([3623420.0, -5214015.0, 602359.0])


def _build_epoch(
    count: int,
    seed: int,
    bias: float = 0.0,
    noise_sigma: float = 0.0,
    with_truth: bool = True,
) -> ObservationEpoch:
    """A synthetic epoch mirroring the shared ``make_epoch`` fixture.

    Module-level (not a fixture) so hypothesis properties can call it
    without tripping the function-scoped-fixture health check.
    """
    rng = np.random.default_rng(seed)
    up = TRUTH / np.linalg.norm(TRUTH)
    observations = []
    for prn in range(1, count + 1):
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        direction += up
        direction /= np.linalg.norm(direction)
        position = TRUTH + direction * rng.uniform(2.0e7, 2.6e7)
        pseudorange = float(np.linalg.norm(position - TRUTH)) + bias
        if noise_sigma:
            pseudorange += float(rng.normal(0.0, noise_sigma))
        observations.append(
            SatelliteObservation(prn=prn, position=position, pseudorange=pseudorange)
        )
    return ObservationEpoch(
        time=GpsTime(week=1540, seconds_of_week=float(seed % 604800)),
        observations=tuple(observations),
        truth=(
            EpochTruth(receiver_position=TRUTH, clock_bias_meters=bias)
            if with_truth
            else None
        ),
    )


def _assert_epoch_equal(rebuilt: ObservationEpoch, original: ObservationEpoch):
    """The solver contract round-trips bit-exactly (== on floats)."""
    assert rebuilt.time == original.time
    assert rebuilt.prns == original.prns
    np.testing.assert_array_equal(
        rebuilt.satellite_positions(), original.satellite_positions()
    )
    np.testing.assert_array_equal(rebuilt.pseudoranges(), original.pseudoranges())
    if original.truth is None:
        assert rebuilt.truth is None
    else:
        np.testing.assert_array_equal(
            rebuilt.truth.receiver_position, original.truth.receiver_position
        )
        assert rebuilt.truth.clock_bias_meters == original.truth.clock_bias_meters


class TestBlockRoundTrip:
    @given(
        count=st.integers(min_value=4, max_value=12),
        n=st.integers(min_value=1, max_value=8),
        with_truth=st.booleans(),
    )
    def test_same_count_round_trip_is_bit_exact(self, count, n, with_truth):
        epochs = [
            _build_epoch(count, seed=i, bias=float(i), with_truth=with_truth)
            for i in range(n)
        ]
        block = EpochBlock.from_epochs(epochs)
        assert len(block) == n
        assert block.satellite_count == count
        assert bool(block.has_truth().all()) == with_truth
        rebuilt = block.to_epochs()
        assert len(rebuilt) == n
        for new, old in zip(rebuilt, epochs):
            _assert_epoch_equal(new, old)

    @given(
        counts=st.lists(
            st.integers(min_value=4, max_value=12), min_size=1, max_size=12
        )
    )
    def test_pack_stream_partitions_and_round_trips(self, counts):
        epochs = [
            _build_epoch(c, seed=i, bias=float(i)) for i, c in enumerate(counts)
        ]
        packed = pack_stream(epochs)
        assert packed.unpackable == ()
        assert len(packed) == len(epochs)
        # Buckets are sorted by count and partition the stream indices.
        bucket_counts = [bucket.satellite_count for bucket in packed.buckets]
        assert bucket_counts == sorted(set(counts))
        rebuilt = {}
        for bucket in packed.buckets:
            assert len(bucket) == len(bucket.block)
            for row, index in enumerate(np.asarray(bucket.indices)):
                rebuilt[int(index)] = bucket.block.take([row]).to_epochs()[0]
        assert sorted(rebuilt) == list(range(len(epochs)))
        for index, epoch in enumerate(epochs):
            _assert_epoch_equal(rebuilt[index], epoch)

    def test_from_epochs_rejects_mixed_counts(self):
        with pytest.raises(GeometryError, match="same satellite count"):
            EpochBlock.from_epochs(
                [_build_epoch(7, seed=0), _build_epoch(8, seed=1)]
            )

    def test_from_epochs_rejects_empty(self):
        with pytest.raises(GeometryError, match="at least one"):
            EpochBlock.from_epochs([])

    def test_blocks_are_read_only_values(self):
        block = EpochBlock.from_epochs([_build_epoch(6, seed=0)])
        for array in (block.positions, block.pseudoranges, block.prns):
            with pytest.raises(ValueError):
                array[...] = 0

    def test_from_block_wraps_whole_stream(self):
        block = EpochBlock.from_epochs(
            [_build_epoch(7, seed=i) for i in range(3)]
        )
        packed = PackedStream.from_block(block)
        assert len(packed) == 3
        assert len(packed.buckets) == 1
        assert packed.buckets[0].block is block
        np.testing.assert_array_equal(packed.buckets[0].indices, [0, 1, 2])


class TestValidityScreening:
    FAULTS = (
        NonFiniteMeasurement(),
        NonFiniteMeasurement(target="position"),
        DuplicateSatellite(),
    )

    @given(
        n=st.integers(min_value=1, max_value=8),
        poison=st.integers(min_value=0, max_value=7),
        fault_index=st.integers(min_value=0, max_value=2),
    )
    def test_validity_mask_matches_the_scalar_guard(self, n, poison, fault_index):
        epochs = [_build_epoch(8, seed=i) for i in range(n)]
        poison %= n
        # DuplicateSatellite grows the epoch, so pack by count: the
        # poisoned epoch may land in its own bucket.
        epochs[poison] = self.FAULTS[fault_index].apply(
            epochs[poison], np.random.default_rng(0)
        )
        packed = pack_stream(epochs)
        assert packed.unpackable == ()
        for bucket in packed.buckets:
            mask = bucket.block.validity_mask(min_satellites=1)
            for row, index in enumerate(np.asarray(bucket.indices)):
                scalar_verdict = epoch_integrity_error(
                    epochs[int(index)], min_satellites=1
                )
                assert bool(mask[row]) == (scalar_verdict is None)
                # The row-level explanation matches the scalar wording.
                assert (
                    bucket.block.row_integrity_error(row, min_satellites=1)
                    == scalar_verdict
                )

    def test_duplicate_prn_rows_cannot_rematerialize(self):
        poisoned = DuplicateSatellite().apply(
            _build_epoch(8, seed=3), np.random.default_rng(0)
        )
        block = EpochBlock.from_epochs([poisoned])
        assert not block.validity_mask(min_satellites=1)[0]
        with pytest.raises(ConfigurationError, match="duplicate PRNs"):
            block.to_epochs()

    def test_non_finite_rows_cannot_rematerialize(self):
        poisoned = NonFiniteMeasurement().apply(
            _build_epoch(8, seed=3), np.random.default_rng(0)
        )
        block = EpochBlock.from_epochs([poisoned])
        assert not block.validity_mask(min_satellites=1)[0]
        with pytest.raises(ConfigurationError):
            block.to_epochs()

    def test_undersized_blocks_are_wholly_invalid(self):
        block = EpochBlock.from_epochs([_build_epoch(3, seed=0)])
        assert not block.validity_mask(min_satellites=4).any()
        assert "fewer than 4" in block.row_integrity_error(0, min_satellites=4)

    def test_ragged_epoch_is_unpackable_not_fatal(self):
        epochs = [_build_epoch(8, seed=i) for i in range(3)]
        # Simulate a decoder that bypassed the validating constructors.
        object.__setattr__(epochs[1].observations[2], "position", np.ones(2))
        packed = pack_stream(epochs)
        assert packed.unpackable == (1,)
        assert len(packed) == 3
        assert sum(len(bucket) for bucket in packed.buckets) == 2


class _FixedBias:
    is_ready = True

    def __init__(self, bias: float):
        self._bias = bias

    def observe(self, time, bias_meters):
        pass

    def reanchor(self, time, bias_meters):
        pass

    def predict_bias_meters(self, time):
        return self._bias


class TestColumnarDifferential:
    """The columnar path answers exactly what the object path answers."""

    def test_input_forms_are_bit_identical_over_seeded_scenarios(self):
        engine = PositioningEngine(algorithm="dlg")
        scalar_bound = 0.0
        for scenario in range(50):
            rng = np.random.default_rng(5000 + scenario)
            n = int(rng.integers(2, 24))
            counts = rng.choice([5, 6, 7, 8, 9, 10, 11], size=n)
            bias = float(rng.uniform(-80.0, 80.0))
            epochs = [
                _build_epoch(
                    int(c),
                    seed=scenario * 1000 + i,
                    bias=bias,
                    noise_sigma=1.0,
                )
                for i, c in enumerate(counts)
            ]
            biases = np.full(n, bias)

            from_list = engine.solve_stream(epochs, biases=biases)
            from_packed = engine.solve_stream(pack_stream(epochs), biases=biases)
            np.testing.assert_array_equal(from_packed.positions, from_list.positions)
            np.testing.assert_array_equal(
                from_packed.clock_biases, from_list.clock_biases
            )

            if len(set(counts.tolist())) == 1:
                from_block = engine.solve_stream(
                    EpochBlock.from_epochs(epochs), biases=biases
                )
                np.testing.assert_array_equal(
                    from_block.positions, from_list.positions
                )

            scalar = np.stack(
                [DLGSolver(_FixedBias(bias)).solve(epoch).position for epoch in epochs]
            )
            scalar_bound = max(
                scalar_bound,
                float(np.max(np.linalg.norm(from_list.positions - scalar, axis=1))),
            )
        # The bench gate's batch-vs-scalar bound (1e-6 m); the standard
        # bench stream (7-11 satellites) sits at 1.8e-7 m, these harsher
        # scenarios include 5-satellite epochs with worse conditioning.
        assert scalar_bound <= 1e-6


class TestKernelWorkspace:
    def test_buffers_are_reused_across_solves(self):
        solver = BatchDLGSolver()
        block = EpochBlock.from_epochs([_build_epoch(8, seed=i) for i in range(6)])
        biases = np.zeros(len(block))
        solver.solve_block_full(block, biases)
        allocated = solver.workspace.allocated
        assert allocated > 0
        assert solver.workspace.resident_bytes > 0
        solver.solve_block_full(block, biases)
        assert solver.workspace.allocated == allocated
        assert solver.workspace.reused >= allocated

    def test_buffers_are_keyed_by_name_shape_dtype(self):
        workspace = KernelWorkspace()
        first = workspace.buffer("a", (4, 3))
        assert workspace.buffer("a", (4, 3)) is first
        assert workspace.buffer("a", (5, 3)) is not first
        assert workspace.buffer("b", (4, 3)) is not first
        assert workspace.buffer("a", (4, 3), dtype=np.float32) is not first
        assert workspace.reused == 1
        assert workspace.allocated == 4
        workspace.clear()
        assert workspace.resident_bytes == 0


class TestFloat32Gate:
    def _block(self, n=48):
        epochs = [
            _build_epoch(8, seed=i, bias=30.0, noise_sigma=1.0) for i in range(n)
        ]
        return EpochBlock.from_epochs(epochs), np.full(n, 30.0)

    def test_refined_float32_stays_well_inside_the_audit_bound(self):
        block, biases = self._block()
        reference, _, _ = BatchDLGSolver().solve_block_full(block, biases)
        f32 = BatchDLGSolver(dtype="float32", audit_every=10**9)
        solutions, _, _ = f32.solve_block_full(block, biases)
        assert f32.float32_active
        worst = float(np.max(np.linalg.norm(solutions - reference, axis=1)))
        # The documented accuracy gate: iterative refinement recovers
        # float64-grade solutions; 1.0 m is the audit's trip wire.
        assert worst < 1e-2

    def test_audit_trip_falls_back_to_float64_permanently(self):
        block, biases = self._block()
        solver = BatchDLGSolver(
            dtype="float32", audit_every=1, audit_tolerance_meters=1e-300
        )
        reference, _, _ = BatchDLGSolver().solve_block_full(block, biases)
        audited, _, _ = solver.solve_block_full(block, biases)
        assert not solver.float32_active
        # A tripped audit answers with the float64 reference it computed.
        np.testing.assert_array_equal(audited, reference)
        again, _, _ = solver.solve_block_full(block, biases)
        np.testing.assert_array_equal(again, reference)

    def test_engine_precision_reflects_the_fallback(self):
        engine = PositioningEngine(algorithm="dlg", precision="float32")
        assert engine.precision == "float32"

    def test_float32_requires_the_dlg_kernel(self):
        with pytest.raises(ConfigurationError, match="only supported for the dlg"):
            PositioningEngine(algorithm="dlo", precision="float32")

    def test_float32_cannot_arm_fde(self):
        from repro.integrity import FdeConfig

        with pytest.raises(ConfigurationError, match="cannot be combined with FDE"):
            PositioningEngine(
                algorithm="dlg", precision="float32", fde_config=FdeConfig()
            )

    def test_bad_precision_rejected(self):
        with pytest.raises(ConfigurationError, match="float64.*float32"):
            PositioningEngine(algorithm="dlg", precision="float16")


class TestFdeBlockPath:
    def _spiked_epochs(self, n=12, spike_at=4):
        epochs = [
            _build_epoch(8, seed=i, bias=21.0, noise_sigma=1.0) for i in range(n)
        ]
        spiked = epochs[spike_at]
        observations = list(spiked.observations)
        bad = observations[2]
        observations[2] = SatelliteObservation(
            prn=bad.prn, position=bad.position, pseudorange=bad.pseudorange + 80.0
        )
        epochs[spike_at] = spiked.with_observations(observations)
        return epochs

    def test_block_input_matches_epoch_list_input(self):
        epochs = self._spiked_epochs()
        biases = np.full(len(epochs), 21.0)
        fde = BatchFde()
        list_solutions, list_record = fde.solve_batch(epochs, biases)
        block_solutions, block_record = fde.solve_batch(
            EpochBlock.from_epochs(epochs), biases
        )
        np.testing.assert_array_equal(block_solutions, list_solutions)
        np.testing.assert_array_equal(block_record.statuses, list_record.statuses)
        np.testing.assert_array_equal(
            block_record.excluded_prns, list_record.excluded_prns
        )
        np.testing.assert_array_equal(
            block_record.statistics, list_record.statistics
        )

    def test_exclusion_names_the_spiked_prn_from_the_block(self):
        epochs = self._spiked_epochs()
        biases = np.full(len(epochs), 21.0)
        _, record = BatchFde().solve_batch(
            EpochBlock.from_epochs(epochs), biases
        )
        assert record.verdict(4).status == "repaired"
        assert record.verdict(4).excluded_prn == 3
