"""Unit tests for the leap-second table."""

from repro.timebase.leapseconds import LEAP_SECOND_TABLE, leap_seconds_at_unix


class TestTableShape:
    def test_monotone_timestamps(self):
        stamps = [unix for unix, _offset in LEAP_SECOND_TABLE]
        assert stamps == sorted(stamps)

    def test_monotone_offsets_increment_by_one(self):
        offsets = [offset for _unix, offset in LEAP_SECOND_TABLE]
        assert offsets == list(range(1, len(offsets) + 1))

    def test_final_offset_is_eighteen(self):
        assert LEAP_SECOND_TABLE[-1][1] == 18


class TestLookup:
    def test_before_first_leap(self):
        assert leap_seconds_at_unix(316_000_000) == 0  # Jan 1980

    def test_exactly_at_insertion(self):
        first_unix, first_offset = LEAP_SECOND_TABLE[0]
        assert leap_seconds_at_unix(first_unix) == first_offset
        assert leap_seconds_at_unix(first_unix - 1) == first_offset - 1

    def test_year_2009(self):
        # The paper's data collection year: GPS-UTC = 15.
        assert leap_seconds_at_unix(1_250_000_000) == 15

    def test_after_last_leap(self):
        assert leap_seconds_at_unix(2_000_000_000) == 18

    def test_every_boundary(self):
        for unix, offset in LEAP_SECOND_TABLE:
            assert leap_seconds_at_unix(unix) == offset
            assert leap_seconds_at_unix(unix - 0.5) == offset - 1
