"""Unit + property tests for the GpsTime value type."""

import pytest
from hypothesis import given, strategies as st

from repro.constants import SECONDS_PER_WEEK
from repro.errors import ConfigurationError
from repro.timebase import GpsTime

gps_seconds_strategy = st.floats(min_value=0.0, max_value=3.0e9)


class TestConstruction:
    def test_basic(self):
        t = GpsTime(week=1540, seconds_of_week=345.5)
        assert t.week == 1540
        assert t.seconds_of_week == 345.5

    def test_rejects_negative_week(self):
        with pytest.raises(ConfigurationError):
            GpsTime(week=-1, seconds_of_week=0.0)

    def test_rejects_sow_out_of_range(self):
        with pytest.raises(ConfigurationError):
            GpsTime(week=0, seconds_of_week=SECONDS_PER_WEEK)

    def test_rejects_negative_sow(self):
        with pytest.raises(ConfigurationError):
            GpsTime(week=0, seconds_of_week=-1.0)

    def test_from_gps_seconds_normalizes_weeks(self):
        t = GpsTime.from_gps_seconds(SECONDS_PER_WEEK * 2 + 100.0)
        assert t.week == 2
        assert t.seconds_of_week == pytest.approx(100.0)

    def test_from_gps_seconds_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            GpsTime.from_gps_seconds(-1.0)


class TestArithmetic:
    def test_add_seconds(self):
        t = GpsTime(week=1, seconds_of_week=10.0) + 5.0
        assert t.seconds_of_week == 15.0

    def test_add_crosses_week_boundary(self):
        t = GpsTime(week=1, seconds_of_week=SECONDS_PER_WEEK - 1.0) + 2.0
        assert t.week == 2
        assert t.seconds_of_week == pytest.approx(1.0)

    def test_radd(self):
        t = 5.0 + GpsTime(week=0, seconds_of_week=0.0)
        assert t.seconds_of_week == 5.0

    def test_subtract_times_gives_seconds(self):
        a = GpsTime(week=1, seconds_of_week=100.0)
        b = GpsTime(week=1, seconds_of_week=40.0)
        assert a - b == pytest.approx(60.0)

    def test_subtract_seconds_gives_time(self):
        t = GpsTime(week=1, seconds_of_week=100.0) - 50.0
        assert isinstance(t, GpsTime)
        assert t.seconds_of_week == 50.0

    def test_subtract_across_weeks(self):
        a = GpsTime(week=2, seconds_of_week=10.0)
        b = GpsTime(week=1, seconds_of_week=10.0)
        assert a - b == pytest.approx(SECONDS_PER_WEEK)

    def test_ordering(self):
        early = GpsTime(week=1, seconds_of_week=0.0)
        late = GpsTime(week=1, seconds_of_week=1.0)
        assert early < late
        assert late > early

    @given(gps_seconds_strategy, st.floats(min_value=0.0, max_value=1e6))
    def test_add_then_subtract_roundtrip(self, base, delta):
        t = GpsTime.from_gps_seconds(base)
        assert (t + delta) - t == pytest.approx(delta, abs=1e-5)


class TestConversions:
    @given(gps_seconds_strategy)
    def test_gps_seconds_roundtrip(self, seconds):
        t = GpsTime.from_gps_seconds(seconds)
        assert t.to_gps_seconds() == pytest.approx(seconds, abs=1e-5)

    def test_unix_roundtrip_modern_era(self):
        unix = 1_250_000_000.0  # 2009, within the paper's collection dates
        t = GpsTime.from_unix(unix)
        assert t.to_unix() == pytest.approx(unix, abs=1e-6)

    def test_unix_of_gps_epoch(self):
        t = GpsTime.from_unix(315_964_800.0)
        assert t.week == 0
        assert t.seconds_of_week == 0.0

    def test_leap_seconds_applied_in_2009(self):
        # In 2009 GPS-UTC was 15 s.
        unix = 1_250_000_000.0
        t = GpsTime.from_unix(unix)
        assert t.to_gps_seconds() == pytest.approx(unix - 315_964_800 + 15)

    def test_rejects_pre_gps_epoch(self):
        with pytest.raises(ConfigurationError):
            GpsTime.from_unix(0.0)


class TestWeekWrappedDifference:
    def test_plain_difference(self):
        a = GpsTime(week=1, seconds_of_week=1000.0)
        b = GpsTime(week=1, seconds_of_week=400.0)
        assert a.time_of_week_difference(b) == pytest.approx(600.0)

    def test_wraps_large_positive(self):
        a = GpsTime(week=2, seconds_of_week=0.0)
        b = GpsTime(week=1, seconds_of_week=0.0)
        # Exactly one week wraps to zero.
        assert a.time_of_week_difference(b) == pytest.approx(0.0)

    def test_wraps_past_half_week(self):
        a = GpsTime(week=1, seconds_of_week=400_000.0)
        b = GpsTime(week=1, seconds_of_week=0.0)
        assert a.time_of_week_difference(b) == pytest.approx(400_000.0 - SECONDS_PER_WEEK)

    @given(
        st.floats(min_value=0.0, max_value=1e9),
        st.floats(min_value=-200_000.0, max_value=200_000.0),
    )
    def test_small_offsets_survive_wrapping(self, base, offset):
        a = GpsTime.from_gps_seconds(base + 300_000.0)
        b = a + offset
        assert b.time_of_week_difference(a) == pytest.approx(offset, abs=1e-4)


class TestHashabilityAndRepr:
    def test_frozen_and_hashable(self):
        t = GpsTime(week=1, seconds_of_week=0.0)
        assert hash(t) == hash(GpsTime(week=1, seconds_of_week=0.0))
        with pytest.raises(AttributeError):
            t.week = 2

    def test_str(self):
        assert "week=1540" in str(GpsTime(week=1540, seconds_of_week=0.0))
