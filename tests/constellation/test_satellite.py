"""Unit tests for the Satellite wrapper."""

import math

import numpy as np
import pytest

from repro.constants import GPS_ORBIT_SEMI_MAJOR_AXIS
from repro.constellation import Satellite
from repro.orbits import BroadcastEphemeris, OrbitalElements
from repro.timebase import GpsTime


@pytest.fixture
def epoch():
    return GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture
def ephemeris(epoch):
    elements = OrbitalElements(
        semi_major_axis=GPS_ORBIT_SEMI_MAJOR_AXIS,
        eccentricity=0.005,
        inclination=math.radians(55.0),
        raan=0.0,
        argument_of_perigee=0.0,
        mean_anomaly=1.0,
        epoch=epoch,
    )
    return BroadcastEphemeris.from_elements(9, elements, af0=2e-6)


class TestSatellite:
    def test_prn_delegates(self, ephemeris):
        assert Satellite(ephemeris=ephemeris).prn == 9

    def test_position_matches_ephemeris(self, ephemeris, epoch):
        satellite = Satellite(ephemeris=ephemeris)
        np.testing.assert_array_equal(
            satellite.position_at(epoch), ephemeris.satellite_position(epoch)
        )

    def test_clock_offset_delegates(self, ephemeris, epoch):
        satellite = Satellite(ephemeris=ephemeris)
        assert satellite.clock_offset_at(epoch) == pytest.approx(2e-6)

    def test_healthy_by_default(self, ephemeris):
        assert Satellite(ephemeris=ephemeris).healthy

    def test_set_ephemeris_same_prn(self, ephemeris):
        satellite = Satellite(ephemeris=ephemeris)
        satellite.set_ephemeris(ephemeris.with_clock(af0=5e-6))
        assert satellite.clock_offset_at(ephemeris.toe) == pytest.approx(5e-6)

    def test_set_ephemeris_rejects_prn_mismatch(self, ephemeris, epoch):
        satellite = Satellite(ephemeris=ephemeris)
        other = BroadcastEphemeris(
            prn=10, toe=epoch, sqrt_a=ephemeris.sqrt_a, eccentricity=0.0,
            i0=0.96, omega0=0.0, omega=0.0, m0=0.0,
        )
        with pytest.raises(ValueError, match="PRN"):
            satellite.set_ephemeris(other)

    def test_repr_shows_health(self, ephemeris):
        satellite = Satellite(ephemeris=ephemeris, healthy=False)
        assert "unhealthy" in repr(satellite)
