"""Unit + integration tests for satellite pass planning."""

import math

import numpy as np
import pytest

from repro.constellation import Constellation, find_passes
from repro.errors import ConfigurationError
from repro.geodesy import elevation_angle
from repro.stations import get_station
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture(scope="module")
def constellation():
    return Constellation.nominal(T0, rng=np.random.default_rng(8))


@pytest.fixture(scope="module")
def six_hour_passes(constellation):
    station = get_station("SRZN")
    # Half a sidereal day: every satellite completes one orbit, so the
    # window contains fully-bounded passes as well as edge passes.
    return find_passes(
        constellation, station.position, T0, duration_seconds=12 * 3600.0,
        coarse_step_seconds=120.0,
    ), station


class TestFindPasses:
    def test_passes_found(self, six_hour_passes):
        passes, _station = six_hour_passes
        # Over six hours a 31-SV constellation produces many passes.
        assert len(passes) >= 10

    def test_rise_and_set_cross_the_mask(self, six_hour_passes, constellation):
        passes, station = six_hour_passes
        mask = math.radians(10.0)
        for p in passes:
            satellite = constellation.satellite(p.prn)
            for edge in (p.rise, p.set_):
                if edge is None:
                    continue
                elevation = elevation_angle(
                    satellite.position_at(edge), station.position
                )
                assert elevation == pytest.approx(mask, abs=math.radians(0.05))

    def test_max_elevation_above_mask(self, six_hour_passes):
        passes, _station = six_hour_passes
        for p in passes:
            assert p.max_elevation >= math.radians(10.0)

    def test_rise_before_set(self, six_hour_passes):
        passes, _station = six_hour_passes
        for p in passes:
            if p.rise is not None and p.set_ is not None:
                assert p.duration_seconds > 0

    def test_pass_durations_plausible(self, six_hour_passes):
        """GPS passes above a 10-degree mask last from minutes up to
        several hours (the half-sidereal-day orbit repeats geometry)."""
        passes, _station = six_hour_passes
        durations = [
            p.duration_seconds for p in passes if p.duration_seconds is not None
        ]
        assert durations, "expected at least one fully-contained pass"
        for duration in durations:
            assert 60.0 < duration < 12 * 3600.0

    def test_edge_passes_marked_open(self, constellation):
        station = get_station("SRZN")
        # A 10-minute window: every visible satellite's pass extends
        # past at least one edge.
        passes = find_passes(
            constellation, station.position, T0, duration_seconds=600.0
        )
        assert passes
        assert all(p.rise is None or p.set_ is None or
                   p.duration_seconds <= 600.0 for p in passes)
        assert any(p.rise is None for p in passes)

    def test_sorted_by_rise_time(self, six_hour_passes):
        passes, _station = six_hour_passes
        keys = [
            (p.rise.to_gps_seconds() if p.rise else T0.to_gps_seconds(), p.prn)
            for p in passes
        ]
        assert keys == sorted(keys)

    def test_unhealthy_satellites_excluded(self, constellation):
        station = get_station("SRZN")
        victim = find_passes(
            constellation, station.position, T0, duration_seconds=3600.0
        )[0].prn
        constellation.set_health(victim, False)
        try:
            passes = find_passes(
                constellation, station.position, T0, duration_seconds=3600.0
            )
            assert all(p.prn != victim for p in passes)
        finally:
            constellation.set_health(victim, True)

    def test_visibility_consistency_with_constellation(self, constellation):
        """At any instant, the set of PRNs inside a pass window matches
        Constellation.visible_from."""
        station = get_station("SRZN")
        passes = find_passes(
            constellation, station.position, T0, duration_seconds=3600.0,
            refine_tolerance_seconds=0.1,
        )
        probe = T0 + 1800.0
        in_pass = set()
        for p in passes:
            rise_s = p.rise.to_gps_seconds() if p.rise else -np.inf
            set_s = p.set_.to_gps_seconds() if p.set_ else np.inf
            if rise_s <= probe.to_gps_seconds() <= set_s:
                in_pass.add(p.prn)
        visible = {v.prn for v in constellation.visible_from(station.position, probe)}
        assert in_pass == visible

    def test_validation(self, constellation):
        station = get_station("SRZN")
        with pytest.raises(ConfigurationError):
            find_passes(constellation, station.position, T0, duration_seconds=0.0)
        with pytest.raises(ConfigurationError):
            find_passes(
                constellation, station.position, T0, 100.0,
                coarse_step_seconds=0.0,
            )
