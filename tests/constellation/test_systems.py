"""Unit tests for the GNSS system registry."""

import numpy as np
import pytest

from repro.constellation.systems import (
    DEFAULT_SYSTEM,
    ORBIT_SHELLS,
    SYSTEM_CODES,
    SYSTEM_NAMES,
    constellation_signature,
    group_layout,
    normalize_system,
    system_code,
    system_ids_to_codes,
    system_index,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_canonical_codes(self):
        assert SYSTEM_CODES == ("G", "R", "E", "C")
        assert DEFAULT_SYSTEM == "G"

    def test_every_code_named_and_shelled(self):
        for code in SYSTEM_CODES:
            assert code in SYSTEM_NAMES
            assert code in ORBIT_SHELLS
            assert ORBIT_SHELLS[code].semi_major_axis > 2.0e7

    def test_index_code_roundtrip(self):
        for index, code in enumerate(SYSTEM_CODES):
            assert system_index(code) == index
            assert system_code(index) == code

    def test_normalize_accepts_lowercase(self):
        assert normalize_system("g") == "G"
        assert normalize_system("r") == "R"

    def test_normalize_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            normalize_system("X")
        with pytest.raises(ConfigurationError):
            normalize_system(3)

    def test_code_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            system_code(-1)
        with pytest.raises(ConfigurationError):
            system_code(len(SYSTEM_CODES))

    def test_ids_to_codes(self):
        assert system_ids_to_codes([0, 1, 0, 3]) == ("G", "R", "G", "C")


class TestSignature:
    def test_counts_in_canonical_order(self):
        assert constellation_signature([1, 0, 0, 1, 3]) == "G2R2C1"

    def test_skips_absent_systems(self):
        assert constellation_signature([0, 0, 0]) == "G3"

    def test_empty(self):
        assert constellation_signature([]) == ""

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            constellation_signature([0, 9])


class TestGroupLayout:
    def test_first_appearance_order(self):
        groups, codes = group_layout([1, 1, 0, 0, 1])
        assert codes.tolist() == [1, 0]
        assert groups.tolist() == [0, 0, 1, 1, 0]

    def test_single_system(self):
        groups, codes = group_layout([0, 0, 0])
        assert codes.tolist() == [0]
        assert groups.tolist() == [0, 0, 0]

    def test_interleaved(self):
        groups, codes = group_layout([2, 0, 2, 3, 0])
        assert codes.tolist() == [2, 0, 3]
        assert groups.tolist() == [0, 1, 0, 2, 1]

    def test_relabeling_preserves_group_structure(self):
        # Swapping which code each group carries must not change the
        # group indices — the invariant the relabeling metamorphic
        # property relies on.
        ids = np.array([1, 0, 1, 0, 0])
        swapped = np.array([0, 1, 0, 1, 1])
        groups_a, _ = group_layout(ids)
        groups_b, _ = group_layout(swapped)
        assert groups_a.tolist() == groups_b.tolist()
