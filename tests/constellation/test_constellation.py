"""Unit tests for constellation visibility and management."""

import math

import numpy as np
import pytest

from repro.constellation import Constellation, Satellite
from repro.errors import ConfigurationError
from repro.orbits import nominal_almanac
from repro.stations import get_station
from repro.timebase import GpsTime


@pytest.fixture
def epoch():
    return GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture
def constellation(epoch):
    return Constellation.nominal(epoch, rng=np.random.default_rng(0))


class TestConstruction:
    def test_nominal_has_31(self, constellation):
        assert len(constellation) == 31

    def test_prns_sorted(self, constellation):
        assert constellation.prns == list(range(1, 32))

    def test_rejects_duplicate_prns(self, epoch):
        ephemerides = nominal_almanac(epoch, satellite_count=2)
        duplicate = [Satellite(ephemeris=ephemerides[0])] * 2
        with pytest.raises(ConfigurationError, match="duplicate"):
            Constellation(duplicate)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Constellation([])

    def test_lookup(self, constellation):
        assert constellation.satellite(5).prn == 5
        assert 5 in constellation
        assert 62 not in constellation

    def test_lookup_unknown_raises(self, constellation):
        with pytest.raises(ConfigurationError, match="PRN 62"):
            constellation.satellite(62)

    def test_iteration(self, constellation):
        assert sum(1 for _satellite in constellation) == 31

    def test_ephemerides_sorted_by_prn(self, constellation):
        prns = [eph.prn for eph in constellation.ephemerides()]
        assert prns == sorted(prns)


class TestVisibility:
    def test_plausible_visible_count(self, constellation, epoch):
        station = get_station("SRZN")
        visible = constellation.visible_from(station.position, epoch)
        assert 6 <= len(visible) <= 14

    def test_sorted_by_descending_elevation(self, constellation, epoch):
        station = get_station("YYR1")
        visible = constellation.visible_from(station.position, epoch)
        elevations = [v.elevation for v in visible]
        assert elevations == sorted(elevations, reverse=True)

    def test_all_above_mask(self, constellation, epoch):
        station = get_station("FAI1")
        mask = math.radians(15.0)
        for visible in constellation.visible_from(station.position, epoch, mask):
            assert visible.elevation >= mask

    def test_higher_mask_sees_fewer(self, constellation, epoch):
        station = get_station("KYCP")
        low = constellation.visible_from(station.position, epoch, math.radians(5.0))
        high = constellation.visible_from(station.position, epoch, math.radians(30.0))
        assert len(high) < len(low)

    def test_unhealthy_excluded(self, constellation, epoch):
        station = get_station("SRZN")
        before = constellation.visible_from(station.position, epoch)
        victim = before[0].prn
        constellation.set_health(victim, False)
        after = constellation.visible_from(station.position, epoch)
        assert victim not in [v.prn for v in after]
        assert len(after) == len(before) - 1
        constellation.set_health(victim, True)  # restore shared fixture state

    def test_visible_satellite_carries_position(self, constellation, epoch):
        station = get_station("SRZN")
        visible = constellation.visible_from(station.position, epoch)[0]
        np.testing.assert_array_equal(
            visible.position, visible.satellite.position_at(epoch)
        )

    def test_visibility_changes_over_time(self, constellation, epoch):
        station = get_station("SRZN")
        now = {v.prn for v in constellation.visible_from(station.position, epoch)}
        later = {
            v.prn
            for v in constellation.visible_from(station.position, epoch + 6 * 3600.0)
        }
        assert now != later  # satellites rise and set over six hours

    def test_rejects_bad_receiver_shape(self, constellation, epoch):
        with pytest.raises(ConfigurationError):
            constellation.visible_from(np.array([1.0, 2.0]), epoch)
