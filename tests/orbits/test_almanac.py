"""Unit tests for the nominal GPS almanac generator."""

import math

import numpy as np
import pytest

from repro.constants import GPS_ORBIT_SEMI_MAJOR_AXIS
from repro.errors import ConfigurationError
from repro.orbits import nominal_almanac
from repro.orbits.almanac import _slot_assignments
from repro.timebase import GpsTime


@pytest.fixture
def epoch():
    return GpsTime(week=1540, seconds_of_week=0.0)


class TestAlmanacShape:
    def test_default_satellite_count(self, epoch):
        assert len(nominal_almanac(epoch)) == 31

    def test_prns_unique_and_sequential(self, epoch):
        prns = [eph.prn for eph in nominal_almanac(epoch)]
        assert prns == list(range(1, 32))

    def test_custom_count(self, epoch):
        assert len(nominal_almanac(epoch, satellite_count=24)) == 24

    def test_rejects_bad_count(self, epoch):
        with pytest.raises(ConfigurationError):
            nominal_almanac(epoch, satellite_count=0)
        with pytest.raises(ConfigurationError):
            nominal_almanac(epoch, satellite_count=64)


class TestGeometry:
    def test_six_distinct_planes(self, epoch):
        ephemerides = nominal_almanac(epoch)
        nodes = {round(eph.omega0, 6) for eph in ephemerides}
        assert len(nodes) == 6

    def test_nominal_inclination(self, epoch):
        for eph in nominal_almanac(epoch):
            assert eph.i0 == pytest.approx(math.radians(55.0))

    def test_nominal_altitude(self, epoch):
        for eph in nominal_almanac(epoch):
            assert eph.sqrt_a**2 == pytest.approx(GPS_ORBIT_SEMI_MAJOR_AXIS)

    def test_deterministic_without_rng(self, epoch):
        a = nominal_almanac(epoch)
        b = nominal_almanac(epoch)
        assert all(x == y for x, y in zip(a, b))

    def test_rng_adds_eccentricity_and_clock(self, epoch):
        rng = np.random.default_rng(1)
        ephemerides = nominal_almanac(epoch, rng=rng)
        assert any(eph.eccentricity > 0 for eph in ephemerides)
        assert any(eph.af0 != 0.0 for eph in ephemerides)
        # Eccentricities stay in the realistic GPS band.
        for eph in ephemerides:
            assert 0.0 <= eph.eccentricity <= 0.03

    def test_rng_reproducible_by_seed(self, epoch):
        a = nominal_almanac(epoch, rng=np.random.default_rng(5))
        b = nominal_almanac(epoch, rng=np.random.default_rng(5))
        assert all(x == y for x, y in zip(a, b))


class TestMultiSystem:
    def test_system_codes_accepted(self, epoch):
        for system in ("G", "R", "E", "C"):
            ephemerides = nominal_almanac(epoch, satellite_count=8, system=system)
            assert len(ephemerides) == 8

    def test_systems_differ(self, epoch):
        gps = nominal_almanac(epoch, satellite_count=8, system="G")
        glonass = nominal_almanac(epoch, satellite_count=8, system="R")
        assert any(a != b for a, b in zip(gps, glonass))

    def test_rejects_unknown_system(self, epoch):
        with pytest.raises(ConfigurationError):
            nominal_almanac(epoch, system="X")


class TestDeprecatedSpelling:
    def test_shim_warns_and_matches(self, epoch):
        with pytest.warns(DeprecationWarning, match="nominal_almanac"):
            from repro.orbits import nominal_gps_almanac
        legacy = nominal_gps_almanac(epoch, satellite_count=12)
        assert legacy == nominal_almanac(epoch, satellite_count=12, system="G")

    def test_canonical_name_does_not_warn(self, epoch):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            nominal_almanac(epoch, satellite_count=4)


class TestSlotAssignments:
    def test_canonical_31(self):
        assert _slot_assignments(31, 6) == [6, 5, 5, 5, 5, 5]

    def test_even_split(self):
        assert _slot_assignments(24, 6) == [4, 4, 4, 4, 4, 4]

    def test_remainder_spread(self):
        assert _slot_assignments(26, 6) == [5, 5, 4, 4, 4, 4]

    def test_total_preserved(self):
        for count in range(1, 40):
            assert sum(_slot_assignments(count, 6)) == count
