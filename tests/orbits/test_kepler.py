"""Unit + property tests for the Kepler solver."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.orbits import eccentric_to_true_anomaly, solve_kepler

anomalies = st.floats(min_value=-100.0, max_value=100.0)
eccentricities = st.floats(min_value=0.0, max_value=0.97)


class TestSolveKepler:
    def test_circular_orbit_identity(self):
        # With e = 0, E = M exactly.
        assert solve_kepler(1.234, 0.0) == pytest.approx(1.234)

    def test_zero_anomaly(self):
        assert solve_kepler(0.0, 0.5) == pytest.approx(0.0, abs=1e-12)

    def test_known_value(self):
        # Classic textbook case M=pi/4, e=0.1.
        eccentric = solve_kepler(math.pi / 4, 0.1)
        assert eccentric - 0.1 * math.sin(eccentric) == pytest.approx(math.pi / 4)

    @given(anomalies, eccentricities)
    @settings(max_examples=300)
    def test_satisfies_keplers_equation(self, mean_anomaly, eccentricity):
        eccentric = solve_kepler(mean_anomaly, eccentricity)
        residual = eccentric - eccentricity * math.sin(eccentric)
        wrapped_m = math.atan2(math.sin(mean_anomaly), math.cos(mean_anomaly))
        assert math.sin(residual) == pytest.approx(math.sin(wrapped_m), abs=1e-9)
        assert math.cos(residual) == pytest.approx(math.cos(wrapped_m), abs=1e-9)

    def test_high_eccentricity_near_perigee(self):
        # The hard regime for naive Newton starts.
        eccentric = solve_kepler(0.01, 0.95)
        assert eccentric - 0.95 * math.sin(eccentric) == pytest.approx(0.01, abs=1e-12)

    def test_rejects_hyperbolic(self):
        with pytest.raises(ConfigurationError):
            solve_kepler(1.0, 1.0)

    def test_rejects_negative_eccentricity(self):
        with pytest.raises(ConfigurationError):
            solve_kepler(1.0, -0.1)

    def test_gps_eccentricity_fast_convergence(self):
        # GPS orbits have e < 0.03; make sure the default budget is ample.
        for m_deg in range(0, 360, 15):
            solve_kepler(math.radians(m_deg), 0.02, max_iterations=10)


class TestTrueAnomaly:
    def test_circular_identity(self):
        assert eccentric_to_true_anomaly(0.7, 0.0) == pytest.approx(0.7)

    def test_perigee_and_apogee_fixed_points(self):
        assert eccentric_to_true_anomaly(0.0, 0.3) == pytest.approx(0.0)
        assert abs(eccentric_to_true_anomaly(math.pi, 0.3)) == pytest.approx(math.pi)

    def test_true_leads_eccentric_ascending(self):
        # Between perigee and apogee the true anomaly is ahead.
        assert eccentric_to_true_anomaly(1.0, 0.2) > 1.0

    @given(st.floats(min_value=-math.pi, max_value=math.pi), eccentricities)
    def test_consistent_with_cosine_relation(self, eccentric, eccentricity):
        true_anomaly = eccentric_to_true_anomaly(eccentric, eccentricity)
        # cos(v) = (cos E - e) / (1 - e cos E).
        expected_cos = (math.cos(eccentric) - eccentricity) / (
            1 - eccentricity * math.cos(eccentric)
        )
        assert math.cos(true_anomaly) == pytest.approx(expected_cos, abs=1e-9)

    def test_rejects_bad_eccentricity(self):
        with pytest.raises(ConfigurationError):
            eccentric_to_true_anomaly(0.0, 1.5)
