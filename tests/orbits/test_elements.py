"""Unit tests for Keplerian element propagation."""

import math

import numpy as np
import pytest

from repro.constants import GPS_ORBIT_SEMI_MAJOR_AXIS, EARTH_ROTATION_RATE
from repro.errors import ConfigurationError
from repro.orbits import OrbitalElements
from repro.timebase import GpsTime


@pytest.fixture
def epoch():
    return GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture
def circular(epoch):
    return OrbitalElements(
        semi_major_axis=GPS_ORBIT_SEMI_MAJOR_AXIS,
        eccentricity=0.0,
        inclination=math.radians(55.0),
        raan=0.3,
        argument_of_perigee=0.0,
        mean_anomaly=0.0,
        epoch=epoch,
    )


class TestProperties:
    def test_gps_period_is_half_sidereal_day(self, circular):
        # ~43 082 s (half a sidereal day).
        assert circular.orbital_period == pytest.approx(43_082.0, abs=50.0)

    def test_mean_motion_matches_period(self, circular):
        assert circular.mean_motion * circular.orbital_period == pytest.approx(
            2 * math.pi
        )


class TestValidation:
    def test_rejects_bad_axis(self, epoch):
        with pytest.raises(ConfigurationError):
            OrbitalElements(-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, epoch)

    def test_rejects_bad_eccentricity(self, epoch):
        with pytest.raises(ConfigurationError):
            OrbitalElements(1e7, 1.0, 0.0, 0.0, 0.0, 0.0, epoch)

    def test_rejects_bad_inclination(self, epoch):
        with pytest.raises(ConfigurationError):
            OrbitalElements(1e7, 0.0, 4.0, 0.0, 0.0, 0.0, epoch)


class TestPropagation:
    def test_radius_constant_for_circular(self, circular, epoch):
        for dt in (0.0, 1000.0, 10_000.0, 43_000.0):
            radius = np.linalg.norm(circular.position_ecef(epoch + dt))
            assert radius == pytest.approx(GPS_ORBIT_SEMI_MAJOR_AXIS, rel=1e-12)

    def test_radius_bounds_for_elliptical(self, epoch):
        elements = OrbitalElements(
            semi_major_axis=GPS_ORBIT_SEMI_MAJOR_AXIS,
            eccentricity=0.02,
            inclination=math.radians(55.0),
            raan=0.0,
            argument_of_perigee=1.0,
            mean_anomaly=0.5,
            epoch=epoch,
        )
        a, e = GPS_ORBIT_SEMI_MAJOR_AXIS, 0.02
        for dt in np.linspace(0.0, 43_000.0, 40):
            radius = np.linalg.norm(elements.position_ecef(epoch + dt))
            assert a * (1 - e) - 1.0 <= radius <= a * (1 + e) + 1.0

    def test_z_amplitude_set_by_inclination(self, circular, epoch):
        max_z = max(
            abs(circular.position_ecef(epoch + dt)[2])
            for dt in np.linspace(0.0, 43_082.0, 200)
        )
        expected = GPS_ORBIT_SEMI_MAJOR_AXIS * math.sin(math.radians(55.0))
        assert max_z == pytest.approx(expected, rel=1e-3)

    def test_one_inertial_period_regresses_by_earth_rotation(self, circular, epoch):
        start = circular.position_ecef(epoch)
        period = circular.orbital_period
        after = circular.position_ecef(epoch + period)
        # In ECEF, after one orbital period the satellite appears
        # rotated by -omega_e * T about z.
        theta = EARTH_ROTATION_RATE * period
        rotation = np.array(
            [
                [math.cos(theta), math.sin(theta), 0.0],
                [-math.sin(theta), math.cos(theta), 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        np.testing.assert_allclose(after, rotation @ start, atol=1e-3)

    def test_epoch_position_depends_only_on_angles(self, circular, epoch):
        position = circular.position_ecef(epoch)
        expected = GPS_ORBIT_SEMI_MAJOR_AXIS * np.array(
            [math.cos(0.3), math.sin(0.3), 0.0]
        )
        np.testing.assert_allclose(position, expected, atol=1e-6)
