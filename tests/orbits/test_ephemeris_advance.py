"""Tests for ephemeris re-issuing (advanced_to) and dataset refresh."""

import math

import numpy as np
import pytest

from repro.constants import GPS_ORBIT_SEMI_MAJOR_AXIS
from repro.orbits import BroadcastEphemeris, OrbitalElements
from repro.stations import DatasetConfig, ObservationDataset, get_station
from repro.timebase import GpsTime


@pytest.fixture
def ephemeris():
    epoch = GpsTime(week=1540, seconds_of_week=600_000.0)  # near week end
    elements = OrbitalElements(
        semi_major_axis=GPS_ORBIT_SEMI_MAJOR_AXIS,
        eccentricity=0.012,
        inclination=math.radians(55.0),
        raan=1.1,
        argument_of_perigee=0.4,
        mean_anomaly=2.2,
        epoch=epoch,
    )
    return BroadcastEphemeris.from_elements(
        7, elements, af0=2e-5, af1=1e-11, delta_n=1e-9, omega_dot=-8e-9, idot=3e-10
    )


class TestAdvancedTo:
    @pytest.mark.parametrize("dt", [3600.0, 7200.0, 30_000.0, 86_400.0])
    def test_positions_agree_at_common_instants(self, ephemeris, dt):
        new_toe = GpsTime.from_gps_seconds(ephemeris.toe.to_gps_seconds() + dt)
        advanced = ephemeris.advanced_to(new_toe)
        for offset in (-1800.0, 0.0, 1800.0):
            t = GpsTime.from_gps_seconds(new_toe.to_gps_seconds() + offset)
            np.testing.assert_allclose(
                advanced.satellite_position(t),
                ephemeris.satellite_position(t),
                atol=1e-4,
            )

    def test_clock_polynomial_reexpanded(self, ephemeris):
        new_toe = GpsTime.from_gps_seconds(ephemeris.toe.to_gps_seconds() + 7200.0)
        advanced = ephemeris.advanced_to(new_toe)
        t = GpsTime.from_gps_seconds(new_toe.to_gps_seconds() + 100.0)
        assert advanced.satellite_clock_offset(t) == pytest.approx(
            ephemeris.satellite_clock_offset(t), abs=1e-18
        )

    def test_week_boundary_crossing(self, ephemeris):
        # toe at sow 600000 + 30000 crosses into the next week.
        new_toe = GpsTime.from_gps_seconds(ephemeris.toe.to_gps_seconds() + 30_000.0)
        advanced = ephemeris.advanced_to(new_toe)
        assert advanced.toe.week == ephemeris.toe.week + 1
        t = new_toe + 600.0
        np.testing.assert_allclose(
            advanced.satellite_position(t), ephemeris.satellite_position(t), atol=1e-4
        )

    def test_validity_window_moves(self, ephemeris):
        new_toe = GpsTime.from_gps_seconds(ephemeris.toe.to_gps_seconds() + 30_000.0)
        advanced = ephemeris.advanced_to(new_toe)
        assert advanced.is_valid_at(new_toe + 3600.0)
        assert not advanced.is_valid_at(ephemeris.toe)

    def test_prn_and_shape_preserved(self, ephemeris):
        advanced = ephemeris.advanced_to(ephemeris.toe + 7200.0)
        assert advanced.prn == ephemeris.prn
        assert advanced.sqrt_a == ephemeris.sqrt_a
        assert advanced.eccentricity == ephemeris.eccentricity


class TestDatasetRefresh:
    @pytest.fixture(scope="class")
    def day_dataset(self):
        return ObservationDataset(get_station("SRZN"), DatasetConfig())

    def test_all_day_epochs_within_fit_interval(self, day_dataset):
        for index in (0, 7200, 14_400, 43_200, 86_399):
            epoch = day_dataset.epoch_at(index)
            for obs in epoch.observations:
                ephemeris = day_dataset.constellation.satellite(obs.prn).ephemeris
                assert ephemeris.is_valid_at(epoch.time)

    def test_positions_continuous_across_refresh(self, day_dataset):
        """The re-issued ephemeris describes the same orbit, so epoch
        geometry must not jump at the window boundary."""
        before = day_dataset.epoch_at(7199)
        after = day_dataset.epoch_at(7200)
        before_by_prn = {obs.prn: obs for obs in before.observations}
        for obs in after.observations:
            if obs.prn not in before_by_prn:
                continue
            motion = np.linalg.norm(obs.position - before_by_prn[obs.prn].position)
            # One second of satellite motion is < 4 km; an upload glitch
            # would show up as a discontinuity far larger.
            assert motion < 4500.0

    def test_random_access_deterministic_across_windows(self, day_dataset):
        # Jump far ahead, then back: the earlier epoch must reproduce.
        first = day_dataset.epoch_at(100).pseudoranges()
        day_dataset.epoch_at(50_000)
        again = day_dataset.epoch_at(100).pseudoranges()
        np.testing.assert_array_equal(first, again)

    def test_navigation_records_cover_windows(self, day_dataset):
        records = day_dataset.navigation_records(stop_index=14_401)
        # Windows 0, 1, 2 -> 3 uploads x 31 satellites.
        assert len(records) == 3 * 31
        toes = {record.toe.to_gps_seconds() for record in records}
        assert len(toes) == 3

    def test_refresh_disabled(self):
        dataset = ObservationDataset(
            get_station("YYR1"),
            DatasetConfig(duration_seconds=30.0, ephemeris_refresh_seconds=0.0),
        )
        assert len(dataset.navigation_records()) == 31


class TestAdvanceProperty:
    def test_position_consistency_for_random_offsets(self, ephemeris):
        """Property: advanced_to preserves the orbit for any offset up
        to a day, evaluated near the new toe."""
        from hypothesis import given, settings, strategies as st

        @given(
            dt=st.floats(min_value=60.0, max_value=86_400.0),
            probe=st.floats(min_value=-1800.0, max_value=1800.0),
        )
        @settings(max_examples=60, deadline=None)
        def check(dt, probe):
            new_toe = GpsTime.from_gps_seconds(
                ephemeris.toe.to_gps_seconds() + dt
            )
            advanced = ephemeris.advanced_to(new_toe)
            t = GpsTime.from_gps_seconds(new_toe.to_gps_seconds() + probe)
            np.testing.assert_allclose(
                advanced.satellite_position(t),
                ephemeris.satellite_position(t),
                atol=1e-3,
            )

        check()

    def test_double_advance_equals_single(self, ephemeris):
        """Advancing in two hops lands on the same parameters as one."""
        mid = GpsTime.from_gps_seconds(ephemeris.toe.to_gps_seconds() + 7200.0)
        end = GpsTime.from_gps_seconds(ephemeris.toe.to_gps_seconds() + 14_400.0)
        two_hops = ephemeris.advanced_to(mid).advanced_to(end)
        one_hop = ephemeris.advanced_to(end)
        t = end + 600.0
        np.testing.assert_allclose(
            two_hops.satellite_position(t), one_hop.satellite_position(t), atol=1e-4
        )
        assert two_hops.satellite_clock_offset(t) == pytest.approx(
            one_hop.satellite_clock_offset(t), abs=1e-15
        )
