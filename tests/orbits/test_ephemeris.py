"""Unit tests for broadcast-ephemeris evaluation."""

import math

import numpy as np
import pytest

from repro.constants import GPS_ORBIT_SEMI_MAJOR_AXIS
from repro.errors import ConfigurationError, EphemerisError
from repro.orbits import BroadcastEphemeris, OrbitalElements
from repro.timebase import GpsTime


@pytest.fixture
def epoch():
    return GpsTime(week=1540, seconds_of_week=302_400.0)  # mid-week toe


@pytest.fixture
def elements(epoch):
    return OrbitalElements(
        semi_major_axis=GPS_ORBIT_SEMI_MAJOR_AXIS,
        eccentricity=0.01,
        inclination=math.radians(55.0),
        raan=1.1,
        argument_of_perigee=0.4,
        mean_anomaly=2.2,
        epoch=epoch,
    )


class TestFromElements:
    def test_matches_element_propagation(self, elements, epoch):
        ephemeris = BroadcastEphemeris.from_elements(7, elements)
        for dt in (-3600.0, 0.0, 60.0, 3600.0):
            expected = elements.position_ecef(epoch + dt)
            actual = ephemeris.satellite_position(epoch + dt)
            np.testing.assert_allclose(actual, expected, atol=1e-6)

    def test_prn_preserved(self, elements):
        assert BroadcastEphemeris.from_elements(13, elements).prn == 13

    def test_clock_overrides(self, elements):
        ephemeris = BroadcastEphemeris.from_elements(1, elements, af0=1e-5, af1=1e-11)
        assert ephemeris.af0 == 1e-5
        assert ephemeris.af1 == 1e-11


class TestValidation:
    def test_rejects_bad_prn(self, epoch):
        with pytest.raises(ConfigurationError):
            BroadcastEphemeris(prn=0, toe=epoch, sqrt_a=5153.0, eccentricity=0.0,
                               i0=0.96, omega0=0.0, omega=0.0, m0=0.0)

    def test_rejects_bad_sqrt_a(self, epoch):
        with pytest.raises(ConfigurationError):
            BroadcastEphemeris(prn=1, toe=epoch, sqrt_a=-1.0, eccentricity=0.0,
                               i0=0.96, omega0=0.0, omega=0.0, m0=0.0)

    def test_toc_defaults_to_toe(self, epoch):
        ephemeris = BroadcastEphemeris(prn=1, toe=epoch, sqrt_a=5153.0,
                                       eccentricity=0.0, i0=0.96, omega0=0.0,
                                       omega=0.0, m0=0.0)
        assert ephemeris.toc == epoch


class TestFitInterval:
    def test_valid_inside(self, elements, epoch):
        ephemeris = BroadcastEphemeris.from_elements(1, elements)
        assert ephemeris.is_valid_at(epoch + 3600.0)

    def test_invalid_outside(self, elements, epoch):
        ephemeris = BroadcastEphemeris.from_elements(1, elements)
        assert not ephemeris.is_valid_at(epoch + 5 * 3600.0)

    def test_strict_raises_outside(self, elements, epoch):
        ephemeris = BroadcastEphemeris.from_elements(1, elements)
        with pytest.raises(EphemerisError):
            ephemeris.satellite_position(epoch + 5 * 3600.0, strict=True)

    def test_strict_ok_inside(self, elements, epoch):
        ephemeris = BroadcastEphemeris.from_elements(1, elements)
        ephemeris.satellite_position(epoch + 600.0, strict=True)


class TestPerturbations:
    def test_radial_correction_shifts_radius(self, elements, epoch):
        base = BroadcastEphemeris.from_elements(1, elements)
        perturbed = BroadcastEphemeris.from_elements(1, elements, crc=100.0, crs=0.0)
        # crc adds ~100*cos(2phi) meters to the radius.
        r0 = np.linalg.norm(base.satellite_position(epoch))
        r1 = np.linalg.norm(perturbed.satellite_position(epoch))
        assert abs(r1 - r0) <= 100.0 + 1e-6
        assert r1 != pytest.approx(r0, abs=1e-3)  # it does change

    def test_delta_n_advances_anomaly(self, elements, epoch):
        base = BroadcastEphemeris.from_elements(1, elements)
        faster = BroadcastEphemeris.from_elements(1, elements, delta_n=1e-9)
        # After an hour the faster satellite has pulled ahead.
        dt = 3600.0
        separation = np.linalg.norm(
            faster.satellite_position(epoch + dt) - base.satellite_position(epoch + dt)
        )
        assert separation == pytest.approx(1e-9 * dt * GPS_ORBIT_SEMI_MAJOR_AXIS, rel=0.1)


class TestVelocity:
    def test_speed_near_circular_orbit_speed(self, elements, epoch):
        ephemeris = BroadcastEphemeris.from_elements(1, elements)
        speed = np.linalg.norm(ephemeris.satellite_velocity(epoch))
        # GPS orbital speed ~3.87 km/s; include ECEF frame rotation slop.
        assert 2500.0 < speed < 5000.0

    def test_velocity_consistent_with_positions(self, elements, epoch):
        ephemeris = BroadcastEphemeris.from_elements(1, elements)
        velocity = ephemeris.satellite_velocity(epoch)
        p0 = ephemeris.satellite_position(epoch)
        p1 = ephemeris.satellite_position(epoch + 1.0)
        np.testing.assert_allclose(p1 - p0, velocity, rtol=1e-3, atol=0.5)


class TestClock:
    def test_polynomial_evaluation(self, elements, epoch):
        ephemeris = BroadcastEphemeris.from_elements(
            1, elements, af0=1e-5, af1=1e-11, af2=1e-15
        )
        dt = 100.0
        expected = 1e-5 + 1e-11 * dt + 1e-15 * dt * dt
        assert ephemeris.satellite_clock_offset(epoch + dt) == pytest.approx(expected)

    def test_with_clock_returns_new_instance(self, elements):
        base = BroadcastEphemeris.from_elements(1, elements)
        updated = base.with_clock(af0=3e-6)
        assert updated.af0 == 3e-6
        assert base.af0 == 0.0
