"""Unit + integration tests for data-set generation."""

import numpy as np
import pytest

from repro.clocks import SteeringClock, ThresholdClock
from repro.errors import ConfigurationError, DatasetError
from repro.stations import DatasetConfig, ObservationDataset, generate_dataset, get_station


class TestDatasetConfig:
    def test_paper_defaults(self):
        config = DatasetConfig()
        assert config.epoch_count == 86_400  # 24 h at 1 Hz
        assert config.satellite_count == 31

    def test_epoch_count_derived(self):
        config = DatasetConfig(duration_seconds=120.0, interval_seconds=2.0)
        assert config.epoch_count == 60

    def test_with_overrides(self):
        config = DatasetConfig().with_overrides(duration_seconds=10.0)
        assert config.duration_seconds == 10.0
        assert config.satellite_count == 31

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(duration_seconds=0.0)

    def test_rejects_bad_satellite_count(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(satellite_count=0)


class TestGeneration:
    def test_epoch_structure(self, srzn_dataset):
        epoch = srzn_dataset.epoch_at(0)
        # The paper's data items carry 8 to 12 satellites.
        assert 6 <= epoch.satellite_count <= 14
        assert epoch.truth is not None
        np.testing.assert_array_equal(
            epoch.truth.receiver_position, get_station("SRZN").position
        )

    def test_pseudoranges_plausible(self, srzn_dataset):
        epoch = srzn_dataset.epoch_at(0)
        for obs in epoch.observations:
            assert 1.8e7 < obs.pseudorange < 3.0e7

    def test_deterministic_random_access(self, srzn_dataset):
        a = srzn_dataset.epoch_at(7)
        b = srzn_dataset.epoch_at(7)
        assert a.prns == b.prns
        np.testing.assert_array_equal(a.pseudoranges(), b.pseudoranges())

    def test_streaming_matches_random_access(self, srzn_dataset):
        streamed = list(srzn_dataset.epochs(stop_index=5))
        for index, epoch in enumerate(streamed):
            direct = srzn_dataset.epoch_at(index)
            np.testing.assert_array_equal(epoch.pseudoranges(), direct.pseudoranges())

    def test_different_seeds_differ(self):
        station = get_station("SRZN")
        a = ObservationDataset(station, DatasetConfig(duration_seconds=10.0, seed=1))
        b = ObservationDataset(station, DatasetConfig(duration_seconds=10.0, seed=2))
        assert not np.array_equal(
            a.epoch_at(0).pseudoranges(), b.epoch_at(0).pseudoranges()
        )

    def test_different_stations_differ(self, srzn_dataset, kycp_dataset):
        assert srzn_dataset.epoch_at(0).prns != kycp_dataset.epoch_at(0).prns

    def test_stride_sampling(self, srzn_dataset):
        strided = list(srzn_dataset.epochs(stride=30))
        assert len(strided) == 4  # 120 s / 30
        assert strided[1].time - strided[0].time == pytest.approx(30.0)

    def test_realize_cap(self, srzn_dataset):
        assert len(srzn_dataset.realize(max_epochs=5)) == 5

    def test_epoch_index_bounds(self, srzn_dataset):
        with pytest.raises(DatasetError):
            srzn_dataset.epoch_at(-1)
        with pytest.raises(DatasetError):
            srzn_dataset.epoch_at(srzn_dataset.epoch_count)

    def test_bad_stride(self, srzn_dataset):
        with pytest.raises(DatasetError):
            list(srzn_dataset.epochs(stride=0))


class TestClockModelSelection:
    def test_steering_station_gets_steering_clock(self, srzn_dataset):
        assert isinstance(srzn_dataset.clock_model, SteeringClock)

    def test_threshold_station_gets_threshold_clock(self, kycp_dataset):
        assert isinstance(kycp_dataset.clock_model, ThresholdClock)

    def test_truth_bias_matches_clock_model(self, srzn_dataset):
        from repro.constants import SPEED_OF_LIGHT

        epoch = srzn_dataset.epoch_at(3)
        expected = SPEED_OF_LIGHT * srzn_dataset.clock_model.bias_seconds(epoch.time)
        assert epoch.truth.clock_bias_meters == pytest.approx(expected)


class TestGenerateDataset:
    def test_convenience_function(self):
        dataset = generate_dataset(
            get_station("YYR1"), DatasetConfig(duration_seconds=5.0)
        )
        assert dataset.epoch_count == 5
