"""Unit tests for the Table 5.1 station catalog."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.stations import STATIONS, all_stations, get_station


class TestTable51Contents:
    def test_four_stations(self):
        assert len(STATIONS) == 4

    def test_site_ids(self):
        assert set(STATIONS) == {"SRZN", "YYR1", "FAI1", "KYCP"}

    def test_exact_coordinates(self):
        srzn = get_station("SRZN")
        assert srzn.ecef == (3623420.032, -5214015.434, 602359.096)
        kycp = get_station("KYCP")
        assert kycp.ecef == (411598.861, -5060514.896, 3847795.506)

    def test_collection_dates(self):
        assert get_station("SRZN").collection_date == "2009/08/12"
        assert get_station("YYR1").collection_date == "2009/10/23"
        assert get_station("FAI1").collection_date == "2009/10/29"
        assert get_station("KYCP").collection_date == "2009/10/10"

    def test_clock_correction_types(self):
        assert get_station("SRZN").uses_steering_clock
        assert get_station("YYR1").uses_steering_clock
        assert get_station("FAI1").uses_steering_clock
        assert not get_station("KYCP").uses_steering_clock

    def test_numbers_in_order(self):
        assert [s.number for s in all_stations()] == [1, 2, 3, 4]


class TestAccessors:
    def test_case_insensitive_lookup(self):
        assert get_station("srzn").site_id == "SRZN"

    def test_unknown_station(self):
        with pytest.raises(DatasetError, match="unknown station"):
            get_station("XXXX")

    def test_position_is_array(self):
        position = get_station("FAI1").position
        assert isinstance(position, np.ndarray)
        assert position.shape == (3,)

    def test_positions_on_earth_surface(self):
        for station in all_stations():
            radius = np.linalg.norm(station.position)
            assert 6.3e6 < radius < 6.4e6

    def test_geodetic_sanity(self):
        # FAI1 is in Fairbanks, Alaska: high northern latitude.
        latitude, _longitude, _height = get_station("FAI1").geodetic
        assert np.degrees(latitude) > 60.0
        # SRZN is near the equator (Suriname).
        latitude, _longitude, _height = get_station("SRZN").geodetic
        assert abs(np.degrees(latitude)) < 15.0
