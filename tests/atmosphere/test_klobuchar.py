"""Unit tests for the Klobuchar ionospheric model."""

import math

import pytest

from repro.atmosphere import KlobucharModel
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.timebase import GpsTime


@pytest.fixture
def model():
    return KlobucharModel()


@pytest.fixture
def noon():
    # 50400 s into a day is local 14:00 at the pierce point for lon 0;
    # close enough to the diurnal peak for monotonicity checks.
    return GpsTime(week=1540, seconds_of_week=50_400.0)


MID_LAT = math.radians(40.0)
LON = 0.0


class TestDelayMagnitude:
    def test_zenith_delay_in_gps_band(self, model, noon):
        delay = model.delay_meters(MID_LAT, LON, math.pi / 2, 0.0, noon)
        # Single-frequency L1 iono delay: ~1-15 m by day.
        assert 1.0 < delay < 20.0

    def test_never_below_nighttime_floor(self, model):
        midnight = GpsTime(week=1540, seconds_of_week=0.0)
        delay_s = model.delay_seconds(MID_LAT, LON, math.pi / 2, 0.0, midnight)
        assert delay_s >= 5e-9  # the model's constant nighttime term

    def test_meters_is_c_times_seconds(self, model, noon):
        seconds = model.delay_seconds(MID_LAT, LON, 1.0, 0.5, noon)
        meters = model.delay_meters(MID_LAT, LON, 1.0, 0.5, noon)
        assert meters == pytest.approx(SPEED_OF_LIGHT * seconds)


class TestElevationDependence:
    def test_low_elevation_larger_than_zenith(self, model, noon):
        zenith = model.delay_meters(MID_LAT, LON, math.pi / 2, 0.0, noon)
        low = model.delay_meters(MID_LAT, LON, math.radians(10.0), 0.0, noon)
        assert low > zenith

    def test_monotone_decreasing_with_elevation(self, model, noon):
        delays = [
            model.delay_meters(MID_LAT, LON, math.radians(el), 0.0, noon)
            for el in (10.0, 30.0, 50.0, 70.0, 90.0)
        ]
        assert delays == sorted(delays, reverse=True)


class TestDiurnalVariation:
    def test_daytime_exceeds_nighttime(self, model):
        day = GpsTime(week=1540, seconds_of_week=50_400.0)
        night = GpsTime(week=1540, seconds_of_week=10_000.0)
        day_delay = model.delay_meters(MID_LAT, LON, math.pi / 2, 0.0, day)
        night_delay = model.delay_meters(MID_LAT, LON, math.pi / 2, 0.0, night)
        assert day_delay > night_delay


class TestValidation:
    def test_rejects_wrong_coefficient_count(self):
        with pytest.raises(ConfigurationError):
            KlobucharModel(alpha=(1.0, 2.0), beta=(1.0, 2.0, 3.0, 4.0))

    def test_custom_coefficients_scale_delay(self, noon):
        base = KlobucharModel()
        doubled = KlobucharModel(
            alpha=tuple(2 * a for a in base.alpha), beta=base.beta
        )
        d1 = base.delay_meters(MID_LAT, LON, math.pi / 2, 0.0, noon)
        d2 = doubled.delay_meters(MID_LAT, LON, math.pi / 2, 0.0, noon)
        assert d2 > d1
