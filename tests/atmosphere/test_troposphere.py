"""Unit tests for the Saastamoinen tropospheric model."""

import math

import pytest

from repro.atmosphere import SaastamoinenModel
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return SaastamoinenModel()


class TestZenithDelay:
    def test_standard_atmosphere_value(self, model):
        # The canonical total zenith delay is ~2.3-2.5 m at sea level.
        assert 2.2 < model.zenith_delay_meters(0.0) < 2.6

    def test_decreases_with_height(self, model):
        assert model.zenith_delay_meters(2000.0) < model.zenith_delay_meters(0.0)

    def test_dry_atmosphere_smaller(self):
        dry = SaastamoinenModel(relative_humidity=0.0)
        wet = SaastamoinenModel(relative_humidity=1.0)
        assert dry.zenith_delay_meters() < wet.zenith_delay_meters()

    def test_pressure_proportionality(self):
        low = SaastamoinenModel(pressure_hpa=900.0, relative_humidity=0.0)
        high = SaastamoinenModel(pressure_hpa=1050.0, relative_humidity=0.0)
        ratio = high.zenith_delay_meters() / low.zenith_delay_meters()
        assert ratio == pytest.approx(1050.0 / 900.0, rel=1e-9)


class TestSlantDelay:
    def test_zenith_equals_zenith_delay(self, model):
        assert model.delay_meters(math.pi / 2) == pytest.approx(
            model.zenith_delay_meters(), rel=1e-12
        )

    def test_monotone_decreasing_with_elevation(self, model):
        delays = [
            model.delay_meters(math.radians(el))
            for el in (5.0, 10.0, 20.0, 45.0, 90.0)
        ]
        assert delays == sorted(delays, reverse=True)

    def test_low_elevation_clamped(self, model):
        # At and below the 3-degree clamp, delay stops growing.
        assert model.delay_meters(math.radians(1.0)) == model.delay_meters(
            math.radians(3.0)
        )

    def test_ten_degree_magnitude(self, model):
        # ~2.4 m / sin(10 deg) ~ 14 m.
        delay = model.delay_meters(math.radians(10.0))
        assert 10.0 < delay < 20.0


class TestWaterVapor:
    def test_zero_humidity_zero_pressure(self):
        assert SaastamoinenModel(relative_humidity=0.0).water_vapor_pressure_hpa() == 0.0

    def test_saturation_increases_with_temperature(self):
        cold = SaastamoinenModel(temperature_k=273.15, relative_humidity=1.0)
        warm = SaastamoinenModel(temperature_k=303.15, relative_humidity=1.0)
        assert warm.water_vapor_pressure_hpa() > cold.water_vapor_pressure_hpa()


class TestValidation:
    def test_rejects_bad_pressure(self):
        with pytest.raises(ConfigurationError):
            SaastamoinenModel(pressure_hpa=0.0)

    def test_rejects_bad_temperature(self):
        with pytest.raises(ConfigurationError):
            SaastamoinenModel(temperature_k=-1.0)

    def test_rejects_bad_humidity(self):
        with pytest.raises(ConfigurationError):
            SaastamoinenModel(relative_humidity=1.5)
