"""Unit + property tests for receiver clock models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.clocks import SteeringClock, ThresholdClock
from repro.errors import ConfigurationError
from repro.timebase import GpsTime

EPOCH = GpsTime(week=1540, seconds_of_week=0.0)


class TestSteeringClock:
    def test_offset_at_epoch(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=5e-8, drift=0.0)
        assert clock.bias_seconds(EPOCH) == pytest.approx(5e-8)

    def test_linear_growth(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=0.0, drift=1e-10)
        assert clock.bias_seconds(EPOCH + 1000.0) == pytest.approx(1e-7)

    def test_correction_type(self):
        assert SteeringClock(epoch=EPOCH).correction_type == "Steering"

    def test_wander_bounded_by_amplitude(self):
        clock = SteeringClock(
            epoch=EPOCH, offset_seconds=0.0, drift=0.0,
            wander_amplitude_seconds=3e-9, wander_period_seconds=600.0,
        )
        for dt in range(0, 1200, 37):
            assert abs(clock.bias_seconds(EPOCH + float(dt))) <= 3e-9 + 1e-18

    def test_wander_periodicity(self):
        clock = SteeringClock(
            epoch=EPOCH, offset_seconds=1e-8, drift=0.0,
            wander_amplitude_seconds=3e-9, wander_period_seconds=600.0,
        )
        assert clock.bias_seconds(EPOCH + 100.0) == pytest.approx(
            clock.bias_seconds(EPOCH + 700.0), abs=1e-15
        )

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ConfigurationError):
            SteeringClock(epoch=EPOCH, wander_amplitude_seconds=-1e-9)

    @given(st.floats(min_value=0.0, max_value=86_400.0))
    def test_stays_small_over_a_day(self, dt):
        clock = SteeringClock(epoch=EPOCH)  # defaults: tiny offset/drift
        assert abs(clock.bias_seconds(EPOCH + dt)) < 1e-4  # well under 30 km


class TestThresholdClock:
    def test_sawtooth_stays_under_threshold(self):
        clock = ThresholdClock(
            epoch=EPOCH, initial_offset_seconds=0.0, drift=1e-7,
            threshold_seconds=1e-3,
        )
        for dt in range(0, 40_000, 111):
            bias = clock.bias_seconds(EPOCH + float(dt))
            assert 0.0 <= bias < 1e-3

    def test_reset_happens(self):
        clock = ThresholdClock(
            epoch=EPOCH, initial_offset_seconds=0.0, drift=1e-7,
            threshold_seconds=1e-3,
        )
        # Threshold reached after 1e-3/1e-7 = 10 000 s.
        before = clock.bias_seconds(EPOCH + 9_999.0)
        after = clock.bias_seconds(EPOCH + 10_001.0)
        assert before > 9.9e-4
        assert after < 1e-6 + 2e-10 * 2  # wrapped back near zero

    def test_negative_drift_mirrors(self):
        clock = ThresholdClock(
            epoch=EPOCH, initial_offset_seconds=0.0, drift=-1e-7,
            threshold_seconds=1e-3,
        )
        for dt in range(0, 40_000, 113):
            bias = clock.bias_seconds(EPOCH + float(dt))
            assert -1e-3 < bias <= 0.0

    def test_correction_type(self):
        assert ThresholdClock(epoch=EPOCH).correction_type == "Threshold"

    def test_seconds_until_reset(self):
        clock = ThresholdClock(
            epoch=EPOCH, initial_offset_seconds=0.0, drift=1e-7,
            threshold_seconds=1e-3,
        )
        assert clock.seconds_until_reset(EPOCH) == pytest.approx(10_000.0)
        assert clock.seconds_until_reset(EPOCH + 4000.0) == pytest.approx(6_000.0)

    def test_linear_between_resets(self):
        clock = ThresholdClock(
            epoch=EPOCH, initial_offset_seconds=0.0, drift=1e-7,
            threshold_seconds=1e-3,
        )
        b1 = clock.bias_seconds(EPOCH + 100.0)
        b2 = clock.bias_seconds(EPOCH + 200.0)
        assert b2 - b1 == pytest.approx(1e-7 * 100.0, rel=1e-9)

    def test_rejects_zero_drift(self):
        with pytest.raises(ConfigurationError):
            ThresholdClock(epoch=EPOCH, drift=0.0)

    def test_rejects_offset_beyond_threshold(self):
        with pytest.raises(ConfigurationError):
            ThresholdClock(
                epoch=EPOCH, initial_offset_seconds=2e-3, threshold_seconds=1e-3
            )

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigurationError):
            ThresholdClock(epoch=EPOCH, threshold_seconds=0.0)

    @given(
        st.floats(min_value=1e-8, max_value=1e-6),
        st.floats(min_value=1e-4, max_value=1e-2),
        st.floats(min_value=0.0, max_value=1e5),
    )
    @settings(max_examples=100)
    def test_sawtooth_invariant(self, drift, threshold, dt):
        clock = ThresholdClock(
            epoch=EPOCH, initial_offset_seconds=0.0, drift=drift,
            threshold_seconds=threshold,
        )
        bias = clock.bias_seconds(EPOCH + dt)
        assert 0.0 <= bias < threshold
