"""Unit tests for the Kalman clock bias predictor."""

import numpy as np
import pytest

from repro.clocks import KalmanClockBiasPredictor, SteeringClock, ThresholdClock
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, EstimationError
from repro.timebase import GpsTime

EPOCH = GpsTime(week=1540, seconds_of_week=0.0)


def feed_truth(predictor, clock, count, noise_sigma=0.0, seed=0, step=1.0):
    rng = np.random.default_rng(seed)
    for i in range(count):
        t = EPOCH + i * step
        bias = SPEED_OF_LIGHT * clock.bias_seconds(t)
        if noise_sigma:
            bias += rng.normal(0.0, noise_sigma)
        predictor.observe(t, bias)


class TestValidation:
    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ConfigurationError):
            KalmanClockBiasPredictor(bias_process_noise=0.0)

    def test_rejects_bad_min_observations(self):
        with pytest.raises(ConfigurationError):
            KalmanClockBiasPredictor(min_observations=0)

    def test_not_ready_before_min_observations(self):
        predictor = KalmanClockBiasPredictor(min_observations=3)
        predictor.observe(EPOCH, 10.0)
        assert not predictor.is_ready
        with pytest.raises(EstimationError):
            predictor.predict_bias_meters(EPOCH + 1.0)

    def test_rejects_time_going_backwards(self):
        predictor = KalmanClockBiasPredictor()
        predictor.observe(EPOCH + 10.0, 5.0)
        with pytest.raises(ConfigurationError, match="time order"):
            predictor.observe(EPOCH, 5.0)


class TestTracking:
    def test_converges_on_linear_clock(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=1e-7, drift=2e-10)
        predictor = KalmanClockBiasPredictor()
        feed_truth(predictor, clock, 120)
        t = EPOCH + 130.0
        expected = SPEED_OF_LIGHT * clock.bias_seconds(t)
        assert predictor.predict_bias_meters(t) == pytest.approx(expected, abs=0.5)

    def test_estimates_drift_state(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=0.0, drift=5e-10)
        predictor = KalmanClockBiasPredictor()
        feed_truth(predictor, clock, 300)
        assert predictor.state[1] == pytest.approx(5e-10, rel=0.2)

    def test_filters_measurement_noise(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=1e-7, drift=2e-10)
        predictor = KalmanClockBiasPredictor(measurement_noise_seconds=1e-8)
        feed_truth(predictor, clock, 300, noise_sigma=2.0, seed=3)
        t = EPOCH + 301.0
        expected = SPEED_OF_LIGHT * clock.bias_seconds(t)
        # Prediction error well under the 2 m measurement noise.
        assert abs(predictor.predict_bias_meters(t) - expected) < 1.0

    def test_same_timestamp_observation_is_update_only(self):
        predictor = KalmanClockBiasPredictor()
        predictor.observe(EPOCH, 10.0)
        predictor.observe(EPOCH, 12.0)  # same instant; must not crash
        assert predictor.is_ready


class TestResetHandling:
    def test_threshold_reset_absorbed(self):
        clock = ThresholdClock(
            epoch=EPOCH, initial_offset_seconds=9.9e-4, drift=1e-7,
            threshold_seconds=1e-3,
        )
        predictor = KalmanClockBiasPredictor()
        # Reset occurs at dt = 0.1e-4 / 1e-7 = 100 s.
        feed_truth(predictor, clock, 300)
        assert predictor.reset_count >= 1
        t = EPOCH + 301.0
        expected = SPEED_OF_LIGHT * clock.bias_seconds(t)
        assert predictor.predict_bias_meters(t) == pytest.approx(expected, abs=1.0)
