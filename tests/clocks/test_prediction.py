"""Unit tests for clock bias predictors."""

import pytest

from repro.clocks import (
    LinearClockBiasPredictor,
    OracleClockBiasPredictor,
    SteeringClock,
    ThresholdClock,
    ZeroClockBiasPredictor,
)
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, EstimationError
from repro.timebase import GpsTime

EPOCH = GpsTime(week=1540, seconds_of_week=0.0)


class TestZeroPredictor:
    def test_always_zero_and_ready(self):
        predictor = ZeroClockBiasPredictor()
        assert predictor.is_ready
        predictor.observe(EPOCH, 123.0)
        assert predictor.predict_bias_meters(EPOCH + 1000.0) == 0.0


class TestOraclePredictor:
    def test_returns_truth(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=1e-7, drift=1e-10)
        predictor = OracleClockBiasPredictor(clock)
        t = EPOCH + 500.0
        expected = SPEED_OF_LIGHT * clock.bias_seconds(t)
        assert predictor.predict_bias_meters(t) == pytest.approx(expected)
        assert predictor.is_ready


class TestLinearPredictorValidation:
    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            LinearClockBiasPredictor(mode="fancy")

    def test_rejects_tiny_warmup(self):
        with pytest.raises(ConfigurationError):
            LinearClockBiasPredictor(warmup_samples=1)

    def test_not_ready_initially(self):
        predictor = LinearClockBiasPredictor(warmup_samples=3)
        assert not predictor.is_ready
        with pytest.raises(EstimationError, match="warming up"):
            predictor.predict_bias_meters(EPOCH)


class TestLinearPredictorFit:
    def _train(self, predictor, clock, count, start=0.0, step=1.0):
        for i in range(count):
            t = EPOCH + (start + i * step)
            predictor.observe(t, SPEED_OF_LIGHT * clock.bias_seconds(t))

    def test_recovers_exact_line(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=5e-8, drift=3e-10)
        predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=10)
        self._train(predictor, clock, 10)
        assert predictor.is_ready
        assert predictor.offset_seconds == pytest.approx(5e-8, rel=1e-6)
        assert predictor.drift == pytest.approx(3e-10, rel=1e-6)
        t = EPOCH + 5000.0
        expected = SPEED_OF_LIGHT * clock.bias_seconds(t)
        assert predictor.predict_bias_meters(t) == pytest.approx(expected, abs=1e-6)

    def test_steering_mode_refines_with_later_observations(self):
        """Steering mode keeps folding NR-derived biases into the fit:
        a noisy warm-up drift estimate tightens as the observation
        baseline grows (this is what keeps long open-loop spans flat
        in Fig 5.2)."""
        clock = SteeringClock(epoch=EPOCH, offset_seconds=5e-8, drift=3e-10)
        predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=5)
        rng = __import__("numpy").random.default_rng(0)
        # Noisy warm-up over a tiny 5 s baseline: drift is poorly known.
        for i in range(5):
            t = EPOCH + float(i)
            noisy = SPEED_OF_LIGHT * clock.bias_seconds(t) + rng.normal(0.0, 1.0)
            predictor.observe(t, noisy)
        horizon = EPOCH + 5000.0
        truth = SPEED_OF_LIGHT * clock.bias_seconds(horizon)
        error_before = abs(predictor.predict_bias_meters(horizon) - truth)
        # Feed periodic recalibration observations over a long baseline.
        for i in range(10, 2000, 60):
            t = EPOCH + float(i)
            noisy = SPEED_OF_LIGHT * clock.bias_seconds(t) + rng.normal(0.0, 1.0)
            predictor.observe(t, noisy)
        error_after = abs(predictor.predict_bias_meters(horizon) - truth)
        assert error_after < error_before

    def test_threshold_mode_freezes_line_between_resets(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=5e-8, drift=3e-10)
        predictor = LinearClockBiasPredictor(mode="threshold", warmup_samples=5)
        self._train(predictor, clock, 5)
        before = predictor.predict_bias_meters(EPOCH + 100.0)
        # A small (sub-reset-threshold) deviation must not move the line.
        predictor.observe(
            EPOCH + 50.0, SPEED_OF_LIGHT * (clock.bias_seconds(EPOCH + 50.0) + 1e-8)
        )
        assert predictor.predict_bias_meters(EPOCH + 100.0) == before

    def test_degenerate_window_falls_back_to_constant(self):
        predictor = LinearClockBiasPredictor(warmup_samples=3)
        for _ in range(3):
            predictor.observe(EPOCH, 30.0)  # same instant thrice
        assert predictor.is_ready
        assert predictor.drift == 0.0
        assert predictor.predict_bias_meters(EPOCH + 10.0) == pytest.approx(30.0)


class TestThresholdResetHandling:
    def test_detects_reset_and_reanchors(self):
        clock = ThresholdClock(
            epoch=EPOCH, initial_offset_seconds=9.0e-4, drift=1e-7,
            threshold_seconds=1e-3,
        )
        predictor = LinearClockBiasPredictor(mode="threshold", warmup_samples=10)
        # Warm up before the reset (reset at dt = 1e-4/1e-7 = 1000 s).
        for i in range(10):
            t = EPOCH + float(i)
            predictor.observe(t, SPEED_OF_LIGHT * clock.bias_seconds(t))
        assert predictor.is_ready
        assert predictor.reset_count == 0

        # Cross the reset and feed one post-reset observation.
        t_after = EPOCH + 1500.0
        predictor.observe(t_after, SPEED_OF_LIGHT * clock.bias_seconds(t_after))
        assert predictor.reset_count == 1
        # Prediction now tracks the post-reset branch.
        t_check = EPOCH + 1600.0
        expected = SPEED_OF_LIGHT * clock.bias_seconds(t_check)
        assert predictor.predict_bias_meters(t_check) == pytest.approx(
            expected, abs=1.0
        )

    def test_small_deviation_is_not_a_reset(self):
        clock = SteeringClock(epoch=EPOCH, offset_seconds=5e-8, drift=1e-10)
        predictor = LinearClockBiasPredictor(mode="threshold", warmup_samples=5)
        for i in range(5):
            t = EPOCH + float(i)
            predictor.observe(t, SPEED_OF_LIGHT * clock.bias_seconds(t))
        predictor.observe(EPOCH + 10.0, SPEED_OF_LIGHT * (clock.bias_seconds(EPOCH + 10.0) + 1e-8))
        assert predictor.reset_count == 0

    def test_mode_property(self):
        assert LinearClockBiasPredictor(mode="threshold").mode == "threshold"


class TestReanchor:
    def test_threshold_reanchor_corrects_exact_threshold_step(self):
        """A sawtooth step exactly equal to the jump-detection threshold
        slips past observe(); reanchor() must fix it regardless."""
        predictor = LinearClockBiasPredictor(
            mode="threshold", warmup_samples=3,
            reset_jump_threshold_seconds=5e-5,
        )
        clock = SteeringClock(epoch=EPOCH, offset_seconds=1e-7, drift=1e-10)
        for i in range(3):
            t = EPOCH + float(i)
            predictor.observe(t, SPEED_OF_LIGHT * clock.bias_seconds(t))
        # A step of exactly the detection threshold: observe() ignores it.
        t = EPOCH + 10.0
        stepped = SPEED_OF_LIGHT * (clock.bias_seconds(t) - 5e-5)
        predictor.observe(t, stepped)
        assert predictor.predict_bias_meters(t) != pytest.approx(stepped, abs=1.0)
        # reanchor() applies it unconditionally.
        predictor.reanchor(t, stepped)
        assert predictor.predict_bias_meters(t) == pytest.approx(stepped, abs=1e-6)
        assert predictor.reset_count == 1

    def test_steering_reanchor_joins_regression(self):
        predictor = LinearClockBiasPredictor(mode="steering", warmup_samples=3)
        clock = SteeringClock(epoch=EPOCH, offset_seconds=1e-7, drift=2e-10)
        for i in range(3):
            t = EPOCH + float(i)
            predictor.observe(t, SPEED_OF_LIGHT * clock.bias_seconds(t))
        t = EPOCH + 100.0
        truth = SPEED_OF_LIGHT * clock.bias_seconds(t)
        predictor.reanchor(t, truth)
        # Steering clocks do not step; reanchor behaves like observe.
        assert predictor.reset_count == 0
        assert predictor.predict_bias_meters(t) == pytest.approx(truth, abs=0.5)

    def test_reanchor_before_warmup_counts_as_observation(self):
        predictor = LinearClockBiasPredictor(mode="threshold", warmup_samples=2)
        predictor.reanchor(EPOCH, 10.0)
        predictor.reanchor(EPOCH + 1.0, 11.0)
        assert predictor.is_ready
