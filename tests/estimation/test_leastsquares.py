"""Unit + property tests for OLS/WLS/GLS.

The property tests verify the defining optimality conditions rather
than comparing against reference outputs: OLS residuals are orthogonal
to the column space; GLS residuals are M^-1-orthogonal; GLS with the
identity covariance degenerates to OLS (Theorem 4.1/4.2 discussion).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimationError
from repro.estimation import (
    gls_solve,
    gls_solve_full,
    ols_solve,
    ols_solve_full,
    weighted_solve,
)


def random_system(rows, cols, seed):
    rng = np.random.default_rng(seed)
    design = rng.normal(size=(rows, cols))
    observations = rng.normal(size=rows)
    return design, observations


def random_spd(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


system_params = st.tuples(
    st.integers(min_value=4, max_value=12),  # rows
    st.integers(min_value=1, max_value=4),  # cols
    st.integers(min_value=0, max_value=1000),  # seed
)


class TestOls:
    def test_exact_system_recovered(self):
        design = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        x_true = np.array([2.0, -3.0])
        solution = ols_solve(design, design @ x_true)
        np.testing.assert_allclose(solution, x_true, atol=1e-12)

    def test_matches_lstsq(self):
        design, observations = random_system(10, 3, 0)
        np.testing.assert_allclose(
            ols_solve(design, observations),
            np.linalg.lstsq(design, observations, rcond=None)[0],
            atol=1e-10,
        )

    def test_rejects_underdetermined(self):
        with pytest.raises(EstimationError, match="under-determined"):
            ols_solve(np.ones((2, 3)), np.ones(2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(EstimationError):
            ols_solve(np.ones((4, 2)), np.ones(3))

    def test_rejects_rank_deficient(self):
        design = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])
        with pytest.raises(EstimationError):
            ols_solve(design, np.ones(3))

    def test_rejects_nonfinite(self):
        with pytest.raises(EstimationError):
            ols_solve(np.array([[np.nan, 1.0], [1.0, 1.0]]), np.ones(2))

    @given(system_params)
    @settings(max_examples=100)
    def test_residual_orthogonality(self, params):
        rows, cols, seed = params
        design, observations = random_system(rows, cols, seed)
        result = ols_solve_full(design, observations)
        # Normal equations: A^T (b - A x) = 0.
        gradient = design.T @ result.residuals
        np.testing.assert_allclose(gradient, 0.0, atol=1e-8)

    @given(system_params)
    @settings(max_examples=50)
    def test_cost_is_minimal(self, params):
        rows, cols, seed = params
        design, observations = random_system(rows, cols, seed)
        result = ols_solve_full(design, observations)
        rng = np.random.default_rng(seed + 99)
        for _ in range(5):
            perturbed = result.solution + rng.normal(scale=1e-3, size=cols)
            alt = observations - design @ perturbed
            assert float(alt @ alt) >= result.cost - 1e-12


class TestWeighted:
    def test_uniform_weights_match_ols(self):
        design, observations = random_system(8, 3, 4)
        np.testing.assert_allclose(
            weighted_solve(design, observations, np.full(8, 3.7)),
            ols_solve(design, observations),
            atol=1e-9,
        )

    def test_heavy_weight_pins_equation(self):
        design = np.array([[1.0], [1.0]])
        observations = np.array([0.0, 10.0])
        weights = np.array([1e9, 1.0])
        solution = weighted_solve(design, observations, weights)
        assert abs(solution[0]) < 1e-6  # pinned to the first equation

    def test_rejects_nonpositive_weights(self):
        design, observations = random_system(5, 2, 1)
        with pytest.raises(EstimationError, match="positive"):
            weighted_solve(design, observations, np.array([1.0, 0.0, 1.0, 1.0, 1.0]))

    def test_rejects_weight_shape(self):
        design, observations = random_system(5, 2, 1)
        with pytest.raises(EstimationError):
            weighted_solve(design, observations, np.ones(4))


class TestGls:
    def test_identity_covariance_equals_ols(self):
        design, observations = random_system(9, 3, 7)
        np.testing.assert_allclose(
            gls_solve(design, observations, np.eye(9)),
            ols_solve(design, observations),
            atol=1e-9,
        )

    def test_scaled_covariance_invariant(self):
        design, observations = random_system(9, 3, 8)
        covariance = random_spd(9, 9)
        np.testing.assert_allclose(
            gls_solve(design, observations, covariance),
            gls_solve(design, observations, 5.0 * covariance),
            atol=1e-8,
        )

    def test_matches_textbook_formula(self):
        design, observations = random_system(7, 2, 10)
        covariance = random_spd(7, 11)
        m_inv = np.linalg.inv(covariance)
        expected = np.linalg.solve(
            design.T @ m_inv @ design, design.T @ m_inv @ observations
        )
        np.testing.assert_allclose(
            gls_solve(design, observations, covariance), expected, atol=1e-9
        )

    def test_rejects_indefinite_covariance(self):
        design, observations = random_system(5, 2, 12)
        with pytest.raises(EstimationError, match="positive definite"):
            gls_solve(design, observations, -np.eye(5))

    def test_rejects_covariance_shape(self):
        design, observations = random_system(5, 2, 12)
        with pytest.raises(EstimationError):
            gls_solve(design, observations, np.eye(4))

    @given(system_params)
    @settings(max_examples=50)
    def test_whitened_orthogonality(self, params):
        rows, cols, seed = params
        design, observations = random_system(rows, cols, seed)
        covariance = random_spd(rows, seed + 1)
        result = gls_solve_full(design, observations, covariance)
        # GLS normal equations: A^T M^-1 (b - A x) = 0.
        gradient = design.T @ np.linalg.solve(covariance, result.residuals)
        np.testing.assert_allclose(gradient, 0.0, atol=1e-6)

    @given(system_params)
    @settings(max_examples=30)
    def test_gls_beats_ols_in_mahalanobis_cost(self, params):
        rows, cols, seed = params
        design, observations = random_system(rows, cols, seed)
        covariance = random_spd(rows, seed + 2)
        gls_result = gls_solve_full(design, observations, covariance)
        ols_result = ols_solve_full(design, observations)
        ols_cost = float(
            ols_result.residuals @ np.linalg.solve(covariance, ols_result.residuals)
        )
        assert gls_result.cost <= ols_cost + 1e-8


class TestGlsWhitened:
    def test_solution_matches_gls_solve(self):
        from repro.estimation import gls_solve_whitened

        design, observations = random_system(9, 3, 21)
        covariance = random_spd(9, 22)
        solution, _norm = gls_solve_whitened(design, observations, covariance)
        np.testing.assert_allclose(
            solution, gls_solve(design, observations, covariance), atol=1e-12
        )

    def test_whitened_norm_squares_to_mahalanobis_cost(self):
        from repro.estimation import gls_solve_whitened, gls_solve_full

        design, observations = random_system(9, 3, 23)
        covariance = random_spd(9, 24)
        _solution, norm = gls_solve_whitened(design, observations, covariance)
        full = gls_solve_full(design, observations, covariance)
        assert norm**2 == pytest.approx(full.cost, rel=1e-9)

    def test_identity_covariance_matches_ols_residual_norm(self):
        from repro.estimation import gls_solve_whitened

        design, observations = random_system(7, 2, 25)
        _solution, norm = gls_solve_whitened(design, observations, np.eye(7))
        ols = ols_solve_full(design, observations)
        assert norm == pytest.approx(np.linalg.norm(ols.residuals), rel=1e-9)


class TestWeightedGlsEquivalence:
    def test_weighted_equals_gls_with_diagonal_covariance(self):
        """WLS with weights w_i is GLS with covariance diag(1/w_i)."""
        from repro.estimation import gls_solve

        design, observations = random_system(9, 3, 30)
        rng = np.random.default_rng(31)
        weights = rng.uniform(0.5, 4.0, size=9)
        np.testing.assert_allclose(
            weighted_solve(design, observations, weights),
            gls_solve(design, observations, np.diag(1.0 / weights)),
            atol=1e-9,
        )
