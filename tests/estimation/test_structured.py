"""Tests for the diag-plus-rank-one (Sherman-Morrison) GLS fast path."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import (
    apply_inverse_diag_rank1,
    batched_apply_inverse_diag_rank1,
    batched_gls_solve_diag_rank1,
    gls_solve_diag_rank1,
    gls_solve_whitened,
)


def _random_system(rng, k=8, p=3):
    design = rng.normal(size=(k, p)) * 1e7
    observations = rng.normal(size=k) * 1e7
    diag = rng.uniform(1.0, 4.0, size=k) * 1e14
    scale = float(rng.uniform(1.0, 4.0) * 1e14)
    return design, observations, diag, scale


def _dense(diag, scale):
    return np.diag(diag) + scale * np.ones((len(diag), len(diag)))


class TestApplyInverse:
    def test_matches_dense_inverse_on_vector(self):
        rng = np.random.default_rng(7)
        _, vector, diag, scale = _random_system(rng)
        expected = np.linalg.solve(_dense(diag, scale), vector)
        np.testing.assert_allclose(
            apply_inverse_diag_rank1(diag, scale, vector), expected, rtol=1e-10
        )

    def test_matches_dense_inverse_on_matrix(self):
        rng = np.random.default_rng(8)
        design, _, diag, scale = _random_system(rng)
        expected = np.linalg.solve(_dense(diag, scale), design)
        np.testing.assert_allclose(
            apply_inverse_diag_rank1(diag, scale, design), expected, rtol=1e-10
        )

    def test_zero_scale_reduces_to_diagonal(self):
        vector = np.array([2.0, 4.0, 8.0])
        diag = np.array([2.0, 4.0, 8.0])
        np.testing.assert_allclose(
            apply_inverse_diag_rank1(diag, 0.0, vector), np.ones(3)
        )

    def test_rejects_nonpositive_diagonal(self):
        with pytest.raises(EstimationError, match="positive"):
            apply_inverse_diag_rank1(np.array([1.0, 0.0]), 1.0, np.ones(2))

    def test_rejects_negative_scale(self):
        with pytest.raises(EstimationError, match="non-negative"):
            apply_inverse_diag_rank1(np.ones(2), -1.0, np.ones(2))


class TestScalarSolve:
    def test_matches_dense_gls(self):
        rng = np.random.default_rng(9)
        for _ in range(5):
            design, observations, diag, scale = _random_system(rng)
            fast_x, fast_norm = gls_solve_diag_rank1(design, observations, diag, scale)
            dense_x, dense_norm = gls_solve_whitened(
                design, observations, _dense(diag, scale)
            )
            np.testing.assert_allclose(fast_x, dense_x, rtol=1e-8)
            assert fast_norm == pytest.approx(dense_norm, rel=1e-8)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(EstimationError, match="inconsistent"):
            gls_solve_diag_rank1(np.ones((4, 3)), np.ones(5), np.ones(4), 1.0)
        with pytest.raises(EstimationError, match="diag"):
            gls_solve_diag_rank1(np.ones((4, 3)), np.ones(4), np.ones(3), 1.0)


class TestBatchedSolve:
    def test_matches_scalar_solve_per_system(self):
        rng = np.random.default_rng(10)
        systems = [_random_system(rng) for _ in range(6)]
        design = np.stack([s[0] for s in systems])
        observations = np.stack([s[1] for s in systems])
        diag = np.stack([s[2] for s in systems])
        scale = np.array([s[3] for s in systems])
        solutions, norms = batched_gls_solve_diag_rank1(
            design, observations, diag, scale
        )
        for i, (a, b, d, s) in enumerate(systems):
            x, norm = gls_solve_diag_rank1(a, b, d, s)
            np.testing.assert_allclose(solutions[i], x, rtol=1e-8)
            assert norms[i] == pytest.approx(norm, rel=1e-8)

    def test_batched_apply_matches_scalar(self):
        rng = np.random.default_rng(11)
        design, _, diag, scale = _random_system(rng)
        stacked = batched_apply_inverse_diag_rank1(
            diag[None, :], np.array([scale]), design[None, :, :]
        )
        np.testing.assert_allclose(
            stacked[0], apply_inverse_diag_rank1(diag, scale, design), rtol=1e-12
        )

    def test_rejects_degenerate_design(self):
        design = np.zeros((2, 5, 3))
        observations = np.ones((2, 5))
        with pytest.raises(EstimationError, match="degenerate"):
            batched_gls_solve_diag_rank1(
                design, observations, np.ones((2, 5)), np.ones(2)
            )
