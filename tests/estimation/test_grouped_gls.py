"""The grouped diag+rank-K GLS kernel against dense references.

``Psi = diag(d) + sum_g s_g 1_g 1_g^T`` is the multi-constellation
difference covariance: one rank-one block per base satellite.  The
structured Sherman-Morrison path must agree with an explicit dense
solve to float64 round-off, and collapse to the single-group rank-1
kernel when K=1.
"""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation import (
    batched_gls_solve_diag_rank1,
    batched_gls_solve_grouped_rank1,
)


def random_grouped_system(n=5, k=9, p=5, k_groups=2, seed=0):
    rng = np.random.default_rng(seed)
    design = rng.normal(size=(n, k, p))
    observations = rng.normal(size=(n, k))
    diag = rng.uniform(0.5, 2.0, size=(n, k))
    scales = rng.uniform(0.5, 2.0, size=(n, k_groups))
    # Contiguous groups, every group non-empty (as the difference
    # system builder produces them).
    bounds = np.linspace(0, k, k_groups + 1).astype(int)
    groups = np.concatenate(
        [np.full(bounds[i + 1] - bounds[i], i) for i in range(k_groups)]
    )
    return design, observations, diag, scales, groups


def dense_reference(design, observations, diag, scales, groups):
    n, k, _ = design.shape
    solutions, norms = [], []
    for index in range(n):
        psi = np.diag(diag[index])
        for group in range(scales.shape[1]):
            ones = (groups == group).astype(float)
            psi += scales[index, group] * np.outer(ones, ones)
        psi_inv = np.linalg.inv(psi)
        gram = design[index].T @ psi_inv @ design[index]
        moment = design[index].T @ psi_inv @ observations[index]
        solution = np.linalg.solve(gram, moment)
        residual = observations[index] - design[index] @ solution
        solutions.append(solution)
        norms.append(np.sqrt(residual @ psi_inv @ residual))
    return np.stack(solutions), np.array(norms)


class TestGroupedGls:
    @pytest.mark.parametrize("k_groups", [1, 2, 3, 4])
    def test_matches_dense_reference(self, k_groups):
        system = random_grouped_system(k=3 + 3 * k_groups, k_groups=k_groups)
        solutions, norms = batched_gls_solve_grouped_rank1(*system)
        expected_solutions, expected_norms = dense_reference(*system)
        assert np.allclose(solutions, expected_solutions, atol=1e-9)
        assert np.allclose(norms, expected_norms, atol=1e-9)

    def test_dense_method_matches_structured(self):
        system = random_grouped_system(k_groups=3, k=12, seed=4)
        structured = batched_gls_solve_grouped_rank1(*system)
        dense = batched_gls_solve_grouped_rank1(*system, method="dense")
        assert np.allclose(structured[0], dense[0], atol=1e-9)
        assert np.allclose(structured[1], dense[1], atol=1e-9)

    def test_single_group_matches_rank1_kernel(self):
        design, observations, diag, scales, groups = random_grouped_system(
            k_groups=1, seed=7
        )
        grouped = batched_gls_solve_grouped_rank1(
            design, observations, diag, scales, groups
        )
        rank1 = batched_gls_solve_diag_rank1(
            design, observations, diag, scales[:, 0]
        )
        assert np.allclose(grouped[0], rank1[0], atol=1e-10)
        assert np.allclose(grouped[1], rank1[1], atol=1e-10)

    def test_rejects_unknown_method(self):
        system = random_grouped_system()
        with pytest.raises(EstimationError, match="method"):
            batched_gls_solve_grouped_rank1(*system, method="qr")

    def test_rejects_degenerate_design(self):
        design, observations, diag, scales, groups = random_grouped_system()
        design[:, :, 1] = design[:, :, 0]  # rank-deficient columns
        with pytest.raises(EstimationError, match="degenerate"):
            batched_gls_solve_grouped_rank1(
                design, observations, diag, scales, groups
            )
