"""Differential regression: Sherman-Morrison GLS vs dense Cholesky.

The eq. 4-26 fast path (:func:`gls_solve_diag_rank1`) and the dense
:func:`gls_solve_whitened` answer the *same* mathematical problem by
different factorizations; this suite pins their agreement across 50
seeded random diag-plus-rank-one covariances, at GPS-realistic scales,
so a refactor of either path that silently changes the answer fails
loudly here before it shows up as a positioning drift.
"""

import numpy as np
import pytest

from repro.estimation import (
    batched_gls_solve_diag_rank1,
    gls_solve,
    gls_solve_diag_rank1,
    gls_solve_whitened,
)

#: ISSUE acceptance bound: both paths agree to 1e-9 (relative).  The
#: two factorizations share O(eps * cond) rounding, so with the mild
#: condition numbers below the observed spread is ~1e-12; 1e-9 leaves
#: three decades of headroom without masking a real algorithmic change.
AGREEMENT_RTOL = 1e-9

#: Trials required by the issue checklist.
TRIALS = 50


def _random_case(seed):
    """One seeded diag+rank-1 GLS system at GPS difference scales.

    Sizes sweep the real constellation range (k = 4..12 equations,
    3 unknowns); design rows are O(1) unit line-of-sight differences,
    observations O(1e5) linearized range differences, and the
    covariance components O(rho^2) = O(1e14) like eq. 4-26.
    """
    rng = np.random.default_rng(seed)
    k = int(rng.integers(4, 13))
    design = rng.uniform(-2.0, 2.0, size=(k, 3))
    observations = rng.uniform(-1.0, 1.0, size=k) * 1.0e5
    diag = rng.uniform(0.5, 4.0, size=k) * 1.0e14
    # Every fifth trial degenerates the rank-one term to zero: the
    # Sherman-Morrison correction must vanish cleanly, not blow up.
    scale = 0.0 if seed % 5 == 4 else float(rng.uniform(0.5, 4.0) * 1.0e14)
    return design, observations, diag, scale


def _dense(diag, scale):
    return np.diag(diag) + scale * np.ones((len(diag), len(diag)))


class TestShermanMorrisonVsDenseCholesky:
    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_solutions_agree(self, seed):
        design, observations, diag, scale = _random_case(seed)
        fast, _ = gls_solve_diag_rank1(design, observations, diag, scale)
        dense = gls_solve(design, observations, _dense(diag, scale))
        np.testing.assert_allclose(fast, dense, rtol=AGREEMENT_RTOL)

    @pytest.mark.parametrize("seed", range(TRIALS))
    def test_whitened_residual_norms_agree(self, seed):
        design, observations, diag, scale = _random_case(seed)
        _, fast_norm = gls_solve_diag_rank1(design, observations, diag, scale)
        _, dense_norm = gls_solve_whitened(design, observations, _dense(diag, scale))
        assert fast_norm == pytest.approx(dense_norm, rel=AGREEMENT_RTOL)

    def test_batched_path_matches_dense_per_row(self):
        # The vectorized stack must agree with N independent dense
        # solves — same bound, so the three implementations pin each
        # other pairwise.
        n, k = 12, 8
        rng = np.random.default_rng(123)
        design = rng.uniform(-2.0, 2.0, size=(n, k, 3))
        observations = rng.uniform(-1.0, 1.0, size=(n, k)) * 1.0e5
        diag = rng.uniform(0.5, 4.0, size=(n, k)) * 1.0e14
        scale = rng.uniform(0.5, 4.0, size=n) * 1.0e14
        solutions, norms = batched_gls_solve_diag_rank1(
            design, observations, diag, scale
        )
        for row in range(n):
            expected, expected_norm = gls_solve_whitened(
                design[row], observations[row], _dense(diag[row], scale[row])
            )
            np.testing.assert_allclose(
                solutions[row], expected, rtol=AGREEMENT_RTOL
            )
            assert norms[row] == pytest.approx(expected_norm, rel=AGREEMENT_RTOL)

    def test_observed_agreement_has_headroom(self):
        # Guard the guard: if the typical spread creeps toward the
        # 1e-9 bound (e.g. a worse-conditioned refactor), surface it
        # before individual trials start flaking.
        worst = 0.0
        for seed in range(TRIALS):
            design, observations, diag, scale = _random_case(seed)
            fast, _ = gls_solve_diag_rank1(design, observations, diag, scale)
            dense = gls_solve(design, observations, _dense(diag, scale))
            denom = max(float(np.max(np.abs(dense))), 1e-30)
            worst = max(worst, float(np.max(np.abs(fast - dense))) / denom)
        assert worst < AGREEMENT_RTOL / 10.0
