"""Unit + property tests for the linear-algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import EstimationError
from repro.estimation import cholesky_solve, condition_number, is_positive_definite


def random_spd(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestCholeskySolve:
    def test_identity(self):
        b = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(cholesky_solve(np.eye(3), b), b)

    def test_matches_numpy_solve(self):
        matrix = random_spd(5, 0)
        rhs = np.arange(5.0)
        np.testing.assert_allclose(
            cholesky_solve(matrix, rhs), np.linalg.solve(matrix, rhs), rtol=1e-10
        )

    def test_rejects_indefinite(self):
        with pytest.raises(EstimationError, match="positive definite"):
            cholesky_solve(np.array([[1.0, 0.0], [0.0, -1.0]]), np.ones(2))

    def test_rejects_singular(self):
        with pytest.raises(EstimationError):
            cholesky_solve(np.zeros((2, 2)), np.ones(2))

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=100))
    @settings(max_examples=50)
    def test_residual_is_small(self, n, seed):
        matrix = random_spd(n, seed)
        rhs = np.random.default_rng(seed + 1).normal(size=n)
        x = cholesky_solve(matrix, rhs)
        np.testing.assert_allclose(matrix @ x, rhs, atol=1e-8)


class TestConditionNumber:
    def test_identity_is_one(self):
        assert condition_number(np.eye(4)) == pytest.approx(1.0)

    def test_scaling_invariant(self):
        matrix = random_spd(3, 1)
        assert condition_number(2.0 * matrix) == pytest.approx(
            condition_number(matrix), rel=1e-9
        )

    def test_singular_is_infinite_or_huge(self):
        assert condition_number(np.zeros((2, 2))) > 1e15


class TestIsPositiveDefinite:
    def test_spd_true(self):
        assert is_positive_definite(random_spd(4, 2))

    def test_indefinite_false(self):
        assert not is_positive_definite(np.diag([1.0, -1.0]))

    def test_asymmetric_false(self):
        assert not is_positive_definite(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_nonsquare_false(self):
        assert not is_positive_definite(np.ones((2, 3)))

    def test_semidefinite_false(self):
        # Rank-1 PSD matrix is not PD.
        v = np.array([[1.0], [1.0]])
        assert not is_positive_definite(v @ v.T)

    def test_paper_psi_matrix_is_pd(self):
        # The eq. 4-26 structure: rho1^2 everywhere + rho_i^2 on the diagonal.
        ranges_sq = np.array([4.1e14, 4.3e14, 4.6e14, 5.0e14])
        base_sq = 4.2e14
        psi = np.full((4, 4), base_sq) + np.diag(ranges_sq)
        assert is_positive_definite(psi)
