"""Fuzz tests: arbitrary corruption of RINEX input must fail loudly.

The parsers' contract is that malformed input raises
:class:`RinexError` (or produces a valid parse of salvageable content)
— never a hang, crash, or silently wrong structure.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import RinexError
from repro.rinex import (
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    write_navigation_file,
    write_observation_file,
)
from repro.stations import get_station


@pytest.fixture(scope="module")
def valid_files(tmp_path_factory, srzn_dataset):
    tmp = tmp_path_factory.mktemp("fuzz")
    station = get_station("SRZN")
    header = ObservationHeader(
        marker_name=station.site_id, approx_position=station.ecef, interval=1.0
    )
    write_observation_file(tmp / "v.obs", header, srzn_dataset.realize(max_epochs=3))
    write_navigation_file(tmp / "v.nav", srzn_dataset.constellation.ephemerides()[:5])
    return (tmp / "v.obs").read_text(), (tmp / "v.nav").read_text(), tmp


def _mutate(text: str, position: int, replacement: str) -> str:
    position = position % max(len(text), 1)
    return text[:position] + replacement + text[position + len(replacement):]


class TestObservationFuzz:
    @given(
        position=st.integers(min_value=0, max_value=10_000),
        replacement=st.text(
            alphabet="xX@#!~%0123456789. GROBSERVATION\n", min_size=1, max_size=8
        ),
    )
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_single_site_mutation_never_crashes(
        self, valid_files, tmp_path, position, replacement
    ):
        obs_text, _nav, _tmp = valid_files
        mutated = _mutate(obs_text, position, replacement)
        path = tmp_path / "m.obs"
        path.write_text(mutated)
        try:
            data = read_observation_file(path)
        except RinexError:
            return  # loud, typed failure: exactly the contract
        # If it parsed, the structure must be internally consistent.
        for record in data.records:
            assert len(record.observables) == len(record.prns)

    @given(drop=st.integers(min_value=0, max_value=40))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_truncation_never_crashes(self, valid_files, tmp_path, drop):
        obs_text, _nav, _tmp = valid_files
        lines = obs_text.splitlines()
        path = tmp_path / "t.obs"
        path.write_text("\n".join(lines[: max(1, len(lines) - drop)]))
        try:
            read_observation_file(path)
        except RinexError:
            pass


class TestNavigationFuzz:
    @given(
        position=st.integers(min_value=0, max_value=10_000),
        replacement=st.text(
            alphabet="zZ@#!~%0123456789.DE+- \n", min_size=1, max_size=8
        ),
    )
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_single_site_mutation_never_crashes(
        self, valid_files, tmp_path, position, replacement
    ):
        _obs, nav_text, _tmp = valid_files
        mutated = _mutate(nav_text, position, replacement)
        path = tmp_path / "m.nav"
        path.write_text(mutated)
        try:
            ephemerides = read_navigation_file(path)
        except (RinexError, Exception) as exc:
            # Typed errors only: RinexError or the validation errors the
            # BroadcastEphemeris constructor raises for absurd fields.
            from repro.errors import ReproError

            assert isinstance(exc, ReproError), type(exc)
            return
        for ephemeris in ephemerides:
            assert 1 <= ephemeris.prn <= 63
