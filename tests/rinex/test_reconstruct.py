"""Tests for epoch reconstruction from parsed RINEX data."""

import numpy as np
import pytest

from repro.core import NewtonRaphsonSolver
from repro.errors import RinexError
from repro.rinex import (
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    reconstruct_epochs,
    write_navigation_file,
    write_observation_file,
)
from repro.stations import get_station


@pytest.fixture(scope="module")
def roundtrip(tmp_path_factory, srzn_dataset):
    tmp = tmp_path_factory.mktemp("rinex")
    station = get_station("SRZN")
    epochs = srzn_dataset.realize(max_epochs=8)
    header = ObservationHeader(
        marker_name=station.site_id, approx_position=station.ecef, interval=1.0
    )
    write_observation_file(tmp / "s.obs", header, epochs)
    write_navigation_file(tmp / "s.nav", srzn_dataset.constellation.ephemerides())
    data = read_observation_file(tmp / "s.obs")
    ephemerides = read_navigation_file(tmp / "s.nav")
    return epochs, data, ephemerides


class TestReconstruction:
    def test_epoch_count(self, roundtrip):
        epochs, data, ephemerides = roundtrip
        rebuilt = reconstruct_epochs(data, ephemerides)
        assert len(rebuilt) == len(epochs)

    def test_satellite_positions_match_original(self, roundtrip):
        epochs, data, ephemerides = roundtrip
        rebuilt = reconstruct_epochs(data, ephemerides)
        for original, back in zip(epochs, rebuilt):
            by_prn = {obs.prn: obs for obs in original.observations}
            for obs in back.observations:
                # The receiver-side light-time estimate (rho/c instead of
                # the geometric travel time) costs only millimeters.
                distance = np.linalg.norm(obs.position - by_prn[obs.prn].position)
                assert distance < 0.01

    def test_positions_solvable(self, roundtrip):
        _epochs, data, ephemerides = roundtrip
        rebuilt = reconstruct_epochs(data, ephemerides)
        station = get_station("SRZN")
        solver = NewtonRaphsonSolver()
        for epoch in rebuilt[:3]:
            fix = solver.solve(epoch)
            assert fix.distance_to(station.position) < 30.0

    def test_elevation_sorted(self, roundtrip):
        _epochs, data, ephemerides = roundtrip
        rebuilt = reconstruct_epochs(data, ephemerides)
        for epoch in rebuilt:
            elevations = [obs.elevation for obs in epoch.observations]
            assert elevations == sorted(elevations, reverse=True)

    def test_missing_ephemeris_drops_satellite(self, roundtrip):
        epochs, data, ephemerides = roundtrip
        some_prn = epochs[0].prns[0]
        thinned = [eph for eph in ephemerides if eph.prn != some_prn]
        rebuilt = reconstruct_epochs(data, thinned)
        assert all(some_prn not in epoch.prns for epoch in rebuilt)

    def test_min_satellites_filter(self, roundtrip):
        _epochs, data, ephemerides = roundtrip
        rebuilt = reconstruct_epochs(data, ephemerides, min_satellites=100)
        assert rebuilt == []

    def test_unknown_observable_raises(self, roundtrip):
        _epochs, data, ephemerides = roundtrip
        with pytest.raises(RinexError, match="P2"):
            reconstruct_epochs(data, ephemerides, observable="P2")

    def test_latest_ephemeris_wins(self, roundtrip):
        _epochs, data, ephemerides = roundtrip
        # Duplicate every ephemeris with an older toe and a poisoned
        # orbit: the reconstruction must ignore the stale ones.
        import dataclasses

        stale = [
            dataclasses.replace(
                eph, toe=eph.toe - 7200.0, toc=eph.toc - 7200.0, m0=eph.m0 + 1.0
            )
            for eph in ephemerides
        ]
        rebuilt_clean = reconstruct_epochs(data, ephemerides)
        rebuilt_mixed = reconstruct_epochs(data, stale + list(ephemerides))
        for clean, mixed in zip(rebuilt_clean, rebuilt_mixed):
            for a, b in zip(clean.observations, mixed.observations):
                np.testing.assert_allclose(a.position, b.position, atol=1e-9)
