"""Round-trip tests for the two-observable (C1 + L1) RINEX path."""

import numpy as np
import pytest

from repro.errors import RinexError
from repro.rinex import (
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    reconstruct_epochs,
    write_navigation_file,
    write_observation_file,
)
from repro.stations import DatasetConfig, ObservationDataset, get_station


@pytest.fixture(scope="module")
def carrier_world(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("rinex_l1")
    station = get_station("FAI1")
    dataset = ObservationDataset(
        station, DatasetConfig(duration_seconds=10.0, track_carrier=True)
    )
    epochs = dataset.realize()
    header = ObservationHeader(
        marker_name=station.site_id,
        approx_position=station.ecef,
        interval=1.0,
        observation_types=("C1", "L1"),
    )
    write_observation_file(tmp / "c.obs", header, epochs)
    write_navigation_file(tmp / "c.nav", dataset.constellation.ephemerides())
    return tmp, epochs


class TestL1Roundtrip:
    def test_header_announces_both_types(self, carrier_world):
        tmp, _epochs = carrier_world
        data = read_observation_file(tmp / "c.obs")
        assert data.header.observation_types == ("C1", "L1")

    def test_both_observables_parse(self, carrier_world):
        tmp, epochs = carrier_world
        data = read_observation_file(tmp / "c.obs")
        for record, epoch in zip(data.records, epochs):
            for obs in epoch.observations:
                values = record.observables[obs.prn]
                assert "C1" in values and "L1" in values

    def test_carrier_survives_reconstruction(self, carrier_world):
        tmp, epochs = carrier_world
        rebuilt = reconstruct_epochs(
            read_observation_file(tmp / "c.obs"),
            read_navigation_file(tmp / "c.nav"),
        )
        for original, back in zip(epochs, rebuilt):
            by_prn = {obs.prn: obs for obs in original.observations}
            for obs in back.observations:
                assert obs.carrier_range is not None
                # F14.3 cycles -> ~0.2 mm quantization.
                assert obs.carrier_range == pytest.approx(
                    by_prn[obs.prn].carrier_range, abs=1e-3
                )

    def test_smoothing_works_through_the_file(self, carrier_world):
        from repro.signals import HatchFilter

        tmp, _epochs = carrier_world
        rebuilt = reconstruct_epochs(
            read_observation_file(tmp / "c.obs"),
            read_navigation_file(tmp / "c.nav"),
        )
        hatch = HatchFilter(window=10)
        last = None
        for epoch in rebuilt:
            last = hatch.smooth_epoch(epoch)
        assert last is not None
        assert set(hatch.tracked_prns) == set(last.prns)


class TestWriterValidation:
    def test_l1_header_without_carrier_data_raises(self, tmp_path, srzn_dataset):
        station = get_station("SRZN")
        header = ObservationHeader(
            marker_name=station.site_id,
            approx_position=station.ecef,
            interval=1.0,
            observation_types=("C1", "L1"),
        )
        epochs = srzn_dataset.realize(max_epochs=1)  # no carrier tracked
        with pytest.raises(RinexError, match="carrier"):
            write_observation_file(tmp_path / "x.obs", header, epochs)

    def test_unsupported_type_set_rejected(self, tmp_path, srzn_dataset):
        station = get_station("SRZN")
        header = ObservationHeader(
            marker_name=station.site_id,
            approx_position=station.ecef,
            interval=1.0,
            observation_types=("P2",),
        )
        with pytest.raises(RinexError, match="supports"):
            write_observation_file(
                tmp_path / "x.obs", header, srzn_dataset.realize(max_epochs=1)
            )
