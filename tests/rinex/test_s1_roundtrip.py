"""Round-trip tests for the C/N0 lane through RINEX (S1 + SSI flag)."""

import pytest

from repro.errors import RinexError
from repro.rinex import (
    SSI_STEP_DBHZ,
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    reconstruct_epochs,
    write_navigation_file,
    write_observation_file,
)
from repro.signals import SignalFeatureModel
from repro.stations import DatasetConfig, ObservationDataset, get_station


@pytest.fixture(scope="module")
def strength_world(tmp_path_factory):
    """A short dataset with synthesized C/N0, written as C1+S1."""
    tmp = tmp_path_factory.mktemp("rinex_s1")
    station = get_station("FAI1")
    dataset = ObservationDataset(
        station, DatasetConfig(duration_seconds=10.0)
    )
    model = SignalFeatureModel(seed=42)
    epochs = [model.attach(epoch) for epoch in dataset.realize()]
    header = ObservationHeader(
        marker_name=station.site_id,
        approx_position=station.ecef,
        interval=1.0,
        observation_types=("C1", "S1"),
    )
    write_observation_file(tmp / "s.obs", header, epochs)
    write_navigation_file(tmp / "s.nav", dataset.constellation.ephemerides())
    return tmp, epochs


class TestS1Roundtrip:
    def test_s1_observable_parses_back(self, strength_world):
        tmp, epochs = strength_world
        data = read_observation_file(tmp / "s.obs")
        assert data.header.observation_types == ("C1", "S1")
        for record, epoch in zip(data.records, epochs):
            for obs in epoch.observations:
                # F14.3 -> millidecibel quantization.
                assert record.observables[obs.prn]["S1"] == pytest.approx(
                    obs.cn0_dbhz, abs=1e-3
                )

    def test_ssi_flag_digit_written_and_parsed(self, strength_world):
        tmp, epochs = strength_world
        data = read_observation_file(tmp / "s.obs")
        for record, epoch in zip(data.records, epochs):
            for obs in epoch.observations:
                flags = record.signal_strength[obs.prn]
                expected = max(1, min(9, int(obs.cn0_dbhz // SSI_STEP_DBHZ)))
                assert flags["C1"] == expected

    def test_record_cn0_prefers_s1_over_flag(self, strength_world):
        tmp, epochs = strength_world
        data = read_observation_file(tmp / "s.obs")
        for record, epoch in zip(data.records, epochs):
            for obs in epoch.observations:
                assert record.cn0_dbhz(obs.prn) == pytest.approx(
                    obs.cn0_dbhz, abs=1e-3
                )

    def test_cn0_survives_reconstruction(self, strength_world):
        tmp, epochs = strength_world
        rebuilt = reconstruct_epochs(
            read_observation_file(tmp / "s.obs"),
            read_navigation_file(tmp / "s.nav"),
        )
        assert rebuilt
        for original, back in zip(epochs, rebuilt):
            by_prn = {obs.prn: obs for obs in original.observations}
            for obs in back.observations:
                assert obs.cn0_dbhz == pytest.approx(
                    by_prn[obs.prn].cn0_dbhz, abs=1e-3
                )


class TestSsiOnlyFallback:
    """A C1-only file still carries strength, coarsely, via the flag."""

    def test_flag_fallback_quantizes_to_ssi_steps(
        self, tmp_path, strength_world
    ):
        _tmp, epochs = strength_world
        station = get_station("FAI1")
        header = ObservationHeader(
            marker_name=station.site_id,
            approx_position=station.ecef,
            interval=1.0,
            observation_types=("C1",),
        )
        write_observation_file(tmp_path / "c.obs", header, epochs)
        data = read_observation_file(tmp_path / "c.obs")
        for record, epoch in zip(data.records, epochs):
            for obs in epoch.observations:
                got = record.cn0_dbhz(obs.prn)
                assert got is not None
                # The flag digit is the floor in 6 dB-Hz steps.
                assert abs(got - obs.cn0_dbhz) < SSI_STEP_DBHZ

    def test_no_cn0_means_blank_flags_and_none(self, tmp_path, srzn_dataset):
        station = get_station("SRZN")
        header = ObservationHeader(
            marker_name=station.site_id,
            approx_position=station.ecef,
            interval=1.0,
            observation_types=("C1",),
        )
        epochs = srzn_dataset.realize(max_epochs=2)  # no C/N0 attached
        write_observation_file(tmp_path / "n.obs", header, epochs)
        data = read_observation_file(tmp_path / "n.obs")
        for record in data.records:
            assert record.signal_strength == {}
            for prn in record.prns:
                assert record.cn0_dbhz(prn) is None


class TestWriterValidation:
    def test_s1_header_without_cn0_raises(self, tmp_path, srzn_dataset):
        station = get_station("SRZN")
        header = ObservationHeader(
            marker_name=station.site_id,
            approx_position=station.ecef,
            interval=1.0,
            observation_types=("C1", "S1"),
        )
        epochs = srzn_dataset.realize(max_epochs=1)
        with pytest.raises(RinexError, match="C/N0"):
            write_observation_file(tmp_path / "x.obs", header, epochs)

    def test_malformed_ssi_flag_rejected(self, tmp_path, strength_world):
        tmp, _epochs = strength_world
        lines = (tmp / "s.obs").read_text().splitlines()
        # Corrupt the first observation line's C1 SSI column.
        body = next(
            i
            for i, line in enumerate(lines)
            if "END OF HEADER" in line
        )
        target = body + 2  # epoch line, then first satellite
        line = lines[target]
        lines[target] = line[:15] + "x" + line[16:]
        broken = tmp_path / "bad.obs"
        broken.write_text("\n".join(lines) + "\n")
        with pytest.raises(RinexError, match="SSI"):
            read_observation_file(broken)
