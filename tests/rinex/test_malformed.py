"""Failure-injection tests: malformed RINEX input must fail loudly."""

import pytest

from repro.errors import RinexError
from repro.rinex import (
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    write_navigation_file,
    write_observation_file,
)
from repro.stations import get_station


@pytest.fixture
def valid_obs_file(tmp_path, srzn_dataset):
    station = get_station("SRZN")
    header = ObservationHeader(
        marker_name=station.site_id, approx_position=station.ecef, interval=1.0
    )
    path = tmp_path / "valid.obs"
    write_observation_file(path, header, srzn_dataset.realize(max_epochs=3))
    return path


@pytest.fixture
def valid_nav_file(tmp_path, srzn_dataset):
    path = tmp_path / "valid.nav"
    write_navigation_file(path, srzn_dataset.constellation.ephemerides()[:3])
    return path


class TestObservationFailures:
    def test_missing_end_of_header(self, tmp_path, valid_obs_file):
        lines = valid_obs_file.read_text().splitlines()
        broken = tmp_path / "broken.obs"
        broken.write_text(
            "\n".join(line for line in lines if "END OF HEADER" not in line)
        )
        with pytest.raises(RinexError, match="END OF HEADER"):
            read_observation_file(broken)

    def test_truncated_observations(self, tmp_path, valid_obs_file):
        lines = valid_obs_file.read_text().splitlines()
        broken = tmp_path / "broken.obs"
        broken.write_text("\n".join(lines[:-3]))  # drop trailing obs lines
        with pytest.raises(RinexError, match="truncated"):
            read_observation_file(broken)

    def test_corrupted_epoch_line(self, tmp_path, valid_obs_file):
        lines = valid_obs_file.read_text().splitlines()
        for index, line in enumerate(lines):
            if line.startswith(" 0") and "G" in line[32:]:
                lines[index] = " xx" + line[3:]
                break
        broken = tmp_path / "broken.obs"
        broken.write_text("\n".join(lines))
        with pytest.raises(RinexError, match="epoch line"):
            read_observation_file(broken)

    def test_corrupted_observable(self, tmp_path, valid_obs_file):
        lines = valid_obs_file.read_text().splitlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if stripped and stripped[0].isdigit() and "." in stripped and "G" not in line:
                lines[index] = "      garbage."
                break
        broken = tmp_path / "broken.obs"
        broken.write_text("\n".join(lines))
        with pytest.raises(RinexError):
            read_observation_file(broken)

    def test_wrong_file_kind(self, tmp_path, valid_nav_file):
        with pytest.raises(RinexError, match="observation"):
            read_observation_file(valid_nav_file)

    def test_writer_refuses_empty(self, tmp_path):
        station = get_station("SRZN")
        header = ObservationHeader(
            marker_name=station.site_id, approx_position=station.ecef, interval=1.0
        )
        with pytest.raises(RinexError, match="no epochs"):
            write_observation_file(tmp_path / "e.obs", header, [])


class TestNavigationFailures:
    def test_missing_header(self, tmp_path, valid_nav_file):
        lines = valid_nav_file.read_text().splitlines()
        broken = tmp_path / "broken.nav"
        broken.write_text(
            "\n".join(line for line in lines if "END OF HEADER" not in line)
        )
        with pytest.raises(RinexError, match="END OF HEADER"):
            read_navigation_file(broken)

    def test_truncated_record(self, tmp_path, valid_nav_file):
        lines = valid_nav_file.read_text().splitlines()
        broken = tmp_path / "broken.nav"
        broken.write_text("\n".join(lines[:-4]))
        with pytest.raises(RinexError, match="truncated"):
            read_navigation_file(broken)

    def test_corrupted_epoch_line(self, tmp_path, valid_nav_file):
        lines = valid_nav_file.read_text().splitlines()
        # First record line follows END OF HEADER.
        for index, line in enumerate(lines):
            if line[60:].strip() == "END OF HEADER":
                lines[index + 1] = "zz" + lines[index + 1][2:]
                break
        broken = tmp_path / "broken.nav"
        broken.write_text("\n".join(lines))
        with pytest.raises(RinexError, match="malformed"):
            read_navigation_file(broken)

    def test_not_a_nav_file(self, tmp_path, valid_obs_file):
        with pytest.raises(RinexError, match="navigation"):
            read_navigation_file(valid_obs_file)

    def test_writer_refuses_empty(self, tmp_path):
        with pytest.raises(RinexError, match="no ephemerides"):
            write_navigation_file(tmp_path / "e.nav", [])
