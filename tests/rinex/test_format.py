"""Unit tests for RINEX field formatting."""

import pytest

from repro.errors import RinexError
from repro.rinex.format import (
    fortran_double,
    header_line,
    observation_value,
    parse_fortran_double,
)


class TestHeaderLine:
    def test_label_at_column_61(self):
        line = header_line("content", "MARKER NAME")
        assert line[:60] == "content" + " " * 53
        assert line[60:] == "MARKER NAME"

    def test_rejects_overlong_content(self):
        with pytest.raises(RinexError):
            header_line("x" * 61, "LABEL")


class TestFortranDouble:
    def test_uses_d_exponent(self):
        text = fortran_double(1.5e-9)
        assert "D" in text and "E" not in text

    def test_width(self):
        assert len(fortran_double(123.456)) == 19

    @pytest.mark.parametrize(
        "value", [0.0, 1.0, -1.0, 1e-30, -9.87654321e12, 3.14159e-7]
    )
    def test_roundtrip(self, value):
        assert parse_fortran_double(fortran_double(value)) == pytest.approx(
            value, rel=1e-12
        )


class TestParseFortranDouble:
    def test_d_exponent(self):
        assert parse_fortran_double(" 1.234000000000D+03") == pytest.approx(1234.0)

    def test_e_exponent_accepted(self):
        assert parse_fortran_double("1.5E2") == 150.0

    def test_lowercase_d(self):
        assert parse_fortran_double("2.5d1") == 25.0

    def test_blank_is_zero(self):
        assert parse_fortran_double("   ") == 0.0

    def test_garbage_raises(self):
        with pytest.raises(RinexError, match="malformed"):
            parse_fortran_double("not-a-number")


class TestObservationValue:
    def test_f14_3_layout(self):
        text = observation_value(21234567.891)
        assert text[:14] == "  21234567.891"
        assert len(text) == 16  # value + 2 flag columns

    def test_rejects_too_large(self):
        with pytest.raises(RinexError):
            observation_value(1e11)
