"""Round-trip tests: write RINEX, read it back, compare."""

import numpy as np
import pytest

from repro.rinex import (
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    write_navigation_file,
    write_observation_file,
)
from repro.stations import get_station


@pytest.fixture(scope="module")
def epochs(request):
    dataset = request.getfixturevalue("srzn_dataset")
    return dataset.realize(max_epochs=10)


@pytest.fixture(scope="module")
def header():
    station = get_station("SRZN")
    return ObservationHeader(
        marker_name=station.site_id,
        approx_position=station.ecef,
        interval=1.0,
    )


class TestObservationRoundtrip:
    def test_epoch_count_preserved(self, tmp_path, header, epochs):
        path = tmp_path / "t.obs"
        written = write_observation_file(path, header, epochs)
        data = read_observation_file(path)
        assert written == len(epochs)
        assert len(data) == len(epochs)

    def test_header_fields(self, tmp_path, header, epochs):
        path = tmp_path / "t.obs"
        write_observation_file(path, header, epochs)
        data = read_observation_file(path)
        assert data.header.marker_name == "SRZN"
        assert data.header.observation_types == ("C1",)
        assert data.header.interval == pytest.approx(1.0)
        np.testing.assert_allclose(
            data.header.approx_position, header.approx_position, atol=1e-3
        )

    def test_times_preserved(self, tmp_path, header, epochs):
        path = tmp_path / "t.obs"
        write_observation_file(path, header, epochs)
        data = read_observation_file(path)
        for record, epoch in zip(data.records, epochs):
            assert abs(record.time - epoch.time) < 1e-6

    def test_pseudoranges_within_format_precision(self, tmp_path, header, epochs):
        path = tmp_path / "t.obs"
        write_observation_file(path, header, epochs)
        data = read_observation_file(path)
        for record, epoch in zip(data.records, epochs):
            for obs in epoch.observations:
                value = record.observables[obs.prn]["C1"]
                assert value == pytest.approx(obs.pseudorange, abs=5.1e-4)

    def test_prn_sets_preserved(self, tmp_path, header, epochs):
        path = tmp_path / "t.obs"
        write_observation_file(path, header, epochs)
        data = read_observation_file(path)
        for record, epoch in zip(data.records, epochs):
            assert set(record.prns) == set(epoch.prns)


class TestNavigationRoundtrip:
    def test_all_fields_roundtrip(self, tmp_path, srzn_dataset):
        ephemerides = srzn_dataset.constellation.ephemerides()
        path = tmp_path / "t.nav"
        written = write_navigation_file(path, ephemerides)
        parsed = read_navigation_file(path)
        assert written == len(parsed) == len(ephemerides)
        for original, back in zip(ephemerides, parsed):
            assert back.prn == original.prn
            assert back.toe.week == original.toe.week
            assert back.toe.seconds_of_week == pytest.approx(
                original.toe.seconds_of_week, abs=1e-6
            )
            for field in (
                "sqrt_a", "eccentricity", "i0", "omega0", "omega", "m0",
                "delta_n", "omega_dot", "idot", "cuc", "cus", "crc", "crs",
                "cic", "cis", "af0", "af1", "af2",
            ):
                assert getattr(back, field) == pytest.approx(
                    getattr(original, field), rel=1e-11, abs=1e-18
                ), field

    def test_positions_match_after_roundtrip(self, tmp_path, srzn_dataset):
        """The real invariant: satellite positions computed from parsed
        ephemerides agree with the originals to sub-millimeter."""
        ephemerides = srzn_dataset.constellation.ephemerides()
        path = tmp_path / "t.nav"
        write_navigation_file(path, ephemerides)
        parsed = read_navigation_file(path)
        t = srzn_dataset.config.start_time + 1800.0
        for original, back in zip(ephemerides, parsed):
            np.testing.assert_allclose(
                back.satellite_position(t),
                original.satellite_position(t),
                atol=1e-3,
            )
