"""Unit + property tests for RINEX calendar/GPS time conversion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RinexError
from repro.rinex import calendar_to_gps, gps_to_calendar
from repro.timebase import GpsTime


class TestGpsToCalendar:
    def test_gps_epoch(self):
        assert gps_to_calendar(GpsTime(week=0, seconds_of_week=0.0)) == (
            1980, 1, 6, 0, 0, 0.0,
        )

    def test_one_day_in(self):
        time = GpsTime(week=0, seconds_of_week=86_400.0)
        assert gps_to_calendar(time) == (1980, 1, 7, 0, 0, 0.0)

    def test_fractional_seconds_preserved(self):
        time = GpsTime(week=100, seconds_of_week=12.375)
        *_rest, second = gps_to_calendar(time)
        assert second == pytest.approx(12.375)


class TestCalendarToGps:
    def test_inverse_of_epoch(self):
        assert calendar_to_gps(1980, 1, 6, 0, 0, 0.0) == GpsTime(0, 0.0)

    def test_rejects_pre_epoch(self):
        with pytest.raises(RinexError):
            calendar_to_gps(1979, 12, 31, 0, 0, 0.0)

    def test_rejects_invalid_date(self):
        with pytest.raises(RinexError):
            calendar_to_gps(2009, 2, 30, 0, 0, 0.0)

    @given(st.floats(min_value=0.0, max_value=2.5e9))
    @settings(max_examples=200)
    def test_roundtrip(self, gps_seconds):
        time = GpsTime.from_gps_seconds(gps_seconds)
        fields = gps_to_calendar(time)
        back = calendar_to_gps(*fields)
        assert abs(back - time) < 1e-5
