"""Unit + integration tests for RAIM fault detection/exclusion."""

import math

import numpy as np
import pytest

from repro.core import RaimMonitor, chi_square_quantile
from repro.errors import ConfigurationError, GeometryError
from repro.observations import SatelliteObservation


def inject_fault(epoch, index, offset_meters):
    observations = list(epoch.observations)
    bad = observations[index]
    observations[index] = SatelliteObservation(
        prn=bad.prn,
        position=bad.position,
        pseudorange=bad.pseudorange + offset_meters,
        elevation=bad.elevation,
        azimuth=bad.azimuth,
    )
    return epoch.with_observations(observations), bad.prn


class TestChiSquareQuantile:
    @pytest.mark.parametrize(
        "probability,dof,expected",
        [
            (0.95, 1, 3.841),
            (0.95, 4, 9.488),
            (0.99, 2, 9.210),
            (0.999, 6, 22.458),
        ],
    )
    def test_against_tables(self, probability, dof, expected):
        # Wilson-Hilferty is approximate; a few percent is fine.
        assert chi_square_quantile(probability, dof) == pytest.approx(
            expected, rel=0.05
        )

    def test_monotone_in_probability(self):
        values = [chi_square_quantile(p, 4) for p in (0.5, 0.9, 0.99, 0.999)]
        assert values == sorted(values)

    def test_monotone_in_dof(self):
        values = [chi_square_quantile(0.99, dof) for dof in (1, 3, 6, 10)]
        assert values == sorted(values)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            chi_square_quantile(1.0, 3)

    def test_rejects_bad_dof(self):
        with pytest.raises(ConfigurationError):
            chi_square_quantile(0.95, 0)


class TestRaimConfiguration:
    def test_rejects_bad_sigma(self):
        with pytest.raises(ConfigurationError):
            RaimMonitor(sigma_meters=0.0)

    def test_rejects_bad_pfa(self):
        with pytest.raises(ConfigurationError):
            RaimMonitor(p_false_alarm=1.5)

    def test_rejects_insufficient_redundancy(self, make_epoch):
        with pytest.raises(GeometryError, match="at least 5"):
            RaimMonitor().check(make_epoch(count=4))


class TestDetection:
    def test_clean_epoch_passes(self, make_epoch):
        epoch = make_epoch(bias_meters=20.0, count=9, noise_sigma=1.0, seed=3)
        result = RaimMonitor(sigma_meters=2.0).check(epoch)
        assert result.passed
        assert result.excluded_prn is None
        assert result.test_statistic <= result.threshold

    def test_false_alarm_rate_roughly_respected(self, make_epoch):
        monitor = RaimMonitor(sigma_meters=1.05, p_false_alarm=1e-3)
        flagged = 0
        for seed in range(100):
            epoch = make_epoch(bias_meters=10.0, count=6, noise_sigma=1.0, seed=seed)
            result = monitor.check(epoch)
            if result.excluded_prn is not None or not result.passed:
                flagged += 1
        assert flagged <= 5  # 1e-3 nominal; generous slack for approximation

    def test_large_fault_detected_and_excluded(self, make_epoch):
        epoch = make_epoch(bias_meters=15.0, count=9, noise_sigma=1.0, seed=4)
        faulty, bad_prn = inject_fault(epoch, 3, 300.0)
        result = RaimMonitor(sigma_meters=2.0).check(faulty)
        assert result.passed
        assert result.excluded_prn == bad_prn
        # The repaired fix is close to truth again.
        assert result.fix.distance_to(epoch.truth.receiver_position) < 20.0

    def test_exclusion_identifies_correct_satellite_consistently(self, make_epoch):
        monitor = RaimMonitor(sigma_meters=2.0)
        hits = 0
        for seed in range(20):
            epoch = make_epoch(bias_meters=0.0, count=8, noise_sigma=1.0, seed=seed)
            faulty, bad_prn = inject_fault(epoch, seed % 8, 500.0)
            result = monitor.check(faulty)
            if result.excluded_prn == bad_prn:
                hits += 1
        assert hits >= 18

    def test_unrepairable_epoch_reported(self, make_epoch):
        """Five satellites: detection possible, exclusion not (m-1=4
        leaves no redundancy)."""
        epoch = make_epoch(bias_meters=0.0, count=5, noise_sigma=0.5, seed=7)
        faulty, _bad_prn = inject_fault(epoch, 1, 1000.0)
        result = RaimMonitor(sigma_meters=1.0).check(faulty)
        assert not result.passed
        assert result.excluded_prn is None

    def test_small_fault_below_noise_tolerated(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=9, noise_sigma=1.0, seed=9)
        faulty, _bad_prn = inject_fault(epoch, 0, 1.0)
        result = RaimMonitor(sigma_meters=2.0).check(faulty)
        assert result.passed
        assert result.excluded_prn is None
