"""Unit + property tests for the Bancroft closed-form baseline."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BancroftSolver, NewtonRaphsonSolver
from repro.errors import GeometryError


class TestExactRecovery:
    def test_four_satellites(self, make_epoch):
        epoch = make_epoch(bias_meters=50.0, count=4)
        fix = BancroftSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-2
        assert fix.clock_bias_meters == pytest.approx(50.0, abs=1e-2)

    def test_overdetermined(self, make_epoch):
        epoch = make_epoch(bias_meters=-120.0, count=10)
        fix = BancroftSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-2
        assert fix.clock_bias_meters == pytest.approx(-120.0, abs=1e-2)

    @given(
        bias=st.floats(min_value=-1e5, max_value=1e5),
        count=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_recovers_any_bias_without_prediction(self, make_epoch, bias, count, seed):
        """Unlike DLO/DLG, Bancroft solves the bias as an unknown."""
        epoch = make_epoch(bias_meters=bias, count=count, seed=seed)
        fix = BancroftSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 0.1
        assert fix.clock_bias_meters == pytest.approx(bias, abs=0.1)


class TestAgainstNewtonRaphson:
    def test_agreement_under_noise(self, make_epoch):
        epoch = make_epoch(bias_meters=30.0, count=9, noise_sigma=1.5, seed=2)
        nr = NewtonRaphsonSolver().solve(epoch)
        bancroft = BancroftSolver().solve(epoch)
        assert np.linalg.norm(nr.position - bancroft.position) < 15.0


class TestFailureModes:
    def test_too_few_satellites(self, make_epoch):
        with pytest.raises(GeometryError, match="at least 4"):
            BancroftSolver().solve(make_epoch(count=3))

    def test_metadata(self, make_epoch):
        fix = BancroftSolver().solve(make_epoch(count=6))
        assert fix.algorithm == "Bancroft"
        assert fix.converged
        assert np.isfinite(fix.residual_norm)
