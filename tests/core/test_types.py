"""Unit tests for PositionFix."""

import numpy as np
import pytest

from repro.core import PositionFix
from repro.errors import ConfigurationError


class TestPositionFix:
    def test_position_coerced(self):
        fix = PositionFix(position=[1.0, 2.0, 3.0])
        assert isinstance(fix.position, np.ndarray)

    def test_rejects_bad_position(self):
        with pytest.raises(ConfigurationError):
            PositionFix(position=[1.0, 2.0])

    def test_rejects_nan_position(self):
        with pytest.raises(ConfigurationError):
            PositionFix(position=[1.0, 2.0, float("nan")])

    def test_distance_to(self):
        fix = PositionFix(position=[3.0, 0.0, 4.0])
        assert fix.distance_to(np.zeros(3)) == pytest.approx(5.0)

    def test_distance_rejects_bad_truth(self):
        fix = PositionFix(position=np.zeros(3))
        with pytest.raises(ConfigurationError):
            fix.distance_to(np.zeros(2))

    def test_defaults(self):
        fix = PositionFix(position=np.zeros(3))
        assert fix.clock_bias_meters is None
        assert fix.converged
        assert fix.iterations == 1

    def test_frozen(self):
        fix = PositionFix(position=np.zeros(3))
        with pytest.raises(AttributeError):
            fix.iterations = 5
