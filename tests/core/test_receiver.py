"""Unit + integration tests for the GpsReceiver pipeline."""

import numpy as np
import pytest

from repro.clocks import KalmanClockBiasPredictor
from repro.core import GpsReceiver
from repro.errors import ConfigurationError
from repro.stations import DatasetConfig, ObservationDataset, get_station


class TestConfiguration:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            GpsReceiver(algorithm="magic")

    def test_rejects_negative_recalibration(self):
        with pytest.raises(ConfigurationError):
            GpsReceiver(recalibration_interval=-1)

    def test_algorithm_property(self):
        assert GpsReceiver(algorithm="dlo").algorithm == "dlo"


class TestWarmupBehaviour:
    def test_warmup_uses_nr(self, srzn_dataset):
        receiver = GpsReceiver(algorithm="dlg", warmup_epochs=10)
        fixes = [receiver.process(srzn_dataset.epoch_at(i)) for i in range(12)]
        assert all(fix.algorithm == "NR" for fix in fixes[:10])
        assert fixes[11].algorithm == "DLG"
        assert receiver.stats["warmup_fixes"] == 10

    def test_predictor_becomes_ready(self, srzn_dataset):
        receiver = GpsReceiver(algorithm="dlo", warmup_epochs=5)
        for i in range(6):
            receiver.process(srzn_dataset.epoch_at(i))
        assert receiver.predictor.is_ready

    def test_epochs_processed_counter(self, srzn_dataset):
        receiver = GpsReceiver(algorithm="dlg", warmup_epochs=3)
        for i in range(7):
            receiver.process(srzn_dataset.epoch_at(i))
        assert receiver.epochs_processed == 7


class TestSteadyState:
    def test_accuracy_reasonable(self, srzn_dataset):
        station = get_station("SRZN")
        receiver = GpsReceiver(algorithm="dlg", warmup_epochs=20)
        errors = []
        for i in range(srzn_dataset.epoch_count):
            fix = receiver.process(srzn_dataset.epoch_at(i))
            if i >= 20:
                errors.append(fix.distance_to(station.position))
        assert np.mean(errors) < 25.0

    def test_nr_mode_never_uses_predictor(self, srzn_dataset):
        receiver = GpsReceiver(algorithm="nr")
        fix = receiver.process(srzn_dataset.epoch_at(0))
        assert fix.algorithm == "NR"
        assert receiver.stats["closed_form_fixes"] == 0

    def test_bancroft_mode(self, srzn_dataset):
        receiver = GpsReceiver(algorithm="bancroft")
        fix = receiver.process(srzn_dataset.epoch_at(0))
        assert fix.algorithm == "Bancroft"

    def test_recalibration_counted(self, srzn_dataset):
        receiver = GpsReceiver(
            algorithm="dlg", warmup_epochs=5, recalibration_interval=10
        )
        for i in range(40):
            receiver.process(srzn_dataset.epoch_at(i % srzn_dataset.epoch_count))
        assert receiver.stats["recalibrations"] >= 2

    def test_recalibration_disabled(self, srzn_dataset):
        receiver = GpsReceiver(
            algorithm="dlg", warmup_epochs=5, recalibration_interval=0
        )
        for i in range(30):
            receiver.process(srzn_dataset.epoch_at(i))
        assert receiver.stats["recalibrations"] == 0

    def test_custom_predictor_accepted(self, srzn_dataset):
        receiver = GpsReceiver(
            algorithm="dlg", predictor=KalmanClockBiasPredictor(min_observations=5)
        )
        for i in range(10):
            receiver.process(srzn_dataset.epoch_at(i))
        assert receiver.stats["closed_form_fixes"] > 0


class TestThresholdClockEndToEnd:
    def test_threshold_station_tracks_through_resets(self):
        """KYCP free-runs at ~2e-7 s/s toward a 1 ms threshold.  Run
        long enough to cross a reset and confirm the pipeline recovers
        (via recalibration or fallback) instead of diverging."""
        station = get_station("KYCP")
        # Drift 2e-6 with 1e-4 threshold: reset every ~50 s -> several
        # resets inside a short test.
        config = DatasetConfig(
            duration_seconds=240.0,
            threshold_drift=2e-6,
            threshold_reset_seconds=1e-4,
        )
        dataset = ObservationDataset(station, config)
        receiver = GpsReceiver(
            algorithm="dlg",
            clock_mode="threshold",
            warmup_epochs=15,
            recalibration_interval=10,
        )
        tail_errors = []
        for i in range(dataset.epoch_count):
            fix = receiver.process(dataset.epoch_at(i))
            if i >= 60:
                tail_errors.append(fix.distance_to(station.position))
        # Without reset handling the bias error would reach
        # c * 1e-4 = 30 km; the pipeline must stay in the tens of meters.
        assert np.mean(tail_errors) < 50.0
        assert np.max(tail_errors) < 31_000.0


class TestResidualGate:
    def test_gate_recovers_at_clock_reset(self):
        """A threshold clock reset between recalibrations makes the
        closed-form prediction wrong by ~c*threshold; the residual gate
        must catch it on the spot and recover via NR retraining."""
        station = get_station("KYCP")
        config = DatasetConfig(
            duration_seconds=200.0,
            threshold_drift=5e-7,
            threshold_reset_seconds=5e-5,  # reset every 100 s
        )
        dataset = ObservationDataset(station, config)
        receiver = GpsReceiver(
            algorithm="dlg",
            clock_mode="threshold",
            warmup_epochs=20,
            recalibration_interval=0,  # disable periodic recalibration
        )
        errors = []
        for index in range(dataset.epoch_count):
            fix = receiver.process(dataset.epoch_at(index))
            if index >= 20:
                errors.append(fix.distance_to(station.position))
        stats = receiver.stats
        # The gate (or the fallback path) must have fired at least once
        # per reset, and errors must never approach c * threshold = 15 km.
        assert stats["residual_gate_recoveries"] + stats["fallbacks"] >= 1
        assert np.max(errors) < 1000.0
        assert np.mean(errors) < 50.0

    def test_gate_quiet_on_steady_state(self, srzn_dataset):
        receiver = GpsReceiver(algorithm="dlg", warmup_epochs=15)
        for index in range(srzn_dataset.epoch_count):
            receiver.process(srzn_dataset.epoch_at(index))
        assert receiver.stats["residual_gate_recoveries"] == 0


class TestFallbackPath:
    def test_geometry_error_falls_back_to_nr(self, srzn_dataset):
        """If the closed-form solve rejects the epoch outright (grossly
        wrong prediction -> non-positive corrected pseudoranges), the
        receiver answers with NR and retrains."""
        from repro.clocks import ZeroClockBiasPredictor

        class SabotagedPredictor(ZeroClockBiasPredictor):
            def __init__(self):
                self.calls = 0

            def predict_bias_meters(self, time):
                self.calls += 1
                return 1e9  # larger than any pseudorange

            def observe(self, time, bias):
                self.observed = bias

        predictor = SabotagedPredictor()
        receiver = GpsReceiver(algorithm="dlg", predictor=predictor)
        station = get_station("SRZN")
        fix = receiver.process(srzn_dataset.epoch_at(0))
        assert fix.algorithm == "NR"
        assert receiver.stats["fallbacks"] == 1
        assert fix.distance_to(station.position) < 30.0


class TestRaimIntegration:
    def test_rejects_raim_with_dlo(self):
        with pytest.raises(ConfigurationError, match="RAIM"):
            GpsReceiver(algorithm="dlo", raim_sigma_meters=3.0)

    def test_fault_excluded_in_nr_mode(self, srzn_dataset):
        from repro.observations import SatelliteObservation

        receiver = GpsReceiver(algorithm="nr", raim_sigma_meters=3.0)
        station = get_station("SRZN")
        epoch = srzn_dataset.epoch_at(0)
        observations = list(epoch.observations)
        bad = observations[2]
        observations[2] = SatelliteObservation(
            prn=bad.prn,
            position=bad.position,
            pseudorange=bad.pseudorange + 500.0,
            elevation=bad.elevation,
            azimuth=bad.azimuth,
        )
        fix = receiver.process(epoch.with_observations(observations))
        assert receiver.stats["raim_exclusions"] == 1
        assert fix.distance_to(station.position) < 20.0

    def test_fault_excluded_in_dlg_mode(self, srzn_dataset):
        from repro.observations import SatelliteObservation

        receiver = GpsReceiver(
            algorithm="dlg", warmup_epochs=10, raim_sigma_meters=4.0
        )
        station = get_station("SRZN")
        for index in range(10):
            receiver.process(srzn_dataset.epoch_at(index))

        epoch = srzn_dataset.epoch_at(11)
        observations = list(epoch.observations)
        bad = observations[3]
        observations[3] = SatelliteObservation(
            prn=bad.prn,
            position=bad.position,
            pseudorange=bad.pseudorange + 500.0,
            elevation=bad.elevation,
            azimuth=bad.azimuth,
        )
        fix = receiver.process(epoch.with_observations(observations))
        assert receiver.stats["raim_exclusions"] == 1
        assert fix.distance_to(station.position) < 20.0

    def test_clean_epochs_unaffected(self, srzn_dataset):
        with_raim = GpsReceiver(
            algorithm="dlg", warmup_epochs=10, raim_sigma_meters=4.0
        )
        without = GpsReceiver(algorithm="dlg", warmup_epochs=10)
        for index in range(30):
            a = with_raim.process(srzn_dataset.epoch_at(index))
            b = without.process(srzn_dataset.epoch_at(index))
            np.testing.assert_allclose(a.position, b.position, atol=1e-9)
        assert with_raim.stats["raim_exclusions"] == 0
