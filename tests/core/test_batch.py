"""Unit + consistency tests for the batched solvers (paper ext. 3)."""

import numpy as np
import pytest

from repro.clocks import OracleClockBiasPredictor
from repro.core import (
    BatchDLGSolver,
    BatchDLOSolver,
    DLGSolver,
    DLOSolver,
    group_epochs_by_count,
)
from repro.errors import GeometryError


@pytest.fixture
def batch(make_epoch):
    """Ten same-size noisy epochs with a common bias."""
    epochs = [
        make_epoch(bias_meters=35.0, count=8, noise_sigma=1.0, seed=seed)
        for seed in range(10)
    ]
    biases = [35.0] * len(epochs)
    return epochs, biases


class TestBatchDLO:
    def test_matches_per_epoch_solver_exactly(self, batch):
        epochs, biases = batch
        stacked = BatchDLOSolver().solve_batch(epochs, biases)
        for row, epoch, bias in zip(stacked, epochs, biases):
            single = DLOSolver().solve(
                epoch.with_observations(
                    type(epoch.observations[0])(
                        prn=obs.prn,
                        position=obs.position,
                        pseudorange=obs.pseudorange - bias,
                        elevation=obs.elevation,
                        azimuth=obs.azimuth,
                    )
                    for obs in epoch.observations
                )
            )
            np.testing.assert_allclose(row, single.position, atol=1e-6)

    def test_output_shape(self, batch):
        epochs, biases = batch
        assert BatchDLOSolver().solve_batch(epochs, biases).shape == (10, 3)

    def test_accuracy(self, batch):
        epochs, biases = batch
        stacked = BatchDLOSolver().solve_batch(epochs, biases)
        for row, epoch in zip(stacked, epochs):
            assert np.linalg.norm(row - epoch.truth.receiver_position) < 30.0


class TestBatchDLG:
    def test_matches_per_epoch_solver(self, batch, make_epoch):
        epochs, biases = batch
        stacked = BatchDLGSolver().solve_batch(epochs, biases)
        # Compare through the per-epoch DLG with an exact-bias oracle.
        class ConstBias:
            is_ready = True

            def observe(self, t, b): ...

            def predict_bias_meters(self, t):
                return 35.0

        solver = DLGSolver(ConstBias())
        for row, epoch in zip(stacked, epochs):
            np.testing.assert_allclose(
                row, solver.solve(epoch).position, atol=1e-6
            )

    def test_batch_dlg_beats_batch_dlo(self, make_epoch):
        epochs = [
            make_epoch(bias_meters=0.0, count=10, noise_sigma=3.0, seed=seed)
            for seed in range(80)
        ]
        biases = [0.0] * len(epochs)
        dlo = BatchDLOSolver().solve_batch(epochs, biases)
        dlg = BatchDLGSolver().solve_batch(epochs, biases)
        truth = np.stack([epoch.truth.receiver_position for epoch in epochs])
        assert np.mean(np.linalg.norm(dlg - truth, axis=1)) < np.mean(
            np.linalg.norm(dlo - truth, axis=1)
        )


class TestValidation:
    def test_rejects_empty_batch(self):
        with pytest.raises(GeometryError, match="at least one"):
            BatchDLOSolver().solve_batch([], [])

    def test_rejects_mixed_counts(self, make_epoch):
        epochs = [make_epoch(count=8), make_epoch(count=9)]
        with pytest.raises(GeometryError, match="same satellite count"):
            BatchDLOSolver().solve_batch(epochs, [0.0, 0.0])

    def test_rejects_too_few_satellites(self, make_epoch):
        with pytest.raises(GeometryError, match="at least 4"):
            BatchDLOSolver().solve_batch([make_epoch(count=3)], [0.0])

    def test_rejects_bias_shape(self, make_epoch):
        with pytest.raises(GeometryError, match="one per epoch"):
            BatchDLOSolver().solve_batch([make_epoch(count=8)], [0.0, 1.0])

    def test_rejects_huge_bias(self, make_epoch):
        with pytest.raises(GeometryError, match="non-positive"):
            BatchDLOSolver().solve_batch([make_epoch(count=8)], [1e9])


class TestGrouping:
    def test_groups_by_count(self, make_epoch):
        epochs = [
            make_epoch(count=8, seed=1),
            make_epoch(count=9, seed=2),
            make_epoch(count=8, seed=3),
        ]
        groups = group_epochs_by_count(epochs)
        assert sorted(groups) == [8, 9]
        assert len(groups[8]) == 2
        assert len(groups[9]) == 1


class TestBatchProperty:
    def test_batch_equals_loop_across_sizes(self, make_epoch):
        """Property: for any (m, N), the batched solvers agree with the
        per-epoch solvers to float precision."""
        from hypothesis import HealthCheck, given, settings, strategies as st

        @given(
            m=st.integers(min_value=5, max_value=11),
            n=st.integers(min_value=1, max_value=6),
            seed=st.integers(min_value=0, max_value=30),
        )
        @settings(
            max_examples=30,
            deadline=None,
            suppress_health_check=[HealthCheck.function_scoped_fixture],
        )
        def check(m, n, seed):
            epochs = [
                make_epoch(bias_meters=12.0, count=m, noise_sigma=1.0,
                           seed=seed + i)
                for i in range(n)
            ]
            biases = [12.0] * n

            class ConstBias:
                is_ready = True

                def observe(self, t, b): ...

                def predict_bias_meters(self, t):
                    return 12.0

            from repro.errors import EstimationError, GeometryError

            try:
                stacked_dlo = BatchDLOSolver().solve_batch(epochs, biases)
                stacked_dlg = BatchDLGSolver().solve_batch(epochs, biases)
            except EstimationError:
                return  # a degenerate random sky in the batch; acceptable
            dlo = DLOSolver(ConstBias())
            dlg = DLGSolver(ConstBias())
            for row_o, row_g, epoch in zip(stacked_dlo, stacked_dlg, epochs):
                try:
                    single_o = dlo.solve(epoch).position
                    single_g = dlg.solve(epoch).position
                except GeometryError:
                    continue
                np.testing.assert_allclose(row_o, single_o, atol=1e-5)
                np.testing.assert_allclose(row_g, single_g, atol=1e-5)

        check()
