"""Unit + consistency tests for the batched solvers (paper ext. 3)."""

import numpy as np
import pytest

from repro.clocks import ConstantClockBiasPredictor, OracleClockBiasPredictor
from repro.core import (
    BatchDLGSolver,
    BatchDLOSolver,
    BatchNewtonRaphsonSolver,
    DLGSolver,
    DLOSolver,
    NewtonRaphsonSolver,
    group_epochs_by_count,
)
from repro.errors import ConfigurationError, ConvergenceError, GeometryError


@pytest.fixture
def batch(make_stream):
    """Ten same-size noisy epochs with a common bias."""
    epochs = make_stream(10, bias_meters=35.0, count=8, noise_sigma=1.0)
    biases = [35.0] * len(epochs)
    return epochs, biases


class TestBatchDLO:
    def test_matches_per_epoch_solver_exactly(self, batch):
        epochs, biases = batch
        stacked = BatchDLOSolver().solve_batch(epochs, biases)
        for row, epoch, bias in zip(stacked, epochs, biases):
            single = DLOSolver().solve(
                epoch.with_observations(
                    type(epoch.observations[0])(
                        prn=obs.prn,
                        position=obs.position,
                        pseudorange=obs.pseudorange - bias,
                        elevation=obs.elevation,
                        azimuth=obs.azimuth,
                    )
                    for obs in epoch.observations
                )
            )
            np.testing.assert_allclose(row, single.position, atol=1e-6)

    def test_output_shape(self, batch):
        epochs, biases = batch
        assert BatchDLOSolver().solve_batch(epochs, biases).shape == (10, 3)

    def test_accuracy(self, batch):
        epochs, biases = batch
        stacked = BatchDLOSolver().solve_batch(epochs, biases)
        for row, epoch in zip(stacked, epochs):
            assert np.linalg.norm(row - epoch.truth.receiver_position) < 30.0


class TestBatchDLG:
    def test_matches_per_epoch_solver(self, batch, make_epoch):
        epochs, biases = batch
        stacked = BatchDLGSolver().solve_batch(epochs, biases)
        # Compare through the per-epoch DLG with an exact-bias oracle.
        solver = DLGSolver(ConstantClockBiasPredictor(35.0))
        for row, epoch in zip(stacked, epochs):
            np.testing.assert_allclose(
                row, solver.solve(epoch).position, atol=1e-6
            )

    def test_batch_dlg_beats_batch_dlo(self, make_epoch):
        epochs = [
            make_epoch(bias_meters=0.0, count=10, noise_sigma=3.0, seed=seed)
            for seed in range(80)
        ]
        biases = [0.0] * len(epochs)
        dlo = BatchDLOSolver().solve_batch(epochs, biases)
        dlg = BatchDLGSolver().solve_batch(epochs, biases)
        truth = np.stack([epoch.truth.receiver_position for epoch in epochs])
        assert np.mean(np.linalg.norm(dlg - truth, axis=1)) < np.mean(
            np.linalg.norm(dlo - truth, axis=1)
        )


class TestValidation:
    def test_rejects_empty_batch(self):
        with pytest.raises(GeometryError, match="at least one"):
            BatchDLOSolver().solve_batch([], [])

    def test_rejects_mixed_counts(self, make_epoch):
        epochs = [make_epoch(count=8), make_epoch(count=9)]
        with pytest.raises(GeometryError, match="same satellite count"):
            BatchDLOSolver().solve_batch(epochs, [0.0, 0.0])

    def test_rejects_too_few_satellites(self, make_epoch):
        with pytest.raises(GeometryError, match="at least 4"):
            BatchDLOSolver().solve_batch([make_epoch(count=3)], [0.0])

    def test_rejects_bias_shape(self, make_epoch):
        with pytest.raises(GeometryError, match="one per epoch"):
            BatchDLOSolver().solve_batch([make_epoch(count=8)], [0.0, 1.0])

    def test_rejects_huge_bias(self, make_epoch):
        with pytest.raises(GeometryError, match="non-positive"):
            BatchDLOSolver().solve_batch([make_epoch(count=8)], [1e9])


class TestSingleEpochBatch:
    def test_dlo_single_epoch_equals_scalar_bitwise(self, make_epoch):
        """A 1-epoch batch must reproduce the scalar solve bit-for-bit
        up to the (documented) difference in 3x3 solve routine."""
        epoch = make_epoch(bias_meters=0.0, count=8, noise_sigma=1.0, seed=5)
        stacked = BatchDLOSolver().solve_batch([epoch], [0.0])
        single = DLOSolver().solve(epoch)
        np.testing.assert_allclose(stacked[0], single.position, rtol=1e-12)

    def test_dlg_single_epoch_equals_scalar(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=8, noise_sigma=1.0, seed=6)
        stacked = BatchDLGSolver().solve_batch([epoch], [0.0])
        single = DLGSolver().solve(epoch)
        np.testing.assert_allclose(stacked[0], single.position, rtol=1e-12)

    def test_nr_single_epoch_equals_scalar(self, make_epoch):
        epoch = make_epoch(bias_meters=25.0, count=8, noise_sigma=1.0, seed=7)
        stacked = BatchNewtonRaphsonSolver().solve_batch([epoch])
        single = NewtonRaphsonSolver().solve(epoch)
        np.testing.assert_allclose(stacked[0], single.position, atol=1e-6)


class TestBatchNewtonRaphson:
    def test_matches_scalar_across_batch(self, batch):
        epochs, _biases = batch
        full = BatchNewtonRaphsonSolver().solve_batch_full(epochs)
        scalar = NewtonRaphsonSolver()
        for i, epoch in enumerate(epochs):
            fix = scalar.solve(epoch)
            np.testing.assert_allclose(full.positions[i], fix.position, atol=1e-6)
            assert full.clock_biases[i] == pytest.approx(
                fix.clock_bias_meters, abs=1e-6
            )
            assert full.iterations[i] == fix.iterations
        assert full.converged.all()

    def test_active_set_masks_converged_epochs(self, make_epoch):
        # A warm-started epoch converges immediately; a cold batch mate
        # needs the usual handful of iterations.  Per-epoch iteration
        # counts prove the converged epoch dropped out of the loop.
        near = make_epoch(bias_meters=10.0, count=8, noise_sigma=0.0, seed=1)
        far = make_epoch(
            truth_position=np.array([-2694045.0, -4293642.0, 3857878.0]),
            bias_meters=10.0,
            count=8,
            noise_sigma=0.0,
            seed=2,
        )
        epochs = [near, far]
        truth = near.truth.receiver_position
        warm = np.array([truth[0], truth[1], truth[2], 10.0])
        solver = BatchNewtonRaphsonSolver(initial_state=warm)
        full = solver.solve_batch_full(epochs)
        assert full.converged.all()
        assert full.iterations[0] < full.iterations[1]

    def test_unconverged_raises_with_count(self, batch):
        epochs, _ = batch
        solver = BatchNewtonRaphsonSolver(max_iterations=2)
        with pytest.raises(ConvergenceError, match="did not converge"):
            solver.solve_batch(epochs)
        # ... but the full record reports partial results instead.
        full = solver.solve_batch_full(epochs)
        assert not full.converged.any()
        assert np.all(full.iterations == 2)

    def test_rejects_mixed_counts(self, make_epoch):
        epochs = [make_epoch(count=8), make_epoch(count=9)]
        with pytest.raises(GeometryError, match="same satellite count"):
            BatchNewtonRaphsonSolver().solve_batch(epochs)

    def test_rejects_empty_and_too_few(self, make_epoch):
        with pytest.raises(GeometryError, match="at least one"):
            BatchNewtonRaphsonSolver().solve_batch([])
        with pytest.raises(GeometryError, match="at least 4"):
            BatchNewtonRaphsonSolver().solve_batch([make_epoch(count=3)])

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            BatchNewtonRaphsonSolver(max_iterations=0)
        with pytest.raises(ConfigurationError):
            BatchNewtonRaphsonSolver(tolerance_meters=0.0)
        with pytest.raises(ConfigurationError):
            BatchNewtonRaphsonSolver(initial_state=np.ones(3))

    def test_as_batch_shares_configuration(self, batch):
        epochs, _ = batch
        scalar = NewtonRaphsonSolver(max_iterations=30, tolerance_meters=1e-5)
        batched = scalar.as_batch()
        np.testing.assert_allclose(
            batched.solve_batch(epochs),
            np.stack([scalar.solve(e).position for e in epochs]),
            atol=1e-6,
        )

    def test_as_batch_rejects_unbatchable_modes(self):
        with pytest.raises(ConfigurationError, match="elevation"):
            NewtonRaphsonSolver(elevation_weighted=True).as_batch()
        with pytest.raises(ConfigurationError, match="convergence"):
            NewtonRaphsonSolver(convergence="residual").as_batch()


class TestNonPositiveCorrectedPseudoranges:
    def test_dlg_rejects_bias_exceeding_range(self, make_epoch):
        # A predicted bias larger than the pseudorange makes the
        # corrected pseudorange non-positive — the eq. 4-26 covariance
        # would still be PD, but the linearization is meaningless.
        with pytest.raises(GeometryError, match="non-positive"):
            BatchDLGSolver().solve_batch([make_epoch(count=8)], [3e7])

    def test_mixed_good_and_bad_epochs_rejected(self, make_epoch):
        epochs = [make_epoch(count=8, seed=1), make_epoch(count=8, seed=2)]
        with pytest.raises(GeometryError, match="non-positive"):
            BatchDLGSolver().solve_batch(epochs, [0.0, 5e7])


class TestGrouping:
    def test_groups_by_count(self, make_epoch):
        epochs = [
            make_epoch(count=8, seed=1),
            make_epoch(count=9, seed=2),
            make_epoch(count=8, seed=3),
        ]
        groups = group_epochs_by_count(epochs)
        assert sorted(groups) == [8, 9]
        assert len(groups[8]) == 2
        assert len(groups[9]) == 1


class TestBatchProperty:
    def test_batch_equals_loop_across_sizes(self, make_epoch):
        """Property: for any (m, N), the batched solvers agree with the
        per-epoch solvers to float precision."""
        from hypothesis import HealthCheck, given, settings, strategies as st

        @given(
            m=st.integers(min_value=5, max_value=11),
            n=st.integers(min_value=1, max_value=6),
            seed=st.integers(min_value=0, max_value=30),
        )
        @settings(
            max_examples=30,
            deadline=None,
            suppress_health_check=[HealthCheck.function_scoped_fixture],
        )
        def check(m, n, seed):
            epochs = [
                make_epoch(bias_meters=12.0, count=m, noise_sigma=1.0,
                           seed=seed + i)
                for i in range(n)
            ]
            biases = [12.0] * n

            from repro.errors import EstimationError, GeometryError

            try:
                stacked_dlo = BatchDLOSolver().solve_batch(epochs, biases)
                stacked_dlg = BatchDLGSolver().solve_batch(epochs, biases)
            except EstimationError:
                return  # a degenerate random sky in the batch; acceptable
            dlo = DLOSolver(ConstantClockBiasPredictor(12.0))
            dlg = DLGSolver(ConstantClockBiasPredictor(12.0))
            for row_o, row_g, epoch in zip(stacked_dlo, stacked_dlg, epochs):
                try:
                    single_o = dlo.solve(epoch).position
                    single_g = dlg.solve(epoch).position
                except GeometryError:
                    continue
                np.testing.assert_allclose(row_o, single_o, atol=1e-5)
                np.testing.assert_allclose(row_g, single_g, atol=1e-5)

        check()
