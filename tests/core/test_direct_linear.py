"""Unit + property tests for the paper's DLO/DLG algorithms."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.clocks import OracleClockBiasPredictor, SteeringClock, ZeroClockBiasPredictor
from repro.core import (
    DLGSolver,
    DLOSolver,
    NewtonRaphsonSolver,
    build_difference_system,
    difference_covariance,
)
from repro.core.selection import ClosestRangeSelector, HighestElevationSelector
from repro.errors import GeometryError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.timebase import GpsTime


class TestBuildDifferenceSystem:
    def test_shapes(self, make_epoch):
        epoch = make_epoch(count=7)
        design, rhs = build_difference_system(
            epoch.satellite_positions(), epoch.pseudoranges()
        )
        assert design.shape == (6, 3)
        assert rhs.shape == (6,)

    def test_exact_on_clean_data(self, make_epoch):
        """The linearization (eq. 4-7) is *algebraically exact*: with
        noise-free clock-free pseudoranges, the truth position satisfies
        the linear system to machine precision."""
        epoch = make_epoch(bias_meters=0.0, count=8)
        design, rhs = build_difference_system(
            epoch.satellite_positions(), epoch.pseudoranges()
        )
        residual = design @ epoch.truth.receiver_position - rhs
        np.testing.assert_allclose(residual, 0.0, atol=1.0)  # 1e14-scale cancellation

    def test_base_index_excluded(self, make_epoch):
        epoch = make_epoch(count=5)
        design, _rhs = build_difference_system(
            epoch.satellite_positions(), epoch.pseudoranges(), base_index=2
        )
        positions = epoch.satellite_positions()
        expected_rows = [positions[j] - positions[2] for j in (0, 1, 3, 4)]
        np.testing.assert_allclose(design, expected_rows)

    def test_rejects_single_satellite(self):
        with pytest.raises(GeometryError):
            build_difference_system(np.ones((1, 3)), np.ones(1))

    def test_rejects_bad_base_index(self, make_epoch):
        epoch = make_epoch(count=5)
        with pytest.raises(GeometryError):
            build_difference_system(
                epoch.satellite_positions(), epoch.pseudoranges(), base_index=5
            )

    @given(
        base_index=st.integers(min_value=0, max_value=7),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_truth_satisfies_system_any_base(self, make_epoch, base_index, seed):
        epoch = make_epoch(bias_meters=0.0, count=8, seed=seed)
        design, rhs = build_difference_system(
            epoch.satellite_positions(), epoch.pseudoranges(), base_index
        )
        residual = design @ epoch.truth.receiver_position - rhs
        np.testing.assert_allclose(residual, 0.0, atol=1.0)


class TestDifferenceCovariance:
    def test_structure_matches_eq_4_26(self):
        pseudoranges = np.array([2.0e7, 2.1e7, 2.2e7, 2.3e7])
        covariance = difference_covariance(pseudoranges, base_index=0)
        base_sq = (2.0e7) ** 2
        assert covariance.shape == (3, 3)
        # Off-diagonals are rho_base^2.
        assert covariance[0, 1] == pytest.approx(base_sq)
        assert covariance[1, 2] == pytest.approx(base_sq)
        # Diagonals are rho_base^2 + rho_j^2.
        assert covariance[0, 0] == pytest.approx(base_sq + (2.1e7) ** 2)
        assert covariance[2, 2] == pytest.approx(base_sq + (2.3e7) ** 2)

    def test_symmetric_positive_definite(self, make_epoch):
        from repro.estimation import is_positive_definite

        epoch = make_epoch(count=10)
        covariance = difference_covariance(epoch.pseudoranges())
        assert is_positive_definite(covariance)

    def test_respects_base_index(self):
        pseudoranges = np.array([1e7, 2e7, 3e7])
        covariance = difference_covariance(pseudoranges, base_index=1)
        assert covariance[0, 1] == pytest.approx((2e7) ** 2)

    def test_rejects_too_few(self):
        with pytest.raises(GeometryError):
            difference_covariance(np.array([1e7]))


class TestDLOSolver:
    def test_exact_recovery_zero_bias(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=8)
        fix = DLOSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-3
        assert fix.algorithm == "DLO"
        assert fix.iterations == 1

    def test_exact_recovery_with_oracle_bias(self, gps_t0, make_epoch):
        clock = SteeringClock(epoch=gps_t0, offset_seconds=1e-7, drift=0.0)
        from repro.constants import SPEED_OF_LIGHT

        bias = SPEED_OF_LIGHT * clock.bias_seconds(gps_t0)
        epoch = make_epoch(bias_meters=bias, count=8)
        fix = DLOSolver(OracleClockBiasPredictor(clock)).solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-3
        assert fix.clock_bias_meters == pytest.approx(bias)

    def test_unpredicted_bias_corrupts_solution(self, make_epoch):
        """Without the clock prediction step, direct linearization is
        badly biased — the reason Section 4.2 exists."""
        epoch = make_epoch(bias_meters=3000.0, count=8)
        fix = DLOSolver(ZeroClockBiasPredictor()).solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) > 100.0

    def test_minimum_satellites(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=4)
        fix = DLOSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-2

    def test_rejects_three_satellites(self, make_epoch):
        with pytest.raises(GeometryError, match="at least 4"):
            DLOSolver().solve(make_epoch(count=3))

    def test_rejects_grossly_wrong_prediction(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=6)

        class HugeBias(ZeroClockBiasPredictor):
            def predict_bias_meters(self, time):
                return 1e9  # larger than any pseudorange

        with pytest.raises(GeometryError, match="clock"):
            DLOSolver(HugeBias()).solve(epoch)

    def test_degenerate_geometry(self, gps_t0):
        # Satellites spaced along one line: A is rank deficient.
        base = np.array([2.6e7, 0.0, 0.0])
        observations = tuple(
            SatelliteObservation(
                prn=p, position=base + np.array([p * 1e5, 0.0, 0.0]),
                pseudorange=2.0e7 + p * 1e5,
            )
            for p in range(1, 6)
        )
        epoch = ObservationEpoch(time=gps_t0, observations=observations)
        with pytest.raises(GeometryError):
            DLOSolver().solve(epoch)


class TestDLGSolver:
    def test_exact_recovery(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=9)
        fix = DLGSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-3
        assert fix.algorithm == "DLG"

    def test_equals_dlo_at_four_satellites(self, make_epoch):
        """m = 4 gives a square 3x3 system: OLS and GLS both solve it
        exactly, so the fixes coincide."""
        epoch = make_epoch(bias_meters=0.0, count=4, noise_sigma=2.0, seed=3)
        dlo = DLOSolver().solve(epoch)
        dlg = DLGSolver().solve(epoch)
        np.testing.assert_allclose(dlo.position, dlg.position, atol=1e-5)

    def test_differs_from_dlo_when_overdetermined(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=10, noise_sigma=2.0, seed=4)
        dlo = DLOSolver().solve(epoch)
        dlg = DLGSolver().solve(epoch)
        assert np.linalg.norm(dlo.position - dlg.position) > 1e-6

    def test_dlg_beats_dlo_on_average(self, make_epoch):
        """Theorem 4.2 in action: over many noisy epochs the GLS
        variant is more accurate than the OLS variant."""
        dlo_errors, dlg_errors = [], []
        for seed in range(120):
            epoch = make_epoch(bias_meters=0.0, count=10, noise_sigma=3.0, seed=seed)
            truth = epoch.truth.receiver_position
            dlo_errors.append(DLOSolver().solve(epoch).distance_to(truth))
            dlg_errors.append(DLGSolver().solve(epoch).distance_to(truth))
        assert np.mean(dlg_errors) < np.mean(dlo_errors)


class TestAgainstNewtonRaphson:
    def test_all_three_agree_on_clean_data(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=8)
        truth = epoch.truth.receiver_position
        nr = NewtonRaphsonSolver().solve(epoch)
        dlo = DLOSolver().solve(epoch)
        dlg = DLGSolver().solve(epoch)
        for fix in (nr, dlo, dlg):
            assert fix.distance_to(truth) < 1e-2

    @given(
        count=st.integers(min_value=5, max_value=12),
        seed=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_closed_form_matches_nr_within_noise(self, make_epoch, count, seed):
        epoch = make_epoch(bias_meters=0.0, count=count, noise_sigma=1.0, seed=seed)
        truth = epoch.truth.receiver_position
        nr_error = NewtonRaphsonSolver().solve(epoch).distance_to(truth)
        dlg_error = DLGSolver().solve(epoch).distance_to(truth)
        # Same data, same order of magnitude of error (random skies can
        # have poor differencing geometry, hence the generous factor).
        assert dlg_error < max(30.0 * nr_error, 40.0)


class TestBaseSelection:
    def test_selector_changes_solution_under_noise(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=8, noise_sigma=2.0, seed=9)
        first = DLOSolver().solve(epoch)
        closest = DLOSolver(base_selector=ClosestRangeSelector()).solve(epoch)
        assert np.linalg.norm(first.position - closest.position) > 1e-9

    def test_highest_elevation_selector_used(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=6)
        fix = DLGSolver(base_selector=HighestElevationSelector()).solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-2
