"""Tests for the shared epoch-integrity guard and its receiver wiring."""

import numpy as np
import pytest

from repro.core import GpsReceiver
from repro.errors import GeometryError
from repro.observations import epoch_integrity_error
from repro.validation.faults import (
    DuplicateSatellite,
    NonFiniteMeasurement,
    SatelliteDropout,
)


def _rng():
    return np.random.default_rng(0)


class TestEpochIntegrityError:
    def test_clean_epoch_passes(self, make_epoch):
        assert epoch_integrity_error(make_epoch(count=8)) is None

    def test_undersized_epoch_reported(self, make_epoch):
        message = epoch_integrity_error(make_epoch(count=3))
        assert message is not None and "fewer than 4" in message

    def test_min_satellites_is_adjustable(self, make_epoch):
        assert epoch_integrity_error(make_epoch(count=3), min_satellites=3) is None
        message = epoch_integrity_error(make_epoch(count=3), min_satellites=5)
        assert message is not None and "fewer than 5" in message

    def test_duplicate_prn_reported(self, make_epoch):
        faulted = DuplicateSatellite().apply(make_epoch(count=6), _rng())
        message = epoch_integrity_error(faulted)
        assert message is not None and "duplicate PRN" in message

    @pytest.mark.parametrize("value", ["nan", "inf", "-inf"])
    def test_non_finite_pseudorange_reported(self, make_epoch, value):
        faulted = NonFiniteMeasurement(value=value).apply(make_epoch(count=6), _rng())
        message = epoch_integrity_error(faulted)
        assert message is not None and "pseudorange" in message

    def test_non_finite_position_reported(self, make_epoch):
        faulted = NonFiniteMeasurement(target="position").apply(
            make_epoch(count=6), _rng()
        )
        message = epoch_integrity_error(faulted)
        assert message is not None and "position" in message


class TestReceiverGuard:
    @pytest.mark.parametrize("algorithm", ["nr", "dlo", "dlg"])
    def test_rejects_corrupt_epochs_before_solving(self, make_epoch, algorithm):
        receiver = GpsReceiver(algorithm=algorithm)
        faulted = NonFiniteMeasurement().apply(make_epoch(count=8), _rng())
        with pytest.raises(GeometryError, match="pseudorange"):
            receiver.process(faulted)

    def test_rejects_undersized_epochs(self, make_epoch):
        with pytest.raises(GeometryError, match="fewer than 4"):
            GpsReceiver(algorithm="nr").process(
                SatelliteDropout(remaining=3).apply(make_epoch(count=8), _rng())
            )

    def test_rejects_duplicate_prns(self, make_epoch):
        with pytest.raises(GeometryError, match="duplicate PRN"):
            GpsReceiver(algorithm="nr").process(
                DuplicateSatellite().apply(make_epoch(count=8), _rng())
            )

    def test_rejections_counted_not_processed(self, make_epoch):
        receiver = GpsReceiver(algorithm="nr")
        faulted = NonFiniteMeasurement().apply(make_epoch(count=8), _rng())
        for _ in range(2):
            with pytest.raises(GeometryError):
                receiver.process(faulted)
        stats = receiver.stats
        assert stats["rejected_epochs"] == 2
        # No fix of any kind was produced for the rejected epochs.
        assert stats["warmup_fixes"] == 0
        assert stats["closed_form_fixes"] == 0
        assert stats["nr_fixes"] == 0

    def test_rejection_leaves_receiver_usable(self, make_epoch):
        # A corrupt epoch must not half-train the clock predictor: the
        # next clean epoch solves as if the corrupt one never arrived.
        clean = make_epoch(bias_meters=12.0, count=8, seed=3)
        poisoned = GpsReceiver(algorithm="nr")
        with pytest.raises(GeometryError):
            poisoned.process(NonFiniteMeasurement().apply(clean, _rng()))
        fresh = GpsReceiver(algorithm="nr")
        np.testing.assert_allclose(
            poisoned.process(clean).position, fresh.process(clean).position
        )
