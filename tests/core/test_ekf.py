"""Unit + integration tests for the navigation EKF."""

import math

import numpy as np
import pytest

from repro import Constellation, NewtonRaphsonSolver
from repro.core import NavigationEkf
from repro.errors import ConfigurationError, GeometryError
from repro.motion import GreatCircleTrajectory, KinematicScenario
from repro.observations import SatelliteObservation
from repro.stations import DatasetConfig, ObservationDataset, get_station
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


class TestConfiguration:
    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ConfigurationError):
            NavigationEkf(position_process_noise=0.0)

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ConfigurationError):
            NavigationEkf(pseudorange_sigma=-1.0)

    def test_uninitialized_state(self):
        ekf = NavigationEkf()
        assert not ekf.is_initialized
        assert ekf.state is None
        assert ekf.velocity is None


class TestInitialization:
    def test_first_epoch_initializes_from_nr(self, srzn_dataset):
        ekf = NavigationEkf()
        epoch = srzn_dataset.epoch_at(0)
        fix = ekf.process(epoch)
        assert ekf.is_initialized
        assert fix.algorithm == "EKF"
        nr_fix = NewtonRaphsonSolver().solve(epoch)
        np.testing.assert_allclose(fix.position, nr_fix.position, atol=1e-6)

    def test_initialization_failure_propagates(self, make_epoch):
        ekf = NavigationEkf()
        with pytest.raises(GeometryError, match="initialization"):
            ekf.process(make_epoch(count=3))

    def test_reset(self, srzn_dataset):
        ekf = NavigationEkf()
        ekf.process(srzn_dataset.epoch_at(0))
        ekf.reset()
        assert not ekf.is_initialized


class TestStaticTracking:
    def test_beats_snapshot_nr_on_static_receiver(self):
        station = get_station("SRZN")
        dataset = ObservationDataset(
            station, DatasetConfig(duration_seconds=120.0)
        )
        ekf = NavigationEkf(position_process_noise=0.05)
        nr = NewtonRaphsonSolver()
        nr_errors, ekf_errors = [], []
        for index in range(dataset.epoch_count):
            epoch = dataset.epoch_at(index)
            fix = ekf.process(epoch)
            if index >= 30:
                nr_errors.append(nr.solve(epoch).distance_to(station.position))
                ekf_errors.append(fix.distance_to(station.position))
        assert np.mean(ekf_errors) < 0.8 * np.mean(nr_errors)

    def test_velocity_near_zero_for_station(self, srzn_dataset):
        ekf = NavigationEkf(position_process_noise=0.05)
        for index in range(srzn_dataset.epoch_count):
            ekf.process(srzn_dataset.epoch_at(index))
        assert np.linalg.norm(ekf.velocity) < 0.5

    def test_clock_bias_tracks_truth(self, srzn_dataset):
        ekf = NavigationEkf()
        fix = None
        for index in range(60):
            epoch = srzn_dataset.epoch_at(index)
            fix = ekf.process(epoch)
        assert fix.clock_bias_meters == pytest.approx(
            epoch.truth.clock_bias_meters, abs=5.0
        )


class TestKinematicTracking:
    def test_tracks_aircraft_with_doppler(self):
        constellation = Constellation.nominal(T0, rng=np.random.default_rng(6))
        trajectory = GreatCircleTrajectory(
            start_latitude=math.radians(40.0),
            start_longitude=math.radians(-100.0),
            altitude_m=10_000.0,
            heading=math.radians(90.0),
            speed_mps=250.0,
            epoch=T0,
        )
        scenario = KinematicScenario(
            trajectory, constellation, T0, 90.0, track_doppler=True
        )
        ekf = NavigationEkf(position_process_noise=2.0)
        errors, speed_errors = [], []
        for index, epoch in enumerate(scenario.epochs()):
            fix = ekf.process(epoch)
            if index >= 20:
                truth = trajectory.position_at(epoch.time)
                errors.append(np.linalg.norm(fix.position - truth))
                speed_errors.append(
                    abs(np.linalg.norm(ekf.velocity) - 250.0)
                )
        assert np.mean(errors) < 10.0
        assert np.mean(speed_errors) < 2.0


class TestRobustness:
    def test_innovation_gate_rejects_fault(self, srzn_dataset):
        ekf = NavigationEkf()
        station = get_station("SRZN")
        for index in range(30):
            ekf.process(srzn_dataset.epoch_at(index))
        # Inject a 1 km fault on one satellite.
        epoch = srzn_dataset.epoch_at(30)
        observations = list(epoch.observations)
        bad = observations[0]
        observations[0] = SatelliteObservation(
            prn=bad.prn,
            position=bad.position,
            pseudorange=bad.pseudorange + 1000.0,
            elevation=bad.elevation,
            azimuth=bad.azimuth,
        )
        fix = ekf.process(epoch.with_observations(observations))
        assert ekf.rejected_measurements >= 1
        assert fix.distance_to(station.position) < 20.0

    def test_time_going_backwards_raises(self, srzn_dataset):
        ekf = NavigationEkf()
        ekf.process(srzn_dataset.epoch_at(10))
        with pytest.raises(ConfigurationError, match="time order"):
            ekf.process(srzn_dataset.epoch_at(0))

    def test_same_timestamp_allowed(self, srzn_dataset):
        ekf = NavigationEkf()
        epoch = srzn_dataset.epoch_at(0)
        ekf.process(epoch)
        ekf.process(epoch)  # duplicate epoch: update only, no predict
        assert ekf.is_initialized
