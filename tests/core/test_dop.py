"""Unit tests for DOP computation."""

import numpy as np
import pytest

from repro.core import compute_dop
from repro.errors import GeometryError
from repro.geodesy import enu_to_ecef, geodetic_to_ecef


@pytest.fixture
def receiver():
    return geodetic_to_ecef(np.radians(40.0), np.radians(-100.0), 100.0)


def sky(receiver, directions):
    """Place satellites 2.2e7 m away along given ENU unit directions."""
    return np.array(
        [enu_to_ecef(np.asarray(d, dtype=float) * 2.2e7, receiver) for d in directions]
    )


class TestComputeDop:
    def test_good_geometry_low_dop(self, receiver):
        # Zenith + three well-spread low satellites: the classic
        # near-optimal 4-satellite arrangement.
        satellites = sky(
            receiver,
            [
                (0.0, 0.0, 1.0),
                (0.94, 0.0, 0.34),
                (-0.47, 0.81, 0.34),
                (-0.47, -0.81, 0.34),
            ],
        )
        dop = compute_dop(satellites, receiver)
        assert dop.gdop < 4.0
        assert dop.pdop < dop.gdop
        assert dop.hdop > 0 and dop.vdop > 0 and dop.tdop > 0

    def test_clustered_geometry_high_dop(self, receiver):
        spread = sky(
            receiver,
            [(0.0, 0.0, 1.0), (0.9, 0.0, 0.44), (-0.45, 0.78, 0.44), (-0.45, -0.78, 0.44)],
        )
        clustered = sky(
            receiver,
            [(0.0, 0.0, 1.0), (0.1, 0.0, 0.995), (0.0, 0.1, 0.995), (-0.1, 0.0, 0.995)],
        )
        assert compute_dop(clustered, receiver).gdop > compute_dop(spread, receiver).gdop

    def test_gdop_combines_components(self, receiver):
        satellites = sky(
            receiver,
            [(0.0, 0.0, 1.0), (0.9, 0.0, 0.44), (-0.45, 0.78, 0.44), (-0.45, -0.78, 0.44),
             (0.5, 0.5, 0.71)],
        )
        dop = compute_dop(satellites, receiver)
        assert dop.gdop == pytest.approx(
            np.sqrt(dop.pdop**2 + dop.tdop**2), rel=1e-9
        )
        assert dop.pdop == pytest.approx(
            np.sqrt(dop.hdop**2 + dop.vdop**2), rel=1e-9
        )

    def test_more_satellites_never_worse(self, receiver):
        base_dirs = [
            (0.0, 0.0, 1.0), (0.9, 0.0, 0.44), (-0.45, 0.78, 0.44), (-0.45, -0.78, 0.44),
        ]
        extra_dirs = base_dirs + [(0.7, -0.7, 0.14), (-0.7, 0.7, 0.14)]
        few = compute_dop(sky(receiver, base_dirs), receiver)
        many = compute_dop(sky(receiver, extra_dirs), receiver)
        assert many.gdop <= few.gdop

    def test_rejects_too_few(self, receiver):
        satellites = sky(receiver, [(0.0, 0.0, 1.0), (1.0, 0.0, 0.0), (0.0, 1.0, 0.0)])
        with pytest.raises(GeometryError, match="at least 4"):
            compute_dop(satellites, receiver)

    def test_rejects_coincident_satellite(self, receiver):
        satellites = np.vstack([receiver + 0.1, np.ones((3, 3)) * 2.2e7])
        with pytest.raises(GeometryError, match="coincides"):
            compute_dop(satellites, receiver)

    def test_singular_geometry_raises(self, receiver):
        # Four identical directions: G^T G singular.
        satellites = sky(receiver, [(0.0, 0.0, 1.0)] * 4)
        with pytest.raises(GeometryError):
            compute_dop(satellites, receiver)
