"""Unit + integration tests for Doppler velocity estimation."""

import math

import numpy as np
import pytest

from repro import Constellation, NewtonRaphsonSolver, VelocitySolver
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, GeometryError
from repro.motion import GreatCircleTrajectory, KinematicScenario, StaticTrajectory
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.stations import DatasetConfig, ObservationDataset, get_station
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


def synthetic_epoch(receiver, receiver_velocity, drift_mps, count=8, seed=0,
                    noise=0.0):
    """Epoch with exactly known Doppler observables."""
    rng = np.random.default_rng(seed)
    observations = []
    for prn in range(1, count + 1):
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        direction += receiver / np.linalg.norm(receiver)
        direction /= np.linalg.norm(direction)
        position = receiver + direction * rng.uniform(2.0e7, 2.6e7)
        satellite_velocity = rng.normal(0.0, 2000.0, size=3)
        unit = (position - receiver) / np.linalg.norm(position - receiver)
        rate = float((satellite_velocity - receiver_velocity) @ unit) + drift_mps
        if noise:
            rate += float(rng.normal(0.0, noise))
        observations.append(
            SatelliteObservation(
                prn=prn,
                position=position,
                pseudorange=float(np.linalg.norm(position - receiver)),
                range_rate=rate,
                velocity=satellite_velocity,
            )
        )
    return ObservationEpoch(time=T0, observations=tuple(observations))


RECEIVER = np.array([3623420.0, -5214015.0, 602359.0])


class TestExactRecovery:
    def test_static_receiver(self):
        epoch = synthetic_epoch(RECEIVER, np.zeros(3), drift_mps=0.0)
        fix = VelocitySolver().solve(epoch, RECEIVER)
        assert fix.speed < 1e-9
        assert fix.clock_drift_mps == pytest.approx(0.0, abs=1e-9)

    def test_moving_receiver(self):
        velocity = np.array([250.0, -30.0, 5.0])
        epoch = synthetic_epoch(RECEIVER, velocity, drift_mps=12.0)
        fix = VelocitySolver().solve(epoch, RECEIVER)
        np.testing.assert_allclose(fix.velocity, velocity, atol=1e-9)
        assert fix.clock_drift_mps == pytest.approx(12.0, abs=1e-9)

    def test_noise_tolerance(self):
        velocity = np.array([100.0, 0.0, 0.0])
        epoch = synthetic_epoch(RECEIVER, velocity, drift_mps=3.0, noise=0.05, seed=4)
        fix = VelocitySolver().solve(epoch, RECEIVER)
        np.testing.assert_allclose(fix.velocity, velocity, atol=0.5)

    def test_residual_norm_reported(self):
        epoch = synthetic_epoch(RECEIVER, np.zeros(3), 0.0, noise=0.05, seed=1)
        fix = VelocitySolver().solve(epoch, RECEIVER)
        assert 0.0 < fix.residual_norm < 1.0
        assert fix.satellites_used == 8


class TestValidation:
    def test_needs_four_doppler_measurements(self):
        epoch = synthetic_epoch(RECEIVER, np.zeros(3), 0.0, count=3)
        with pytest.raises(GeometryError, match="4 Doppler"):
            VelocitySolver().solve(epoch, RECEIVER)

    def test_observations_without_doppler_skipped(self, make_epoch):
        # make_epoch produces no range rates at all.
        epoch = make_epoch(count=8)
        with pytest.raises(GeometryError, match="Doppler"):
            VelocitySolver().solve(epoch, epoch.truth.receiver_position)

    def test_velocity_fix_validation(self):
        from repro.core import VelocityFix

        with pytest.raises(ConfigurationError):
            VelocityFix(velocity=np.ones(2), clock_drift_mps=0.0,
                        satellites_used=4, residual_norm=0.0)


class TestEndToEnd:
    def test_static_station_velocity_near_zero(self):
        station = get_station("SRZN")
        dataset = ObservationDataset(
            station, DatasetConfig(duration_seconds=5.0, track_doppler=True)
        )
        solver = VelocitySolver()
        nr = NewtonRaphsonSolver()
        for index in range(5):
            epoch = dataset.epoch_at(index)
            position_fix = nr.solve(epoch)
            fix = solver.solve(epoch, position_fix.position)
            assert fix.speed < 0.5  # static station, 5 cm/s Doppler noise

    def test_aircraft_speed_recovered(self):
        constellation = Constellation.nominal(T0, rng=np.random.default_rng(2))
        trajectory = GreatCircleTrajectory(
            start_latitude=math.radians(45.0),
            start_longitude=math.radians(5.0),
            altitude_m=10_000.0,
            heading=math.radians(120.0),
            speed_mps=250.0,
            epoch=T0,
        )
        scenario = KinematicScenario(
            trajectory, constellation, T0, 10.0, track_doppler=True
        )
        nr = NewtonRaphsonSolver()
        solver = VelocitySolver()
        speeds = []
        for epoch in scenario.epochs():
            position_fix = nr.solve(epoch)
            fix = solver.solve(epoch, position_fix.position)
            speeds.append(fix.speed)
        assert np.mean(speeds) == pytest.approx(250.0, abs=2.0)

    def test_clock_drift_matches_truth(self):
        station = get_station("SRZN")
        dataset = ObservationDataset(
            station, DatasetConfig(duration_seconds=3.0, track_doppler=True)
        )
        nr = NewtonRaphsonSolver()
        solver = VelocitySolver()
        epoch = dataset.epoch_at(1)
        fix = solver.solve(epoch, nr.solve(epoch).position)
        truth_drift = SPEED_OF_LIGHT * dataset.clock_model.drift_rate(epoch.time)
        assert fix.clock_drift_mps == pytest.approx(truth_drift, abs=0.5)
