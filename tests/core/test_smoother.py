"""Unit + integration tests for the RTS smoother."""

import numpy as np
import pytest

from repro.core import NavigationEkf, RtsSmoother
from repro.errors import ConfigurationError
from repro.stations import DatasetConfig, ObservationDataset, get_station


@pytest.fixture(scope="module")
def smoothing_run():
    station = get_station("SRZN")
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=90.0))
    smoother = RtsSmoother(NavigationEkf(position_process_noise=0.05))
    forward_fixes = [
        smoother.process(dataset.epoch_at(index))
        for index in range(dataset.epoch_count)
    ]
    return station, dataset, smoother, forward_fixes


class TestForwardPass:
    def test_forward_matches_plain_ekf(self, smoothing_run):
        """Wrapping the EKF must not change its forward answers."""
        station, dataset, _smoother, forward_fixes = smoothing_run
        plain = NavigationEkf(position_process_noise=0.05)
        for index, fix in enumerate(forward_fixes):
            reference = plain.process(dataset.epoch_at(index))
            np.testing.assert_allclose(fix.position, reference.position, atol=1e-9)

    def test_epoch_count(self, smoothing_run):
        _station, dataset, smoother, _fixes = smoothing_run
        assert smoother.epoch_count == dataset.epoch_count

    def test_filtered_positions_shape(self, smoothing_run):
        _station, dataset, smoother, _fixes = smoothing_run
        assert smoother.filtered_positions().shape == (dataset.epoch_count, 3)


class TestBackwardSweep:
    def test_smoothing_beats_filtering(self, smoothing_run):
        station, _dataset, smoother, _fixes = smoothing_run
        filtered = smoother.filtered_positions()
        smoothed = smoother.smooth()
        # Skip the initialization transient for the comparison.
        window = slice(10, None)
        filtered_errors = np.linalg.norm(
            filtered[window] - station.position, axis=1
        )
        smoothed_errors = np.linalg.norm(
            smoothed[window] - station.position, axis=1
        )
        assert np.mean(smoothed_errors) < np.mean(filtered_errors)

    def test_last_epoch_unchanged(self, smoothing_run):
        """RTS leaves the final state exactly as filtered (no future
        information exists there)."""
        _station, _dataset, smoother, _fixes = smoothing_run
        np.testing.assert_allclose(
            smoother.smooth()[-1], smoother.filtered_positions()[-1], atol=1e-12
        )

    def test_smooth_is_idempotent(self, smoothing_run):
        _station, _dataset, smoother, _fixes = smoothing_run
        first = smoother.smooth()
        second = smoother.smooth()
        np.testing.assert_allclose(first, second, atol=1e-12)

    def test_shape(self, smoothing_run):
        _station, dataset, smoother, _fixes = smoothing_run
        assert smoother.smooth().shape == (dataset.epoch_count, 3)


class TestValidation:
    def test_smooth_without_forward_pass(self):
        with pytest.raises(ConfigurationError, match="forward pass"):
            RtsSmoother().smooth()

    def test_filtered_positions_without_forward_pass(self):
        with pytest.raises(ConfigurationError):
            RtsSmoother().filtered_positions()
