"""Unit + property tests for the Newton-Raphson baseline."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import NewtonRaphsonSolver
from repro.errors import ConfigurationError, ConvergenceError, GeometryError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.timebase import GpsTime


class TestConfiguration:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ConfigurationError):
            NewtonRaphsonSolver(max_iterations=0)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            NewtonRaphsonSolver(tolerance_meters=0.0)

    def test_rejects_bad_initial_state(self):
        with pytest.raises(ConfigurationError):
            NewtonRaphsonSolver(initial_state=np.zeros(3))


class TestExactRecovery:
    def test_noise_free_four_satellites(self, make_epoch):
        epoch = make_epoch(bias_meters=40.0, count=4)
        fix = NewtonRaphsonSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-3
        assert fix.clock_bias_meters == pytest.approx(40.0, abs=1e-3)
        assert fix.converged

    def test_noise_free_many_satellites(self, make_epoch):
        epoch = make_epoch(bias_meters=-25.0, count=10)
        fix = NewtonRaphsonSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-3
        assert fix.clock_bias_meters == pytest.approx(-25.0, abs=1e-3)

    def test_cold_start_from_earth_center(self, make_epoch):
        # The paper's eq. 3-27 initial state: must still converge.
        epoch = make_epoch(bias_meters=100.0, count=8)
        fix = NewtonRaphsonSolver().solve(epoch)
        assert fix.iterations <= 15
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-3

    def test_warm_start_converges_faster(self, make_epoch):
        epoch = make_epoch(bias_meters=10.0, count=8)
        cold = NewtonRaphsonSolver().solve(epoch)
        warm_state = np.concatenate([epoch.truth.receiver_position + 10.0, [9.0]])
        warm = NewtonRaphsonSolver(initial_state=warm_state).solve(epoch)
        assert warm.iterations < cold.iterations

    @given(
        bias=st.floats(min_value=-1e5, max_value=1e5),
        count=st.integers(min_value=4, max_value=12),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_recovers_any_bias(self, make_epoch, bias, count, seed):
        epoch = make_epoch(bias_meters=bias, count=count, seed=seed)
        try:
            fix = NewtonRaphsonSolver().solve(epoch)
        except GeometryError:
            # Random 4-satellite skies can be near-coplanar; refusing
            # such geometry loudly is the correct behaviour — verify
            # the sky really is degenerate before accepting the refusal.
            from repro.core import compute_dop

            try:
                dop = compute_dop(
                    epoch.satellite_positions(), epoch.truth.receiver_position
                )
            except GeometryError:
                return  # fully singular: refusal clearly justified
            # Anything beyond GDOP ~20 is already unusable in practice;
            # NR's normal equations (condition ~ GDOP^2) may justifiably
            # refuse such skies.
            assert dop.gdop > 100.0, "NR refused a well-conditioned epoch"
            return
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-2
        assert fix.clock_bias_meters == pytest.approx(bias, abs=1e-2)


class TestNoiseTolerance:
    def test_small_noise_small_error(self, make_epoch):
        epoch = make_epoch(bias_meters=30.0, count=10, noise_sigma=1.0, seed=5)
        fix = NewtonRaphsonSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 20.0

    def test_more_satellites_generally_help(self, make_epoch):
        errors = {}
        for count in (5, 12):
            samples = []
            for seed in range(30):
                epoch = make_epoch(bias_meters=30.0, count=count,
                                   noise_sigma=2.0, seed=seed)
                fix = NewtonRaphsonSolver().solve(epoch)
                samples.append(fix.distance_to(epoch.truth.receiver_position))
            errors[count] = np.mean(samples)
        assert errors[12] < errors[5]


class TestFailureModes:
    def test_too_few_satellites(self, make_epoch):
        epoch = make_epoch(count=3)
        with pytest.raises(GeometryError, match="at least 4"):
            NewtonRaphsonSolver().solve(epoch)

    def test_degenerate_geometry_raises(self, gps_t0):
        # All satellites at the same point: Jacobian rank-deficient.
        position = np.array([2.6e7, 0.0, 0.0])
        observations = tuple(
            SatelliteObservation(prn=p, position=position + p * 1e-3,
                                 pseudorange=2.0e7)
            for p in range(1, 6)
        )
        epoch = ObservationEpoch(time=gps_t0, observations=observations)
        with pytest.raises((GeometryError, ConvergenceError)):
            NewtonRaphsonSolver(max_iterations=10).solve(epoch)

    def test_nonconvergence_reports_iterations(self, make_epoch):
        epoch = make_epoch(bias_meters=25.0, count=8)
        with pytest.raises(ConvergenceError) as excinfo:
            # One iteration cannot reach a 1e-4 m update from a cold start.
            NewtonRaphsonSolver(max_iterations=1).solve(epoch)
        assert excinfo.value.iterations == 1

    def test_residual_norm_reported(self, make_epoch):
        epoch = make_epoch(bias_meters=10.0, count=8, noise_sigma=1.0, seed=1)
        fix = NewtonRaphsonSolver().solve(epoch)
        assert np.isfinite(fix.residual_norm)
        assert fix.residual_norm > 0.0

    def test_algorithm_tag(self, make_epoch):
        assert NewtonRaphsonSolver().solve(make_epoch()).algorithm == "NR"


class TestElevationWeighting:
    def test_weighted_matches_ols_on_clean_data(self, make_epoch):
        epoch = make_epoch(bias_meters=20.0, count=8)
        plain = NewtonRaphsonSolver().solve(epoch)
        weighted = NewtonRaphsonSolver(elevation_weighted=True).solve(epoch)
        # Noise-free: both converge to the exact solution.
        assert np.linalg.norm(plain.position - weighted.position) < 1e-3

    def test_weighting_helps_on_elevation_weighted_noise(self):
        """On data whose noise actually grows toward the horizon, the
        sin^2(el) weights beat plain OLS on average."""
        from repro.stations import DatasetConfig, ObservationDataset, get_station

        station = get_station("SRZN")
        dataset = ObservationDataset(
            station,
            DatasetConfig(duration_seconds=120.0, noise_sigma_meters=1.5),
        )
        plain = NewtonRaphsonSolver()
        weighted = NewtonRaphsonSolver(elevation_weighted=True)
        plain_errors, weighted_errors = [], []
        for epoch in dataset.epochs():
            plain_errors.append(plain.solve(epoch).distance_to(station.position))
            weighted_errors.append(
                weighted.solve(epoch).distance_to(station.position)
            )
        assert np.mean(weighted_errors) < np.mean(plain_errors) * 1.02

    def test_weighting_changes_solution_under_noise(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=8, noise_sigma=2.0, seed=11)
        # Give observations distinct elevations so weights differ.
        from repro.observations import SatelliteObservation

        observations = tuple(
            SatelliteObservation(
                prn=obs.prn,
                position=obs.position,
                pseudorange=obs.pseudorange,
                elevation=0.15 + 0.15 * index,
            )
            for index, obs in enumerate(epoch.observations)
        )
        varied = epoch.with_observations(observations)
        plain = NewtonRaphsonSolver().solve(varied)
        weighted = NewtonRaphsonSolver(elevation_weighted=True).solve(varied)
        assert np.linalg.norm(plain.position - weighted.position) > 1e-6


class TestResidualConvergence:
    def test_residual_mode_matches_update_mode(self, make_epoch):
        """The paper's literal Step 5 criterion reaches the same fix."""
        epoch = make_epoch(bias_meters=25.0, count=9, noise_sigma=1.0, seed=6)
        by_update = NewtonRaphsonSolver(convergence="update").solve(epoch)
        by_residual = NewtonRaphsonSolver(convergence="residual").solve(epoch)
        assert np.linalg.norm(by_update.position - by_residual.position) < 0.01
        assert by_residual.converged

    def test_residual_mode_on_clean_data(self, make_epoch):
        epoch = make_epoch(bias_meters=40.0, count=6)
        fix = NewtonRaphsonSolver(convergence="residual").solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 0.01

    def test_iteration_counts_comparable(self, make_epoch):
        epoch = make_epoch(bias_meters=25.0, count=8, noise_sigma=1.0, seed=7)
        by_update = NewtonRaphsonSolver(convergence="update").solve(epoch)
        by_residual = NewtonRaphsonSolver(convergence="residual").solve(epoch)
        assert abs(by_update.iterations - by_residual.iterations) <= 2

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            NewtonRaphsonSolver(convergence="psychic")
