"""Per-constellation clock-bias solving: scalar and batched paths.

The multi-constellation state is ``(x, y, z, b_1..b_K)``.  These tests
pin the contract end to end: exact recovery on noise-free scenes,
first-appearance bias ordering, the admissibility rules (every system
>= 2 satellites, ``m >= 3 + 2K`` for the differenced solvers,
``m >= 3 + K`` for NR), and scalar/batch agreement.
"""

import numpy as np
import pytest

from repro.api import SolverConfig, build_scene
from repro.errors import ConfigurationError, GeometryError
from repro.solvers import (
    BatchDLGSolver,
    BatchDLOSolver,
    BatchNewtonRaphsonSolver,
    DLGSolver,
    DLOSolver,
    NewtonRaphsonSolver,
)

BIASES = {"G": 120_000.0, "R": -45_000.0}


def multi_scene(seed=0, lanes=None, biases=None, noise_sigma=0.0):
    lanes = {"G": 6, "R": 5} if lanes is None else lanes
    biases = BIASES if biases is None else biases
    return build_scene(
        lanes, clock_bias_meters=biases, seed=seed, noise_sigma=noise_sigma
    )


@pytest.fixture(params=["nr", "dlo", "dlg"])
def multi_solver(request):
    config = SolverConfig(
        algorithm=request.param, constellations="per_constellation"
    )
    return config.build_solver()


class TestScalarMulti:
    def test_exact_recovery(self, multi_solver):
        epoch = multi_scene()
        fix = multi_solver.solve(epoch)
        truth = epoch.truth.receiver_position
        assert fix.distance_to(truth) < 1e-5
        assert fix.clock_bias_map == pytest.approx(BIASES, abs=1e-4)

    def test_bias_order_is_first_appearance(self, multi_solver):
        epoch = multi_scene(lanes={"R": 5, "G": 6})
        fix = multi_solver.solve(epoch)
        assert tuple(system for system, _ in fix.clock_biases) == ("R", "G")

    def test_clock_bias_meters_is_first_lane(self, multi_solver):
        fix = multi_solver.solve(multi_scene())
        assert fix.clock_bias_meters == fix.clock_biases[0][1]

    def test_three_constellations(self, multi_solver):
        biases = {"G": 50.0, "E": -3000.0, "C": 7.5}
        epoch = build_scene(
            {"G": 5, "E": 4, "C": 4}, clock_bias_meters=biases, seed=3
        )
        fix = multi_solver.solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-5
        assert fix.clock_bias_map == pytest.approx(biases, abs=1e-4)

    def test_single_system_epoch_still_solves(self, multi_solver):
        epoch = build_scene({"G": 8}, clock_bias_meters={"G": 35.0}, seed=1)
        fix = multi_solver.solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-5
        assert fix.clock_bias_map == pytest.approx({"G": 35.0}, abs=1e-4)


class TestAdmissibility:
    @pytest.mark.parametrize("algorithm", ["dlo", "dlg"])
    def test_differenced_reject_singleton_system(self, algorithm):
        epoch = build_scene({"G": 7, "R": 1}, seed=0)
        solver = SolverConfig(
            algorithm=algorithm, constellations="per_constellation"
        ).build_solver()
        with pytest.raises(GeometryError, match="single satellite"):
            solver.solve(epoch)

    @pytest.mark.parametrize("algorithm", ["dlo", "dlg"])
    def test_differenced_reject_m_below_floor(self, algorithm):
        # 3 + 2K = 7 for K=2; six satellites cannot carry the system.
        epoch = build_scene({"G": 3, "R": 3}, seed=0)
        solver = SolverConfig(
            algorithm=algorithm, constellations="per_constellation"
        ).build_solver()
        with pytest.raises(GeometryError):
            solver.solve(epoch)

    def test_nr_floor_is_3_plus_k(self):
        # Six satellites over two systems: below the differenced floor
        # but enough for NR's 3 + K = 5 unknowns.
        epoch = build_scene(
            {"G": 3, "R": 3}, clock_bias_meters={"G": 10.0, "R": -4.0}, seed=2
        )
        solver = SolverConfig(
            algorithm="nr", constellations="per_constellation"
        ).build_solver()
        fix = solver.solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-4


class TestResidualDof:
    def test_single_mode_is_m_minus_4(self, make_epoch):
        epoch = make_epoch(count=8)
        assert NewtonRaphsonSolver().residual_dof(epoch) == 4
        assert DLGSolver().residual_dof(epoch) == 4

    def test_nr_multi_is_m_minus_3_minus_k(self):
        epoch = multi_scene()  # m=11, K=2
        solver = NewtonRaphsonSolver(constellations="per_constellation")
        assert solver.residual_dof(epoch) == 11 - 3 - 2

    @pytest.mark.parametrize("cls", [DLOSolver, DLGSolver])
    def test_differenced_multi_is_m_minus_3_minus_2k(self, cls):
        epoch = multi_scene()  # m=11, K=2
        solver = cls(constellations="per_constellation")
        assert solver.residual_dof(epoch) == 11 - 3 - 4


class TestBatchMulti:
    @pytest.mark.parametrize(
        "batch_cls,scalar_algorithm",
        [(BatchDLOSolver, "dlo"), (BatchDLGSolver, "dlg")],
    )
    def test_matches_scalar(self, batch_cls, scalar_algorithm):
        epochs = [multi_scene(seed=seed, noise_sigma=1.5) for seed in range(6)]
        scalar = SolverConfig(
            algorithm=scalar_algorithm, constellations="per_constellation"
        ).build_solver()
        batch = batch_cls(constellations="per_constellation")
        positions = batch.solve_batch(epochs)
        for row, epoch in enumerate(epochs):
            expected = scalar.solve(epoch).position
            assert np.linalg.norm(positions[row] - expected) < 1e-5

    def test_multi_result_fields(self):
        from repro.blocks import EpochBlock

        epochs = [multi_scene(seed=seed) for seed in range(4)]
        block = EpochBlock.from_epochs(epochs)
        result = BatchDLGSolver(
            constellations="per_constellation"
        ).solve_block_multi(block)
        assert result.positions.shape == (4, 3)
        assert result.constellation_biases.shape == (4, 2)
        assert result.systems == ("G", "R")
        assert result.norms.shape == (4,)
        assert np.allclose(result.constellation_biases[:, 0], BIASES["G"], atol=1e-4)
        assert np.allclose(result.constellation_biases[:, 1], BIASES["R"], atol=1e-4)

    @pytest.mark.parametrize("batch_cls", [BatchDLOSolver, BatchDLGSolver])
    def test_rejects_predicted_biases(self, batch_cls):
        epochs = [multi_scene(seed=seed) for seed in range(2)]
        batch = batch_cls(constellations="per_constellation")
        with pytest.raises(ConfigurationError, match="estimates the clock biases"):
            batch.solve_batch(epochs, np.zeros(2))

    def test_batch_nr_full_record(self):
        epochs = [multi_scene(seed=seed) for seed in range(3)]
        solver = BatchNewtonRaphsonSolver(constellations="per_constellation")
        record = solver.solve_batch_full(epochs)
        assert record.converged.all()
        assert record.systems == ("G", "R")
        assert record.constellation_biases.shape == (3, 2)
        assert np.allclose(
            record.constellation_biases[:, 0], BIASES["G"], atol=1e-3
        )

    def test_k1_multi_matches_single_nr_bitwise(self, make_epoch):
        # A per-constellation NR on an all-GPS epoch solves literally
        # the same linear systems as single mode: bit-identical output.
        epochs = [make_epoch(count=8, bias_meters=35.0, seed=seed) for seed in range(5)]
        single = BatchNewtonRaphsonSolver().solve_batch(epochs)
        multi = BatchNewtonRaphsonSolver(
            constellations="per_constellation"
        ).solve_batch(epochs)
        assert np.array_equal(single, multi)
