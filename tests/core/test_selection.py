"""Unit tests for base-satellite selection strategies."""

import numpy as np
import pytest

from repro.core import (
    ClosestRangeSelector,
    FirstSelector,
    HighestElevationSelector,
    RandomSelector,
)
from repro.core.selection import make_selector
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture
def epoch():
    observations = tuple(
        SatelliteObservation(
            prn=prn,
            position=np.array([2.0e7 + prn * 1e5, 1.0e7, 5.0e6]),
            pseudorange=2.5e7 - prn * 1e5,  # PRN 4 is the closest
            elevation=0.2 + 0.1 * prn,  # PRN 4 is the highest
        )
        for prn in (1, 2, 3, 4)
    )
    return ObservationEpoch(time=T0, observations=observations)


class TestSelectors:
    def test_first(self, epoch):
        assert FirstSelector().select(epoch) == 0

    def test_highest_elevation(self, epoch):
        assert HighestElevationSelector().select(epoch) == 3

    def test_closest_range(self, epoch):
        assert ClosestRangeSelector().select(epoch) == 3

    def test_random_in_bounds_and_reproducible(self, epoch):
        a = RandomSelector(np.random.default_rng(3))
        b = RandomSelector(np.random.default_rng(3))
        picks_a = [a.select(epoch) for _ in range(20)]
        picks_b = [b.select(epoch) for _ in range(20)]
        assert picks_a == picks_b
        assert all(0 <= p < 4 for p in picks_a)
        assert len(set(picks_a)) > 1  # actually random

    def test_random_covers_all_indices(self, epoch):
        selector = RandomSelector(np.random.default_rng(0))
        picks = {selector.select(epoch) for _ in range(200)}
        assert picks == {0, 1, 2, 3}


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("first", FirstSelector),
            ("random", RandomSelector),
            ("highest", HighestElevationSelector),
            ("closest", ClosestRangeSelector),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_selector(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown selector"):
            make_selector("psychic")
