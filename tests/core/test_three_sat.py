"""Unit + property tests for three-satellite precise-clock positioning."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.clocks import ZeroClockBiasPredictor
from repro.core import ThreeSatelliteSolver
from repro.errors import GeometryError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.timebase import GpsTime


class TestExactRecovery:
    def test_three_clean_satellites(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=3)
        fix = ThreeSatelliteSolver().solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-2
        assert fix.algorithm == "3SAT"

    def test_uses_first_three_of_larger_epoch(self, make_epoch):
        epoch = make_epoch(bias_meters=0.0, count=8)
        full = ThreeSatelliteSolver().solve(epoch)
        trimmed = ThreeSatelliteSolver().solve(epoch.subset(3))
        np.testing.assert_allclose(full.position, trimmed.position, atol=1e-9)

    def test_known_bias_removed(self, make_epoch):
        class ConstBias(ZeroClockBiasPredictor):
            def predict_bias_meters(self, time):
                return 1234.5

        epoch = make_epoch(bias_meters=1234.5, count=3)
        fix = ThreeSatelliteSolver(ConstBias()).solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 1e-2
        assert fix.clock_bias_meters == pytest.approx(1234.5)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=80, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_recovers_across_random_skies(self, make_epoch, seed):
        epoch = make_epoch(bias_meters=0.0, count=3, seed=seed)
        # A coarse prior (50 km off) resolves the two-root ambiguity,
        # as a real receiver's last fix or dead reckoning would.
        prior = epoch.truth.receiver_position + 5e4
        fix = ThreeSatelliteSolver(prior_position=prior).solve(epoch)
        assert fix.distance_to(epoch.truth.receiver_position) < 0.1

    def test_ambiguous_geometry_without_prior_raises_or_solves(self, make_epoch):
        """Without a prior, every random sky either solves correctly or
        refuses with the ambiguity error — it never silently returns
        the mirror point."""
        solver = ThreeSatelliteSolver()
        ambiguous = 0
        for seed in range(120):
            epoch = make_epoch(bias_meters=0.0, count=3, seed=seed)
            try:
                fix = solver.solve(epoch)
            except GeometryError as exc:
                assert "plausible" in str(exc) or "collinear" in str(exc)
                ambiguous += 1
                continue
            assert fix.distance_to(epoch.truth.receiver_position) < 0.1
        assert ambiguous < 60  # ambiguity is the exception, not the rule


class TestFailureModes:
    def test_rejects_two_satellites(self, make_epoch):
        with pytest.raises(GeometryError, match="at least 3"):
            ThreeSatelliteSolver().solve(make_epoch(count=2))

    def test_collinear_satellites(self, gps_t0):
        base = np.array([2.6e7, 0.0, 0.0])
        observations = tuple(
            SatelliteObservation(
                prn=p,
                position=base + np.array([p * 1e6, 0.0, 0.0]),
                pseudorange=2.0e7 + p * 1e6,
            )
            for p in (1, 2, 3)
        )
        epoch = ObservationEpoch(time=gps_t0, observations=observations)
        with pytest.raises(GeometryError, match="collinear"):
            ThreeSatelliteSolver().solve(epoch)

    def test_inconsistent_ranges(self, make_epoch):
        """Ranges shrunk so far the spheres cannot intersect."""
        epoch = make_epoch(bias_meters=0.0, count=3)
        shrunk = epoch.with_observations(
            SatelliteObservation(
                prn=obs.prn,
                position=obs.position,
                pseudorange=obs.pseudorange * 0.5,
                elevation=obs.elevation,
            )
            for obs in epoch.observations
        )
        with pytest.raises(GeometryError):
            ThreeSatelliteSolver().solve(shrunk)

    def test_bad_clock_prediction_rejected(self, make_epoch):
        class HugeBias(ZeroClockBiasPredictor):
            def predict_bias_meters(self, time):
                return 1e9

        with pytest.raises(GeometryError, match="clock"):
            ThreeSatelliteSolver(HugeBias()).solve(make_epoch(count=3))


class TestWithNoise:
    def test_small_noise_reasonable_error(self, make_epoch):
        errors = []
        for seed in range(30):
            epoch = make_epoch(bias_meters=0.0, count=3, noise_sigma=1.0, seed=seed)
            prior = epoch.truth.receiver_position + 5e4
            fix = ThreeSatelliteSolver(prior_position=prior).solve(epoch)
            errors.append(fix.distance_to(epoch.truth.receiver_position))
        # 3-satellite geometry is weaker than P4P, but stays bounded.
        assert np.median(errors) < 60.0
