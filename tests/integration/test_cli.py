"""Tests for the repro-gps command-line interface."""

import pytest

from repro.cli import main


class TestStationsCommand:
    def test_prints_table(self, capsys):
        assert main(["stations"]) == 0
        out = capsys.readouterr().out
        assert "Table 5.1" in out
        for site in ("SRZN", "YYR1", "FAI1", "KYCP"):
            assert site in out


class TestSolveCommand:
    def test_solves_short_run(self, capsys):
        assert main(["solve", "SRZN", "--duration", "40", "--warmup", "10"]) == 0
        out = capsys.readouterr().out
        assert "DLG" in out
        assert "pipeline stats" in out

    def test_algorithm_choice(self, capsys):
        assert main(["solve", "KYCP", "--duration", "10", "--algorithm", "nr"]) == 0
        out = capsys.readouterr().out
        assert "NR" in out

    def test_unknown_station_exits_nonzero(self, capsys):
        code = main(["solve", "NOPE", "--duration", "5"])
        assert code == 1
        assert "unknown station" in capsys.readouterr().err


class TestExportCommand:
    def test_writes_files(self, tmp_path, capsys):
        obs = tmp_path / "x.obs"
        nav = tmp_path / "x.nav"
        code = main(
            ["export", "YYR1", "--duration", "5", "--obs", str(obs), "--nav", str(nav)]
        )
        assert code == 0
        assert obs.exists() and nav.exists()
        out = capsys.readouterr().out
        assert "wrote 5 epochs" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["solve", "SRZN", "--algorithm", "wizardry"])


class TestSmoothingFlag:
    def test_solve_with_smoothing(self, capsys):
        assert main(["solve", "SRZN", "--duration", "20", "--warmup", "5",
                     "--smooth"]) == 0
        out = capsys.readouterr().out
        assert "Hatch-smoothed" in out

    def test_export_with_carrier(self, tmp_path, capsys):
        obs = tmp_path / "c.obs"
        nav = tmp_path / "c.nav"
        assert main(["export", "FAI1", "--duration", "3", "--carrier",
                     "--obs", str(obs), "--nav", str(nav)]) == 0
        from repro.rinex import read_observation_file

        data = read_observation_file(obs)
        assert data.header.observation_types == ("C1", "L1")


class TestExperimentCommand:
    def test_single_station_quick(self, capsys):
        # A very short span: just exercise the plumbing end to end.
        assert main(["experiment", "SRZN", "--duration", "400"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5.1" in out and "Fig 5.2" in out


class TestSkyplotCommand:
    def test_renders_sky(self, capsys):
        assert main(["skyplot", "SRZN"]) == 0
        out = capsys.readouterr().out
        assert "sky above SRZN" in out
        assert "GDOP" in out
        assert "legend:" in out

    def test_at_offset(self, capsys):
        assert main(["skyplot", "KYCP", "--at", "5"]) == 0
        out = capsys.readouterr().out
        assert "t+5s" in out


class TestExperimentOutput:
    def test_writes_markdown_report(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["experiment", "SRZN", "--duration", "400",
                     "--output", str(out)]) == 0
        assert out.exists()
        text = out.read_text()
        assert "## Accuracy rate" in text
        assert "SRZN" in text


class TestTelemetryCommand:
    def test_prometheus_text_to_stdout(self, capsys):
        assert main(["telemetry", "SRZN", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_receiver_epochs_total counter" in out
        assert "# TYPE repro_engine_streams_total counter" in out
        assert "# TYPE repro_replay_chunks_total counter" in out
        assert "# TYPE repro_solver_solves_total counter" in out

    def test_json_document_to_stdout(self, capsys):
        import json

        assert main(["telemetry", "SRZN", "--duration", "20",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["telemetry"]["enabled"] is True
        assert "repro_replay_epochs_total" in doc["metrics"]
        assert doc["extra"]["engine_diagnostics"]["epochs_dropped"] == 0
        assert any(s["name"] == "engine.solve_stream" for s in doc["spans"])

    def test_output_file_by_extension(self, tmp_path):
        path = tmp_path / "metrics.prom"
        assert main(["telemetry", "SRZN", "--duration", "20",
                     "--output", str(path)]) == 0
        assert "# TYPE repro_engine_epochs_total counter" in path.read_text()

    def test_leaves_telemetry_uninstalled(self):
        from repro import telemetry

        assert main(["telemetry", "SRZN", "--duration", "20"]) == 0
        assert telemetry.is_enabled() is False


class TestMetricsSink:
    def test_ensure_installs_registry_without_sink_path(self):
        # serve --status-port scrapes the live registry: arming the
        # port must arm collection even without --metrics-out.
        from repro import telemetry
        from repro.cli import _metrics_sink

        with _metrics_sink(None, ensure=True):
            assert telemetry.is_enabled() is True
        assert telemetry.is_enabled() is False

    def test_no_path_no_ensure_stays_uninstalled(self):
        from repro import telemetry
        from repro.cli import _metrics_sink

        with _metrics_sink(None):
            assert telemetry.is_enabled() is False


class TestMetricsOutFlag:
    def test_solve_writes_snapshot(self, tmp_path, capsys):
        path = tmp_path / "solve.json"
        assert main(["solve", "SRZN", "--duration", "20", "--warmup", "5",
                     "--metrics-out", str(path)]) == 0
        import json

        doc = json.loads(path.read_text())
        assert doc["metrics"]["repro_receiver_epochs_total"]["samples"][0][
            "value"
        ] == 20
        assert "wrote telemetry snapshot" in capsys.readouterr().out

    def test_experiment_writes_prometheus_text(self, tmp_path, capsys):
        path = tmp_path / "exp.prom"
        assert main(["experiment", "SRZN", "--duration", "400",
                     "--metrics-out", str(path)]) == 0
        assert "# TYPE repro_solver_solves_total counter" in path.read_text()


class TestServeWorkersFlag:
    def test_sharded_serve_writes_fleet_snapshot(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        assert main(["serve", "SRZN", "--workers", "2", "--requests", "96",
                     "--batch-size", "16", "--metrics-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "across 2 workers" in out
        assert "statuses: {'ok': 96}" in out
        import json

        doc = json.loads(path.read_text())
        metrics = doc["metrics"]
        # Fleet aggregation: worker-side executor counters made it back.
        assert metrics["repro_engine_epochs_total"]["samples"][0]["value"] == 96
        assert metrics["repro_shard_requests_total"]["samples"][0]["value"] == 96
        total_worker_batches = sum(
            sample["value"]
            for sample in metrics["repro_shard_worker_batches_total"]["samples"]
        )
        assert total_worker_batches == 6  # 96 epochs / batches of 16
        assert "repro_fleet_registries" in metrics

    def test_sharded_serve_prometheus_text(self, tmp_path, capsys):
        path = tmp_path / "fleet.prom"
        assert main(["serve", "SRZN", "--workers", "1", "--requests", "32",
                     "--metrics-out", str(path)]) == 0
        text = path.read_text()
        assert "# TYPE repro_shard_requests_total counter" in text
        assert "repro_fleet_registries 2" in text  # router + 1 worker

    def test_asyncio_only_flags_rejected_with_workers(self, capsys):
        assert main(["serve", "SRZN", "--workers", "2", "--requests", "8",
                     "--trace"]) == 1
        assert "--trace" in capsys.readouterr().err


class TestInspectMetricsSnapshot:
    def test_renders_fleet_snapshot(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        assert main(["serve", "SRZN", "--workers", "2", "--requests", "32",
                     "--batch-size", "16", "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_shard_requests_total 32" in out
        assert "metric families" in out

    def test_request_flag_rejected_for_metrics(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        path.write_text(json.dumps({"metrics": {"x_total": {
            "kind": "counter", "help": "", "label_names": [],
            "samples": [{"labels": {}, "value": 1.0}]}}}))
        assert main(["inspect", str(path), "--request", "r-1"]) == 1
        assert "telemetry snapshot" in capsys.readouterr().err
