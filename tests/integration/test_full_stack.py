"""Whole-stack integration tests exercising many subsystems together."""

import numpy as np
import pytest

from repro import (
    CycleSlipDetector,
    DatasetConfig,
    GpsReceiver,
    HatchFilter,
    NavigationEkf,
    NewtonRaphsonSolver,
    ObservationDataset,
    RtsSmoother,
    VelocitySolver,
    get_station,
    ionosphere_free_epoch,
)
from repro.rinex import (
    ObservationHeader,
    read_navigation_file,
    read_observation_file,
    reconstruct_epochs,
    write_navigation_file,
    write_observation_file,
)


class TestAllObservablesDataset:
    """One dataset producing every observable at once."""

    @pytest.fixture(scope="class")
    def rich_dataset(self):
        return ObservationDataset(
            get_station("SRZN"),
            DatasetConfig(
                duration_seconds=30.0,
                track_carrier=True,
                track_doppler=True,
                dual_frequency=True,
                multipath_amplitude_meters=1.0,
            ),
        )

    def test_every_observable_present(self, rich_dataset):
        epoch = rich_dataset.epoch_at(0)
        for obs in epoch.observations:
            assert obs.pseudorange > 0
            assert obs.carrier_range is not None
            assert obs.pseudorange_l2 is not None
            assert obs.range_rate is not None
            assert obs.velocity is not None

    def test_all_processing_layers_compose(self, rich_dataset):
        """Hatch + iono-free + velocity + RAIM on the same rich epochs."""
        station = get_station("SRZN")
        hatch = HatchFilter(window=20)
        detector = CycleSlipDetector()
        nr = NewtonRaphsonSolver()
        velocity_solver = VelocitySolver()

        for index in range(rich_dataset.epoch_count):
            epoch = rich_dataset.epoch_at(index)
            for prn in detector.check_epoch(epoch):
                hatch.reset(prn)
            smoothed = hatch.smooth_epoch(epoch)
            combined = ionosphere_free_epoch(epoch)

            fix = nr.solve(smoothed)
            assert fix.distance_to(station.position) < 30.0
            fix_if = nr.solve(combined)
            assert fix_if.distance_to(station.position) < 60.0
            velocity = velocity_solver.solve(epoch, fix.position)
            assert velocity.speed < 1.0  # static station

    def test_no_spurious_slips_in_clean_stream(self, rich_dataset):
        # The threshold must sit above the *differenced* code noise:
        # low-elevation satellites here carry sigma ~3.5 m, so the
        # between-epoch cmc scatter reaches ~2 * sqrt(2) * 3.5 ~ 10 m.
        detector = CycleSlipDetector(threshold_meters=25.0)
        for index in range(rich_dataset.epoch_count):
            assert detector.check_epoch(rich_dataset.epoch_at(index)) == []


class TestRinexAcrossEphemerisRefresh:
    def test_reconstruction_spans_window_boundary(self, tmp_path):
        """Export epochs straddling a 2-hour ephemeris re-issue; the
        reconstruction must pick the right upload on each side."""
        station = get_station("YYR1")
        dataset = ObservationDataset(
            station,
            DatasetConfig(
                duration_seconds=7400.0, ephemeris_refresh_seconds=3600.0
            ),
        )
        # Epochs just before and after the first two refreshes.
        indices = [3598, 3602, 7198, 7202]
        epochs = [dataset.epoch_at(index) for index in indices]
        header = ObservationHeader(
            marker_name=station.site_id,
            approx_position=station.ecef,
            interval=1.0,
        )
        write_observation_file(tmp_path / "w.obs", header, epochs)
        write_navigation_file(tmp_path / "w.nav", dataset.navigation_records())

        rebuilt = reconstruct_epochs(
            read_observation_file(tmp_path / "w.obs"),
            read_navigation_file(tmp_path / "w.nav"),
        )
        assert len(rebuilt) == len(epochs)
        solver = NewtonRaphsonSolver()
        for epoch in rebuilt:
            fix = solver.solve(epoch)
            assert fix.distance_to(station.position) < 30.0

    def test_positions_match_across_boundary(self, tmp_path):
        station = get_station("YYR1")
        dataset = ObservationDataset(
            station,
            DatasetConfig(
                duration_seconds=7400.0, ephemeris_refresh_seconds=3600.0
            ),
        )
        epochs = [dataset.epoch_at(3598), dataset.epoch_at(3602)]
        header = ObservationHeader(
            marker_name=station.site_id,
            approx_position=station.ecef,
            interval=1.0,
        )
        write_observation_file(tmp_path / "x.obs", header, epochs)
        write_navigation_file(tmp_path / "x.nav", dataset.navigation_records())
        rebuilt = reconstruct_epochs(
            read_observation_file(tmp_path / "x.obs"),
            read_navigation_file(tmp_path / "x.nav"),
        )
        for original, back in zip(epochs, rebuilt):
            by_prn = {obs.prn: obs for obs in original.observations}
            for obs in back.observations:
                assert (
                    np.linalg.norm(obs.position - by_prn[obs.prn].position) < 0.05
                )


class TestSmoothedSequentialPipeline:
    def test_ekf_on_hatch_smoothed_epochs(self):
        """The best static configuration: carrier smoothing under a
        sequential filter, then RTS for post-processing."""
        station = get_station("FAI1")
        dataset = ObservationDataset(
            station,
            DatasetConfig(duration_seconds=120.0, track_carrier=True),
        )
        hatch = HatchFilter(window=60)
        smoother = RtsSmoother(NavigationEkf(position_process_noise=0.05))
        for index in range(dataset.epoch_count):
            smoother.process(hatch.smooth_epoch(dataset.epoch_at(index)))
        smoothed = smoother.smooth()
        errors = np.linalg.norm(smoothed[60:] - station.position, axis=1)
        # Stacked layers: comfortably under the raw ~3 m NR error.
        assert np.mean(errors) < 2.0


class TestReceiverWithPreprocessing:
    def test_receiver_consumes_preprocessed_epochs(self):
        station = get_station("KYCP")
        dataset = ObservationDataset(
            station,
            DatasetConfig(duration_seconds=90.0, track_carrier=True),
        )
        hatch = HatchFilter(window=30)
        receiver = GpsReceiver(
            algorithm="dlg", clock_mode="threshold", warmup_epochs=20
        )
        errors = []
        for index in range(dataset.epoch_count):
            epoch = hatch.smooth_epoch(dataset.epoch_at(index))
            fix = receiver.process(epoch)
            if index >= 40:
                errors.append(fix.distance_to(station.position))
        assert np.mean(errors) < 10.0
