"""Failure-injection tests: the stack must degrade loudly, not wrongly."""

import numpy as np
import pytest

from repro import (
    DatasetConfig,
    GpsReceiver,
    NewtonRaphsonSolver,
    ObservationDataset,
    get_station,
)
from repro.errors import GeometryError


class TestSatelliteOutages:
    def test_unhealthy_satellites_shrink_epochs(self, srzn_dataset):
        epoch_before = srzn_dataset.epoch_at(0)
        victims = list(epoch_before.prns[:2])
        try:
            for prn in victims:
                srzn_dataset.constellation.set_health(prn, False)
            epoch_after = srzn_dataset.epoch_at(0)
            assert epoch_after.satellite_count == epoch_before.satellite_count - 2
            assert all(prn not in epoch_after.prns for prn in victims)
        finally:
            for prn in victims:
                srzn_dataset.constellation.set_health(prn, True)

    def test_receiver_survives_outage(self):
        station = get_station("SRZN")
        dataset = ObservationDataset(station, DatasetConfig(duration_seconds=60.0))
        receiver = GpsReceiver(algorithm="dlg", warmup_epochs=10)
        for index in range(30):
            if index == 20:
                # Knock out the two highest satellites mid-run.
                for prn in dataset.epoch_at(index).prns[:2]:
                    dataset.constellation.set_health(prn, False)
            fix = receiver.process(dataset.epoch_at(index))
            assert fix.distance_to(station.position) < 60.0

    def test_solver_rejects_epoch_below_minimum(self, srzn_dataset):
        epoch = srzn_dataset.epoch_at(0).subset(3)
        with pytest.raises(GeometryError):
            NewtonRaphsonSolver().solve(epoch)


class TestCorruptMeasurements:
    def test_single_huge_outlier_shifts_but_does_not_crash(self, srzn_dataset):
        from repro.observations import SatelliteObservation

        epoch = srzn_dataset.epoch_at(0)
        corrupted = list(epoch.observations)
        bad = corrupted[0]
        corrupted[0] = SatelliteObservation(
            prn=bad.prn,
            position=bad.position,
            pseudorange=bad.pseudorange + 5000.0,
            elevation=bad.elevation,
            azimuth=bad.azimuth,
        )
        fix = NewtonRaphsonSolver().solve(epoch.with_observations(corrupted))
        station = get_station("SRZN")
        error = fix.distance_to(station.position)
        # The 5 km range outlier pulls the fix by up to its own size.
        assert 10.0 < error < 10_000.0
        # The residual norm flags the inconsistency for fault detection.
        assert fix.residual_norm > 100.0
