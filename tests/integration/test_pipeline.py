"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    BancroftSolver,
    DatasetConfig,
    DLGSolver,
    DLOSolver,
    GpsReceiver,
    NewtonRaphsonSolver,
    ObservationDataset,
    OracleClockBiasPredictor,
    get_station,
)
from repro.core import compute_dop


class TestFullChainAccuracy:
    """Constellation -> signals -> corrector -> solver -> meters."""

    @pytest.mark.parametrize("site", ["SRZN", "YYR1", "FAI1", "KYCP"])
    def test_nr_error_budget_all_stations(self, site):
        station = get_station(site)
        dataset = ObservationDataset(station, DatasetConfig(duration_seconds=30.0))
        solver = NewtonRaphsonSolver()
        errors = [
            solver.solve(epoch).distance_to(station.position)
            for epoch in dataset.epochs()
        ]
        # Residual iono/tropo + noise, times typical DOP: meters-level.
        assert np.mean(errors) < 15.0
        assert np.max(errors) < 60.0

    def test_all_solvers_agree_on_one_epoch(self, srzn_dataset):
        epoch = srzn_dataset.epoch_at(0)
        oracle = OracleClockBiasPredictor(srzn_dataset.clock_model)
        fixes = [
            NewtonRaphsonSolver().solve(epoch),
            DLOSolver(oracle).solve(epoch),
            DLGSolver(oracle).solve(epoch),
            BancroftSolver().solve(epoch),
        ]
        positions = np.array([fix.position for fix in fixes])
        spread = np.max(np.linalg.norm(positions - positions[0], axis=1))
        assert spread < 30.0

    def test_nr_bias_tracks_truth(self, srzn_dataset):
        solver = NewtonRaphsonSolver()
        for index in (0, 40, 80):
            epoch = srzn_dataset.epoch_at(index)
            fix = solver.solve(epoch)
            assert fix.clock_bias_meters == pytest.approx(
                epoch.truth.clock_bias_meters, abs=10.0
            )

    def test_dop_predicts_error_scale(self, srzn_dataset):
        epoch = srzn_dataset.epoch_at(0)
        dop = compute_dop(epoch.satellite_positions(), epoch.truth.receiver_position)
        assert 1.0 < dop.gdop < 10.0


class TestReceiverAcrossStations:
    @pytest.mark.parametrize("algorithm", ["nr", "dlo", "dlg", "bancroft"])
    def test_every_algorithm_end_to_end(self, srzn_dataset, algorithm):
        station = get_station("SRZN")
        receiver = GpsReceiver(algorithm=algorithm, warmup_epochs=15)
        errors = []
        for index in range(60):
            fix = receiver.process(srzn_dataset.epoch_at(index))
            errors.append(fix.distance_to(station.position))
        assert np.mean(errors) < 20.0

    def test_threshold_station_with_threshold_mode(self, kycp_dataset):
        station = get_station("KYCP")
        receiver = GpsReceiver(
            algorithm="dlg", clock_mode="threshold", warmup_epochs=15
        )
        errors = [
            receiver.process(kycp_dataset.epoch_at(i)).distance_to(station.position)
            for i in range(60)
        ]
        assert np.mean(errors) < 20.0


class TestDeterminism:
    def test_same_config_same_results(self):
        station = get_station("YYR1")
        config = DatasetConfig(duration_seconds=20.0, seed=99)
        errors = []
        for _run in range(2):
            dataset = ObservationDataset(station, config)
            solver = NewtonRaphsonSolver()
            errors.append(
                [
                    solver.solve(epoch).distance_to(station.position)
                    for epoch in dataset.epochs()
                ]
            )
        assert errors[0] == errors[1]
