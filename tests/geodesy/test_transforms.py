"""Unit + property tests for coordinate transforms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.geodesy import (
    ecef_to_enu,
    ecef_to_enu_matrix,
    ecef_to_geodetic,
    enu_to_ecef,
    geodetic_to_ecef,
)
from repro.stations import all_stations

latitudes = st.floats(min_value=-math.pi / 2 + 1e-6, max_value=math.pi / 2 - 1e-6)
longitudes = st.floats(min_value=-math.pi, max_value=math.pi)
heights = st.floats(min_value=-5_000.0, max_value=3e7)


class TestGeodeticToEcef:
    def test_equator_prime_meridian(self):
        ecef = geodetic_to_ecef(0.0, 0.0, 0.0)
        np.testing.assert_allclose(ecef, [6_378_137.0, 0.0, 0.0], atol=1e-6)

    def test_north_pole(self):
        ecef = geodetic_to_ecef(math.pi / 2, 0.0, 0.0)
        assert ecef[0] == pytest.approx(0.0, abs=1e-6)
        assert ecef[2] == pytest.approx(6_356_752.3142, abs=1e-3)

    def test_height_adds_radially(self):
        ground = geodetic_to_ecef(0.7, 1.1, 0.0)
        raised = geodetic_to_ecef(0.7, 1.1, 1000.0)
        assert np.linalg.norm(raised - ground) == pytest.approx(1000.0, rel=1e-9)


class TestEcefToGeodetic:
    @given(latitudes, longitudes, heights)
    @settings(max_examples=200)
    def test_roundtrip(self, latitude, longitude, height):
        ecef = geodetic_to_ecef(latitude, longitude, height)
        lat2, lon2, h2 = ecef_to_geodetic(ecef)
        assert lat2 == pytest.approx(latitude, abs=1e-9)
        assert lon2 == pytest.approx(longitude, abs=1e-9)
        assert h2 == pytest.approx(height, abs=1e-4)

    def test_polar_axis(self):
        latitude, _longitude, height = ecef_to_geodetic(np.array([0.0, 0.0, 7e6]))
        assert latitude == pytest.approx(math.pi / 2)
        assert height == pytest.approx(7e6 - 6_356_752.3142, abs=1e-3)

    def test_station_heights_reasonable(self):
        # Table 5.1 stations are land stations: heights within -100..4000 m.
        for station in all_stations():
            _lat, _lon, height = ecef_to_geodetic(station.position)
            assert -100.0 < height < 4000.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            ecef_to_geodetic(np.array([1.0, 2.0]))


class TestEnu:
    def test_rotation_is_orthonormal(self):
        rotation = ecef_to_enu_matrix(0.6, -1.2)
        np.testing.assert_allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rotation) == pytest.approx(1.0)

    def test_up_axis_points_away_from_earth(self):
        origin = geodetic_to_ecef(0.5, 0.5, 0.0)
        above = geodetic_to_ecef(0.5, 0.5, 100.0)
        enu = ecef_to_enu(above, origin)
        assert enu[2] == pytest.approx(100.0, abs=1e-6)
        assert abs(enu[0]) < 1e-6 and abs(enu[1]) < 1e-6

    def test_north_displacement(self):
        origin = geodetic_to_ecef(0.0, 0.0, 0.0)
        north = geodetic_to_ecef(1e-6, 0.0, 0.0)
        enu = ecef_to_enu(north, origin)
        assert enu[1] > 0  # north component dominates
        assert abs(enu[0]) < abs(enu[1]) * 1e-3

    @given(latitudes, longitudes, st.floats(min_value=-1e4, max_value=1e4),
           st.floats(min_value=-1e4, max_value=1e4), st.floats(min_value=-1e4, max_value=1e4))
    @settings(max_examples=100)
    def test_enu_roundtrip(self, latitude, longitude, east, north, up):
        origin = geodetic_to_ecef(latitude, longitude, 100.0)
        local = np.array([east, north, up])
        back = ecef_to_enu(enu_to_ecef(local, origin), origin)
        np.testing.assert_allclose(back, local, atol=1e-6)

    def test_distance_preserved(self):
        origin = geodetic_to_ecef(0.8, 2.0, 50.0)
        target = origin + np.array([100.0, -200.0, 300.0])
        enu = ecef_to_enu(target, origin)
        assert np.linalg.norm(enu) == pytest.approx(
            np.linalg.norm(target - origin), rel=1e-12
        )
