"""Unit tests for elevation/azimuth geometry."""

import math

import numpy as np
import pytest

from repro.geodesy import (
    ecef_to_geodetic,
    elevation_angle,
    elevation_azimuth,
    enu_to_ecef,
    geodetic_to_ecef,
)


@pytest.fixture
def receiver():
    return geodetic_to_ecef(math.radians(45.0), math.radians(10.0), 200.0)


class TestElevation:
    def test_zenith_satellite(self, receiver):
        satellite = enu_to_ecef(np.array([0.0, 0.0, 2e7]), receiver)
        elevation, _azimuth = elevation_azimuth(satellite, receiver)
        assert elevation == pytest.approx(math.pi / 2, abs=1e-9)

    def test_horizon_satellite(self, receiver):
        satellite = enu_to_ecef(np.array([2e7, 0.0, 0.0]), receiver)
        elevation, _azimuth = elevation_azimuth(satellite, receiver)
        assert elevation == pytest.approx(0.0, abs=1e-9)

    def test_below_horizon_is_negative(self, receiver):
        satellite = enu_to_ecef(np.array([2e7, 0.0, -1e6]), receiver)
        assert elevation_angle(satellite, receiver) < 0


class TestAzimuth:
    @pytest.mark.parametrize(
        "east,north,expected_deg",
        [
            (0.0, 1e7, 0.0),     # due north
            (1e7, 0.0, 90.0),    # due east
            (0.0, -1e7, 180.0),  # due south
            (-1e7, 0.0, 270.0),  # due west
            (1e7, 1e7, 45.0),    # northeast
        ],
    )
    def test_cardinal_directions(self, receiver, east, north, expected_deg):
        satellite = enu_to_ecef(np.array([east, north, 5e6]), receiver)
        _elevation, azimuth = elevation_azimuth(satellite, receiver)
        # Compare as angles: 360 - epsilon and 0 are both "due north".
        difference = (math.degrees(azimuth) - expected_deg) % 360.0
        assert min(difference, 360.0 - difference) == pytest.approx(0.0, abs=1e-6)

    def test_azimuth_in_range(self, receiver):
        rng = np.random.default_rng(3)
        for _ in range(20):
            enu = rng.normal(size=3) * 1e7
            satellite = enu_to_ecef(enu, receiver)
            _elevation, azimuth = elevation_azimuth(satellite, receiver)
            assert 0.0 <= azimuth < 2 * math.pi
