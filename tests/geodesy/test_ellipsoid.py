"""Unit tests for the reference ellipsoid."""

import pytest

from repro.errors import ConfigurationError
from repro.geodesy import WGS84, Ellipsoid


class TestWGS84Values:
    def test_semi_major_axis(self):
        assert WGS84.semi_major_axis == 6_378_137.0

    def test_semi_minor_axis(self):
        # The canonical WGS-84 value, 6356752.3142 m.
        assert WGS84.semi_minor_axis == pytest.approx(6_356_752.3142, abs=1e-3)

    def test_eccentricity_squared(self):
        assert WGS84.eccentricity_squared == pytest.approx(6.69437999014e-3, rel=1e-9)

    def test_second_eccentricity_squared(self):
        assert WGS84.second_eccentricity_squared == pytest.approx(
            6.73949674228e-3, rel=1e-9
        )


class TestPrimeVerticalRadius:
    def test_at_equator_equals_a(self):
        assert WGS84.prime_vertical_radius(0.0) == WGS84.semi_major_axis

    def test_at_pole(self):
        expected = WGS84.semi_major_axis / (1 - WGS84.eccentricity_squared) ** 0.5
        assert WGS84.prime_vertical_radius(1.0) == pytest.approx(expected)

    def test_monotone_with_latitude(self):
        values = [WGS84.prime_vertical_radius(s) for s in (0.0, 0.5, 0.9, 1.0)]
        assert values == sorted(values)


class TestValidation:
    def test_rejects_nonpositive_axis(self):
        with pytest.raises(ConfigurationError):
            Ellipsoid(semi_major_axis=0.0, flattening=0.0)

    def test_rejects_flattening_of_one(self):
        with pytest.raises(ConfigurationError):
            Ellipsoid(semi_major_axis=1.0, flattening=1.0)

    def test_sphere_allowed(self):
        sphere = Ellipsoid(semi_major_axis=1000.0, flattening=0.0)
        assert sphere.semi_minor_axis == 1000.0
        assert sphere.eccentricity_squared == 0.0
