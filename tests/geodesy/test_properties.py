"""Property tests for the geodesy round-trips (ISSUE: validation PR).

Every tolerance below is justified where it is used; the shared
reasoning is:

* ``ecef_to_geodetic`` (Bowring) iterates until the latitude update is
  below 1e-14 rad, i.e. ~64 nanometers of northing on the WGS84
  ellipsoid — so round-trip error is dominated by float rounding in the
  trig/projection arithmetic, which is O(eps * coordinate magnitude):
  about ``2e-16 * 6.4e6 ≈ 1.4e-9 m`` at the surface and
  ``2e-16 * 3e7 ≈ 7e-9 m`` at GPS orbit radius.  A 1e-6 m (micrometer)
  bound sits three orders of magnitude above that float noise while
  staying six orders below anything physically meaningful.
* Near the poles the (latitude, height) parameterization itself becomes
  ill-conditioned (``height = p / cos(lat) - N`` divides by a vanishing
  cosine), so parameter-space assertions keep 1e-3 rad (~6.4 km) of
  margin from the poles; polar coverage is asserted in *ECEF space*,
  where the round-trip stays well-conditioned, plus the exact on-axis
  branch.
* The ENU rotation is orthonormal by construction, so ENU round-trips
  add only O(eps * |target - origin|) error: at most ~7e-9 m for
  targets a GPS-orbit diameter away.
"""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geodesy import (
    WGS84,
    ecef_to_enu,
    ecef_to_enu_matrix,
    ecef_to_geodetic,
    enu_to_ecef,
    geodetic_to_ecef,
)

# Strategy bounds.  Latitudes for *parameter-space* round trips stay
# 1e-3 rad away from the poles (see module docstring); longitude covers
# the full principal range; heights span the Mariana trench to above
# GPS orbit altitude ("high-altitude" per the issue).
interior_latitudes = st.floats(
    min_value=-math.pi / 2 + 1e-3, max_value=math.pi / 2 - 1e-3
)
all_latitudes = st.floats(min_value=-math.pi / 2, max_value=math.pi / 2)
longitudes = st.floats(min_value=-math.pi + 1e-12, max_value=math.pi)
surface_heights = st.floats(min_value=-11_000.0, max_value=9_000.0)
orbit_heights = st.floats(min_value=-11_000.0, max_value=2.6e7)


class TestGeodeticRoundTrip:
    @given(latitude=interior_latitudes, longitude=longitudes, height=surface_heights)
    def test_parameters_recovered_near_surface(self, latitude, longitude, height):
        ecef = geodetic_to_ecef(latitude, longitude, height)
        lat2, lon2, h2 = ecef_to_geodetic(ecef)
        # 1e-11 rad of latitude is ~64 micrometers of northing — three
        # orders above the 1e-14 rad iteration stop, far below use.
        assert lat2 == pytest.approx(latitude, abs=1e-11)
        assert lon2 == pytest.approx(longitude, abs=1e-11)
        # Height is the ill-conditioned parameter near the poles; with
        # |lat| <= pi/2 - 1e-3 the amplification p/cos^2 keeps the
        # error below ~1e-4 m * (iteration stop), so 1e-6 m holds.
        assert h2 == pytest.approx(height, abs=1e-6)

    @given(latitude=all_latitudes, longitude=longitudes, height=orbit_heights)
    def test_ecef_fixed_point_everywhere(self, latitude, longitude, height):
        # Pole-inclusive, orbit-altitude-inclusive coverage, asserted in
        # ECEF space where the map stays well-conditioned (the
        # parameter-space lat/height trade-off collapses back onto the
        # same point).  1e-6 m ≈ 100x the float noise at 3e7 m scale.
        ecef = geodetic_to_ecef(latitude, longitude, height)
        reprojected = geodetic_to_ecef(*ecef_to_geodetic(ecef))
        np.testing.assert_allclose(reprojected, ecef, atol=1e-6)

    @given(z_sign=st.sampled_from([-1.0, 1.0]), height=orbit_heights)
    def test_polar_axis_branch_is_exact(self, z_sign, height):
        # On the axis the closed-form branch answers: latitude is
        # exactly +/- pi/2 and the height algebra is a subtraction, so
        # only one rounding at the coordinate's own magnitude applies.
        z = z_sign * (WGS84.semi_minor_axis + height)
        latitude, _longitude, h = ecef_to_geodetic(np.array([0.0, 0.0, z]))
        assert latitude == math.copysign(math.pi / 2, z_sign)
        assert h == pytest.approx(height, abs=1e-8)

    @given(longitude=longitudes, height=orbit_heights)
    def test_equator_has_zero_latitude(self, longitude, height):
        # z == 0 must map to exactly latitude 0: Bowring's initial
        # guess atan2(0, p(1-e2)) is already the fixed point.
        latitude, lon2, h2 = ecef_to_geodetic(
            geodetic_to_ecef(0.0, longitude, height)
        )
        assert latitude == pytest.approx(0.0, abs=1e-12)
        assert lon2 == pytest.approx(longitude, abs=1e-11)
        assert h2 == pytest.approx(height, abs=1e-6)

    @given(latitude=interior_latitudes, longitude=longitudes)
    def test_height_is_distance_along_normal(self, latitude, longitude):
        # Geometric definition of geodetic height: moving 1000 m of
        # height moves exactly 1000 m in ECEF (along the ellipsoid
        # normal).  Differencing two ~6.4e6 m vectors leaves
        # O(eps * 6.4e6) ≈ 1.4e-9 m of cancellation noise, so assert
        # at 1e-8 m absolute (7x that noise, still sub-micrometer).
        ground = geodetic_to_ecef(latitude, longitude, 0.0)
        raised = geodetic_to_ecef(latitude, longitude, 1000.0)
        assert np.linalg.norm(raised - ground) == pytest.approx(1000.0, abs=1e-8)


def _ecef_points(draw_scale=1.0):
    """Strategy for ECEF points from surface to GPS orbit radius."""
    return st.builds(
        lambda lat, lon, h: geodetic_to_ecef(lat, lon, h * draw_scale),
        all_latitudes,
        longitudes,
        orbit_heights,
    )


class TestEnuRoundTrip:
    @given(latitude=all_latitudes, longitude=longitudes)
    def test_rotation_is_orthonormal(self, latitude, longitude):
        # R R^T = I to ~eps: the matrix is built from sin/cos pairs, so
        # each dot product is a two-term trig identity (1e-12 is ~1e4
        # times float eps — slack for the pairwise sums).
        rotation = ecef_to_enu_matrix(latitude, longitude)
        np.testing.assert_allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rotation) == pytest.approx(1.0, abs=1e-12)

    @given(target=_ecef_points(), origin=_ecef_points())
    def test_enu_round_trips_to_ecef(self, target, origin):
        # enu_to_ecef inverts ecef_to_enu through the same origin
        # geodetic solve, so the error is purely the orthonormal
        # rotate/unrotate: O(eps * |target - origin|) <= ~2e-8 m for
        # a 6e7 m baseline.  1e-6 m gives 50x margin.
        round_tripped = enu_to_ecef(ecef_to_enu(target, origin), origin)
        np.testing.assert_allclose(round_tripped, target, atol=1e-6)

    @given(target=_ecef_points(), origin=_ecef_points())
    def test_enu_preserves_distance(self, target, origin):
        # A rotation preserves norms; compare at rel 1e-12 (float
        # precision of the norm itself at these magnitudes).
        baseline = float(np.linalg.norm(target - origin))
        local = float(np.linalg.norm(ecef_to_enu(target, origin)))
        assert local == pytest.approx(baseline, rel=1e-12, abs=1e-9)

    @given(origin=_ecef_points())
    def test_origin_maps_to_zero(self, origin):
        np.testing.assert_allclose(ecef_to_enu(origin, origin), 0.0, atol=1e-12)

    @given(latitude=interior_latitudes, longitude=longitudes)
    def test_up_axis_points_along_increasing_height(self, latitude, longitude):
        # The ENU "up" of a point 100 m above the origin is (0, 0, 100)
        # by the definition of geodetic height; 1e-6 m ≈ rotation noise.
        origin = geodetic_to_ecef(latitude, longitude, 0.0)
        above = geodetic_to_ecef(latitude, longitude, 100.0)
        enu = ecef_to_enu(above, origin)
        np.testing.assert_allclose(enu, [0.0, 0.0, 100.0], atol=1e-6)
