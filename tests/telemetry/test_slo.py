"""Tests for the SLO engine: quantile sketches, windows, budgets."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    MetricsRegistry,
    QuantileSketch,
    SloConfig,
    SloTracker,
    WindowedQuantiles,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestQuantileSketch:
    def test_relative_accuracy_guarantee(self):
        alpha = 0.01
        sketch = QuantileSketch(relative_accuracy=alpha)
        rng = np.random.default_rng(0)
        samples = np.sort(rng.lognormal(mean=-4.0, sigma=1.0, size=5000))
        sketch.observe_many(samples)
        for q in (0.5, 0.9, 0.99, 0.999):
            true = samples[int(q * (len(samples) - 1))]
            estimate = sketch.quantile(q)
            assert abs(estimate - true) <= alpha * true * 1.001

    def test_exact_aggregates(self):
        sketch = QuantileSketch()
        for value in (0.5, 0.1, 0.9, 0.0):
            sketch.observe(value)
        assert sketch.count == 4
        assert sketch.sum == pytest.approx(1.5)
        assert sketch.min == 0.0
        assert sketch.max == 0.9
        assert sketch.zero_count == 1

    def test_observe_many_matches_loop(self):
        rng = np.random.default_rng(1)
        values = list(rng.exponential(0.01, size=300)) + [0.0, -1.0, math.nan]
        looped = QuantileSketch()
        for value in values:
            looped.observe(value)
        batched = QuantileSketch()
        batched.observe_many(values)
        assert batched.count == looped.count
        assert batched.zero_count == looped.zero_count
        # Numpy sums pairwise, the loop serially — equal to rel_tol.
        assert math.isclose(batched.sum, looped.sum, rel_tol=1e-12)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert batched.quantile(q) == looped.quantile(q)

    def test_nan_and_nonpositive_handling(self):
        sketch = QuantileSketch()
        sketch.observe(math.nan)
        assert sketch.count == 0
        sketch.observe(-0.5)
        assert (sketch.count, sketch.zero_count) == (1, 1)
        assert sketch.quantile(0.5) == 0.0

    def test_empty_quantile_is_nan(self):
        assert math.isnan(QuantileSketch().quantile(0.5))

    def test_quantile_range_validated(self):
        with pytest.raises(ConfigurationError, match="quantile"):
            QuantileSketch().quantile(1.5)

    def test_merge_is_exact_bin_addition(self):
        rng = np.random.default_rng(2)
        left_values = rng.exponential(0.02, size=400)
        right_values = rng.exponential(0.05, size=600)
        left = QuantileSketch()
        left.observe_many(left_values)
        right = QuantileSketch()
        right.observe_many(right_values)
        union = QuantileSketch.merged([left, right])
        direct = QuantileSketch()
        direct.observe_many(np.concatenate([left_values, right_values]))
        assert union.count == direct.count == 1000
        for q in (0.5, 0.9, 0.99):
            assert union.quantile(q) == direct.quantile(q)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ConfigurationError, match="relative accuracies"):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_round_trip(self):
        sketch = QuantileSketch()
        sketch.observe_many([0.001, 0.01, 0.1, 0.0])
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.count == sketch.count
        assert clone.quantile(0.9) == sketch.quantile(0.9)
        assert QuantileSketch.from_dict(QuantileSketch().to_dict()).count == 0

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ConfigurationError, match="relative_accuracy"):
            QuantileSketch(relative_accuracy=1.0)


class TestWindowedQuantiles:
    def test_old_traffic_ages_out(self):
        clock = FakeClock()
        window = WindowedQuantiles(
            window_seconds=10.0, windows=2, clock=clock
        )
        window.observe(1.0)
        assert window.quantile(0.5) == pytest.approx(1.0, rel=0.03)
        clock.advance(10.0)
        window.observe(2.0)
        assert window.count == 2  # both windows still live
        clock.advance(10.0)
        window.observe(3.0)
        # The 1.0 sample's window has been retired.
        assert window.count == 2
        assert window.quantile(0.0) == pytest.approx(2.0, rel=0.03)

    def test_quiet_gap_retires_every_window(self):
        clock = FakeClock()
        window = WindowedQuantiles(window_seconds=1.0, windows=3, clock=clock)
        for value in (1.0, 2.0, 3.0):
            window.observe(value)
        clock.advance(100.0)
        # quantile() rotates the ring; every stale window retires.
        assert math.isnan(window.quantile(0.5))
        assert window.count == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="window_seconds"):
            WindowedQuantiles(window_seconds=0.0)
        with pytest.raises(ConfigurationError, match="windows"):
            WindowedQuantiles(windows=0)


class TestSloConfig:
    def test_rejects_objective_for_unpublished_quantile(self):
        with pytest.raises(ConfigurationError, match="not a published"):
            SloConfig(latency_objectives=(("p42", 0.05),))

    def test_rejects_nonpositive_objective(self):
        with pytest.raises(ConfigurationError, match="positive"):
            SloConfig(latency_objectives=(("p99", 0.0),))

    def test_rejects_degenerate_availability_target(self):
        with pytest.raises(ConfigurationError, match="availability_target"):
            SloConfig(availability_target=1.0)


class TestSloTracker:
    def test_availability_excludes_client_statuses(self):
        tracker = SloTracker()
        for status in ("ok", "ok", "ok", "failed", "cancelled", "invalid"):
            tracker.observe(status, 0.01)
        assert tracker.availability == pytest.approx(3 / 4)
        snapshot = tracker.snapshot()
        assert snapshot["requests_by_class"] == {
            "client": 2, "error": 1, "success": 3,
        }
        # Client-attributable latencies stay out of the sketch.
        assert snapshot["window_samples"] == 4

    def test_unknown_status_counts_as_error(self):
        tracker = SloTracker()
        tracker.observe("weird", 0.01)
        assert tracker.availability == 0.0

    def test_error_budget_arithmetic(self):
        tracker = SloTracker(SloConfig(availability_target=0.9))
        for _ in range(95):
            tracker.observe("ok", 0.01)
        for _ in range(5):
            tracker.observe("timeout", 0.5)
        # 5% errors against a 10% budget: half the budget remains.
        assert tracker.error_budget_remaining == pytest.approx(0.5)
        for _ in range(15):
            tracker.observe("failed", 0.5)
        # ~17.4% errors: budget blown, remaining goes negative.
        assert tracker.error_budget_remaining < 0.0

    def test_observe_batch_matches_loop(self):
        statuses = ["ok"] * 50 + ["cancelled", "failed"] + ["ok"] * 50
        latencies = [0.001 * (i + 1) for i in range(len(statuses))]
        looped = SloTracker()
        for status, latency in zip(statuses, latencies):
            looped.observe(status, latency)
        batched = SloTracker()
        batched.observe_batch(statuses, latencies)
        assert batched.snapshot() == looped.snapshot()

    def test_observe_batch_never_mutates_callers_list(self):
        latencies = [0.01, 0.02, 0.03]
        tracker = SloTracker()
        tracker.observe_batch(["ok", "cancelled", "ok"], latencies)
        assert latencies == [0.01, 0.02, 0.03]
        assert tracker.snapshot()["window_samples"] == 2

    def test_snapshot_grades_objectives(self):
        tracker = SloTracker(
            SloConfig(latency_objectives=(("p99", 0.05), ("p50", 0.001)))
        )
        for _ in range(100):
            tracker.observe("ok", 0.01)
        objectives = tracker.snapshot()["latency_objectives"]
        assert objectives["p99"]["met"] is True
        assert objectives["p50"]["met"] is False
        assert objectives["p50"]["target_seconds"] == 0.001

    def test_publish_writes_gauges_and_counter_deltas(self):
        registry = MetricsRegistry()
        tracker = SloTracker()
        for _ in range(9):
            tracker.observe("ok", 0.01)
        tracker.observe("failed", 0.2)
        tracker.publish(registry)
        availability = registry.gauge(
            "repro_slo_availability",
            "Windowed fraction of non-client requests served ok.",
        )
        assert availability.labels().value == pytest.approx(0.9)
        counter = registry.counter(
            "repro_slo_requests_total",
            "Requests graded by the SLO engine, by status class.",
            labels=("status_class",),
        )
        assert counter.labels(status_class="success").value == 9.0
        # Publishing again without new traffic must not double-count.
        tracker.publish(registry)
        assert counter.labels(status_class="success").value == 9.0
        tracker.observe("ok", 0.01)
        tracker.publish(registry)
        assert counter.labels(status_class="success").value == 10.0
