"""Tests for the span tracer: timing, nesting, bounded retention."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import NULL_TRACER, SpanRecord, SpanTracer


class TestSpans:
    def test_span_times_the_region(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            time.sleep(0.005)
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.duration_ns >= 4_000_000

    def test_nesting_records_depth_and_parent(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
        assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)

    def test_attributes_are_kept(self):
        tracer = SpanTracer()
        with tracer.span("bucket", satellite_count=8, size=100):
            pass
        assert tracer.spans[0].attributes == {"satellite_count": 8, "size": 100}

    def test_span_finishes_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]

    def test_record_external_duration(self):
        tracer = SpanTracer()
        tracer.record("replay.chunk", 1_234, index=0)
        (record,) = tracer.spans
        assert record.duration_ns == 1_234
        assert record.attributes == {"index": 0}

    def test_record_nests_under_active_span(self):
        tracer = SpanTracer()
        with tracer.span("replay"):
            tracer.record("replay.chunk", 10)
        chunk = tracer.spans[0]
        assert (chunk.depth, chunk.parent) == (1, "replay")


class TestRetention:
    def test_bounded_to_max_spans(self):
        tracer = SpanTracer(max_spans=3)
        for i in range(5):
            tracer.record(f"s{i}", 1)
        assert [s.name for s in tracer.spans] == ["s2", "s3", "s4"]

    def test_rejects_nonpositive_max_spans(self):
        with pytest.raises(ConfigurationError, match="max_spans"):
            SpanTracer(max_spans=0)

    def test_reset_clears_records(self):
        tracer = SpanTracer()
        tracer.record("s", 1)
        tracer.reset()
        assert tracer.spans == ()

    def test_snapshot_is_json_ready(self):
        tracer = SpanTracer()
        with tracer.span("outer", k="v"):
            pass
        (doc,) = tracer.snapshot()
        assert doc["name"] == "outer"
        assert doc["attributes"] == {"k": "v"}
        assert isinstance(doc["duration_ns"], int)


class TestNullTracer:
    def test_span_is_free_noop(self):
        with NULL_TRACER.span("anything", a=1):
            pass
        NULL_TRACER.record("x", 5)
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.snapshot() == []
        assert NULL_TRACER.enabled is False

    def test_span_record_is_frozen(self):
        record = SpanRecord(
            name="s", start_ns=0, duration_ns=1, depth=0, parent=None
        )
        with pytest.raises(AttributeError):
            record.name = "other"
