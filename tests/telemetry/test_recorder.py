"""Tests for the anomaly flight recorder: ring, triggers, replayable
dumps, and the lazy flush entries the serving path hands it."""

import json

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.telemetry import (
    FixRecord,
    FlightRecorder,
    MetricsRegistry,
    RecorderConfig,
    TRIGGERS,
    TraceContext,
    format_request_id,
    mint_request_number,
    replay_incident,
)
from repro.telemetry.recorder import (
    build_incident_payload,
    epoch_payload,
    payload_epoch,
)


def make_record(request_id="r-test-1", trigger=None, epoch=None, **overrides):
    kwargs = dict(
        request_id=request_id,
        status="ok",
        solver="dlg",
        recorded_at=1.0,
        config_hash="cfg0",
        trace_id="t-test-1",
        trigger=trigger,
        epoch=epoch,
        solver_spec={"algorithm": "dlg", "clock_bias_meters": 0.0},
    )
    kwargs.update(overrides)
    return FixRecord(**kwargs)


class TestRecorderConfig:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            RecorderConfig(capacity=0)

    def test_rejects_negative_max_dumps(self):
        with pytest.raises(ConfigurationError, match="max_dumps"):
            RecorderConfig(max_dumps=-1)

    def test_rejects_unknown_triggers(self):
        with pytest.raises(ConfigurationError, match="unknown recorder"):
            RecorderConfig(triggers=("fde_exclusion", "alien"))

    def test_defaults_to_all_triggers(self):
        assert RecorderConfig().triggers == TRIGGERS


class TestFixRecord:
    def test_lazy_ids_resolve_from_context(self):
        context = TraceContext.new(origin="test")
        record = make_record(request_id=None, trace_id=None, context=context)
        assert record.request_id == context.request_id
        assert record.trace_id == context.trace_id

    def test_lazy_digest_hashes_epoch_ref_once(self, make_epoch):
        epoch = make_epoch()
        record = make_record(epoch_ref=epoch)
        assert record.inputs_digest == ""
        digest = record.digest
        assert len(digest) == 16
        assert record.inputs_digest == digest

    def test_to_dict_serializes_trace_object(self, make_epoch):
        trace = telemetry.assemble_request_trace(
            TraceContext.new(), submitted_at=0.0, completed_at=0.1
        )
        record = make_record(trace=trace)
        payload = record.to_dict()
        assert payload["trace"]["root"]["name"] == "request"
        json.dumps(payload)  # JSON-ready all the way down


class TestRing:
    def test_ring_is_bounded_oldest_out(self):
        recorder = FlightRecorder(RecorderConfig(capacity=3))
        for i in range(5):
            recorder.record(make_record(request_id=f"r-{i}"))
        assert [r.request_id for r in recorder.records()] == [
            "r-2", "r-3", "r-4",
        ]

    def test_find_newest_wins(self):
        recorder = FlightRecorder()
        recorder.record(make_record(request_id="r-dup", status="ok"))
        recorder.record(make_record(request_id="r-dup", status="failed"))
        assert recorder.find("r-dup").status == "failed"
        assert recorder.find("r-missing") is None

    def test_records_last_n(self):
        recorder = FlightRecorder()
        for i in range(4):
            recorder.record(make_record(request_id=f"r-{i}"))
        assert [r.request_id for r in recorder.records(last=2)] == ["r-2", "r-3"]


class TestDumps:
    def test_triggered_record_dumps_replayable_artifact(self, make_epoch, tmp_path):
        epoch = make_epoch()
        recorder = FlightRecorder(RecorderConfig(dump_dir=tmp_path))
        path = recorder.record(
            make_record(trigger="fde_exclusion", epoch=epoch_payload(epoch))
        )
        assert path is not None
        payload = json.loads((tmp_path / path.split("/")[-1]).read_text())
        assert payload["format"] == "repro-flight-record-v1"
        assert payload["kind"] == "incident:fde_exclusion"
        # The replay guarantee: re-solving the captured epoch on the
        # current code reproduces the recorded status and detail.
        result = replay_incident(payload)
        assert result.status == payload["status"]
        assert list(result.detail) == payload["detail"]

    def test_untriggered_record_never_dumps(self, make_epoch, tmp_path):
        recorder = FlightRecorder(RecorderConfig(dump_dir=tmp_path))
        assert recorder.record(make_record()) is None
        assert recorder.dump_paths == ()

    def test_max_dumps_caps_artifacts_ring_keeps_all(self, make_epoch, tmp_path):
        epoch = epoch_payload(make_epoch())
        recorder = FlightRecorder(RecorderConfig(dump_dir=tmp_path, max_dumps=2))
        for i in range(4):
            recorder.record(
                make_record(
                    request_id=f"r-{i}", trigger="deadline_miss", epoch=epoch
                )
            )
        assert len(recorder.dump_paths) == 2
        assert len(recorder.records()) == 4

    def test_trigger_filter_respected(self, make_epoch, tmp_path):
        epoch = epoch_payload(make_epoch())
        recorder = FlightRecorder(
            RecorderConfig(dump_dir=tmp_path, triggers=("deadline_miss",))
        )
        assert recorder.record(
            make_record(trigger="fde_exclusion", epoch=epoch)
        ) is None
        assert recorder.record(
            make_record(trigger="deadline_miss", epoch=epoch)
        ) is not None

    def test_incident_payload_requires_captured_epoch(self):
        with pytest.raises(ConfigurationError, match="captured epoch"):
            build_incident_payload(make_record(trigger="degraded"))


class TestEpochPayload:
    def test_payload_round_trip_is_bit_exact(self, make_epoch):
        epoch = make_epoch(count=7, noise_sigma=1.5, seed=3)
        clone = payload_epoch(epoch_payload(epoch))
        assert clone.time == epoch.time
        for a, b in zip(clone.observations, epoch.observations):
            assert a.prn == b.prn
            assert a.pseudorange == b.pseudorange
            assert (a.position == b.position).all()


def lazy_entry(context, epoch, index=0, batch_sequence=4, status="ok"):
    """A flush entry shaped like the service's dispatch loop emits."""
    shared = (
        123.0,                        # recorded_at
        "cfg-hash",                   # config hash
        {"batch_sequence": batch_sequence},  # attributes
        {"solve": 0.01},              # stage seconds
        {"algorithm": "dlg", "clock_bias_meters": 0.0},
        None,                         # fde spec
    )
    # status, solver, error, integrity verdict, trace — the record's
    # per-fix fields, carried instead of the whole ServiceResult.
    return (shared, context, status, "dlg", None, None, None, epoch, index)


class TestLazyFlushEntries:
    def test_find_materializes_lazy_entry(self, make_epoch):
        context = TraceContext.new()
        recorder = FlightRecorder()
        recorder.record_flush([lazy_entry(context, make_epoch())], [])
        record = recorder.find(context.request_id)
        assert isinstance(record, FixRecord)
        assert record.request_id == context.request_id
        assert record.trace_id == context.trace_id
        assert record.trigger is None
        assert record.config_hash == "cfg-hash"

    def test_number_context_entry_resolves_ids(self, make_epoch):
        # The service stores a bare request number per entry; find()
        # matches it without materializing, and the materialized
        # record resolves its ids from the rebuilt context.
        number = mint_request_number()
        recorder = FlightRecorder()
        recorder.record_flush([lazy_entry(number, make_epoch())], [])
        record = recorder.find(format_request_id(number))
        assert record is not None
        assert record.request_id == format_request_id(number)
        assert record.trace_id.startswith("t-")

    def test_untraced_entry_gets_sequence_fallback_id(self, make_epoch):
        recorder = FlightRecorder()
        recorder.record_flush(
            [lazy_entry(None, make_epoch(), index=2, batch_sequence=9)], []
        )
        record = recorder.find("fix-9-2")
        assert record is not None
        assert record.request_id == "fix-9-2"

    def test_records_and_snapshot_materialize(self, make_epoch):
        context = TraceContext.new()
        recorder = FlightRecorder()
        recorder.record_flush([lazy_entry(context, make_epoch())], [])
        (record,) = recorder.records()
        assert record.status == "ok"
        assert len(record.digest) == 16  # hashed from the live epoch
        snapshot = recorder.snapshot()
        assert snapshot["retained"] == 1
        assert snapshot["records"][0]["request_id"] == context.request_id

    def test_counter_parity_with_per_fix_record(self, make_epoch):
        epoch = make_epoch()
        flush_registry = MetricsRegistry()
        with telemetry.capture(flush_registry):
            recorder = FlightRecorder()
            triggered = make_record(
                request_id="r-bad", trigger="deadline_miss", status="timeout"
            )
            recorder.record_flush(
                [lazy_entry(TraceContext.new(), epoch), triggered,
                 lazy_entry(TraceContext.new(), epoch, index=2)],
                [triggered],
            )
        per_fix_registry = MetricsRegistry()
        with telemetry.capture(per_fix_registry):
            recorder = FlightRecorder()
            recorder.record(make_record(request_id="r-0"))
            recorder.record(
                make_record(
                    request_id="r-bad", trigger="deadline_miss", status="timeout"
                )
            )
            recorder.record(make_record(request_id="r-1"))

        def counts(registry):
            counter = registry.counter(
                "repro_recorder_fixes_total",
                "Fixes captured by the flight recorder.",
                labels=("triggered",),
            )
            return (
                counter.labels(triggered="no").value,
                counter.labels(triggered="yes").value,
            )

        assert counts(flush_registry) == counts(per_fix_registry) == (2.0, 1.0)
