"""Tests for per-request trace contexts and span trees."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    ENGINE_STAGES,
    RequestTrace,
    TraceContext,
    TraceSpan,
    assemble_request_trace,
    build_stage_spans,
    format_request_id,
    mint_request_number,
)


class TestTraceContext:
    def test_new_mints_unique_paired_ids(self):
        a = TraceContext.new()
        b = TraceContext.new()
        assert a.request_id != b.request_id
        assert a.trace_id != b.trace_id
        # One request is one trace: the counter suffix is shared.
        assert a.trace_id.split("-")[-1] == a.request_id.split("-")[-1]

    def test_ids_format_lazily_on_first_read(self):
        context = TraceContext.new(origin="test")
        assert context._trace_id is None
        assert context._request_id is None
        trace_id = context.trace_id
        request_id = context.request_id
        assert trace_id.startswith("t-")
        assert request_id.startswith("r-")
        # Cached after the first read — same object back.
        assert context.trace_id is trace_id
        assert context.request_id is request_id

    def test_new_joins_supplied_trace_id(self):
        context = TraceContext.new(trace_id="t-upstream-00000001")
        assert context.trace_id == "t-upstream-00000001"
        assert context.request_id.startswith("r-")

    def test_carries_origin_and_deadline(self):
        context = TraceContext.new(origin="station", deadline=12.5)
        assert context.origin == "station"
        assert context.deadline == 12.5

    def test_round_trip(self):
        context = TraceContext.new(origin="svc", deadline=3.0)
        clone = TraceContext.from_dict(context.to_dict())
        assert clone == context
        assert hash(clone) == hash(context)

    def test_equality_distinguishes_requests(self):
        assert TraceContext.new() != TraceContext.new()


class TestTraceSpan:
    def _tree(self):
        return TraceSpan(
            name="request",
            start_seconds=0.0,
            duration_seconds=1.0,
            children=(
                TraceSpan("queue", 0.0, 0.2),
                TraceSpan(
                    "solve",
                    0.2,
                    0.8,
                    attributes={"algorithm": "dlg"},
                    children=(TraceSpan("pack", 0.2, 0.3),),
                ),
            ),
        )

    def test_walk_is_depth_first(self):
        names = [span.name for span in self._tree().walk()]
        assert names == ["request", "queue", "solve", "pack"]

    def test_find_locates_nested_span(self):
        tree = self._tree()
        assert tree.find("pack").duration_seconds == 0.3
        assert tree.find("missing") is None

    def test_round_trip_preserves_tree(self):
        tree = self._tree()
        clone = TraceSpan.from_dict(tree.to_dict())
        assert clone == tree

    def test_format_tree_indents_children(self):
        lines = self._tree().format_tree().splitlines()
        assert lines[0].startswith("request")
        assert lines[1].startswith("  queue")
        assert lines[3].startswith("    pack")
        assert "[algorithm=dlg]" in lines[2]


class TestBuildStageSpans:
    def test_stages_lay_out_back_to_back(self):
        spans = build_stage_spans(
            10.0, {"pack": 0.1, "validate": 0.2, "solve": 0.3}
        )
        assert [span.name for span in spans] == ["pack", "validate", "solve"]
        assert [span.start_seconds for span in spans] == pytest.approx(
            [10.0, 10.1, 10.3]
        )
        assert spans[-1].start_seconds + spans[-1].duration_seconds == pytest.approx(
            10.6
        )

    def test_known_order_is_engine_order(self):
        stage_seconds = {name: 0.01 for name in reversed(ENGINE_STAGES)}
        spans = build_stage_spans(0.0, stage_seconds)
        assert tuple(span.name for span in spans) == ENGINE_STAGES

    def test_unknown_stages_append_sorted(self):
        spans = build_stage_spans(
            0.0, {"solve": 0.1, "zeta": 0.2, "alpha": 0.3}
        )
        assert [span.name for span in spans] == ["solve", "alpha", "zeta"]


class TestRequestTrace:
    def _trace(self, **overrides):
        kwargs = dict(
            context=TraceContext.new(origin="test"),
            submitted_at=100.0,
            completed_at=100.5,
            dispatched_at=100.1,
            solve_seconds=0.4,
            stage_seconds={"pack": 0.05, "solve": 0.3, "scatter": 0.05},
            solve_attributes={"algorithm": "dlg"},
            batch_sequence=7,
            batch_peers=("r-a-1", "r-a-2"),
            bucket_satellites=8,
            bucket_row=1,
        )
        kwargs.update(overrides)
        return assemble_request_trace(**kwargs)

    def test_root_tree_shape(self):
        trace = self._trace()
        root = trace.root
        assert root.name == "request"
        assert [child.name for child in root.children] == ["queue", "solve"]
        assert [s.name for s in root.find("solve").children] == [
            "pack",
            "solve",
            "scatter",
        ]
        # Cached: second read returns the same tree.
        assert trace.root is root

    def test_queue_only_tree_when_never_dispatched(self):
        trace = self._trace(
            dispatched_at=None, solve_seconds=0.0, stage_seconds=None,
            batch_sequence=-1, batch_peers=(),
        )
        assert [child.name for child in trace.root.children] == ["queue"]
        queue = trace.root.find("queue")
        assert queue.duration_seconds == pytest.approx(0.5)

    def test_slowest_stage_is_a_leaf(self):
        # queue 0.1s, pack 0.05, solve-stage 0.3, scatter 0.05: the
        # "solve" *leaf* (the engine stage) wins, not the parent span.
        assert self._trace().slowest_stage == "solve"
        queued = self._trace(
            dispatched_at=None, stage_seconds=None, solve_seconds=0.0
        )
        assert queued.slowest_stage == "queue"

    def test_stage_seconds_flattens_every_span(self):
        stages = self._trace().stage_seconds()
        assert stages["queue"] == pytest.approx(0.1)
        assert stages["pack"] == pytest.approx(0.05)
        # "solve" counts the parent span plus the engine stage.
        assert stages["solve"] == pytest.approx(0.4 + 0.3)

    def test_number_context_materializes_lazily(self):
        # The service's ingress path: submit stores one counter number,
        # and the TraceContext object only exists once something reads
        # it — with the request's deadline and the submit origin.
        number = mint_request_number()
        trace = self._trace(context=number, deadline=123.5)
        assert trace._context is number  # nothing allocated yet
        context = trace.context
        assert isinstance(context, TraceContext)
        assert context.request_id == format_request_id(number)
        assert context.origin == "service.submit"
        assert context.deadline == 123.5
        # Cached: the second read returns the same object.
        assert trace.context is context
        assert trace.request_id == context.request_id

    def test_number_context_round_trips_and_formats(self):
        trace = self._trace(context=mint_request_number())
        assert trace.request_id in trace.format()
        clone = RequestTrace.from_dict(trace.to_dict())
        assert clone.request_id == trace.request_id

    def test_batch_peers_materialize_lazily_from_numbers(self):
        numbers = tuple(mint_request_number() for _ in range(3))
        trace = self._trace(batch_peers=numbers)
        assert trace._peers is numbers
        ids = trace.batch_peers
        assert ids == tuple(format_request_id(n) for n in numbers)
        assert trace.batch_peers is ids  # cached back

    def test_batch_peers_materialize_lazily_from_contexts(self):
        peers = tuple(TraceContext.new() for _ in range(3))
        trace = self._trace(batch_peers=peers)
        assert trace._peers is peers
        ids = trace.batch_peers
        assert ids == tuple(context.request_id for context in peers)
        assert all(isinstance(peer, str) for peer in ids)
        # Cached back: the second read skips re-formatting.
        assert trace.batch_peers is ids

    def test_round_trip(self):
        trace = self._trace()
        clone = RequestTrace.from_dict(trace.to_dict())
        assert clone == trace
        assert clone.slowest_stage == trace.slowest_stage

    def test_format_names_lineage_and_stages(self):
        rendered = self._trace().format()
        assert "batch #7 (2 peers)" in rendered
        assert "bucket m=8 row 1" in rendered
        assert "queue" in rendered and "scatter" in rendered

    def test_rejects_completion_before_submission(self):
        with pytest.raises(ConfigurationError, match="completed_at"):
            assemble_request_trace(
                TraceContext.new(), submitted_at=5.0, completed_at=4.0
            )
