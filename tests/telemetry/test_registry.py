"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("fixes_total")
        counter.inc()
        counter.inc(3)
        snapshot = registry.snapshot()
        assert snapshot["fixes_total"]["samples"][0]["value"] == 4.0

    def test_rejects_negative_increment(self, registry):
        with pytest.raises(ConfigurationError, match="only increase"):
            registry.counter("fixes_total").inc(-1)

    def test_get_or_create_returns_same_family(self, registry):
        registry.counter("fixes_total").inc()
        registry.counter("fixes_total").inc()
        assert registry.snapshot()["fixes_total"]["samples"][0]["value"] == 2.0


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("utilization")
        gauge.set(0.5)
        gauge.inc(0.25)
        gauge.dec(0.5)
        assert registry.snapshot()["utilization"]["samples"][0]["value"] == (
            pytest.approx(0.25)
        )


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        hist = registry.histogram("latency", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        sample = registry.snapshot()["latency"]["samples"][0]
        # Cumulative le-counts: 1 at <=1, 2 at <=10, 3 at <=100; the
        # 500 observation only shows in count/sum (the +Inf bucket).
        assert sample["buckets"] == {"1.0": 1, "10.0": 2, "100.0": 3}
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(555.5)

    def test_default_buckets_cover_wide_range(self, registry):
        hist = registry.histogram("anything")
        hist.observe(1e-4)
        hist.observe(1e6)
        sample = registry.snapshot()["anything"]["samples"][0]
        assert sample["count"] == 2
        assert len(DEFAULT_BUCKETS) == len(sample["buckets"])

    def test_rejects_empty_or_duplicate_buckets(self, registry):
        with pytest.raises(ConfigurationError, match="at least one"):
            registry.histogram("h1", buckets=())
        with pytest.raises(ConfigurationError, match="distinct"):
            registry.histogram("h2", buckets=(1.0, 1.0))

    def test_rejects_conflicting_buckets(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))


class TestLabels:
    def test_label_values_create_distinct_children(self, registry):
        family = registry.counter("solves_total", labels=("solver",))
        family.labels(solver="dlg").inc(2)
        family.labels(solver="nr").inc(1)
        samples = registry.snapshot()["solves_total"]["samples"]
        by_solver = {s["labels"]["solver"]: s["value"] for s in samples}
        assert by_solver == {"dlg": 2.0, "nr": 1.0}

    def test_labeled_metric_requires_labels_call(self, registry):
        family = registry.counter("solves_total", labels=("solver",))
        with pytest.raises(ConfigurationError, match="labels"):
            family.inc()

    def test_wrong_label_names_rejected(self, registry):
        family = registry.counter("solves_total", labels=("solver",))
        with pytest.raises(ConfigurationError, match="requires labels"):
            family.labels(algorithm="dlg")

    def test_conflicting_label_declaration_rejected(self, registry):
        registry.counter("solves_total", labels=("solver",))
        with pytest.raises(ConfigurationError, match="labels"):
            registry.counter("solves_total", labels=("algorithm",))


class TestRegistry:
    def test_kind_conflict_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("x_total")

    def test_invalid_metric_names_rejected(self, registry):
        with pytest.raises(ConfigurationError):
            registry.counter("")
        with pytest.raises(ConfigurationError):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError):
            registry.counter("1starts_with_digit")

    def test_collect_sorted_by_name(self, registry):
        registry.counter("zz_total")
        registry.counter("aa_total")
        assert [m.name for m in registry.collect()] == ["aa_total", "zz_total"]

    def test_reset_drops_everything(self, registry):
        registry.counter("x_total").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_thread_safety_under_contention(self, registry):
        counter = registry.counter("contended_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.snapshot()["contended_total"]["samples"][0]["value"] == 4000.0


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NullRegistry().enabled is False
        assert MetricsRegistry().enabled is True

    def test_all_operations_are_noops(self):
        null = NULL_REGISTRY
        null.counter("x", labels=("a",)).labels(a="1").inc()
        null.gauge("y").set(1.0)
        null.histogram("z").observe(2.0)
        assert null.collect() == []
        assert null.snapshot() == {}
        null.reset()
