"""Tests for fleet-scrape aggregation and the status endpoint server."""

import asyncio
import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    SloTracker,
    StatusServer,
    aggregate_registries,
    to_json_snapshot,
    to_prometheus_fleet_text,
)
from tests.telemetry.test_recorder import make_record


def worker_registry(requests: int, latency: float) -> MetricsRegistry:
    """One fleet member's registry, as a worker process would fill it."""
    registry = MetricsRegistry()
    registry.counter(
        "repro_requests_total", "Requests served.", labels=("status",)
    ).labels(status="ok").inc(requests)
    registry.gauge("repro_queue_depth", "Queued requests.").set(3.0)
    histogram = registry.histogram(
        "repro_latency_seconds", "Request latency.", buckets=(0.01, 0.1, 1.0)
    )
    for _ in range(requests):
        histogram.labels().observe(latency)
    return registry


class TestAggregateRegistries:
    def test_aggregate_equals_sum_of_parts(self):
        fleet = [worker_registry(5, 0.005), worker_registry(7, 0.5)]
        merged = aggregate_registries(fleet)
        counter = merged.counter(
            "repro_requests_total", "Requests served.", labels=("status",)
        )
        assert counter.labels(status="ok").value == 12.0
        snapshot = to_json_snapshot(merged)["metrics"]
        histogram = snapshot["repro_latency_seconds"]["samples"][0]
        assert histogram["count"] == 12
        # Bucket counts merge element-wise: 5 fast fixes under 10ms,
        # the 7 slow ones first counted at the 1s bound.
        assert histogram["buckets"]["0.01"] == 5
        assert histogram["buckets"]["1.0"] == 12
        assert histogram["sum"] == pytest.approx(5 * 0.005 + 7 * 0.5)

    def test_single_registry_aggregates_to_itself(self):
        merged = aggregate_registries([worker_registry(4, 0.01)])
        counter = merged.counter(
            "repro_requests_total", "Requests served.", labels=("status",)
        )
        assert counter.labels(status="ok").value == 4.0

    def test_conflicting_definitions_raise(self):
        left = MetricsRegistry()
        left.counter("repro_thing_total", "A counter.").inc()
        right = MetricsRegistry()
        right.gauge("repro_thing_total", "Now a gauge.").set(1.0)
        with pytest.raises(ConfigurationError):
            aggregate_registries([left, right])

    def test_fleet_text_matches_aggregate(self):
        fleet = [worker_registry(5, 0.005), worker_registry(7, 0.5)]
        text = to_prometheus_fleet_text(fleet)
        assert 'repro_requests_total{status="ok"} 12' in text
        assert "repro_queue_depth 6" in text


class TestStatusServer:
    def _serve_and_get(self, server: StatusServer, *paths, method="GET"):
        async def scenario():
            await server.start()
            try:
                responses = []
                for path in paths:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    writer.write(
                        f"{method} {path} HTTP/1.1\r\n"
                        f"Host: localhost\r\n\r\n".encode()
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    head, _, body = raw.decode().partition("\r\n\r\n")
                    responses.append((head.split("\r\n")[0], body))
                return responses
            finally:
                await server.stop()

        return asyncio.run(scenario())

    def test_metrics_endpoint_serves_fleet_aggregate(self):
        fleet = [worker_registry(2, 0.01), worker_registry(3, 0.01)]
        server = StatusServer(lambda: fleet)
        ((status, body),) = self._serve_and_get(server, "/metrics")
        assert status.endswith("200 OK")
        assert 'repro_requests_total{status="ok"} 5' in body

    def test_metrics_json_and_slo_and_records(self):
        registry = worker_registry(2, 0.01)
        slo = SloTracker()
        slo.observe("ok", 0.01)
        recorder = FlightRecorder()
        recorder.record(make_record(request_id="r-seen"))
        server = StatusServer(lambda: [registry], slo=slo, recorder=recorder)
        responses = self._serve_and_get(
            server, "/metrics.json", "/slo", "/records", "/healthz"
        )
        assert all(status.endswith("200 OK") for status, _ in responses)
        metrics = json.loads(responses[0][1])
        names = set(metrics["metrics"])
        assert "repro_requests_total" in names
        # /metrics.json publishes the SLO rollup into the scrape.
        assert "repro_slo_availability" in names
        assert json.loads(responses[1][1])["availability"] == 1.0
        records = json.loads(responses[2][1])
        assert records["records"][0]["request_id"] == "r-seen"
        assert responses[3][1] == "ok\n"

    def test_unattached_endpoints_404(self):
        server = StatusServer(lambda: [MetricsRegistry()])
        responses = self._serve_and_get(server, "/slo", "/records", "/nope")
        assert [s.split()[1] for s, _ in responses] == ["404", "404", "404"]

    def test_non_get_is_405(self):
        server = StatusServer(lambda: [MetricsRegistry()])
        ((status, body),) = self._serve_and_get(server, "/metrics", method="POST")
        assert "405" in status
        assert body == "GET only\n"

    def test_broken_endpoint_is_500_not_crash(self):
        class Broken:
            def snapshot(self):
                raise RuntimeError("boom")

        server = StatusServer(lambda: [MetricsRegistry()], slo=Broken())
        (status, body), (ok_status, _) = self._serve_and_get(
            server, "/slo", "/healthz"
        )
        assert "500" in status
        assert "RuntimeError" in body
        assert ok_status.endswith("200 OK")  # the server survived
