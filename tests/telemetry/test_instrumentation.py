"""End-to-end tests: the pipeline actually reports into telemetry."""

import pytest

from repro import telemetry
from repro.core import DLGSolver, GpsReceiver, NewtonRaphsonSolver
from repro.engine import ParallelReplay, PositioningEngine
from repro.telemetry import MetricsRegistry, SpanTracer

RECEIVER_KWARGS = {
    "algorithm": "dlg",
    "clock_mode": "steering",
    "warmup_epochs": 4,
    "recalibration_interval": 0,
}


@pytest.fixture
def stream(make_epoch, gps_t0):
    return [
        make_epoch(
            bias_meters=30.0,
            count=8,
            noise_sigma=0.5,
            seed=i,
            time=gps_t0 + float(i),
        )
        for i in range(16)
    ]


@pytest.fixture
def captured():
    with telemetry.capture() as (registry, tracer):
        yield registry, tracer


class TestInstallState:
    def test_defaults_to_null_implementations(self):
        assert telemetry.is_enabled() is False
        assert telemetry.get_registry().enabled is False
        assert telemetry.get_tracer().enabled is False

    def test_install_and_uninstall(self):
        registry, tracer = telemetry.install()
        try:
            assert telemetry.get_registry() is registry
            assert telemetry.get_tracer() is tracer
            assert telemetry.is_enabled() is True
        finally:
            telemetry.uninstall()
        assert telemetry.is_enabled() is False

    def test_capture_restores_previous_state(self):
        outer_registry, _ = telemetry.install()
        try:
            with telemetry.capture() as (inner_registry, _tracer):
                assert telemetry.get_registry() is inner_registry
                assert inner_registry is not outer_registry
            assert telemetry.get_registry() is outer_registry
        finally:
            telemetry.uninstall()

    def test_capture_accepts_existing_instances(self):
        registry, tracer = MetricsRegistry(), SpanTracer()
        with telemetry.capture(registry, tracer) as (got_registry, got_tracer):
            assert got_registry is registry
            assert got_tracer is tracer


class TestReceiverInstrumentation:
    def test_counts_epochs_and_events(self, captured, stream):
        registry, _ = captured
        GpsReceiver(**RECEIVER_KWARGS).process_many(stream)
        metrics = registry.snapshot()
        epochs = metrics["repro_receiver_epochs_total"]["samples"][0]
        assert epochs["labels"] == {"algorithm": "dlg"}
        assert epochs["value"] == len(stream)
        events = {
            s["labels"]["event"]: s["value"]
            for s in metrics["repro_receiver_events_total"]["samples"]
        }
        assert events["warmup_fixes"] == 4.0
        assert events["closed_form_fixes"] == len(stream) - 4.0

    def test_nr_iteration_histogram_fills(self, captured, stream):
        registry, _ = captured
        GpsReceiver(**RECEIVER_KWARGS).process_many(stream)
        sample = registry.snapshot()["repro_receiver_nr_iterations"]["samples"][0]
        assert sample["count"] >= 4  # at least one per warm-up epoch


class TestSolverInstrumentation:
    def test_dlg_records_condition_and_path(self, captured, stream):
        registry, _ = captured

        class _Bias:
            is_ready = True

            def observe(self, time, bias_meters): ...

            def predict_bias_meters(self, time):
                return 30.0

        DLGSolver(_Bias()).solve(stream[0])
        metrics = registry.snapshot()
        solves = {
            (s["labels"]["solver"], s["labels"]["status"]): s["value"]
            for s in metrics["repro_solver_solves_total"]["samples"]
        }
        assert solves[("dlg", "converged")] == 1.0
        assert metrics["repro_solver_condition_number"]["samples"][0]["count"] == 1
        paths = {
            s["labels"]["path"]: s["value"]
            for s in metrics["repro_estimation_gls_solves_total"]["samples"]
        }
        assert paths["sherman_morrison"] == 1.0

    def test_nr_records_iterations(self, captured, stream):
        registry, _ = captured
        NewtonRaphsonSolver().solve(stream[0])
        metrics = registry.snapshot()
        sample = metrics["repro_solver_iterations"]["samples"][0]
        assert sample["labels"] == {"solver": "nr"}
        assert sample["count"] == 1


class TestEngineInstrumentation:
    def test_stream_metrics_and_spans(self, captured, stream):
        registry, tracer = captured
        engine = PositioningEngine(algorithm="dlg")
        engine.solve_stream(stream, biases=[30.0] * len(stream))
        metrics = registry.snapshot()
        assert (
            metrics["repro_engine_epochs_total"]["samples"][0]["value"]
            == len(stream)
        )
        assert metrics["repro_engine_scatter_coverage"]["samples"][0]["value"] == 1.0
        names = [s.name for s in tracer.spans]
        assert "engine.solve_stream" in names
        assert "engine.solve_bucket" in names
        bucket_span = next(
            s for s in tracer.spans if s.name == "engine.solve_bucket"
        )
        assert bucket_span.parent == "engine.solve_stream"
        assert bucket_span.attributes["satellite_count"] == 8


class TestReplayInstrumentation:
    def test_chunks_seams_and_utilization(self, captured, stream):
        registry, tracer = captured
        half = len(stream) // 2
        ParallelReplay(
            RECEIVER_KWARGS, workers=2, backend="thread", chunk_size=half
        ).replay(stream)
        metrics = registry.snapshot()
        assert metrics["repro_replay_chunks_total"]["samples"][0]["value"] == 2.0
        assert (
            metrics["repro_replay_epochs_total"]["samples"][0]["value"]
            == len(stream)
        )
        # One seam: the second chunk's fresh receiver re-pays warm-up.
        assert (
            metrics["repro_replay_seam_epochs_total"]["samples"][0]["value"]
            == RECEIVER_KWARGS["warmup_epochs"]
        )
        utilization = metrics["repro_replay_worker_utilization"]["samples"][0]
        assert 0.0 < utilization["value"] <= 1.0
        chunk_spans = [s for s in tracer.spans if s.name == "replay.chunk"]
        assert len(chunk_spans) == 2
        assert sum(s.attributes["epochs"] for s in chunk_spans) == len(stream)


class TestZeroCostDefault:
    def test_pipeline_runs_clean_without_telemetry(self, stream):
        assert telemetry.is_enabled() is False
        fixes = GpsReceiver(**RECEIVER_KWARGS).process_many(stream)
        assert len(fixes) == len(stream)
        result = PositioningEngine(algorithm="dlg").solve_stream(
            stream, biases=[30.0] * len(stream)
        )
        assert len(result) == len(stream)
        # Nothing leaked into the null implementations.
        assert telemetry.get_registry().snapshot() == {}
        assert telemetry.get_tracer().snapshot() == []
