"""Fork-safety: module-level mutable state resets in forked children.

The shard tier forks workers from a router that may already be
warm — registry installed, solver cache primed, request ids minted,
flight recorder armed.  None of that state is meaningful across the
fork boundary (and trace ids would *collide* if inherited), so
``os.register_at_fork`` resets it: the child starts with the no-op
registry/tracer/recorder, a fresh trace identity, and an empty solver
cache, while the parent keeps everything.

The real-fork tests run their assertions in the child and report back
through the exit code (pytest machinery does not cross ``fork``), so
a failure shows up as a nonzero child status.
"""

import os

import numpy as np
import pytest

from repro import telemetry
from repro.api import SolverConfig, solve
from repro.telemetry import recorder as recorder_module
from repro.telemetry import trace as trace_module
from repro.telemetry.recorder import NULL_RECORDER, install_recorder
from repro.telemetry.registry import NULL_REGISTRY
from repro.telemetry.trace import mint_request_number, reset_trace_identity
from repro.validation.scenarios import ScenarioGenerator

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork is POSIX-only"
)


def run_in_fork(child_assertions) -> None:
    """Fork; run ``child_assertions()`` in the child; assert it passed."""
    pid = os.fork()
    if pid == 0:
        # Child: never return into pytest. Exit 0 only on clean pass.
        try:
            child_assertions()
        except BaseException:
            import traceback

            traceback.print_exc()
            os._exit(1)
        os._exit(0)
    _pid, status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(status) == 0


@pytest.fixture
def warm_parent():
    """A parent with every piece of process state warmed up."""
    registry, tracer = telemetry.install()
    recorder = install_recorder()
    epoch = ScenarioGenerator().generate(3).epoch
    fix = solve(epoch, SolverConfig(algorithm="dlg"))  # primes _LAST_BUILT
    minted = [mint_request_number() for _ in range(5)]
    yield {
        "registry": registry,
        "tracer": tracer,
        "recorder": recorder,
        "epoch": epoch,
        "fix": fix,
        "minted": minted,
        "prefix": trace_module._ID_PREFIX,
    }
    telemetry.uninstall()
    recorder_module.uninstall_recorder()
    reset_trace_identity()


class TestForkReset:
    def test_child_starts_clean_and_can_still_solve(self, warm_parent):
        import repro.api as api_module

        parent_prefix = warm_parent["prefix"]
        epoch = warm_parent["epoch"]
        parent_fix = warm_parent["fix"]

        def child():
            assert telemetry.get_registry() is NULL_REGISTRY
            assert not telemetry.is_enabled()
            assert recorder_module.get_recorder() is NULL_RECORDER
            # Fresh trace identity: new prefix, counter back at 1.
            assert trace_module._ID_PREFIX != parent_prefix
            assert mint_request_number() == 1
            # The facade's one-slot solver cache was dropped...
            assert api_module._LAST_BUILT == (None, None)
            # ...and solving still works, bitwise equal to the parent.
            fix = solve(epoch, SolverConfig(algorithm="dlg"))
            assert np.array_equal(fix.position, parent_fix.position)

        run_in_fork(child)

    def test_parent_state_survives_the_fork(self, warm_parent):
        import repro.api as api_module

        run_in_fork(lambda: None)
        # Nothing about the parent moved.
        assert telemetry.get_registry() is warm_parent["registry"]
        assert recorder_module.get_recorder() is warm_parent["recorder"]
        assert trace_module._ID_PREFIX == warm_parent["prefix"]
        assert api_module._LAST_BUILT[0] is not None
        # The request counter continues where the parent left off.
        assert mint_request_number() == warm_parent["minted"][-1] + 1

    def test_mint_request_number_sees_reset(self):
        """The counter reset must reach importers holding the *name*.

        ``mint_request_number`` used to be a bound ``count.__next__``,
        which a fork reset could not swap out from under importers —
        it is a real function now, and this pins that.
        """
        before = mint_request_number()
        reset_trace_identity()
        assert mint_request_number() == 1
        assert before >= 1

    def test_sibling_children_mint_distinct_prefixes(self, warm_parent):
        """Two forked siblings must not share a trace identity."""
        read_fd, write_fd = os.pipe()
        prefixes = []
        for _ in range(2):
            pid = os.fork()
            if pid == 0:
                try:
                    os.write(
                        write_fd, trace_module._ID_PREFIX.encode() + b"\n"
                    )
                finally:
                    os._exit(0)
            _pid, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
        os.close(write_fd)
        with os.fdopen(read_fd) as pipe:
            prefixes = [line.strip() for line in pipe.read().splitlines()]
        assert len(prefixes) == 2
        assert prefixes[0] != prefixes[1]
        assert warm_parent["prefix"] not in prefixes
