"""Tests for the Prometheus text and JSON snapshot exporters."""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    NULL_REGISTRY,
    SpanTracer,
    to_json_snapshot,
    to_prometheus_text,
    write_snapshot,
)


@pytest.fixture
def populated():
    registry = MetricsRegistry()
    registry.counter(
        "repro_solves_total", "Solves.", labels=("solver",)
    ).labels(solver="dlg").inc(3)
    registry.gauge("repro_coverage", "Coverage.").set(0.75)
    hist = registry.histogram("repro_latency", "Latency.", buckets=(1.0, 10.0))
    hist.observe(0.5)
    hist.observe(5.0)
    hist.observe(50.0)
    return registry


class TestPrometheusText:
    def test_help_and_type_headers(self, populated):
        text = to_prometheus_text(populated)
        assert "# HELP repro_solves_total Solves." in text
        assert "# TYPE repro_solves_total counter" in text
        assert "# TYPE repro_coverage gauge" in text
        assert "# TYPE repro_latency histogram" in text

    def test_labeled_counter_sample(self, populated):
        assert 'repro_solves_total{solver="dlg"} 3' in to_prometheus_text(populated)

    def test_histogram_series_are_cumulative(self, populated):
        text = to_prometheus_text(populated)
        assert 'repro_latency_bucket{le="1"} 1' in text
        assert 'repro_latency_bucket{le="10"} 2' in text
        assert 'repro_latency_bucket{le="+Inf"} 3' in text
        assert "repro_latency_sum 55.5" in text
        assert "repro_latency_count 3" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("k",)).labels(k='a"b\\c\nd').inc()
        text = to_prometheus_text(registry)
        assert r'x_total{k="a\"b\\c\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(NULL_REGISTRY) == ""
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestJsonSnapshot:
    def test_bundles_metrics_spans_and_extras(self, populated):
        tracer = SpanTracer()
        with tracer.span("region"):
            pass
        doc = to_json_snapshot(populated, tracer, extra={"run": "demo"})
        assert doc["telemetry"]["enabled"] is True
        assert "repro_solves_total" in doc["metrics"]
        assert doc["spans"][0]["name"] == "region"
        assert doc["extra"] == {"run": "demo"}

    def test_round_trips_through_json(self, populated):
        doc = to_json_snapshot(populated, SpanTracer())
        assert json.loads(json.dumps(doc)) == doc

    def test_null_registry_marked_disabled(self):
        doc = to_json_snapshot(NULL_REGISTRY)
        assert doc["telemetry"]["enabled"] is False
        assert doc["metrics"] == {}


class TestWriteSnapshot:
    def test_prom_extension_writes_text(self, tmp_path, populated):
        path = tmp_path / "metrics.prom"
        write_snapshot(str(path), populated)
        assert "# TYPE repro_coverage gauge" in path.read_text()

    def test_json_extension_writes_document(self, tmp_path, populated):
        path = tmp_path / "metrics.json"
        write_snapshot(str(path), populated, tracer=SpanTracer())
        doc = json.loads(path.read_text())
        assert doc["metrics"]["repro_coverage"]["samples"][0]["value"] == 0.75


class TestConcurrentExport:
    def test_histogram_sum_count_consistent_under_concurrent_writes(self):
        """Exporting while writers observe must stay self-consistent.

        Each rendered histogram snapshot is taken under the child's
        lock, so however the export interleaves with the writers, the
        ``_count`` series, the ``+Inf`` bucket, and (with identical
        observed values) the ``_sum``/``_count`` ratio must agree
        within one snapshot — a torn read would break any of the three.
        """
        import re
        import threading

        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_rt_seconds", "Round trips.", buckets=(0.01, 0.1)
        )
        stop = threading.Event()

        def writer():
            child = histogram.labels()
            while not stop.is_set():
                child.observe(0.05)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                text = to_prometheus_text(registry)
                count = int(
                    re.search(r"repro_rt_seconds_count (\d+)", text).group(1)
                )
                inf_bucket = int(
                    re.search(
                        r'repro_rt_seconds_bucket\{le="\+Inf"\} (\d+)', text
                    ).group(1)
                )
                total = float(
                    re.search(r"repro_rt_seconds_sum (\S+)", text).group(1)
                )
                assert inf_bucket == count
                assert total == pytest.approx(0.05 * count)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
