"""Tests for mixed-size batch scheduling (bucket/scatter round-trip)."""

import numpy as np
import pytest

from repro.engine import EpochBucket, bucket_epochs, scatter_bucket_results
from repro.errors import ConfigurationError


class TestBucketing:
    def test_buckets_by_count_preserving_stream_order(self, make_epoch):
        epochs = [
            make_epoch(count=8, seed=0),
            make_epoch(count=9, seed=1),
            make_epoch(count=8, seed=2),
            make_epoch(count=7, seed=3),
            make_epoch(count=9, seed=4),
        ]
        buckets = bucket_epochs(epochs)
        assert [b.satellite_count for b in buckets] == [7, 8, 9]
        assert buckets[0].indices == (3,)
        assert buckets[1].indices == (0, 2)
        assert buckets[2].indices == (1, 4)
        for bucket in buckets:
            for index, epoch in zip(bucket.indices, bucket.epochs):
                assert epoch is epochs[index]

    def test_empty_stream_gives_no_buckets(self):
        assert bucket_epochs([]) == []

    def test_bucket_len(self, make_epoch):
        (bucket,) = bucket_epochs([make_epoch(count=8), make_epoch(count=8, seed=1)])
        assert len(bucket) == 2


class TestScatter:
    def test_round_trips_epoch_order(self, make_epoch):
        epochs = [make_epoch(count=7 + (i % 3), seed=i) for i in range(11)]
        buckets = bucket_epochs(epochs)
        # Tag every bucket row with its stream index; scattering must
        # put index i back at row i.
        tagged = [
            np.asarray(bucket.indices, dtype=float)[:, None] * np.ones((1, 3))
            for bucket in buckets
        ]
        scattered = scatter_bucket_results(buckets, tagged, len(epochs))
        np.testing.assert_array_equal(scattered[:, 0], np.arange(len(epochs)))

    def test_scatter_1d_results(self, make_epoch):
        epochs = [make_epoch(count=7 + (i % 2), seed=i) for i in range(6)]
        buckets = bucket_epochs(epochs)
        tagged = [np.asarray(b.indices, dtype=float) for b in buckets]
        scattered = scatter_bucket_results(buckets, tagged, len(epochs))
        np.testing.assert_array_equal(scattered, np.arange(6.0))

    def test_rejects_result_count_mismatch(self, make_epoch):
        buckets = bucket_epochs([make_epoch(count=8)])
        with pytest.raises(ConfigurationError, match="result arrays"):
            scatter_bucket_results(buckets, [], 1)

    def test_rejects_row_count_mismatch(self, make_epoch):
        buckets = bucket_epochs([make_epoch(count=8)])
        with pytest.raises(ConfigurationError, match="result rows"):
            scatter_bucket_results(buckets, [np.zeros((2, 3))], 1)

    def test_rejects_incomplete_coverage(self, make_epoch):
        epochs = [make_epoch(count=8, seed=0), make_epoch(count=8, seed=1)]
        buckets = [
            EpochBucket(satellite_count=8, indices=(0,), epochs=(epochs[0],))
        ]
        with pytest.raises(ConfigurationError, match="cover"):
            scatter_bucket_results(buckets, [np.zeros((1, 3))], 2)

    def test_rejects_overlapping_indices(self, make_epoch):
        epoch = make_epoch(count=8)
        buckets = [
            EpochBucket(satellite_count=8, indices=(0, 0), epochs=(epoch, epoch))
        ]
        with pytest.raises(ConfigurationError, match="overlap"):
            scatter_bucket_results(buckets, [np.zeros((2, 3))], 2)
