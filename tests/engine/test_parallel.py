"""Tests for chunked parallel replay through GpsReceiver pipelines."""

import numpy as np
import pytest

from repro.core import GpsReceiver
from repro.engine import ParallelReplay
from repro.errors import ConfigurationError

RECEIVER_KWARGS = {
    "algorithm": "dlg",
    "clock_mode": "steering",
    "warmup_epochs": 4,
    "recalibration_interval": 0,
}


@pytest.fixture
def stream(make_stream):
    """A short constant-bias stream long enough to pass warm-up."""
    return make_stream(
        16, bias_meters=30.0, count=8, noise_sigma=0.5, time_step=1.0
    )


class TestParallelReplay:
    def test_single_worker_equals_serial_receiver(self, stream):
        serial = GpsReceiver(**RECEIVER_KWARGS).process_many(stream)
        replayed = ParallelReplay(RECEIVER_KWARGS, workers=1).replay(stream)
        assert len(replayed) == len(serial)
        for a, b in zip(replayed, serial):
            np.testing.assert_allclose(a.position, b.position)
            assert a.algorithm == b.algorithm

    def test_chunked_threads_match_per_chunk_serial(self, stream):
        # Two chunks, two fresh receivers: the parallel result must be
        # exactly the concatenation of two serial fresh-receiver runs.
        half = len(stream) // 2
        expected = GpsReceiver(**RECEIVER_KWARGS).process_many(stream[:half])
        expected += GpsReceiver(**RECEIVER_KWARGS).process_many(stream[half:])
        replayed = ParallelReplay(
            RECEIVER_KWARGS, workers=2, backend="thread", chunk_size=half
        ).replay(stream)
        assert len(replayed) == len(stream)
        for a, b in zip(replayed, expected):
            np.testing.assert_allclose(a.position, b.position)

    def test_process_backend_round_trips(self, stream):
        replayed = ParallelReplay(
            RECEIVER_KWARGS, workers=2, backend="process", chunk_size=len(stream) // 2
        ).replay(stream)
        assert len(replayed) == len(stream)
        truth = stream[0].truth.receiver_position
        for fix in replayed:
            assert np.linalg.norm(fix.position - truth) < 50.0

    def test_preserves_stream_order(self, stream):
        replayed = ParallelReplay(
            RECEIVER_KWARGS, workers=4, backend="thread", chunk_size=3
        ).replay(stream)
        # Fixes come back aligned with the input stream, chunk seams
        # included (warm-up epochs answer with NR, steady state with DLG).
        assert len(replayed) == len(stream)
        truth = stream[0].truth.receiver_position
        assert all(np.linalg.norm(f.position - truth) < 50.0 for f in replayed)


class TestWarmupSeam:
    """Chunk boundaries re-pay warm-up: NR answers the seam epochs."""

    WARMUP = RECEIVER_KWARGS["warmup_epochs"]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_seam_epochs_answered_by_nr(self, stream, backend):
        half = len(stream) // 2
        replayed = ParallelReplay(
            RECEIVER_KWARGS, workers=2, backend=backend, chunk_size=half
        ).replay(stream)
        # Each chunk's first `warmup_epochs` fixes come from the NR
        # warm-up of its fresh receiver; the rest are closed-form DLG.
        for chunk_start in (0, half):
            seam = replayed[chunk_start : chunk_start + self.WARMUP]
            steady = replayed[chunk_start + self.WARMUP : chunk_start + half]
            assert all(fix.algorithm == "NR" for fix in seam)
            assert all(fix.algorithm == "DLG" for fix in steady)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_chunked_matches_serial_outside_seams(self, stream, backend):
        serial = GpsReceiver(**RECEIVER_KWARGS).process_many(stream)
        half = len(stream) // 2
        replayed = ParallelReplay(
            RECEIVER_KWARGS, workers=2, backend=backend, chunk_size=half
        ).replay(stream)
        # Everywhere except the second chunk's warm-up seam the chunked
        # replay answers with the same algorithm, and positions agree to
        # the clock-predictor level (the second chunk's predictor trained
        # on its own warm-up, so sub-meter — not bitwise — agreement).
        seam = set(range(half, half + self.WARMUP))
        for index, (a, b) in enumerate(zip(replayed, serial)):
            if index in seam:
                continue
            assert a.algorithm == b.algorithm
            assert np.linalg.norm(a.position - b.position) < 1.0
        # First chunk sees exactly the serial receiver's history: exact.
        for a, b in zip(replayed[:half], serial[:half]):
            np.testing.assert_allclose(a.position, b.position, atol=1e-9)

    def test_seam_width_is_warmup_fixes(self, stream):
        half = len(stream) // 2
        serial = GpsReceiver(**RECEIVER_KWARGS).process_many(stream)
        replayed = ParallelReplay(
            RECEIVER_KWARGS, workers=2, backend="thread", chunk_size=half
        ).replay(stream)
        differing = [
            i
            for i, (a, b) in enumerate(zip(replayed, serial))
            if a.algorithm != b.algorithm
        ]
        assert differing == list(range(half, half + self.WARMUP))


class TestValidation:
    def test_rejects_bad_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ParallelReplay(backend="mpi")

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ParallelReplay(workers=0)

    def test_rejects_zero_chunk_size(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            ParallelReplay(chunk_size=0)

    def test_rejects_empty_stream(self):
        with pytest.raises(ConfigurationError, match="empty"):
            ParallelReplay(RECEIVER_KWARGS).replay([])

    def test_rejects_bad_receiver_kwargs_eagerly(self):
        with pytest.raises(ConfigurationError):
            ParallelReplay({"algorithm": "warp-drive"})
