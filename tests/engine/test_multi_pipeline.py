"""The engine's per-constellation mode: bucketing, lanes, compatibility.

Mixed streams bucket by satellite count *and* system pattern;
pure-GPS buckets must keep their historical integer keys (and the
historical hot path), while the per-constellation result exposes one
solved-bias lane per system with NaN where a system was absent.
"""

import numpy as np
import pytest

from repro.api import SolverConfig, build_scene
from repro.engine import PositioningEngine

G_BIASES = {"G": 120.0}
GR_BIASES = {"G": 120.0, "R": -45.0}


def mixed_stream():
    """G-only and G+R epochs interleaved, all 11 satellites."""
    epochs = []
    for seed in range(6):
        if seed % 2:
            epochs.append(
                build_scene(
                    {"G": 6, "R": 5}, clock_bias_meters=GR_BIASES, seed=seed
                )
            )
        else:
            epochs.append(
                build_scene({"G": 11}, clock_bias_meters=G_BIASES, seed=seed)
            )
    return epochs


@pytest.fixture(params=["nr", "dlo", "dlg"])
def multi_engine(request):
    config = SolverConfig(
        algorithm=request.param, constellations="per_constellation"
    )
    return PositioningEngine.from_config(config)


class TestMultiEngine:
    def test_positions_and_bias_lanes(self, multi_engine):
        epochs = mixed_stream()
        result = multi_engine.solve_stream(epochs)
        truth = np.stack([epoch.truth.receiver_position for epoch in epochs])
        assert np.max(np.linalg.norm(result.positions - truth, axis=1)) < 1e-4
        lanes = result.constellation_biases
        assert set(lanes) == {"G", "R"}
        assert np.allclose(lanes["G"], 120.0, atol=1e-3)
        # R is observed only in the odd epochs; absent lanes are NaN.
        assert np.allclose(lanes["R"][1::2], -45.0, atol=1e-3)
        assert np.all(np.isnan(lanes["R"][::2]))

    def test_clock_biases_is_first_lane(self, multi_engine):
        result = multi_engine.solve_stream(mixed_stream())
        assert np.allclose(result.clock_biases, 120.0, atol=1e-3)

    def test_bucket_keys(self, multi_engine):
        result = multi_engine.solve_stream(mixed_stream())
        assert result.bucket_sizes == {11: 3, "11:G6R5": 3}

    def test_pattern_splits_same_signature(self, multi_engine):
        # Same satellite count and same per-system totals, different
        # slot order: the buckets must not merge (the batch kernels
        # need one shared slot pattern per block) — but they share one
        # reporting key, under which the sizes aggregate.
        from repro.blocks import pack_stream

        epochs = [
            build_scene({"G": 6, "R": 5}, clock_bias_meters=GR_BIASES, seed=0),
            build_scene({"R": 5, "G": 6}, clock_bias_meters=GR_BIASES, seed=1),
        ]
        packed = pack_stream(epochs)
        assert len(packed.buckets) == 2
        assert [bucket.key for bucket in packed.buckets] == [
            "11:G6R5",
            "11:G6R5",
        ]
        result = multi_engine.solve_stream(epochs)
        assert result.bucket_sizes == {"11:G6R5": 2}
        truth = np.stack([epoch.truth.receiver_position for epoch in epochs])
        assert np.max(np.linalg.norm(result.positions - truth, axis=1)) < 1e-4


class TestSingleModeCompatibility:
    def test_single_engine_ignores_tags(self):
        # A single-mode engine on tagged epochs keeps the one-bias
        # model: no constellation lanes, plain int bucket keys only
        # for pure-GPS epochs.
        epochs = [
            build_scene({"G": 8}, clock_bias_meters={"G": 35.0}, seed=seed)
            for seed in range(3)
        ]
        engine = PositioningEngine(algorithm="dlg")
        result = engine.solve_stream(epochs, biases=np.full(3, 35.0))
        assert result.constellation_biases is None
        assert result.bucket_sizes == {8: 3}
        truth = np.stack([epoch.truth.receiver_position for epoch in epochs])
        assert np.max(np.linalg.norm(result.positions - truth, axis=1)) < 1e-6

    def test_from_config_threads_mode(self):
        config = SolverConfig(
            algorithm="dlg", constellations="per_constellation"
        )
        engine = PositioningEngine.from_config(config)
        epochs = [
            build_scene({"G": 6, "R": 5}, clock_bias_meters=GR_BIASES, seed=9)
        ]
        result = engine.solve_stream(epochs)
        assert result.constellation_biases is not None
