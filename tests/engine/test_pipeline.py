"""Tests for the PositioningEngine bucket-and-batch dispatcher."""

import json

import numpy as np
import pytest

from repro.clocks import ConstantClockBiasPredictor
from repro.core import DLGSolver, DLOSolver, NewtonRaphsonSolver
from repro.engine import EngineDiagnostics, PositioningEngine
from repro.errors import ConfigurationError, GeometryError

BIAS = 21.0


@pytest.fixture
def mixed_stream(make_stream):
    """A mixed-count stream with a constant, known clock bias."""
    return make_stream(
        24,
        bias_meters=BIAS,
        count=[7 + (i % 4) for i in range(24)],
        noise_sigma=1.0,
    )


class TestSolveStream:
    @pytest.mark.parametrize("algorithm", ["dlo", "dlg", "nr"])
    def test_result_aligned_with_input_order(self, mixed_stream, algorithm):
        engine = PositioningEngine(algorithm=algorithm)
        result = engine.solve_stream(mixed_stream, biases=[BIAS] * len(mixed_stream))
        assert result.positions.shape == (len(mixed_stream), 3)
        assert result.algorithm == algorithm
        assert sum(result.bucket_sizes.values()) == len(mixed_stream)
        truth = np.stack([e.truth.receiver_position for e in mixed_stream])
        # Row i must answer epoch i: every fix lands near its own truth.
        assert np.all(np.linalg.norm(result.positions - truth, axis=1) < 30.0)

    def test_matches_scalar_solvers_epoch_by_epoch(self, mixed_stream):
        biases = [BIAS] * len(mixed_stream)
        dlo = PositioningEngine(algorithm="dlo").solve_stream(mixed_stream, biases)
        dlg = PositioningEngine(algorithm="dlg").solve_stream(mixed_stream, biases)
        nr = PositioningEngine(algorithm="nr").solve_stream(mixed_stream, biases)
        scalar_dlo = DLOSolver(ConstantClockBiasPredictor(BIAS))
        scalar_dlg = DLGSolver(ConstantClockBiasPredictor(BIAS))
        scalar_nr = NewtonRaphsonSolver()
        for i, epoch in enumerate(mixed_stream):
            np.testing.assert_allclose(
                dlo.positions[i], scalar_dlo.solve(epoch).position, atol=1e-6
            )
            np.testing.assert_allclose(
                dlg.positions[i], scalar_dlg.solve(epoch).position, atol=1e-6
            )
            np.testing.assert_allclose(
                nr.positions[i], scalar_nr.solve(epoch).position, atol=1e-6
            )

    def test_nr_reports_solved_biases(self, mixed_stream):
        result = PositioningEngine(algorithm="nr").solve_stream(mixed_stream)
        np.testing.assert_allclose(result.clock_biases, BIAS, atol=5.0)

    def test_closed_form_uses_predictor_when_no_biases(self, mixed_stream):
        engine = PositioningEngine(
            algorithm="dlg", clock_predictor=ConstantClockBiasPredictor(BIAS)
        )
        explicit = PositioningEngine(algorithm="dlg").solve_stream(
            mixed_stream, biases=[BIAS] * len(mixed_stream)
        )
        predicted = engine.solve_stream(mixed_stream)
        np.testing.assert_allclose(predicted.positions, explicit.positions)
        np.testing.assert_allclose(predicted.clock_biases, BIAS)

    def test_engine_result_len(self, mixed_stream):
        result = PositioningEngine(algorithm="dlo").solve_stream(
            mixed_stream, biases=[BIAS] * len(mixed_stream)
        )
        assert len(result) == len(mixed_stream)


class TestDiagnostics:
    def test_clean_stream_reports_empty_diagnostics(self, mixed_stream):
        result = PositioningEngine(algorithm="dlg").solve_stream(
            mixed_stream, biases=[BIAS] * len(mixed_stream)
        )
        assert isinstance(result.diagnostics, EngineDiagnostics)
        assert result.diagnostics.epochs_dropped == 0
        assert result.diagnostics.dropped_indices == ()
        assert set(result.diagnostics.bucket_status.values()) == {"ok"}
        assert set(result.diagnostics.bucket_status) == set(result.bucket_sizes)

    def test_drop_mode_answers_undersized_with_nan(self, make_epoch):
        stream = [
            make_epoch(bias_meters=BIAS, count=8, seed=0),
            make_epoch(bias_meters=BIAS, count=3, seed=1),
            make_epoch(bias_meters=BIAS, count=8, seed=2),
        ]
        result = PositioningEngine(algorithm="dlg").solve_stream(
            stream, biases=[BIAS] * 3, on_undersized="drop"
        )
        assert result.positions.shape == (3, 3)
        assert np.all(np.isnan(result.positions[1]))
        assert np.isnan(result.clock_biases[1])
        assert np.all(np.isfinite(result.positions[[0, 2]]))
        assert result.diagnostics.epochs_dropped == 1
        assert result.diagnostics.dropped_indices == (1,)
        # The dropped count never shows up in the solved buckets.
        assert 3 not in result.bucket_sizes

    def test_drop_mode_with_all_undersized_raises(self, make_epoch):
        stream = [make_epoch(count=3, seed=i) for i in range(2)]
        with pytest.raises(GeometryError, match="every epoch"):
            PositioningEngine(algorithm="dlg").solve_stream(
                stream, biases=[0.0, 0.0], on_undersized="drop"
            )

    def test_rejects_unknown_on_undersized(self, mixed_stream):
        with pytest.raises(ConfigurationError, match="on_undersized"):
            PositioningEngine().solve_stream(
                mixed_stream,
                biases=[BIAS] * len(mixed_stream),
                on_undersized="ignore",
            )

    def test_to_dict_is_json_ready(self, make_epoch):
        stream = [
            make_epoch(bias_meters=BIAS, count=8, seed=0),
            make_epoch(bias_meters=BIAS, count=3, seed=1),
        ]
        result = PositioningEngine(algorithm="dlg").solve_stream(
            stream, biases=[BIAS, BIAS], on_undersized="drop"
        )
        doc = result.diagnostics.to_dict()
        assert doc == {
            "epochs_dropped": 1,
            "dropped_indices": [1],
            "epochs_invalid": 0,
            "invalid_indices": [],
            "bucket_status": {"8": "ok"},
            "fde": None,
            # Batch lineage: the solved epoch ran in the 8-satellite
            # bucket's row 0; the dropped epoch never reached a bucket.
            "bucket_keys": [8, -1],
            "bucket_rows": [0, -1],
        }
        json.dumps(doc)


class TestValidation:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigurationError, match="dlo/dlg/nr"):
            PositioningEngine(algorithm="bancroft")

    def test_rejects_empty_stream(self):
        with pytest.raises(GeometryError, match="at least one"):
            PositioningEngine().solve_stream([])

    def test_rejects_bias_shape_mismatch(self, mixed_stream):
        with pytest.raises(ConfigurationError, match="one per epoch"):
            PositioningEngine().solve_stream(mixed_stream, biases=[BIAS])

    def test_rejects_small_epochs_with_counts(self, make_epoch):
        stream = [make_epoch(count=8), make_epoch(count=3)]
        with pytest.raises(GeometryError, match="fewer than 4"):
            PositioningEngine().solve_stream(stream, biases=[0.0, 0.0])
