"""Tests for the engine's structural-integrity guard on streams.

The engine distinguishes two defect classes, consistent with
``on_undersized``:

* *undersized* epochs (fewer than four satellites) — a size problem the
  bucketing path already understands;
* *structurally invalid* epochs (non-finite measurements, duplicate
  PRNs) — contract violations caught by the shared
  :func:`~repro.observations.epoch_integrity_error` guard.

Both honor the same policy knob: ``raise`` refuses the stream, ``drop``
answers the offending rows with NaN and reports them in diagnostics.
"""

import numpy as np
import pytest

from repro.engine import PositioningEngine
from repro.errors import GeometryError
from repro.validation.faults import DuplicateSatellite, NonFiniteMeasurement

BIAS = 21.0


def _rng():
    return np.random.default_rng(0)


@pytest.fixture
def stream(make_stream):
    return make_stream(6, bias_meters=BIAS, count=8, noise_sigma=1.0)


def _poison(stream, index, fault):
    poisoned = list(stream)
    poisoned[index] = fault.apply(poisoned[index], _rng())
    return poisoned


class TestRaiseMode:
    @pytest.mark.parametrize(
        "fault", [NonFiniteMeasurement(), NonFiniteMeasurement(target="position")]
    )
    def test_non_finite_epoch_refused(self, stream, fault):
        with pytest.raises(GeometryError, match="structurally invalid"):
            PositioningEngine(algorithm="dlg").solve_stream(
                _poison(stream, 2, fault), biases=[BIAS] * len(stream)
            )

    def test_duplicate_prn_refused(self, stream):
        with pytest.raises(GeometryError, match="structurally invalid"):
            PositioningEngine(algorithm="dlg").solve_stream(
                _poison(stream, 0, DuplicateSatellite()),
                biases=[BIAS] * len(stream),
            )

    def test_error_names_the_first_offender(self, stream):
        poisoned = _poison(
            _poison(stream, 4, NonFiniteMeasurement()), 1, NonFiniteMeasurement()
        )
        with pytest.raises(GeometryError, match="first at index 1"):
            PositioningEngine(algorithm="dlg").solve_stream(
                poisoned, biases=[BIAS] * len(stream)
            )


class TestDropMode:
    def test_invalid_row_answers_nan_and_is_diagnosed(self, stream):
        poisoned = _poison(stream, 3, NonFiniteMeasurement())
        result = PositioningEngine(algorithm="dlg").solve_stream(
            poisoned, biases=[BIAS] * len(stream), on_undersized="drop"
        )
        assert np.all(np.isnan(result.positions[3]))
        assert np.isnan(result.clock_biases[3])
        assert result.diagnostics.epochs_invalid == 1
        assert result.diagnostics.invalid_indices == (3,)
        # The valid rows are untouched by the pruning.
        clean = PositioningEngine(algorithm="dlg").solve_stream(
            stream, biases=[BIAS] * len(stream)
        )
        keep = [0, 1, 2, 4, 5]
        np.testing.assert_allclose(
            result.positions[keep], clean.positions[keep]
        )

    def test_invalid_and_undersized_are_classified_separately(
        self, stream, make_epoch
    ):
        poisoned = list(stream)
        poisoned[1] = NonFiniteMeasurement().apply(poisoned[1], _rng())
        poisoned[4] = make_epoch(bias_meters=BIAS, count=3, seed=99)
        result = PositioningEngine(algorithm="dlg").solve_stream(
            poisoned, biases=[BIAS] * len(poisoned), on_undersized="drop"
        )
        assert result.diagnostics.invalid_indices == (1,)
        assert result.diagnostics.dropped_indices == (4,)
        assert np.all(np.isnan(result.positions[[1, 4]]))

    def test_diagnostics_dict_reports_both_classes(self, stream, make_epoch):
        poisoned = list(stream)
        poisoned[0] = DuplicateSatellite().apply(poisoned[0], _rng())
        result = PositioningEngine(algorithm="dlg").solve_stream(
            poisoned, biases=[BIAS] * len(poisoned), on_undersized="drop"
        )
        doc = result.diagnostics.to_dict()
        assert doc["epochs_invalid"] == 1
        assert doc["invalid_indices"] == [0]
        assert doc["epochs_dropped"] == 0

    @pytest.mark.parametrize("algorithm", ["dlo", "dlg", "nr"])
    def test_all_algorithms_honor_the_guard(self, stream, algorithm):
        poisoned = _poison(stream, 5, NonFiniteMeasurement())
        result = PositioningEngine(algorithm=algorithm).solve_stream(
            poisoned, biases=[BIAS] * len(stream), on_undersized="drop"
        )
        assert np.all(np.isnan(result.positions[5]))
        assert np.all(np.isfinite(result.positions[:5]))
