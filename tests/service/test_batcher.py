"""MicroBatcher state-machine tests.

The batcher is solver-agnostic, so these tests drive it with plain
integers and assert on the three flush triggers (full, deadline,
close) plus the drain semantics.  Everything runs under
``asyncio.run`` from synchronous tests — the suite has no asyncio
pytest plugin, by design.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.service import MicroBatcher
from repro.service.batcher import FLUSH_CLOSE, FLUSH_DEADLINE, FLUSH_FULL


class TestConstruction:
    def test_rejects_zero_batch_size(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch_size=0, max_wait_seconds=0.01)

    def test_rejects_negative_wait(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch_size=4, max_wait_seconds=-0.001)


class TestFlushTriggers:
    def test_flush_on_full_does_not_wait_for_deadline(self):
        async def scenario():
            batcher = MicroBatcher(max_batch_size=3, max_wait_seconds=60.0)
            for item in (1, 2, 3):
                batcher.put(item)
            started = asyncio.get_running_loop().time()
            flush = await batcher.next_batch()
            elapsed = asyncio.get_running_loop().time() - started
            return flush, elapsed

        flush, elapsed = asyncio.run(scenario())
        assert flush.reason == FLUSH_FULL
        assert flush.items == (1, 2, 3)
        assert elapsed < 1.0  # nowhere near the 60s deadline

    def test_flush_on_deadline_with_partial_batch(self):
        async def scenario():
            batcher = MicroBatcher(max_batch_size=100, max_wait_seconds=0.02)
            loop = asyncio.get_running_loop()
            batcher.put("only")
            started = loop.time()
            flush = await batcher.next_batch()
            return flush, loop.time() - started

        flush, elapsed = asyncio.run(scenario())
        assert flush.reason == FLUSH_DEADLINE
        assert flush.items == ("only",)
        assert elapsed >= 0.02

    def test_deadline_pinned_to_oldest_item(self):
        """Late followers must not extend the first item's wait."""

        async def scenario():
            batcher = MicroBatcher(max_batch_size=100, max_wait_seconds=0.05)
            loop = asyncio.get_running_loop()

            async def trickle():
                for item in range(5):
                    await asyncio.sleep(0.015)
                    if not batcher.closed:
                        batcher.put(item)

            batcher.put("first")
            started = loop.time()
            trickler = loop.create_task(trickle())
            flush = await batcher.next_batch()
            elapsed = loop.time() - started
            trickler.cancel()
            return flush, elapsed

        flush, elapsed = asyncio.run(scenario())
        assert flush.reason == FLUSH_DEADLINE
        assert flush.items[0] == "first"
        # Flushed at the oldest item's deadline (~0.05s), not at
        # last-put + max_wait (which the trickler keeps pushing out).
        assert elapsed < 0.09

    def test_close_flushes_remainder_then_returns_none(self):
        async def scenario():
            batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=60.0)
            for item in range(5):
                batcher.put(item)
            batcher.close()
            flushes = []
            while True:
                flush = await batcher.next_batch()
                if flush is None:
                    return flushes
                flushes.append(flush)

        flushes = asyncio.run(scenario())
        # 5 items, max batch 2: chunked 2 + 2 + 1, nothing dropped.
        assert [len(f) for f in flushes] == [2, 2, 1]
        assert [f.reason for f in flushes] == [FLUSH_FULL, FLUSH_FULL, FLUSH_CLOSE]
        assert [i for f in flushes for i in f.items] == list(range(5))

    def test_next_batch_parks_until_put(self):
        async def scenario():
            batcher = MicroBatcher(max_batch_size=1, max_wait_seconds=0.0)
            loop = asyncio.get_running_loop()
            waiter = loop.create_task(batcher.next_batch())
            await asyncio.sleep(0.01)
            assert not waiter.done()  # parked in EMPTY
            batcher.put("wake")
            return await waiter

        flush = asyncio.run(scenario())
        assert flush.items == ("wake",)

    def test_next_batch_returns_none_when_closed_empty(self):
        async def scenario():
            batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=0.01)
            batcher.close()
            return await batcher.next_batch()

        assert asyncio.run(scenario()) is None


class TestDrainAndMisuse:
    def test_put_after_close_raises(self):
        async def scenario():
            batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=0.01)
            batcher.close()
            with pytest.raises(ServiceError):
                batcher.put("late")

        asyncio.run(scenario())

    def test_drain_now_empties_in_chunks(self):
        async def scenario():
            batcher = MicroBatcher(max_batch_size=3, max_wait_seconds=60.0)
            for item in range(7):
                batcher.put(item)
            return batcher.drain_now(), len(batcher)

        flushes, remaining = asyncio.run(scenario())
        assert [len(f) for f in flushes] == [3, 3, 1]
        assert all(f.reason == FLUSH_CLOSE for f in flushes)
        assert remaining == 0

    def test_oldest_enqueued_at_tracks_first_item(self):
        async def scenario():
            batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=60.0)
            loop = asyncio.get_running_loop()
            before = loop.time()
            batcher.put("a")
            await asyncio.sleep(0.01)
            batcher.put("b")
            flush = await batcher.next_batch()
            return flush, before

        flush, before = asyncio.run(scenario())
        # Stamped when "a" was put — before "b" arrived.
        assert before <= flush.oldest_enqueued_at < before + 0.01
