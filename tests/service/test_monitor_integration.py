"""Signal-plausibility monitors through the serving tier.

Three contracts stack on top of the unit-tested monitor plane:

* **Verdicts ride results** — ``ServiceConfig(monitors=...)`` arms the
  suite inside ``BatchExecutor``; raised per-epoch verdicts come back
  on ``ServiceResult.monitor`` (nominal epochs carry ``None``),
  confirmed-``spoofed`` epochs are refused (``status="failed"``) when
  ``block_spoofed`` is on and served-but-tagged when it is off.
* **Strikes feed the breaker** — satellites a spoofed verdict names
  accrue health-tracker strikes exactly like FDE exclusions, one
  strike per epoch however many witnesses flag it.
* **Shard parity** — the 1-worker shard and the in-process service
  produce identical verdict streams: the suite's state is keyed on
  epoch order alone and the slab transport round-trips the C/N0 lane
  exactly, so every comparison here is equality, not tolerance.
"""

import asyncio

import numpy as np
import pytest

from repro.api import SolverConfig
from repro.integrity.health import HealthConfig
from repro.integrity.monitors import MonitorConfig
from repro.service import (
    AsyncPositioningClient,
    PositioningService,
    ServiceConfig,
    ShardConfig,
    ShardedPositioningService,
)
from repro.signals import SignalFeatureModel
from repro.telemetry.recorder import TRIGGER_MONITOR, RecorderConfig
from tests.integrity.test_monitors import build_epoch, shift_cn0

N_EPOCHS = 30
BATCH = 8
#: Epoch index where the attacks below switch on: past the stationary
#: monitors' learning window, mid-stream so batches straddle it.
ONSET = 12


def clean_epochs(count=N_EPOCHS):
    model = SignalFeatureModel(seed=42)
    return [model.attach(build_epoch(t)) for t in range(count)]


def jammed_epochs(count=N_EPOCHS, onset=ONSET, suppression_db=-12.0):
    """Common-mode C/N0 suppression from ``onset`` on (jamming ramp)."""
    return [
        shift_cn0(epoch, suppression_db) if t >= onset else epoch
        for t, epoch in enumerate(clean_epochs(count))
    ]


def degraded_satellite_epochs(count=N_EPOCHS, onset=ONSET, prns=(3, 5)):
    """Two satellites pushed below the absolute C/N0 floor from ``onset``."""
    return [
        shift_cn0(epoch, -25.0, prns=set(prns)) if t >= onset else epoch
        for t, epoch in enumerate(clean_epochs(count))
    ]


def service_config(**monitor_overrides):
    defaults = dict(stationary=False, confirm_epochs=3, confirm_window=5)
    defaults.update(monitor_overrides)
    return ServiceConfig(
        solver=SolverConfig(algorithm="dlg"),
        max_batch_size=BATCH,
        max_wait_seconds=0.01,
        monitors=MonitorConfig(**defaults),
    )


def run_in_process(epochs, config):
    async def main():
        async with PositioningService(config) as service:
            client = AsyncPositioningClient(service)
            return await asyncio.gather(
                *(client.submit(epoch, bias_meters=0.0) for epoch in epochs)
            )

    return asyncio.run(main())


def run_shard(epochs, config, workers):
    shard_config = ShardConfig(
        service=config, workers=workers, batch_size=BATCH
    )
    with ShardedPositioningService(shard_config) as shard:
        return shard.solve_many(
            epochs, bias_meters=[0.0] * len(epochs)
        )


class TestVerdictsRideResults:
    def test_clean_stream_serves_without_verdicts(self):
        results = run_in_process(clean_epochs(), service_config())
        assert all(result.status == "ok" for result in results)
        assert all(result.monitor is None for result in results)

    def test_jamming_escalates_and_blocks(self):
        results = run_in_process(jammed_epochs(), service_config())
        # Pre-onset epochs are untouched.
        assert all(r.monitor is None for r in results[:ONSET])
        severities = [
            None if r.monitor is None else r.monitor.severity
            for r in results[ONSET:]
        ]
        # The attack raises immediately and confirms within the M-of-N
        # window; confirmed epochs are refused, not served.
        assert severities[0] == "suspect"
        assert "spoofed" in severities
        confirmed = [
            r for r in results if r.monitor is not None
            and r.monitor.severity == "spoofed"
        ]
        assert confirmed, "persistent jamming must confirm"
        for result in confirmed:
            assert result.status == "failed"
            assert result.position is None
            assert "monitor" in result.error
            tripped = {v.monitor for v in result.monitor.monitors}
            assert "cn0_agc" in tripped
        # to_dict carries the verdict for observability surfaces.
        payload = confirmed[0].to_dict()
        assert payload["monitor"]["severity"] == "spoofed"

    def test_block_spoofed_off_serves_tagged_fixes(self):
        results = run_in_process(
            jammed_epochs(), service_config(block_spoofed=False)
        )
        confirmed = [
            r for r in results if r.monitor is not None
            and r.monitor.severity == "spoofed"
        ]
        assert confirmed
        for result in confirmed:
            assert result.status == "ok"
            assert result.position is not None

    def test_monitor_alert_reaches_flight_recorder(self):
        config = service_config()
        config = ServiceConfig(
            solver=config.solver,
            max_batch_size=config.max_batch_size,
            max_wait_seconds=config.max_wait_seconds,
            monitors=config.monitors,
            recorder=RecorderConfig(capacity=64),
        )

        async def main():
            async with PositioningService(config) as service:
                client = AsyncPositioningClient(service)
                await asyncio.gather(
                    *(
                        client.submit(epoch, bias_meters=0.0)
                        for epoch in jammed_epochs()
                    )
                )
                return service.recorder.records()

        records = asyncio.run(main())
        alerts = [r for r in records if r.trigger == TRIGGER_MONITOR]
        assert alerts, "raised verdicts must build recorder entries"
        assert all(r.monitor is not None for r in alerts)
        assert any(r.monitor["severity"] == "spoofed" for r in alerts)
        # Every raised verdict riding a result also rides its record.
        assert {r.monitor["severity"] for r in alerts} <= {
            "suspect", "spoofed"
        }


class TestMonitorStrikesFeedBreaker:
    def test_flagged_satellites_accrue_strikes(self):
        """Confirmed per-satellite flags feed the health tracker."""
        config = ServiceConfig(
            solver=SolverConfig(algorithm="dlg"),
            max_batch_size=BATCH,
            max_wait_seconds=0.01,
            monitors=MonitorConfig(
                stationary=False, confirm_epochs=3, confirm_window=5
            ),
            health=HealthConfig(),
        )

        async def main():
            async with PositioningService(config) as service:
                client = AsyncPositioningClient(service)
                results = await asyncio.gather(
                    *(
                        client.submit(epoch, bias_meters=0.0)
                        for epoch in degraded_satellite_epochs()
                    )
                )
                tracker = service.executor.health_tracker
                return results, tracker.quarantined_prns()

        results, quarantined = asyncio.run(main())
        confirmed = [
            r for r in results if r.monitor is not None
            and r.monitor.severity == "spoofed"
        ]
        assert confirmed
        flagged = set()
        for result in confirmed:
            flagged.update(result.monitor.flagged)
        assert {"G03", "G05"} <= flagged
        # Persistent confirmed flags crossed the quarantine threshold.
        assert {3, 5} <= set(quarantined)


class TestShardParity:
    def assert_same_verdicts(self, ours, theirs):
        assert len(ours) == len(theirs)
        for index, (a, b) in enumerate(zip(ours, theirs)):
            context = f"epoch {index}"
            assert a.status == b.status, context
            if a.position is None or b.position is None:
                assert a.position is None and b.position is None, context
            else:
                assert np.array_equal(a.position, b.position), context
            if a.monitor is None or b.monitor is None:
                assert a.monitor is None and b.monitor is None, context
            else:
                # Dict equality pins severity, per-monitor statistics
                # (exact floats), thresholds, and flagged satellites.
                assert a.monitor.to_dict() == b.monitor.to_dict(), context

    @pytest.mark.parametrize(
        "make_stream", [jammed_epochs, degraded_satellite_epochs, clean_epochs]
    )
    def test_one_worker_matches_in_process(self, make_stream):
        epochs = make_stream()
        config = service_config()
        baseline = run_in_process(epochs, config)
        sharded = run_shard(epochs, config, workers=1)
        self.assert_same_verdicts(sharded, baseline)

    def test_inline_shard_matches_one_worker(self):
        epochs = jammed_epochs()
        config = service_config()
        inline = run_shard(epochs, config, workers=0)
        sharded = run_shard(epochs, config, workers=1)
        self.assert_same_verdicts(sharded, inline)

    def test_cn0_lane_survives_slab_round_trip(self):
        """A worker's verdicts depend on the C/N0 the slab delivered:
        identical verdict *statistics* (exact floats) prove the lane
        round-tripped bit-exactly, not just approximately."""
        epochs = jammed_epochs()
        config = service_config()
        baseline = run_in_process(epochs, config)
        sharded = run_shard(epochs, config, workers=1)
        stats = [
            tuple(
                (v.monitor, v.statistic, v.threshold)
                for v in r.monitor.monitors
            )
            for r in sharded
            if r.monitor is not None
        ]
        expected = [
            tuple(
                (v.monitor, v.statistic, v.threshold)
                for v in r.monitor.monitors
            )
            for r in baseline
            if r.monitor is not None
        ]
        assert stats == expected
        assert stats, "the attack stream must raise verdicts"
