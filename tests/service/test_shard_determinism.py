"""Cross-process determinism: the shard's contract is bitwise parity.

The same 50-seed scenario stream must produce *identical* fixes —
statuses, positions (bitwise), clock biases, solver lineage, and FDE
verdicts — whether it runs through the in-process asyncio
``PositioningService``, the shard in inline mode (``workers=0``), one
worker, or four workers.  Batch boundaries are fixed by
``batch_size``, each batch executes whole on one worker, and the
shared-memory transport round-trips float64/int64 exactly, so there is
no tolerance anywhere in this file: every comparison is ``==`` or
``np.array_equal``.
"""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.api import SolverConfig
from repro.integrity.fde import FdeConfig
from repro.service import (
    AsyncPositioningClient,
    PositioningService,
    ServiceConfig,
    ShardConfig,
    ShardedPositioningService,
)
from repro.validation.scenarios import ScenarioConfig, ScenarioGenerator

SEEDS = range(50)
BATCH = 16
#: Seeds whose epoch gets one pseudorange spiked by a repairable fault
#: (FDE variant): cross-process parity must hold for ``repaired``
#: verdicts too, not just clean passes.  Two spikes stay below the
#: health tracker's quarantine threshold (3 exclusions in-window):
#: quarantine is *stream-stateful* per process, so N-worker parity is
#: only promised while it does not engage — the stateful path itself
#: is pinned separately against the 1-worker shard, whose single
#: tracker sees the same ordered stream as the in-process service.
SPIKED_SEEDS = (7, 41)


def spike(epoch, meters=2000.0):
    observations = list(epoch.observations)
    observations[0] = dataclasses.replace(
        observations[0], pseudorange=observations[0].pseudorange + meters
    )
    return dataclasses.replace(epoch, observations=tuple(observations))


def make_epochs(with_fde: bool):
    """50 seeded epochs and their per-request bias overrides.

    DLG takes the receiver clock bias as an input, so the FDE variant
    hands each request its scenario's true bias (the oracle-predictor
    contract) — residuals then reflect faults, not the unmodeled
    bias — and spikes a few epochs to exercise the repair path.
    """
    generator = ScenarioGenerator(
        ScenarioConfig(min_satellites=5, max_satellites=9, max_flatness=0.5)
    )
    scenarios = [generator.generate(seed) for seed in SEEDS]
    epochs = [scenario.epoch for scenario in scenarios]
    if not with_fde:
        return epochs, None
    epochs = [
        spike(epoch) if seed in SPIKED_SEEDS else epoch
        for seed, epoch in zip(SEEDS, epochs)
    ]
    return epochs, [scenario.clock_bias_meters for scenario in scenarios]


def service_config(with_fde: bool) -> ServiceConfig:
    return ServiceConfig(
        solver=SolverConfig(algorithm="dlg"),
        max_batch_size=BATCH,
        max_wait_seconds=0.01,
        integrity=FdeConfig() if with_fde else None,
    )


def run_in_process(epochs, config, biases=None):
    """The asyncio service, submitted so flushes cut at BATCH epochs.

    ``gather`` submits in order and the batcher flushes on *full*, so
    a 50-request burst with ``max_batch_size=16`` solves as batches of
    16/16/16/2 — the same cuts the shard makes.
    """

    async def main():
        async with PositioningService(config) as service:
            client = AsyncPositioningClient(service)
            return await asyncio.gather(
                *(
                    client.submit(
                        epoch,
                        bias_meters=biases[i] if biases is not None else None,
                    )
                    for i, epoch in enumerate(epochs)
                )
            )

    return asyncio.run(main())


def run_shard(epochs, config, workers, policy="hash", biases=None):
    shard_config = ShardConfig(
        service=config, workers=workers, policy=policy, batch_size=BATCH
    )
    with ShardedPositioningService(shard_config) as shard:
        return shard.solve_many(epochs, bias_meters=biases)


def assert_identical(ours, theirs):
    assert len(ours) == len(theirs)
    for index, (a, b) in enumerate(zip(ours, theirs)):
        context = f"epoch {index}"
        assert a.status == b.status, context
        assert a.solver == b.solver, context
        if a.position is None or b.position is None:
            assert a.position is None and b.position is None, context
        else:
            assert np.array_equal(a.position, b.position), context
        assert a.clock_bias_meters == b.clock_bias_meters, context
        if a.integrity is None or b.integrity is None:
            assert a.integrity is None and b.integrity is None, context
        else:
            assert a.integrity.status == b.integrity.status, context
            assert a.integrity.excluded_prn == b.integrity.excluded_prn, context
            for attr in ("test_statistic", "threshold"):
                x = getattr(a.integrity, attr)
                y = getattr(b.integrity, attr)
                # NaN marks "unchecked" — it must survive the transport.
                assert (x == y) or (np.isnan(x) and np.isnan(y)), context


@pytest.mark.parametrize("with_fde", [False, True], ids=["plain", "fde"])
class TestCrossProcessDeterminism:
    def test_one_worker_matches_in_process(self, with_fde):
        epochs, biases = make_epochs(with_fde)
        config = service_config(with_fde)
        baseline = run_in_process(epochs, config, biases)
        assert any(result.status == "ok" for result in baseline)
        if with_fde:
            verdicts = {
                result.integrity.status
                for result in baseline
                if result.integrity is not None
            }
            # The stream exercises both clean and repaired verdicts.
            assert {"passed", "repaired"} <= verdicts
        sharded = run_shard(epochs, config, workers=1, biases=biases)
        assert_identical(sharded, baseline)

    def test_four_workers_match_in_process(self, with_fde):
        epochs, biases = make_epochs(with_fde)
        config = service_config(with_fde)
        baseline = run_in_process(epochs, config, biases)
        sharded = run_shard(epochs, config, workers=4, biases=biases)
        assert_identical(sharded, baseline)

    def test_inline_mode_matches_workers(self, with_fde):
        epochs, biases = make_epochs(with_fde)
        config = service_config(with_fde)
        inline = run_shard(epochs, config, workers=0, biases=biases)
        sharded = run_shard(epochs, config, workers=2, biases=biases)
        assert_identical(sharded, inline)


class TestStatefulQuarantineParity:
    def test_one_worker_matches_in_process_past_quarantine(self):
        """Enough same-PRN spikes to *engage* quarantine.

        A 1-worker shard has exactly one health tracker seeing the
        same ordered stream as the in-process service, so even the
        stateful quarantine/pre-exclusion path must stay bitwise
        identical.  (Across N>1 workers the tracker state is sharded
        and this parity is deliberately not promised.)
        """
        generator = ScenarioGenerator(
            ScenarioConfig(min_satellites=6, max_satellites=9, max_flatness=0.5)
        )
        scenarios = [generator.generate(seed) for seed in SEEDS]
        epochs = [
            spike(s.epoch) if i % 8 == 3 else s.epoch
            for i, s in enumerate(scenarios)
        ]
        biases = [s.clock_bias_meters for s in scenarios]
        config = service_config(with_fde=True)
        baseline = run_in_process(epochs, config, biases)
        # The stateful path really engaged: early spikes are repaired
        # by FDE, later ones come back "passed" because the offending
        # PRN was pre-excluded at admission (quarantined).
        spiked_verdicts = [
            baseline[i].integrity.status
            for i in range(len(baseline))
            if i % 8 == 3
        ]
        assert "repaired" in spiked_verdicts
        assert "passed" in spiked_verdicts
        sharded = run_shard(epochs, config, workers=1, biases=biases)
        assert_identical(sharded, baseline)


class TestRoutingInvariance:
    def test_policy_does_not_change_answers(self):
        epochs, biases = make_epochs(with_fde=True)
        config = service_config(with_fde=True)
        by_hash = run_shard(
            epochs, config, workers=3, policy="hash", biases=biases
        )
        by_load = run_shard(
            epochs, config, workers=3, policy="least_loaded", biases=biases
        )
        assert_identical(by_hash, by_load)

    def test_client_ids_do_not_change_answers(self):
        epochs, _biases = make_epochs(with_fde=False)
        config = service_config(with_fde=False)
        shard_config = ShardConfig(
            service=config, workers=2, policy="hash", batch_size=BATCH
        )
        with ShardedPositioningService(shard_config) as shard:
            anonymous = shard.solve_many(epochs)
            named = shard.solve_many(
                epochs,
                client_ids=[f"client-{i % 5}" for i in range(len(epochs))],
            )
        assert_identical(named, anonymous)

    def test_bias_overrides_round_trip_through_workers(self):
        epochs, _biases = make_epochs(with_fde=False)
        epochs = epochs[:BATCH]
        config = service_config(with_fde=False)
        overrides = [
            125.0 if index % 3 == 0 else None
            for index in range(len(epochs))
        ]
        inline = run_shard(epochs, config, workers=0)
        shard_config = ShardConfig(
            service=config, workers=2, batch_size=BATCH
        )
        with ShardedPositioningService(shard_config) as shard:
            plain = shard.solve_many(epochs)
            biased = shard.solve_many(epochs, bias_meters=overrides)
        assert_identical(plain, inline)
        # The override pins the reported bias on the rows that carry it.
        for index, result in enumerate(biased):
            if overrides[index] is not None and result.status == "ok":
                assert result.clock_bias_meters == 125.0
