"""Seeded end-to-end acceptance for the per-request trace plane.

One traced, recorded, SLO-graded service run carries two injected
anomalies — an FDE-repairable pseudorange spike riding an otherwise
healthy micro-batch, and a request whose deadline expires while
queued — and the run must leave: a span tree naming each request's
slowest stage, a replayable incident artifact for *both* anomalies,
a flight-recorder ring the CLI's ``inspect --request`` can search,
and an SLO rollup that graded every outcome.
"""

import asyncio
import dataclasses
import json

import pytest

from repro.api import SolverConfig
from repro.cli import main as cli_main
from repro.integrity import FdeConfig
from repro.service import PositioningService, ServiceConfig
from repro.telemetry import RecorderConfig, SloConfig, replay_incident

CLEAN_REQUESTS = 6
SPIKED_SATELLITE = 0
SPIKE_METERS = 2000.0


def spike(epoch):
    """One satellite's pseudorange off by a repairable fault."""
    observations = list(epoch.observations)
    observations[SPIKED_SATELLITE] = dataclasses.replace(
        observations[SPIKED_SATELLITE],
        pseudorange=observations[SPIKED_SATELLITE].pseudorange + SPIKE_METERS,
    )
    return dataclasses.replace(epoch, observations=tuple(observations))


@pytest.fixture
def anomaly_run(make_epoch, tmp_path):
    """Run the scenario once; tests assert over the collected state."""
    config = ServiceConfig(
        solver=SolverConfig(algorithm="dlg", clock_bias_meters=0.0),
        max_batch_size=64,
        max_wait_seconds=0.05,
        integrity=FdeConfig(),
        trace=True,
        recorder=RecorderConfig(dump_dir=tmp_path / "records"),
        slo=SloConfig(availability_target=0.5),
    )
    service = PositioningService(config)

    async def scenario():
        async with service:
            # One flush: the batcher waits out max_wait_seconds, by
            # which point the 5ms-deadline request has expired while
            # its batchmates (one spiked) solve normally.
            results = await asyncio.gather(
                *[
                    service.submit(make_epoch(seed=seed))
                    for seed in range(CLEAN_REQUESTS)
                ],
                service.submit(spike(make_epoch(seed=90))),
                service.submit(make_epoch(seed=91), timeout=0.005),
            )
            return results, service.recorder.snapshot(), service.slo.snapshot()

    results, ring, slo = asyncio.run(scenario())
    return {
        "clean": results[:CLEAN_REQUESTS],
        "spiked": results[CLEAN_REQUESTS],
        "missed": results[CLEAN_REQUESTS + 1],
        "ring": ring,
        "slo": slo,
        "dump_dir": tmp_path / "records",
    }


class TestAnomalyFlightRecords:
    def test_outcomes(self, anomaly_run):
        assert [r.status for r in anomaly_run["clean"]] == ["ok"] * CLEAN_REQUESTS
        spiked = anomaly_run["spiked"]
        assert spiked.status == "ok"
        assert spiked.integrity.status == "repaired"
        assert spiked.integrity.excluded_prn is not None
        assert anomaly_run["missed"].status == "timeout"

    def test_span_tree_names_slowest_stage(self, anomaly_run):
        for result in anomaly_run["clean"] + [anomaly_run["spiked"]]:
            trace = result.trace
            leaves = {
                span.name: span.duration_seconds
                for span in trace.root.walk()
                if span is not trace.root and not span.children
            }
            assert trace.slowest_stage == max(leaves, key=leaves.get)
            # The engine's stage split is under the solve span.
            assert trace.root.find("solve") is not None
            assert trace.root.find("fde") is not None
        # The missed request never dispatched: queue is all there is.
        missed = anomaly_run["missed"].trace
        assert [s.name for s in missed.root.children] == ["queue"]
        assert missed.slowest_stage == "queue"

    def test_batch_lineage_is_shared(self, anomaly_run):
        spiked = anomaly_run["spiked"].trace
        assert spiked.batch_sequence >= 0
        peers = set(spiked.batch_peers)
        assert spiked.request_id in peers
        for result in anomaly_run["clean"]:
            assert result.trace.request_id in peers
        # The screened-out request was not a solve peer.
        assert anomaly_run["missed"].trace.request_id not in peers

    def test_both_anomalies_dump_replayable_artifacts(self, anomaly_run):
        dumps = {
            path.name.split("-")[1]: path
            for path in sorted(anomaly_run["dump_dir"].glob("*.json"))
        }
        assert set(dumps) == {"fde_exclusion", "deadline_miss"}
        for path in dumps.values():
            payload = json.loads(path.read_text())
            replayed = replay_incident(payload)
            assert replayed.status == payload["status"]
            assert list(replayed.detail) == payload["detail"]
        fde_payload = json.loads(dumps["fde_exclusion"].read_text())
        assert any("fde=repaired" in line for line in fde_payload["detail"])
        assert (
            fde_payload["record"]["request_id"]
            == anomaly_run["spiked"].trace.request_id
        )

    def test_ring_retains_every_fix_with_trigger_taxonomy(self, anomaly_run):
        records = {
            record["request_id"]: record
            for record in anomaly_run["ring"]["records"]
        }
        assert len(records) == CLEAN_REQUESTS + 2
        spiked_id = anomaly_run["spiked"].trace.request_id
        missed_id = anomaly_run["missed"].trace.request_id
        assert records[spiked_id]["trigger"] == "fde_exclusion"
        assert records[missed_id]["trigger"] == "deadline_miss"
        for result in anomaly_run["clean"]:
            record = records[result.trace.request_id]
            assert record["trigger"] is None
            assert record["trace"]["batch_sequence"] >= 0

    def test_inspect_cli_locates_the_request(self, anomaly_run, capsys):
        spiked_id = anomaly_run["spiked"].trace.request_id
        assert (
            cli_main(
                ["inspect", str(anomaly_run["dump_dir"]), "--request", spiked_id]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"request_id: {spiked_id}" in out
        assert "trigger: fde_exclusion" in out
        assert "replayable: yes" in out
        assert "request" in out and "queue" in out  # the span tree
        assert cli_main(
            ["inspect", str(anomaly_run["dump_dir"]), "--request", "r-nope"]
        ) != 0

    def test_slo_graded_every_outcome(self, anomaly_run):
        slo = anomaly_run["slo"]
        by_status = slo["requests_by_status"]
        assert by_status["ok"] == CLEAN_REQUESTS + 1
        assert by_status["timeout"] == 1
        assert slo["availability"] == pytest.approx(
            (CLEAN_REQUESTS + 1) / (CLEAN_REQUESTS + 2)
        )
        assert slo["window_samples"] == CLEAN_REQUESTS + 2
