"""Shared-memory transport: layout, slab lifecycle, seqlock guards."""

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.service.shard import (
    ShardConfig,
    read_request,
    read_response,
    slab_layout,
    write_request,
    write_response,
)
from repro.service.shm import (
    SLAB_PREFIX,
    SharedSlab,
    SlabLayout,
    TornBatchError,
    check_sealed,
    list_slabs,
    shm_dir,
    stamp_begin,
    stamp_end,
)
from repro.blocks import pack_stream
from repro.validation.scenarios import ScenarioGenerator


# -- SlabLayout --------------------------------------------------------


class TestSlabLayout:
    def test_fields_are_aligned_and_disjoint(self):
        layout = (
            SlabLayout()
            .add("a", (3,), "<i1")
            .add("b", (2, 4), "<f8")
            .add("c", (5,), "<i8")
        )
        buffer = bytearray(layout.nbytes)
        arrays = layout.arrays(buffer)
        assert arrays["a"].shape == (3,)
        assert arrays["b"].shape == (2, 4)
        # Writing one field never bleeds into another.
        arrays["b"][:] = 7.5
        arrays["c"][:] = -1
        assert (arrays["a"] == 0).all()
        assert (arrays["b"] == 7.5).all()
        assert (arrays["c"] == -1).all()
        # 64-byte alignment: every offset is a multiple of 64.
        for _name, _shape, _dtype, offset in layout._fields:
            assert offset % 64 == 0

    def test_spec_round_trip(self):
        layout = SlabLayout().add("x", (4, 2), "<f8").add("y", (1,), "<i8")
        rebuilt = SlabLayout.from_spec(layout.spec())
        assert rebuilt.spec() == layout.spec()
        assert rebuilt.nbytes == layout.nbytes

    def test_duplicate_field_rejected(self):
        layout = SlabLayout().add("x", (1,), "<i8")
        with pytest.raises(ConfigurationError):
            layout.add("x", (2,), "<f8")


# -- SharedSlab lifecycle ----------------------------------------------


class TestSharedSlab:
    def test_create_attach_share_bytes_and_unlink(self):
        before = set(list_slabs())
        slab = SharedSlab.create(4096)
        assert slab.path.startswith(os.path.join(shm_dir(), SLAB_PREFIX))
        assert slab.path in list_slabs()
        view = np.frombuffer(slab.buffer, dtype=np.int64, count=8)
        attached = SharedSlab.attach(slab.path, 4096)
        other = np.frombuffer(attached.buffer, dtype=np.int64, count=8)
        view[3] = 42
        assert other[3] == 42
        del other
        attached.close()
        del view
        slab.close()
        slab.unlink()
        assert set(list_slabs()) == before

    def test_attacher_cannot_unlink(self):
        slab = SharedSlab.create(1024)
        try:
            attached = SharedSlab.attach(slab.path, 1024)
            with pytest.raises(ServiceError):
                attached.unlink()
            attached.close()
        finally:
            slab.close()
            slab.unlink()

    def test_context_manager_unlinks_owner(self):
        before = set(list_slabs())
        with SharedSlab.create(1024) as slab:
            assert slab.path in list_slabs()
        assert set(list_slabs()) == before

    def test_closed_slab_refuses_buffer(self):
        slab = SharedSlab.create(1024)
        slab.close()
        with pytest.raises(ServiceError):
            slab.buffer
        slab.unlink()


# -- seqlock -----------------------------------------------------------


class TestSeqlock:
    def test_sealed_write_passes(self):
        begin = np.zeros(4, dtype=np.int64)
        end = np.zeros(4, dtype=np.int64)
        stamp_begin(begin, 2, 7)
        stamp_end(end, 2, 7)
        check_sealed(begin, end, 2, 7)

    def test_open_window_is_torn(self):
        begin = np.zeros(4, dtype=np.int64)
        end = np.zeros(4, dtype=np.int64)
        stamp_begin(begin, 1, 9)  # writer died before stamp_end
        with pytest.raises(TornBatchError):
            check_sealed(begin, end, 1, 9)

    def test_stale_complete_fill_is_torn(self):
        # A fully sealed *older* batch must not satisfy a newer notify.
        begin = np.zeros(4, dtype=np.int64)
        end = np.zeros(4, dtype=np.int64)
        stamp_begin(begin, 0, 5)
        stamp_end(end, 0, 5)
        with pytest.raises(TornBatchError):
            check_sealed(begin, end, 0, 6)


# -- request/response lanes --------------------------------------------


def _arrays(config=None):
    config = config if config is not None else ShardConfig()
    layout = slab_layout(config)
    return layout.arrays(bytearray(layout.nbytes)), config


class TestRequestLane:
    def test_packed_stream_round_trips_bitwise(self):
        generator = ScenarioGenerator()
        epochs = [generator.generate(seed).epoch for seed in range(40)]
        packed = pack_stream(epochs)
        arrays, _config = _arrays()
        write_request(arrays, 1, 11, packed, None)
        rebuilt, biases = read_request(arrays, 1, 11)
        assert biases is None
        assert len(rebuilt) == len(packed)
        assert rebuilt.unpackable == packed.unpackable
        assert len(rebuilt.buckets) == len(packed.buckets)
        for ours, theirs in zip(rebuilt.buckets, packed.buckets):
            assert ours.satellite_count == theirs.satellite_count
            assert np.array_equal(ours.indices, theirs.indices)
            for attr in ("positions", "pseudoranges", "prns", "weeks",
                         "seconds_of_week"):
                assert np.array_equal(
                    getattr(ours.block, attr), getattr(theirs.block, attr)
                ), attr

    def test_bias_overrides_round_trip(self):
        generator = ScenarioGenerator()
        epochs = [generator.generate(seed).epoch for seed in range(5)]
        packed = pack_stream(epochs)
        arrays, _config = _arrays()
        overrides = np.array([1.5, np.nan, -2.25, np.nan, 0.0])
        write_request(arrays, 0, 3, packed, overrides)
        _rebuilt, biases = read_request(arrays, 0, 3)
        assert biases is not None
        assert np.array_equal(
            np.isfinite(biases), np.isfinite(overrides)
        )
        finite = np.isfinite(overrides)
        assert np.array_equal(biases[finite], overrides[finite])

    def test_torn_request_refused(self):
        generator = ScenarioGenerator()
        packed = pack_stream([generator.generate(0).epoch])
        arrays, _config = _arrays()
        # Simulate a writer that opened the window, wrote a partial
        # payload, and died before sealing.
        stamp_begin(arrays["req_begin"], 2, 9)
        arrays["req_count"][2] = 1
        with pytest.raises(TornBatchError):
            read_request(arrays, 2, 9)


class TestResponseLane:
    def test_outcomes_round_trip(self):
        from repro.integrity.fde import EpochVerdict
        from repro.integrity.monitors import EpochMonitorVerdict, MonitorVerdict

        arrays, _config = _arrays()
        suspect = EpochMonitorVerdict(
            severity="suspect",
            monitors=(
                MonitorVerdict("cn0_drop", "suspect", 9.5, 8.0, ("G07",)),
            ),
        )
        outcomes = [
            ("ok", np.array([1.0, -2.0, 3.5]), 12.25, "dlg", None,
             EpochVerdict("passed", 1.25, 9.5), None),
            ("invalid", None, None, None, "epoch failed batch screening",
             None, None),
            ("failed", None, None, None, "no convergence", None, None),
            ("ok", np.array([7.0, 8.0, 9.0]), -3.5, "dlg/nr-fallback", None,
             EpochVerdict("repaired", 30.0, 9.5, excluded_prn=17), suspect),
            ("ok", np.array([0.5, 0.25, 0.125]), 0.0, "dlg/scalar", None,
             EpochVerdict("unchecked", float("nan"), float("nan")), None),
        ]
        errors, monitors = write_response(arrays, 3, 21, outcomes)
        assert errors == {1: "epoch failed batch screening", 2: "no convergence"}
        assert set(monitors) == {3}
        results = read_response(
            arrays, 3, 21, len(outcomes), errors, "dlg", 5, monitors
        )
        assert results[3].monitor == suspect
        assert results[0].monitor is None
        assert [r.status for r in results] == [
            "ok", "invalid", "failed", "ok", "ok"
        ]
        assert np.array_equal(results[0].position, outcomes[0][1])
        assert results[0].clock_bias_meters == 12.25
        assert results[0].solver == "dlg"
        assert results[0].integrity.status == "passed"
        assert results[0].integrity.test_statistic == 1.25
        assert results[1].error == "epoch failed batch screening"
        assert results[3].solver == "dlg/nr-fallback"
        assert results[3].integrity.excluded_prn == 17
        assert results[4].solver == "dlg/scalar"
        assert results[4].integrity.status == "unchecked"
        assert np.isnan(results[4].integrity.test_statistic)

    def test_torn_response_refused(self):
        arrays, _config = _arrays()
        # Writer crashed mid-fill: window open, partial rows, no seal.
        stamp_begin(arrays["resp_begin"], 0, 4)
        arrays["resp_positions"][0, 0] = 1.0
        with pytest.raises(TornBatchError):
            read_response(arrays, 0, 4, 3, {}, "dlg", 3)


class TestMultiRequestLane:
    """System tags across the shm boundary.

    A mixed stream — pure GPS, G+R, and R+G (same count and totals,
    different slot pattern) — must come back from the slab with the
    same buckets in the same order, system lanes intact, so the
    worker's multi-constellation kernels see exactly the in-process
    blocks.
    """

    def mixed_epochs(self):
        from repro.api import build_scene

        biases = {"G": 120.0, "R": -45.0}
        return [
            build_scene({"G": 11}, clock_bias_meters={"G": 120.0}, seed=0),
            build_scene({"G": 6, "R": 5}, clock_bias_meters=biases, seed=1),
            build_scene({"R": 5, "G": 6}, clock_bias_meters=biases, seed=2),
            build_scene({"G": 6, "R": 5}, clock_bias_meters=biases, seed=3),
        ]

    def test_mixed_patterns_round_trip_bitwise(self):
        packed = pack_stream(self.mixed_epochs())
        # Pattern-split buckets: G-11, G6R5 (rows 1 and 3), R5G6.
        assert len(packed.buckets) == 3
        arrays, _config = _arrays()
        write_request(arrays, 0, 5, packed, None)
        rebuilt, _biases = read_request(arrays, 0, 5)
        assert len(rebuilt.buckets) == len(packed.buckets)
        for ours, theirs in zip(rebuilt.buckets, packed.buckets):
            assert ours.satellite_count == theirs.satellite_count
            assert np.array_equal(ours.indices, theirs.indices)
            assert ours.block.systems.dtype == theirs.block.systems.dtype
            assert np.array_equal(ours.block.systems, theirs.block.systems)
            assert np.array_equal(ours.block.positions, theirs.block.positions)
            assert np.array_equal(
                ours.block.pseudoranges, theirs.block.pseudoranges
            )

    def test_materialize_restores_system_codes(self):
        from repro.service.executor import BatchExecutor

        epochs = self.mixed_epochs()
        packed = pack_stream(epochs)
        arrays, _config = _arrays()
        write_request(arrays, 1, 7, packed, None)
        rebuilt, _biases = read_request(arrays, 1, 7)
        restored = BatchExecutor.materialize(rebuilt)
        assert len(restored) == len(epochs)
        for original, epoch in zip(epochs, restored):
            assert epoch is not None
            assert [obs.system for obs in epoch.observations] == [
                obs.system for obs in original.observations
            ]
            assert [obs.prn for obs in epoch.observations] == [
                obs.prn for obs in original.observations
            ]
