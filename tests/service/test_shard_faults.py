"""Supervisor fault injection: crashes, stalls, budgets, drains, leaks.

The shard's failure contract, pinned end to end with real worker
processes and real ``SIGKILL``-grade deaths (``os._exit`` mid-fill):

* a worker dying mid-batch never hangs or silently drops requests —
  every in-flight request resurfaces as a structured ``retryable``
  result;
* the torn-write seqlock decides salvage vs resurface, so a partially
  filled response slot is never read;
* the restart budget bounds churn, and past it the shard degrades to
  the remaining workers (or fails everything structurally once none
  remain);
* ``stop()`` drains queued work before teardown;
* no shared-memory slab ever leaks — across crash, restart, budget
  exhaustion, and shutdown the slab directory ends exactly where it
  began (enumerated by prefix).
"""

import time

import numpy as np
import pytest

from repro.api import SolverConfig
from repro.errors import ServiceError
from repro.service import (
    ServiceConfig,
    ShardConfig,
    ShardedPositioningService,
)
from repro.service.shm import list_slabs
from repro.validation.scenarios import ScenarioConfig, ScenarioGenerator


def make_epochs(count=40):
    generator = ScenarioGenerator(
        ScenarioConfig(min_satellites=5, max_satellites=8)
    )
    return [generator.generate(seed).epoch for seed in range(count)]


def shard_config(**overrides) -> ShardConfig:
    settings = dict(
        service=ServiceConfig(
            solver=SolverConfig(algorithm="dlg"), max_batch_size=16
        ),
        workers=2,
        batch_size=16,
        heartbeat_interval_seconds=0.02,
        heartbeat_timeout_seconds=5.0,
        max_restarts=2,
        drain_timeout_seconds=5.0,
    )
    settings.update(overrides)
    return ShardConfig(**settings)


@pytest.fixture(autouse=True)
def no_leaked_slabs():
    """Every test starts and ends with a clean slab directory."""
    before = set(list_slabs())
    yield
    assert set(list_slabs()) == before


class TestCrashMidBatch:
    def test_inflight_resurfaces_as_retryable(self):
        epochs = make_epochs(48)
        with ShardedPositioningService(shard_config()) as shard:
            shard.inject_crash(0, after_rows=7)  # torn mid-fill
            started = time.monotonic()
            results = shard.solve_many(epochs)
            elapsed = time.monotonic() - started
        assert elapsed < 30.0  # never hangs
        assert len(results) == len(epochs)
        statuses = {result.status for result in results}
        assert statuses <= {"ok", "retryable"}
        retryable = [r for r in results if r.status == "retryable"]
        assert retryable  # the crashed batch resurfaced, not dropped
        for result in retryable:
            assert result.position is None
            assert "died mid-batch" in result.error
            assert "resubmit" in result.error
            assert result.retry_after_seconds is not None
        # Exactly batch-aligned: a torn batch resurfaces whole.
        assert len(retryable) % 16 == 0

    def test_restarted_worker_serves_again(self):
        epochs = make_epochs(32)
        with ShardedPositioningService(shard_config(workers=1)) as shard:
            shard.inject_crash(0, after_rows=0)
            first = shard.solve_many(epochs)
            assert any(r.status == "retryable" for r in first)
            # The supervisor restarted the worker against the same
            # slab; a clean resubmit now fully succeeds.
            second = shard.solve_many(epochs)
        assert all(r.status == "ok" for r in second)

    def test_crash_after_seal_is_salvaged(self):
        """A worker that dies *after* sealing its response loses nothing.

        ``after_rows`` big enough to cover the batch still tears the
        fill (chaos opens a second begin-stamp window), so the honest
        signal here is the opposite case: a zero-row tear resurfaces
        everything, proving the seqlock — not timing luck — decides.
        """
        epochs = make_epochs(16)
        with ShardedPositioningService(shard_config(workers=1)) as shard:
            shard.inject_crash(0, after_rows=16)
            results = shard.solve_many(epochs)
        assert all(r.status == "retryable" for r in results)


class TestRestartBudget:
    def test_exhaustion_degrades_to_remaining_workers(self):
        epochs = make_epochs(32)
        config = shard_config(workers=2, max_restarts=0)
        with ShardedPositioningService(config) as shard:
            assert shard.live_workers == 2
            shard.inject_crash(0, after_rows=3)
            first = shard.solve_many(epochs)
            assert any(r.status == "retryable" for r in first)
            # Budget is zero: worker 0 stays down, the shard degrades.
            assert shard.live_workers == 1
            second = shard.solve_many(epochs)
            assert all(r.status == "ok" for r in second)
            assert shard.live_workers == 1

    def test_all_workers_dead_fails_structurally_not_hangs(self):
        epochs = make_epochs(32)
        config = shard_config(workers=1, max_restarts=0)
        with ShardedPositioningService(config) as shard:
            shard.inject_crash(0, after_rows=1)
            started = time.monotonic()
            first = shard.solve_many(epochs)
            elapsed = time.monotonic() - started
            assert elapsed < 30.0
            assert shard.live_workers == 0
            # Subsequent calls answer immediately and structurally.
            second = shard.solve_many(epochs)
        for result in second:
            assert result.status == "retryable"
            assert "no live workers" in result.error


class TestHeartbeatReap:
    def test_stalled_worker_is_reaped_and_replaced(self):
        """A wedged worker (alive process, no heartbeats) is detected
        by heartbeat staleness, killed, and its batch resurfaced."""
        epochs = make_epochs(16)
        config = shard_config(
            workers=1,
            heartbeat_interval_seconds=0.02,
            heartbeat_timeout_seconds=0.4,
            max_restarts=1,
        )
        with ShardedPositioningService(config) as shard:
            shard.inject_stall(0)
            started = time.monotonic()
            results = shard.solve_many(epochs)
            elapsed = time.monotonic() - started
            assert all(r.status == "retryable" for r in results)
            assert elapsed < 15.0
            # Reaped, restarted, serving again.
            again = shard.solve_many(epochs)
        assert all(r.status == "ok" for r in again)


class TestGracefulDrain:
    def test_stop_completes_queued_work(self):
        epochs = make_epochs(64)
        with ShardedPositioningService(shard_config()) as shard:
            results = shard.solve_many(epochs)
            shard.stop()  # idempotent with __exit__
            assert not shard.running
        assert all(r.status == "ok" for r in results)

    def test_not_running_raises(self):
        shard = ShardedPositioningService(shard_config())
        with pytest.raises(ServiceError):
            shard.solve_many(make_epochs(1))

    def test_double_start_rejected(self):
        with ShardedPositioningService(shard_config(workers=0)) as shard:
            with pytest.raises(ServiceError):
                shard.start()


class TestSlabLifecycle:
    def test_no_leak_across_restart_cycles(self):
        epochs = make_epochs(16)
        config = shard_config(workers=2, max_restarts=2)
        before = set(list_slabs())
        with ShardedPositioningService(config) as shard:
            during = set(list_slabs()) - before
            assert len(during) == 2  # one slab per worker
            for _round in range(2):
                shard.inject_crash(1, after_rows=2)
                shard.solve_many(epochs)
                # Restart reuses the same slab: nothing new appears.
                assert set(list_slabs()) - before == during
        assert set(list_slabs()) == before

    def test_start_failure_tears_down_cleanly(self, monkeypatch):
        """If the Nth worker fails to spawn, slabs 0..N-1 are freed."""
        config = shard_config(workers=3)
        shard = ShardedPositioningService(config)
        before = set(list_slabs())
        calls = []
        original = ShardedPositioningService._spawn

        def failing_spawn(self, worker):
            calls.append(worker.index)
            if worker.index == 2:
                raise RuntimeError("spawn blew up")
            return original(self, worker)

        monkeypatch.setattr(ShardedPositioningService, "_spawn", failing_spawn)
        with pytest.raises(RuntimeError):
            shard.start()
        assert calls == [0, 1, 2]
        assert not shard.running
        assert set(list_slabs()) == before
