"""PositioningService behaviour under load, faults, and deadlines.

The ISSUE's four service edge cases live here: a request whose
deadline expires mid-batch, a client that cancels while queued, a
queue-full rejection with a retry hint, and a faulty epoch riding in
an otherwise healthy micro-batch.  Plus the degradation ladder: an
ill-conditioned (coplanar) geometry that defeats DLG falls through to
the Newton-Raphson rung while its batchmates still succeed.

All tests drive the real event loop via ``asyncio.run`` from
synchronous test functions (no asyncio pytest plugin in this repo).
"""

import asyncio
import time

import numpy as np
import pytest

from repro.api import SolverConfig
from repro.errors import ConfigurationError, ServiceError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.service import (
    AsyncPositioningClient,
    PositioningService,
    ServiceConfig,
    ServiceResult,
)
from repro.timebase import GpsTime


def fast_config(**overrides) -> ServiceConfig:
    """A DLG service tuned for test speed (short flush deadline)."""
    settings = dict(
        solver=SolverConfig(algorithm="dlg", clock_bias_meters=0.0),
        max_batch_size=64,
        max_wait_seconds=0.01,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


def coplanar_epoch(truth, time_):
    """Satellites in one plane: DLG/DLO degenerate, NR solvable."""
    rng = np.random.default_rng(3)
    observations = []
    for prn in range(1, 8):
        xy = truth[:2] + rng.uniform(-1.5e7, 1.5e7, size=2)
        position = np.array([xy[0], xy[1], truth[2] + 2.0e7])
        observations.append(
            SatelliteObservation(
                prn=prn,
                position=position,
                pseudorange=float(np.linalg.norm(position - truth)),
            )
        )
    return ObservationEpoch(time=time_, observations=tuple(observations))


class TestConfigValidation:
    def test_rejects_non_batchable_solver(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(solver=SolverConfig(algorithm="bancroft"))

    def test_rejects_nonpositive_queue_depth(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_queue_depth=0)


class TestLifecycle:
    def test_submit_outside_running_service_raises(self, make_epoch):
        service = PositioningService(fast_config())

        async def scenario():
            await service.submit(make_epoch())

        with pytest.raises(ServiceError):
            asyncio.run(scenario())

    def test_double_start_raises(self):
        async def scenario():
            async with PositioningService(fast_config()) as service:
                with pytest.raises(ServiceError):
                    await service.start()

        asyncio.run(scenario())

    def test_stop_drains_pending_requests(self, make_stream):
        """Exiting the context resolves every queued future (no strands)."""
        epochs = make_stream(5)

        async def scenario():
            async with PositioningService(
                fast_config(max_wait_seconds=30.0)  # only close() can flush
            ) as service:
                tasks = [
                    asyncio.get_running_loop().create_task(service.submit(e))
                    for e in epochs
                ]
                await asyncio.sleep(0)  # let them enqueue
            return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert all(r.ok for r in results)


class TestHappyPath:
    def test_concurrent_submits_coalesce_into_one_batch(self, make_stream):
        epochs = make_stream(8)

        async def scenario():
            async with PositioningService(fast_config()) as service:
                return await asyncio.gather(*(service.submit(e) for e in epochs))

        results = asyncio.run(scenario())
        assert all(r.status == "ok" for r in results)
        assert all(r.solver == "dlg" for r in results)  # rung 1, batched
        assert all(r.batch_size == len(epochs) for r in results)
        for epoch, result in zip(epochs, results):
            error = np.linalg.norm(result.position - epoch.truth.receiver_position)
            assert error < 1e-5

    def test_per_request_bias_override(self, make_epoch):
        epoch = make_epoch(bias_meters=35.0)

        async def scenario():
            async with PositioningService(fast_config()) as service:
                return await service.submit(epoch, bias_meters=35.0)

        result = asyncio.run(scenario())
        assert result.ok
        error = np.linalg.norm(result.position - epoch.truth.receiver_position)
        assert error < 1e-5

    def test_client_solve_returns_position_fix(self, make_epoch):
        epoch = make_epoch()

        async def scenario():
            async with PositioningService(fast_config()) as service:
                return await AsyncPositioningClient(service).solve(epoch)

        fix = asyncio.run(scenario())
        assert np.linalg.norm(fix.position - epoch.truth.receiver_position) < 1e-5

    def test_client_solve_many_preserves_order(self, make_stream):
        epochs = make_stream(6, count=[7, 8, 9, 7, 8, 9])

        async def scenario():
            async with PositioningService(fast_config()) as service:
                client = AsyncPositioningClient(service)
                return await client.solve_many(epochs, concurrency=3)

        results = asyncio.run(scenario())
        assert len(results) == len(epochs)
        for epoch, result in zip(epochs, results):
            assert result.ok
            assert (
                np.linalg.norm(result.position - epoch.truth.receiver_position)
                < 1e-5
            )


class TestEdgeCases:
    def test_timeout_expired_while_queued(self, make_epoch):
        """Deadline shorter than the flush wait: screened at dispatch."""
        epoch = make_epoch()

        async def scenario():
            async with PositioningService(
                fast_config(max_wait_seconds=0.05)
            ) as service:
                return await service.submit(epoch, timeout=0.01)

        result = asyncio.run(scenario())
        assert result.status == "timeout"
        assert "while queued" in result.error
        assert result.position is None

    def test_timeout_expired_during_batch_solve(self, make_epoch):
        """A slow solve past the deadline reports timeout, not a stale ok."""
        epoch = make_epoch()
        config = fast_config(max_wait_seconds=0.0)
        inner = PositioningService(config)._engine

        class SlowEngine:
            algorithm = inner.algorithm

            def solve_stream(self, epochs, biases, on_undersized):
                time.sleep(0.05)  # blocks the loop, like a real solve
                return inner.solve_stream(
                    epochs, biases, on_undersized=on_undersized
                )

        async def scenario():
            async with PositioningService(config, engine=SlowEngine()) as service:
                return await service.submit(epoch, timeout=0.02)

        result = asyncio.run(scenario())
        assert result.status == "timeout"
        assert "during batch solve" in result.error

    def test_cancelled_request_does_not_disturb_batchmates(self, make_stream):
        epochs = make_stream(3)

        async def scenario():
            async with PositioningService(fast_config()) as service:
                loop = asyncio.get_running_loop()
                doomed = loop.create_task(service.submit(epochs[0]))
                survivors = [
                    loop.create_task(service.submit(e)) for e in epochs[1:]
                ]
                await asyncio.sleep(0)  # all three enqueue
                doomed.cancel()
                results = await asyncio.gather(*survivors)
                cancelled = False
                try:
                    await doomed
                except asyncio.CancelledError:
                    cancelled = True
                return cancelled, results

        cancelled, results = asyncio.run(scenario())
        assert cancelled
        assert all(r.ok for r in results)

    def test_queue_full_rejected_with_retry_hint(self, make_stream):
        epochs = make_stream(2)

        async def scenario():
            async with PositioningService(
                fast_config(max_queue_depth=1, max_wait_seconds=0.05)
            ) as service:
                loop = asyncio.get_running_loop()
                first = loop.create_task(service.submit(epochs[0]))
                await asyncio.sleep(0)  # first now occupies the queue
                rejected = await service.submit(epochs[1])
                return rejected, await first

        rejected, first = asyncio.run(scenario())
        assert rejected.status == "rejected"
        assert rejected.retry_after_seconds == pytest.approx(0.05)
        assert "queue full" in rejected.error
        assert first.ok  # the queued request was unaffected

    def test_faulty_epoch_in_healthy_batch(self, make_stream, make_epoch):
        """An undersized epoch is screened per-row; batchmates stay on
        the batched rung (partial-batch completion, not the ladder)."""
        healthy = make_stream(4)
        faulty = make_epoch(count=8).subset(3)  # < 4 satellites

        async def scenario():
            async with PositioningService(fast_config()) as service:
                return await asyncio.gather(
                    *(service.submit(e) for e in healthy + [faulty])
                )

        results = asyncio.run(scenario())
        assert [r.status for r in results] == ["ok"] * 4 + ["invalid"]
        assert all(r.solver == "dlg" for r in results[:4])
        assert "satellites" in results[-1].error

    def test_ill_conditioned_epoch_falls_back_to_nr(self, make_stream, gps_t0):
        """Coplanar geometry defeats DLG; the NR rung rescues it while
        batchmates re-solve on the scalar rung."""
        healthy = make_stream(2)
        truth = np.array([3623420.0, -5214015.0, 602359.0])
        degenerate = coplanar_epoch(truth, gps_t0)

        async def scenario():
            async with PositioningService(fast_config()) as service:
                return await asyncio.gather(
                    *(service.submit(e) for e in healthy + [degenerate])
                )

        results = asyncio.run(scenario())
        assert all(r.status == "ok" for r in results)
        # The degenerate bucket poisons the whole-batch solve, so the
        # healthy epochs re-solve per-epoch (rung 2) and the coplanar
        # one lands on NR (rung 3).
        assert all(r.solver == "dlg/scalar" for r in results[:2])
        assert results[-1].solver == "dlg/nr-fallback"
        assert np.linalg.norm(results[-1].position - truth) < 1e-5

    def test_nr_fallback_disabled_reports_failed(self, gps_t0):
        truth = np.array([3623420.0, -5214015.0, 602359.0])
        degenerate = coplanar_epoch(truth, gps_t0)

        async def scenario():
            async with PositioningService(
                fast_config(nr_fallback=False)
            ) as service:
                return await service.submit(degenerate)

        result = asyncio.run(scenario())
        assert result.status == "failed"
        assert result.position is None
        assert result.error  # structured, not an escaped exception


class TestResultShape:
    def test_to_dict_roundtrips_json_safely(self, make_epoch):
        import json

        epoch = make_epoch()

        async def scenario():
            async with PositioningService(fast_config()) as service:
                return await service.submit(epoch)

        result = asyncio.run(scenario())
        payload = json.dumps(result.to_dict())
        assert "ok" in payload

    def test_ok_property_matches_status(self):
        assert ServiceResult(status="ok").ok
        assert not ServiceResult(status="failed").ok
