"""Fleet telemetry parity: N worker scrapes sum to the 1-process truth.

Each shard worker owns a private :class:`MetricsRegistry` and ships
snapshots over its control pipe; the router restores them
(:func:`registry_from_snapshot`) and merges with its own registry
(:func:`aggregate_registries`).  Because the same epoch stream does
the same executor work regardless of how it is sharded, every
executor/engine family in the aggregated N-worker scrape must sum
*exactly* to the single-process (inline) values — counters are
integers of events, histogram bucket counts are integers, and the
float sums are sums of identical observations, so equality here is
exact, not approximate.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.api import SolverConfig
from repro.integrity.fde import FdeConfig
from repro.service import (
    ServiceConfig,
    ShardConfig,
    ShardedPositioningService,
)
from repro.telemetry import (
    MetricsRegistry,
    aggregate_registries,
    capture,
    registry_from_snapshot,
)
from repro.validation.scenarios import ScenarioConfig, ScenarioGenerator

#: Families that exist only in one topology by design: the router's
#: own shard bookkeeping (inline mode has no workers to count) and the
#: per-worker batch counter (inline mode never runs worker_main).
TOPOLOGY_FAMILIES = {
    "repro_shard_requests_total",
    "repro_shard_batches_total",
    "repro_shard_retryable_total",
    "repro_shard_worker_restarts_total",
    "repro_shard_workers_up",
    "repro_shard_worker_batches_total",
    # Workspace-cache families count per-process warm-up behaviour
    # (each worker allocates its own scratch buffers once), so their
    # totals scale with process count by design, not with the stream.
    "repro_kernel_workspace_requests_total",
    "repro_kernel_workspace_block_bytes",
    "repro_kernel_workspace_resident_bytes",
}


def make_run(workers):
    """Run one fixed stream through a shard; return the merged registry.

    The epochs carry their true clock biases (the DLG oracle-predictor
    contract) so FDE passes cleanly — stateful quarantine work is
    per-process and would otherwise make executor effort depend on the
    topology being compared.
    """
    generator = ScenarioGenerator(
        ScenarioConfig(min_satellites=5, max_satellites=9)
    )
    scenarios = [generator.generate(seed) for seed in range(48)]
    epochs = [scenario.epoch for scenario in scenarios]
    biases = [scenario.clock_bias_meters for scenario in scenarios]
    config = ShardConfig(
        service=ServiceConfig(
            solver=SolverConfig(algorithm="dlg"),
            max_batch_size=16,
            integrity=FdeConfig(),
        ),
        workers=workers,
        batch_size=16,
    )
    with capture() as (router_registry, _tracer):
        with ShardedPositioningService(config) as shard:
            results = shard.solve_many(epochs, bias_meters=biases)
            assert len(results) == len(epochs)
            assert all(result.status == "ok" for result in results)
            registries = [router_registry]
            if workers:
                worker_registries = shard.worker_registries()
                assert len(worker_registries) == workers
                registries.extend(worker_registries)
            scrape_text = shard.scrape()
    return aggregate_registries(registries), scrape_text


def family_samples(registry, name):
    """``{label values: value-or-histogram-state}`` for one family."""
    document = registry.snapshot()
    family = document[name]
    samples = {}
    for sample in family["samples"]:
        key = tuple(sorted(sample["labels"].items()))
        if family["kind"] == "histogram":
            samples[key] = (
                sample["buckets"],
                sample["sum"],
                sample["count"],
            )
        else:
            samples[key] = sample["value"]
    return family["kind"], samples


class TestFleetParity:
    def test_three_worker_scrape_sums_to_single_process(self):
        single, _text = make_run(workers=0)
        fleet, _text = make_run(workers=3)
        single_doc = single.snapshot()
        fleet_doc = fleet.snapshot()

        shared = (set(single_doc) | set(fleet_doc)) - TOPOLOGY_FAMILIES
        # Every work-proportional family exists on both sides...
        assert shared <= set(single_doc) and shared <= set(fleet_doc)
        assert shared  # ...and the comparison is not vacuous
        for name in sorted(shared):
            single_kind, ours = family_samples(single, name)
            fleet_kind, theirs = family_samples(fleet, name)
            assert single_kind == fleet_kind, name
            assert ours.keys() == theirs.keys(), name
            if single_kind == "gauge":
                # Point gauges (coverage fractions, depths) are
                # per-process readings; aggregation sums them by
                # documented convention, so only the family shape is
                # topology-invariant — values are not.
                continue
            for key in ours:
                if single_kind == "histogram":
                    buckets_a, sum_a, count_a = ours[key]
                    buckets_b, sum_b, count_b = theirs[key]
                    assert buckets_a == buckets_b, (name, key)
                    assert count_a == count_b, (name, key)
                    assert sum_a == sum_b, (name, key)
                else:
                    assert ours[key] == theirs[key], (name, key)

    def test_expected_executor_families_present(self):
        fleet, text = make_run(workers=2)
        document = fleet.snapshot()
        # The engine/executor instrumentation ran inside the workers
        # and made it back through the snapshot pipe.
        assert "repro_service_integrity_verdicts_total" in document
        assert "repro_shard_worker_batches_total" in document
        assert "repro_shard_requests_total" in document
        # The Prometheus fleet text renders the merged families.
        assert "repro_service_integrity_verdicts_total" in text
        assert "repro_fleet_registries" in text

    def test_worker_batch_counters_cover_all_batches(self):
        fleet, _text = make_run(workers=2)
        _kind, samples = family_samples(
            fleet, "repro_shard_worker_batches_total"
        )
        total = sum(samples.values())
        assert total == 3  # 48 epochs / batch_size 16


class TestSnapshotRoundTrip:
    def test_registry_survives_snapshot_restore_aggregate(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo_total", "d", labels=("kind",))
        counter.labels(kind="a").inc(3)
        counter.labels(kind="b").inc(2)
        histogram = registry.histogram(
            "demo_seconds", "d", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.labels().observe(value)
        restored = registry_from_snapshot(registry.snapshot())
        assert restored.snapshot() == registry.snapshot()
        # And the restored registry is a first-class aggregation input.
        doubled = aggregate_registries([registry, restored])
        _kind, samples = family_samples(doubled, "demo_total")
        assert samples[(("kind", "a"),)] == 6
        _kind, samples = family_samples(doubled, "demo_seconds")
        _buckets, total, count = samples[()]
        assert count == 8
        assert total == 2 * (0.05 + 0.5 + 5.0 + 50.0)
