"""Unit + integration tests for DGPS corrections."""

import numpy as np
import pytest

from repro.clocks import SteeringClock
from repro.core import NewtonRaphsonSolver
from repro.dgps import DgpsCorrections, DgpsReferenceStation, apply_corrections
from repro.errors import ConfigurationError, GeometryError
from repro.signals import MeasurementCorrector, PseudorangeNoiseModel, PseudorangeSimulator
from repro.stations import DatasetConfig, ObservationDataset, get_station
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture(scope="module")
def dgps_world():
    """A reference station and a rover 5 km away, both uncorrected.

    Neither receiver applies atmospheric models (the configuration
    DGPS is designed for), so the full correlated atmospheric error is
    present and then differenced away.
    """
    station = get_station("SRZN")
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=30.0))
    rover_position = station.position + np.array([3000.0, 2000.0, 3000.0])
    rover_clock = SteeringClock(epoch=T0, offset_seconds=8e-8, drift=3e-10)

    simulator = dataset._simulator  # truth models shared with the reference
    rover_simulator = PseudorangeSimulator(
        dataset.constellation,
        rover_clock,
        ionosphere=simulator._ionosphere,
        troposphere=simulator._troposphere,
        noise=PseudorangeNoiseModel(sigma_meters=0.5),
        elevation_mask=dataset.config.elevation_mask,
    )
    no_atmo = MeasurementCorrector(
        dataset.constellation, ionosphere=None, troposphere=None
    )

    reference_epochs, rover_epochs = [], []
    rng = np.random.default_rng(5)
    for index in range(20):
        time = dataset.config.start_time + float(index)
        reference_epochs.append(
            no_atmo.correct_epoch(
                simulator.simulate_epoch(
                    station.position, time, np.random.default_rng([9, index])
                ),
                station.position,
                time,
            )
        )
        rover_epochs.append(
            no_atmo.correct_epoch(
                rover_simulator.simulate_epoch(rover_position, time, rng),
                rover_position,
                time,
            )
        )
    reference = DgpsReferenceStation("SRZN", station.position)
    return reference, reference_epochs, rover_epochs, rover_position


class TestReferenceStation:
    def test_corrections_cover_all_satellites(self, dgps_world):
        reference, reference_epochs, *_rest = dgps_world
        corrections = reference.compute_corrections(reference_epochs[0])
        assert set(corrections.prns) == set(reference_epochs[0].prns)

    def test_corrections_contain_common_errors(self, dgps_world):
        """Uncorrected measurements carry tens of meters of atmosphere
        (plus the reference clock bias), and the corrections capture it."""
        reference, reference_epochs, *_rest = dgps_world
        corrections = reference.compute_corrections(reference_epochs[0])
        values = np.array(list(corrections.corrections.values()))
        assert np.all(np.abs(values) > 2.0)
        assert np.all(np.abs(values) < 200.0)

    def test_empty_corrections_rejected(self):
        with pytest.raises(ConfigurationError):
            DgpsCorrections(time=T0, corrections={})


class TestApplyCorrections:
    def test_accuracy_improves(self, dgps_world):
        reference, reference_epochs, rover_epochs, rover_position = dgps_world
        solver = NewtonRaphsonSolver()
        raw_errors, dgps_errors = [], []
        for ref_epoch, rover_epoch in zip(reference_epochs, rover_epochs):
            corrections = reference.compute_corrections(ref_epoch)
            corrected = apply_corrections(rover_epoch, corrections)
            raw_errors.append(solver.solve(rover_epoch).distance_to(rover_position))
            dgps_errors.append(solver.solve(corrected).distance_to(rover_position))
        assert np.mean(dgps_errors) < 0.6 * np.mean(raw_errors)

    def test_rejects_stale_corrections(self, dgps_world):
        reference, reference_epochs, rover_epochs, _position = dgps_world
        corrections = reference.compute_corrections(reference_epochs[0])
        stale_rover = rover_epochs[-1]  # 19 s later than corrections
        with pytest.raises(ConfigurationError, match="old"):
            apply_corrections(stale_rover, corrections, max_age_seconds=5.0)

    def test_uncovered_satellites_dropped(self, dgps_world):
        reference, reference_epochs, rover_epochs, _position = dgps_world
        corrections = reference.compute_corrections(reference_epochs[0])
        # Remove one satellite's correction.
        reduced = DgpsCorrections(
            time=corrections.time,
            corrections={
                prn: value
                for prn, value in corrections.corrections.items()
                if prn != rover_epochs[0].prns[0]
            },
        )
        corrected = apply_corrections(rover_epochs[0], reduced)
        assert rover_epochs[0].prns[0] not in corrected.prns

    def test_rejects_when_too_few_remain(self, dgps_world):
        reference, reference_epochs, rover_epochs, _position = dgps_world
        corrections = reference.compute_corrections(reference_epochs[0])
        only_three = DgpsCorrections(
            time=corrections.time,
            corrections=dict(list(corrections.corrections.items())[:3]),
        )
        with pytest.raises(GeometryError, match="corrections"):
            apply_corrections(rover_epochs[0], only_three)

    def test_solved_bias_is_relative(self, dgps_world):
        """After DGPS the solved 'clock bias' is rover-minus-reference."""
        reference, reference_epochs, rover_epochs, _position = dgps_world
        solver = NewtonRaphsonSolver()
        corrections = reference.compute_corrections(reference_epochs[0])
        corrected = apply_corrections(rover_epochs[0], corrections)
        fix = solver.solve(corrected)
        # Rover bias ~24 m, reference bias ~15-25 m: difference small.
        assert abs(fix.clock_bias_meters) < 60.0
