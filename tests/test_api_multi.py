"""The facade's multi-constellation surface: config, scenes, dispatch.

``constellations="per_constellation"`` changes what a config may
carry (no external bias sources, no 4-state warm start, no Bancroft)
and what the solve paths return; :func:`repro.api.build_scene` is the
one reproducible scene constructor both modes share.
"""

import numpy as np
import pytest

from repro.api import SolverConfig, build_scene, solve, solve_batch
from repro.clocks import LinearClockBiasPredictor
from repro.errors import ConfigurationError

GR_BIASES = {"G": 120.0, "R": -45.0}


def gr_scene(seed=0, **kwargs):
    return build_scene(
        {"G": 6, "R": 5}, clock_bias_meters=GR_BIASES, seed=seed, **kwargs
    )


class TestPerConstellationConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="constellations"):
            SolverConfig(constellations="dual")

    def test_bancroft_rejected(self):
        with pytest.raises(ConfigurationError, match="[Bb]ancroft"):
            SolverConfig(
                algorithm="bancroft", constellations="per_constellation"
            )

    def test_fixed_bias_rejected(self):
        with pytest.raises(ConfigurationError, match="estimates the clock"):
            SolverConfig(
                constellations="per_constellation", clock_bias_meters=10.0
            )

    def test_predictor_rejected(self):
        with pytest.raises(ConfigurationError, match="estimates the clock"):
            SolverConfig(
                constellations="per_constellation",
                clock_predictor=LinearClockBiasPredictor(),
            )

    def test_initial_state_rejected(self):
        with pytest.raises(ConfigurationError, match="initial_state"):
            SolverConfig(
                algorithm="nr",
                constellations="per_constellation",
                initial_state=(0.0, 0.0, 0.0, 0.0),
            )

    @pytest.mark.parametrize("algorithm", ["nr", "dlo", "dlg"])
    def test_mode_threads_into_built_solvers(self, algorithm):
        config = SolverConfig(
            algorithm=algorithm, constellations="per_constellation"
        )
        assert config.build_solver().constellations == "per_constellation"
        assert config.build_batch_solver().constellations == "per_constellation"

    def test_nr_fallback_keeps_mode(self):
        config = SolverConfig(
            algorithm="dlg", constellations="per_constellation"
        )
        assert config.nr_fallback().constellations == "per_constellation"


class TestMultiSolveDispatch:
    @pytest.mark.parametrize("algorithm", ["nr", "dlo", "dlg"])
    def test_solve_recovers_position_and_biases(self, algorithm):
        epoch = gr_scene(seed=3)
        fix = solve(
            epoch,
            SolverConfig(
                algorithm=algorithm, constellations="per_constellation"
            ),
        )
        assert np.linalg.norm(fix.position - epoch.truth.receiver_position) < 1e-4
        assert fix.clock_bias_map == pytest.approx(GR_BIASES, abs=1e-4)
        # The legacy scalar field is the first constellation's lane.
        assert fix.clock_bias_meters == pytest.approx(120.0, abs=1e-4)

    @pytest.mark.parametrize("algorithm", ["nr", "dlo", "dlg"])
    def test_solve_batch_multi(self, algorithm):
        epochs = [gr_scene(seed=seed) for seed in range(4)]
        config = SolverConfig(
            algorithm=algorithm, constellations="per_constellation"
        )
        positions = solve_batch(epochs, config)
        assert positions.shape == (4, 3)
        for epoch, row in zip(epochs, positions):
            assert np.linalg.norm(row - epoch.truth.receiver_position) < 1e-4

    def test_solve_batch_multi_rejects_predicted_biases(self):
        epochs = [gr_scene(seed=seed) for seed in range(3)]
        config = SolverConfig(
            algorithm="dlg", constellations="per_constellation"
        )
        with pytest.raises(ConfigurationError, match="estimates the clock"):
            solve_batch(epochs, config, biases=[0.0, 0.0, 0.0])

    def test_single_mode_ignores_tags(self):
        # A tagged scene through a single-mode solver keeps the paper's
        # one-bias model: solvable when the biases coincide.
        epoch = build_scene(
            {"G": 5, "R": 4}, clock_bias_meters=35.0, seed=2
        )
        fix = solve(epoch, SolverConfig(clock_bias_meters=35.0))
        assert np.linalg.norm(fix.position - epoch.truth.receiver_position) < 1e-5
        assert fix.clock_biases is None


class TestBuildScene:
    def test_int_count_is_legacy_shape(self):
        epoch = build_scene(8, clock_bias_meters=35.0, seed=1)
        assert len(epoch.observations) == 8
        assert {obs.system for obs in epoch.observations} == {"G"}
        assert epoch.truth.clock_bias_meters == 35.0
        assert epoch.truth.clock_biases is None

    def test_mapping_tags_and_orders_systems(self):
        epoch = gr_scene()
        systems = [obs.system for obs in epoch.observations]
        assert systems == ["G"] * 6 + ["R"] * 5
        assert epoch.truth.clock_biases == (("G", 120.0), ("R", -45.0))
        assert epoch.truth.clock_bias_meters == 120.0  # first lane

    def test_mapping_order_is_preserved(self):
        epoch = build_scene(
            {"R": 5, "G": 6}, clock_bias_meters=GR_BIASES, seed=0
        )
        assert epoch.truth.clock_biases[0] == ("R", -45.0)
        assert epoch.truth.clock_bias_meters == -45.0

    def test_deterministic_by_seed(self):
        a, b = gr_scene(seed=9), gr_scene(seed=9)
        assert np.array_equal(a.dense()[1], b.dense()[1])
        assert not np.array_equal(a.dense()[1], gr_scene(seed=10).dense()[1])

    def test_zero_noise_scene_is_exactly_consistent(self):
        epoch = gr_scene(seed=4)
        truth = epoch.truth.receiver_position
        biases = dict(epoch.truth.clock_biases)
        for obs in epoch.observations:
            expected = np.linalg.norm(obs.position - truth) + biases[obs.system]
            assert obs.pseudorange == pytest.approx(expected, abs=1e-6)

    def test_lowercase_codes_normalized(self):
        epoch = build_scene({"g": 3, "r": 3}, seed=0)
        assert {obs.system for obs in epoch.observations} == {"G", "R"}

    def test_rejects_duplicate_system_after_normalization(self):
        with pytest.raises(ConfigurationError, match="twice"):
            build_scene({"g": 3, "G": 4})

    def test_rejects_empty_and_nonpositive_counts(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            build_scene({})
        with pytest.raises(ConfigurationError, match=">= 1"):
            build_scene({"G": 4, "R": 0})

    def test_rejects_bias_for_absent_system(self):
        with pytest.raises(ConfigurationError, match="not in the scene"):
            build_scene({"G": 5}, clock_bias_meters={"G": 1.0, "E": 2.0})

    def test_omitted_bias_defaults_to_zero(self):
        epoch = build_scene(
            {"G": 5, "R": 4}, clock_bias_meters={"G": 7.0}, seed=0
        )
        assert dict(epoch.truth.clock_biases) == {"G": 7.0, "R": 0.0}

    def test_rejects_non_finite_inputs(self):
        with pytest.raises(ConfigurationError, match="finite"):
            build_scene({"G": 5}, clock_bias_meters={"G": float("nan")})
        with pytest.raises(ConfigurationError, match="noise_sigma"):
            build_scene(5, noise_sigma=-1.0)
