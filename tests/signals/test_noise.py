"""Unit + statistical tests for the pseudorange noise model."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals import PseudorangeNoiseModel


class TestSigma:
    def test_zenith_sigma_is_base(self):
        model = PseudorangeNoiseModel(sigma_meters=1.5)
        assert model.sigma_at(math.pi / 2) == pytest.approx(1.5)

    def test_low_elevation_inflates(self):
        model = PseudorangeNoiseModel(sigma_meters=1.0)
        assert model.sigma_at(math.radians(10.0)) == pytest.approx(
            1.0 / math.sin(math.radians(10.0))
        )

    def test_clamped_below_five_degrees(self):
        model = PseudorangeNoiseModel(sigma_meters=1.0)
        assert model.sigma_at(math.radians(1.0)) == model.sigma_at(math.radians(5.0))

    def test_unweighted_flat(self):
        model = PseudorangeNoiseModel(sigma_meters=2.0, elevation_weighting=False)
        assert model.sigma_at(math.radians(5.0)) == 2.0
        assert model.sigma_at(math.pi / 2) == 2.0

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            PseudorangeNoiseModel(sigma_meters=-1.0)


class TestSampling:
    def test_zero_sigma_returns_zero(self):
        model = PseudorangeNoiseModel(sigma_meters=0.0)
        rng = np.random.default_rng(0)
        assert model.sample(1.0, rng) == 0.0

    def test_sample_statistics(self):
        model = PseudorangeNoiseModel(sigma_meters=1.0, elevation_weighting=False)
        rng = np.random.default_rng(7)
        samples = np.array([model.sample(1.0, rng) for _ in range(5000)])
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)
        assert np.std(samples) == pytest.approx(1.0, abs=0.05)

    def test_reproducible_with_seeded_rng(self):
        model = PseudorangeNoiseModel()
        a = [model.sample(1.0, np.random.default_rng(5)) for _ in range(3)]
        b = [model.sample(1.0, np.random.default_rng(5)) for _ in range(3)]
        assert a[0] == b[0]
