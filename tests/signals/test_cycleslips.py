"""Unit + integration tests for cycle-slip detection."""

import numpy as np
import pytest

from repro.constants import L1_WAVELENGTH
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.signals import CycleSlipDetector, HatchFilter
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


def make_stream(epochs=20, slip_at=None, slip_cycles=50, noise=0.5, seed=0):
    """One-satellite stream with an optional mid-stream cycle slip."""
    rng = np.random.default_rng(seed)
    true_range = 2.2e7
    ambiguity = 1000.0
    stream = []
    for index in range(epochs):
        extra = 0.0
        if slip_at is not None and index >= slip_at:
            extra = slip_cycles * L1_WAVELENGTH
        code = true_range + rng.normal(0.0, noise)
        phase = true_range + ambiguity + extra + rng.normal(0.0, 0.003)
        obs = SatelliteObservation(
            prn=9,
            position=np.array([2.2e7, 1e6, 1e6]),
            pseudorange=code,
            carrier_range=phase,
        )
        stream.append(ObservationEpoch(time=T0 + float(index), observations=(obs,)))
    return stream


class TestConfiguration:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            CycleSlipDetector(threshold_meters=0.0)

    def test_rejects_bad_gap(self):
        with pytest.raises(ConfigurationError):
            CycleSlipDetector(max_gap_seconds=-1.0)


class TestDetection:
    def test_clean_stream_no_slips(self):
        detector = CycleSlipDetector()
        for epoch in make_stream():
            assert detector.check_epoch(epoch) == []
        assert detector.slip_count == 0

    def test_slip_detected_at_the_right_epoch(self):
        detector = CycleSlipDetector()
        flagged_at = None
        for index, epoch in enumerate(make_stream(slip_at=10)):
            if detector.check_epoch(epoch):
                flagged_at = index
                break
        assert flagged_at == 10
        assert detector.slip_count == 1

    def test_small_slip_below_threshold_tolerated(self):
        # 10 cycles ~ 1.9 m < the 5 m default threshold.
        detector = CycleSlipDetector()
        slips = []
        for epoch in make_stream(slip_at=10, slip_cycles=10, noise=0.1):
            slips.extend(detector.check_epoch(epoch))
        assert slips == []

    def test_outage_restart_is_not_a_slip(self):
        detector = CycleSlipDetector(max_gap_seconds=5.0)
        stream = make_stream(epochs=5)
        for epoch in stream[:3]:
            detector.check_epoch(epoch)
        # 20 s later with a big ambiguity change: outage restart.
        late_obs = SatelliteObservation(
            prn=9,
            position=np.array([2.2e7, 1e6, 1e6]),
            pseudorange=2.2e7,
            carrier_range=2.2e7 + 99_999.0,
        )
        late = ObservationEpoch(time=T0 + 25.0, observations=(late_obs,))
        assert detector.check_epoch(late) == []

    def test_missing_carrier_drops_channel(self):
        detector = CycleSlipDetector()
        stream = make_stream(epochs=3)
        detector.check_epoch(stream[0])
        bare = stream[1].with_observations(
            [
                SatelliteObservation(
                    prn=9,
                    position=stream[1].observations[0].position,
                    pseudorange=stream[1].observations[0].pseudorange,
                )
            ]
        )
        detector.check_epoch(bare)
        # Channel gone: the next carrier epoch restarts, no slip.
        assert detector.check_epoch(stream[2]) == []

    def test_time_backwards_raises(self):
        detector = CycleSlipDetector()
        stream = make_stream(epochs=3)
        detector.check_epoch(stream[2])
        with pytest.raises(ConfigurationError, match="time order"):
            detector.check_epoch(stream[0])

    def test_manual_reset(self):
        detector = CycleSlipDetector()
        stream = make_stream(slip_at=2, epochs=4)
        detector.check_epoch(stream[0])
        detector.reset(9)
        # With the channel reset just before the slip epoch, the slip
        # epoch initializes a fresh channel instead of flagging.
        assert detector.check_epoch(stream[2]) == []


class TestHatchIntegration:
    def test_undetected_slip_biases_hatch_detected_slip_does_not(self):
        """The whole point: a slip poisons the Hatch output unless the
        detector resets the channel first."""
        true_range = 2.2e7

        def run(with_detector):
            hatch = HatchFilter(window=50)
            detector = CycleSlipDetector()
            final = None
            for epoch in make_stream(epochs=60, slip_at=30, noise=0.3, seed=3):
                if with_detector:
                    for prn in detector.check_epoch(epoch):
                        hatch.reset(prn)
                final = hatch.smooth_epoch(epoch)
            return abs(final.observations[0].pseudorange - true_range)

        biased = run(with_detector=False)
        protected = run(with_detector=True)
        slip_magnitude = 50 * L1_WAVELENGTH  # ~9.5 m
        assert biased > 3.0  # inherited a large share of the slip
        assert protected < 1.0
        assert protected < biased
