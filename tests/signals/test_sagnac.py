"""Unit tests for the Sagnac rotation and light-time iteration."""

import math

import numpy as np
import pytest

from repro.constants import EARTH_ROTATION_RATE, SPEED_OF_LIGHT
from repro.errors import ConvergenceError
from repro.signals import sagnac_rotation, signal_travel_time


class TestSagnacRotation:
    def test_zero_travel_time_is_identity(self):
        position = np.array([1e7, -2e7, 5e6])
        np.testing.assert_array_equal(sagnac_rotation(position, 0.0), position)

    def test_preserves_norm(self):
        position = np.array([1e7, -2e7, 5e6])
        rotated = sagnac_rotation(position, 0.08)
        assert np.linalg.norm(rotated) == pytest.approx(np.linalg.norm(position))

    def test_z_component_unchanged(self):
        position = np.array([1e7, -2e7, 5e6])
        assert sagnac_rotation(position, 0.08)[2] == position[2]

    def test_rotation_angle(self):
        position = np.array([1e7, 0.0, 0.0])
        tau = 0.075
        rotated = sagnac_rotation(position, tau)
        angle = math.atan2(rotated[1], rotated[0])
        assert angle == pytest.approx(-EARTH_ROTATION_RATE * tau)

    def test_equatorial_magnitude(self):
        # r * omega_e * tau = 2.65e7 * 7.29e-5 * 0.075 ~ 145 m of arc
        # for a GPS satellite over one signal flight.
        position = np.array([2.65e7, 0.0, 0.0])
        displaced = np.linalg.norm(sagnac_rotation(position, 0.075) - position)
        assert 100.0 < displaced < 200.0


class TestSignalTravelTime:
    def test_static_satellite_exact(self):
        receiver = np.array([6.37e6, 0.0, 0.0])
        satellite = np.array([2.6e7, 0.0, 0.0])

        def position_at(_tau):
            return satellite

        tau, rotated = signal_travel_time(position_at, receiver)
        # With a static satellite the only effect is the Sagnac rotation.
        expected_range = np.linalg.norm(sagnac_rotation(satellite, tau) - receiver)
        assert tau == pytest.approx(expected_range / SPEED_OF_LIGHT, rel=1e-12)
        np.testing.assert_allclose(rotated, sagnac_rotation(satellite, tau))

    def test_plausible_gps_travel_time(self):
        receiver = np.array([6.37e6, 0.0, 0.0])
        satellite = np.array([2.0e7, 1.2e7, 1.0e7])
        tau, _rotated = signal_travel_time(lambda _t: satellite, receiver)
        assert 0.06 < tau < 0.09

    def test_converges_quickly(self):
        receiver = np.array([6.37e6, 0.0, 0.0])
        satellite = np.array([2.0e7, 1.2e7, 1.0e7])
        tau, _ = signal_travel_time(lambda _t: satellite, receiver, max_iterations=4)
        assert tau > 0

    def test_nonconvergence_raises(self):
        receiver = np.array([6.37e6, 0.0, 0.0])

        calls = {"n": 0}

        def oscillating(_tau):
            # Jump the satellite by thousands of km every call so the
            # fixed point never settles.
            calls["n"] += 1
            sign = 1 if calls["n"] % 2 else -1
            return np.array([2.0e7 + sign * 5e6, 0.0, 0.0])

        with pytest.raises(ConvergenceError):
            signal_travel_time(oscillating, receiver, max_iterations=5)
