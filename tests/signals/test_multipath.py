"""Unit + integration tests for the multipath model."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signals import MultipathModel
from repro.stations import DatasetConfig, ObservationDataset, get_station
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


class TestModelShape:
    def test_bounded_by_amplitude(self):
        model = MultipathModel(code_amplitude_meters=2.0)
        for prn in (1, 7, 31):
            for dt in range(0, 1200, 37):
                bias = model.code_bias(prn, math.radians(10.0), T0 + float(dt))
                assert abs(bias) <= 2.0

    def test_decays_with_elevation(self):
        model = MultipathModel(code_amplitude_meters=2.0)

        def envelope(elevation_deg):
            values = [
                abs(model.code_bias(5, math.radians(elevation_deg), T0 + float(dt)))
                for dt in range(0, 600, 7)
            ]
            return max(values)

        assert envelope(10.0) > envelope(40.0) > envelope(80.0)

    def test_oscillates_in_time(self):
        model = MultipathModel(period_seconds=100.0)
        values = [
            model.code_bias(3, math.radians(15.0), T0 + float(dt))
            for dt in range(0, 100, 5)
        ]
        assert min(values) < 0 < max(values)

    def test_periodicity(self):
        model = MultipathModel(period_seconds=100.0)
        a = model.code_bias(3, 0.3, T0 + 17.0)
        b = model.code_bias(3, 0.3, T0 + 117.0)
        assert a == pytest.approx(b, abs=1e-9)

    def test_satellites_decorrelated(self):
        model = MultipathModel()
        biases = {model.code_bias(prn, 0.3, T0 + 50.0) for prn in range(1, 12)}
        assert len(biases) == 11  # all distinct phases

    def test_carrier_fraction(self):
        model = MultipathModel(carrier_fraction=0.01)
        code = model.code_bias(4, 0.3, T0 + 10.0)
        carrier = model.carrier_bias(4, 0.3, T0 + 10.0)
        assert carrier == pytest.approx(0.01 * code)

    def test_deterministic(self):
        a = MultipathModel().code_bias(9, 0.4, T0 + 123.0)
        b = MultipathModel().code_bias(9, 0.4, T0 + 123.0)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultipathModel(code_amplitude_meters=-1.0)
        with pytest.raises(ConfigurationError):
            MultipathModel(carrier_fraction=2.0)
        with pytest.raises(ConfigurationError):
            MultipathModel(period_seconds=0.0)


class TestDatasetIntegration:
    def _paired_datasets(self, amplitude, duration=60.0):
        """Identical datasets except for the multipath model, so their
        per-satellite pseudorange difference IS the multipath bias."""
        station = get_station("SRZN")
        base = dict(duration_seconds=duration, noise_sigma_meters=0.0)
        clean = ObservationDataset(station, DatasetConfig(**base))
        harsh = ObservationDataset(
            station,
            DatasetConfig(**base, multipath_amplitude_meters=amplitude),
        )
        return station, clean, harsh

    def test_multipath_appears_in_pseudoranges(self):
        _station, clean, harsh = self._paired_datasets(3.0, duration=5.0)
        clean_epoch = clean.epoch_at(0)
        harsh_epoch = harsh.epoch_at(0)
        deltas = [
            h.pseudorange - c.pseudorange
            for c, h in zip(clean_epoch.observations, harsh_epoch.observations)
        ]
        assert any(abs(delta) > 0.1 for delta in deltas)
        assert all(abs(delta) <= 3.0 + 1e-9 for delta in deltas)

    def test_multipath_degrades_accuracy_over_a_window(self):
        from repro.core import NewtonRaphsonSolver

        station, clean, harsh = self._paired_datasets(6.0, duration=120.0)
        solver = NewtonRaphsonSolver()
        clean_errors = [
            solver.solve(clean.epoch_at(i)).distance_to(station.position)
            for i in range(0, 120, 2)
        ]
        harsh_errors = [
            solver.solve(harsh.epoch_at(i)).distance_to(station.position)
            for i in range(0, 120, 2)
        ]
        assert np.mean(harsh_errors) > np.mean(clean_errors)

    def test_multipath_bias_is_time_correlated(self):
        """Adjacent epochs see nearly the same multipath (unlike white
        noise) — the defining property for the smoothing discussion."""
        _station, clean, harsh = self._paired_datasets(3.0, duration=5.0)

        def bias_at(index):
            clean_by_prn = {
                o.prn: o.pseudorange for o in clean.epoch_at(index).observations
            }
            return {
                o.prn: o.pseudorange - clean_by_prn[o.prn]
                for o in harsh.epoch_at(index).observations
                if o.prn in clean_by_prn
            }

        now, then = bias_at(0), bias_at(1)
        for prn, bias in now.items():
            if prn not in then:
                continue
            # Max rate of the sinusoid: 2*pi*A/T ~ 0.03 m/s for A=3,
            # T=600; allow generous slack.
            assert abs(then[prn] - bias) < 0.1
            # And the biases themselves are not all negligible.
        assert any(abs(bias) > 0.1 for bias in now.values())
