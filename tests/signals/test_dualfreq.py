"""Unit + integration tests for dual-frequency processing."""

import numpy as np
import pytest

from repro import NewtonRaphsonSolver
from repro.constants import IONO_L2_SCALE
from repro.errors import GeometryError
from repro.evaluation import ErrorStatistics, enu_error
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.signals import (
    NOISE_AMPLIFICATION,
    ionosphere_free_epoch,
    ionosphere_free_pseudorange,
)
from repro.signals.dualfreq import ALPHA_L1, ALPHA_L2
from repro.stations import DatasetConfig, ObservationDataset, get_station
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


class TestCombinationAlgebra:
    def test_coefficients_sum_to_one(self):
        # Geometry (frequency-independent) must pass through unscaled.
        assert ALPHA_L1 + ALPHA_L2 == pytest.approx(1.0)

    def test_known_gps_values(self):
        # The textbook L1/L2 coefficients ~ (2.546, -1.546).
        assert ALPHA_L1 == pytest.approx(2.546, abs=0.01)
        assert ALPHA_L2 == pytest.approx(-1.546, abs=0.01)

    def test_removes_dispersive_delay_exactly(self):
        geometry = 2.2e7
        iono_l1 = 7.5
        p1 = geometry + iono_l1
        p2 = geometry + IONO_L2_SCALE * iono_l1
        assert ionosphere_free_pseudorange(p1, p2) == pytest.approx(
            geometry, abs=1e-9
        )

    def test_model_correction_cancels_in_combination(self):
        """Pre-correcting both bands with *any* iono estimate leaves the
        combination unchanged — the estimate enters in the same 1/f^2
        ratio and cancels."""
        geometry, iono, estimate = 2.2e7, 7.5, 4.2
        p1 = geometry + iono - estimate
        p2 = geometry + IONO_L2_SCALE * (iono - estimate)
        assert ionosphere_free_pseudorange(p1, p2) == pytest.approx(
            geometry, abs=1e-9
        )

    def test_noise_amplification_value(self):
        assert NOISE_AMPLIFICATION == pytest.approx(
            np.hypot(ALPHA_L1, ALPHA_L2), rel=1e-12
        )
        assert 2.5 < NOISE_AMPLIFICATION < 3.5


class TestIonosphereFreeEpoch:
    def _dual_epoch(self, iono=6.0, count=6):
        rng = np.random.default_rng(0)
        truth = np.array([3623420.0, -5214015.0, 602359.0])
        observations = []
        for prn in range(1, count + 1):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            direction += truth / np.linalg.norm(truth)
            direction /= np.linalg.norm(direction)
            position = truth + direction * rng.uniform(2.0e7, 2.6e7)
            geometry = float(np.linalg.norm(position - truth))
            observations.append(
                SatelliteObservation(
                    prn=prn,
                    position=position,
                    pseudorange=geometry + iono,
                    pseudorange_l2=geometry + IONO_L2_SCALE * iono,
                )
            )
        return ObservationEpoch(time=T0, observations=tuple(observations)), truth

    def test_combined_epoch_solves_exactly(self):
        epoch, truth = self._dual_epoch(iono=9.0)
        combined = ionosphere_free_epoch(epoch)
        fix = NewtonRaphsonSolver().solve(combined)
        assert np.linalg.norm(fix.position - truth) < 1e-3

    def test_l2_cleared_and_l1_replaced(self):
        epoch, _truth = self._dual_epoch()
        combined = ionosphere_free_epoch(epoch)
        for before, after in zip(epoch.observations, combined.observations):
            assert after.pseudorange_l2 is None
            assert after.pseudorange != before.pseudorange

    def test_satellites_without_l2_dropped(self):
        epoch, _truth = self._dual_epoch(count=6)
        observations = list(epoch.observations)
        first = observations[0]
        observations[0] = SatelliteObservation(
            prn=first.prn, position=first.position, pseudorange=first.pseudorange
        )
        mixed = epoch.with_observations(observations)
        combined = ionosphere_free_epoch(mixed)
        assert combined.satellite_count == 5
        assert first.prn not in combined.prns

    def test_too_few_dual_band_raises(self):
        epoch, _truth = self._dual_epoch(count=3)
        with pytest.raises(GeometryError, match="both bands"):
            ionosphere_free_epoch(epoch)


class TestEndToEnd:
    def test_dual_frequency_removes_systematic_vertical(self):
        """Single-frequency residual iono is systematically positive and
        leaks into the solution; the combination removes it at the cost
        of amplified white noise — so the *signed mean vertical* error
        improves even if the scatter grows."""
        station = get_station("SRZN")
        dataset = ObservationDataset(
            station,
            DatasetConfig(
                duration_seconds=120.0,
                dual_frequency=True,
                ionosphere_scale=1.6,  # large model mismatch
            ),
        )
        solver = NewtonRaphsonSolver()
        single, dual = [], []
        for index in range(dataset.epoch_count):
            epoch = dataset.epoch_at(index)
            single.append(
                enu_error(solver.solve(epoch).position, station.position)
            )
            combined = ionosphere_free_epoch(epoch)
            dual.append(
                enu_error(solver.solve(combined).position, station.position)
            )
        single_stats = ErrorStatistics.from_errors(single)
        dual_stats = ErrorStatistics.from_errors(dual)
        assert abs(dual_stats.mean_vertical_signed) < abs(
            single_stats.mean_vertical_signed
        )

    def test_dataset_l2_present_when_enabled(self):
        dataset = ObservationDataset(
            get_station("YYR1"),
            DatasetConfig(duration_seconds=3.0, dual_frequency=True),
        )
        epoch = dataset.epoch_at(0)
        assert all(obs.pseudorange_l2 is not None for obs in epoch.observations)

    def test_l2_larger_than_l1(self):
        """The L2 band sees more ionosphere, so its pseudorange exceeds
        L1's by (gamma - 1) * iono > 0 (modulo noise)."""
        dataset = ObservationDataset(
            get_station("SRZN"),
            DatasetConfig(
                duration_seconds=3.0, dual_frequency=True, noise_sigma_meters=0.0
            ),
        )
        epoch = dataset.epoch_at(0)
        for obs in epoch.observations:
            assert obs.pseudorange_l2 > obs.pseudorange
