"""Unit tests for pseudorange simulation and correction."""

import numpy as np
import pytest

from repro.atmosphere import KlobucharModel, SaastamoinenModel
from repro.clocks import SteeringClock
from repro.constants import SPEED_OF_LIGHT
from repro.constellation import Constellation
from repro.signals import (
    MeasurementCorrector,
    PseudorangeNoiseModel,
    PseudorangeSimulator,
)
from repro.stations import get_station
from repro.timebase import GpsTime

EPOCH = GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture(scope="module")
def constellation():
    return Constellation.nominal(EPOCH, rng=np.random.default_rng(11))


@pytest.fixture
def station():
    return get_station("SRZN")


@pytest.fixture
def clock():
    return SteeringClock(epoch=EPOCH, offset_seconds=1e-7, drift=1e-10)


def make_simulator(constellation, clock, **kwargs):
    defaults = dict(noise=PseudorangeNoiseModel(sigma_meters=0.0))
    defaults.update(kwargs)
    return PseudorangeSimulator(constellation, clock, **defaults)


class TestSimulation:
    def test_produces_visible_satellites(self, constellation, station, clock):
        simulator = make_simulator(constellation, clock)
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        assert len(raw) >= 6
        assert len({r.prn for r in raw}) == len(raw)

    def test_pseudorange_decomposition(self, constellation, station, clock):
        """The raw pseudorange equals the sum of its recorded parts —
        the paper's eq. 3-5 structure, verifiable because the simulator
        records every component."""
        simulator = make_simulator(constellation, clock)
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        for r in raw:
            reconstructed = (
                r.geometric_range
                + r.receiver_clock_meters
                - r.satellite_clock_meters
                + r.ionosphere_meters
                + r.troposphere_meters
                + r.noise_meters
            )
            assert r.pseudorange == pytest.approx(reconstructed, abs=1e-9)

    def test_geometric_range_matches_position(self, constellation, station, clock):
        simulator = make_simulator(constellation, clock)
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        for r in raw:
            assert np.linalg.norm(r.satellite_position - station.position) == (
                pytest.approx(r.geometric_range, rel=1e-12)
            )

    def test_receiver_clock_included(self, constellation, station, clock):
        simulator = make_simulator(constellation, clock)
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        expected = SPEED_OF_LIGHT * clock.bias_seconds(EPOCH)
        for r in raw:
            assert r.receiver_clock_meters == pytest.approx(expected)

    def test_travel_time_plausible(self, constellation, station, clock):
        simulator = make_simulator(constellation, clock)
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        for r in raw:
            tau = EPOCH - r.transmit_time
            assert 0.06 < tau < 0.095

    def test_noise_reproducible(self, constellation, station, clock):
        simulator = PseudorangeSimulator(
            constellation, clock, noise=PseudorangeNoiseModel(sigma_meters=1.0)
        )
        a = simulator.simulate_epoch(station.position, EPOCH, np.random.default_rng(9))
        b = simulator.simulate_epoch(station.position, EPOCH, np.random.default_rng(9))
        assert [r.pseudorange for r in a] == [r.pseudorange for r in b]


class TestCorrection:
    def test_perfect_models_leave_only_clock_bias(self, constellation, station, clock):
        """With identical truth and correction models and no noise, the
        corrected pseudorange is exactly range + receiver clock bias."""
        simulator = make_simulator(constellation, clock)
        corrector = MeasurementCorrector(constellation)
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        epoch = corrector.correct_epoch(raw, station.position, EPOCH)
        bias = SPEED_OF_LIGHT * clock.bias_seconds(EPOCH)
        for obs, r in zip(epoch.observations, raw):
            expected = r.geometric_range + bias
            assert obs.pseudorange == pytest.approx(expected, abs=1e-6)

    def test_mismatched_models_leave_residual(self, constellation, station, clock):
        truth_iono = KlobucharModel(
            alpha=tuple(1.5 * a for a in KlobucharModel().alpha)
        )
        simulator = make_simulator(constellation, clock, ionosphere=truth_iono)
        corrector = MeasurementCorrector(constellation)  # stock model
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        epoch = corrector.correct_epoch(raw, station.position, EPOCH)
        bias = SPEED_OF_LIGHT * clock.bias_seconds(EPOCH)
        residuals = [
            obs.pseudorange - r.geometric_range - bias
            for obs, r in zip(epoch.observations, raw)
        ]
        assert any(abs(res) > 0.1 for res in residuals)  # iono residual remains
        assert all(abs(res) < 30.0 for res in residuals)  # but it is small

    def test_epoch_carries_truth(self, constellation, station, clock):
        from repro.observations import EpochTruth

        simulator = make_simulator(constellation, clock)
        corrector = MeasurementCorrector(constellation)
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        truth = EpochTruth(receiver_position=station.position, clock_bias_meters=30.0)
        epoch = corrector.correct_epoch(raw, station.position, EPOCH, truth)
        assert epoch.truth is truth

    def test_satellite_clock_fully_corrected(self, constellation, station, clock):
        """Broadcast clock errors must cancel exactly: the corrector
        knows the same polynomial the simulator used."""
        simulator = make_simulator(constellation, clock)
        corrector = MeasurementCorrector(constellation)
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        epoch = corrector.correct_epoch(raw, station.position, EPOCH)
        bias = SPEED_OF_LIGHT * clock.bias_seconds(EPOCH)
        for obs, r in zip(epoch.observations, raw):
            # No trace of the (tens of microseconds = kilometers)
            # satellite clock error survives.
            assert abs(obs.pseudorange - r.geometric_range - bias) < 1e-3


class TestNoAtmosphereCorrector:
    def test_none_models_skip_correction(self, constellation, station, clock):
        """With ionosphere=None / troposphere=None the full atmospheric
        delay stays in the corrected pseudorange (the DGPS-rover mode)."""
        simulator = make_simulator(constellation, clock)
        with_models = MeasurementCorrector(constellation)
        without = MeasurementCorrector(
            constellation, ionosphere=None, troposphere=None
        )
        raw = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        corrected = with_models.correct_epoch(raw, station.position, EPOCH)
        uncorrected = without.correct_epoch(raw, station.position, EPOCH)
        for a, b, r in zip(
            corrected.observations, uncorrected.observations, raw
        ):
            # The difference is exactly the model correction that was
            # skipped: several meters at least (troposphere alone > 2 m).
            assert b.pseudorange - a.pseudorange > 2.0


class TestDopplerGeneration:
    def test_receiver_velocity_shifts_range_rates(self, constellation, station, clock):
        simulator = PseudorangeSimulator(
            constellation, clock,
            noise=PseudorangeNoiseModel(sigma_meters=0.0),
            track_doppler=True, doppler_noise_mps=0.0,
        )
        static = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0)
        )
        moving = simulator.simulate_epoch(
            station.position, EPOCH, np.random.default_rng(0),
            receiver_velocity=np.array([100.0, 0.0, 0.0]),
        )
        differences = [
            abs(a.range_rate - b.range_rate) for a, b in zip(static, moving)
        ]
        # Each line of sight projects a different share of the 100 m/s.
        assert max(differences) > 10.0
        assert all(d <= 100.0 + 1e-6 for d in differences)

    def test_range_rate_matches_numeric_derivative(self, constellation, station, clock):
        """The analytic Doppler equals the numeric d(rho)/dt of the
        noise-free geometric pseudorange plus clock-drift terms."""
        simulator = PseudorangeSimulator(
            constellation, clock,
            noise=PseudorangeNoiseModel(sigma_meters=0.0),
            track_doppler=True, doppler_noise_mps=0.0,
        )
        rng = np.random.default_rng(0)
        now = simulator.simulate_epoch(station.position, EPOCH, rng)
        later = simulator.simulate_epoch(
            station.position, EPOCH + 1.0, np.random.default_rng(1)
        )
        later_by_prn = {r.prn: r for r in later}
        for r in now:
            if r.prn not in later_by_prn:
                continue
            numeric = later_by_prn[r.prn].pseudorange - r.pseudorange
            # Atmospheric terms drift by < 0.1 m/s; clock terms match.
            assert r.range_rate == pytest.approx(numeric, abs=0.5)
