"""Unit + integration tests for carrier smoothing (Hatch filter)."""

import numpy as np
import pytest

from repro.core import NewtonRaphsonSolver
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.signals import HatchFilter
from repro.stations import DatasetConfig, ObservationDataset, get_station
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


def synthetic_stream(epochs=50, noise_sigma=2.0, seed=0):
    """One satellite at a fixed range: code noisy, phase quiet."""
    rng = np.random.default_rng(seed)
    true_range = 2.2e7
    ambiguity = 12345.678
    stream = []
    for index in range(epochs):
        code = true_range + rng.normal(0.0, noise_sigma)
        phase = true_range + ambiguity + rng.normal(0.0, 0.003)
        obs = SatelliteObservation(
            prn=7,
            position=np.array([2.2e7, 1e6, 1e6]),
            pseudorange=code,
            carrier_range=phase,
        )
        stream.append(
            ObservationEpoch(time=T0 + float(index), observations=(obs,))
        )
    return stream, true_range


class TestConfiguration:
    def test_rejects_tiny_window(self):
        with pytest.raises(ConfigurationError):
            HatchFilter(window=1)

    def test_rejects_bad_gap(self):
        with pytest.raises(ConfigurationError):
            HatchFilter(max_gap_seconds=0.0)


class TestSmoothing:
    def test_first_epoch_passthrough(self):
        stream, _true_range = synthetic_stream()
        hatch = HatchFilter()
        smoothed = hatch.smooth_epoch(stream[0])
        assert smoothed.observations[0].pseudorange == (
            stream[0].observations[0].pseudorange
        )

    def test_noise_shrinks_with_window(self):
        stream, true_range = synthetic_stream(epochs=200, noise_sigma=2.0)
        hatch = HatchFilter(window=100)
        errors = []
        for epoch in stream:
            smoothed = hatch.smooth_epoch(epoch)
            errors.append(abs(smoothed.observations[0].pseudorange - true_range))
        # Late errors are far below the 2 m raw noise.
        assert np.mean(errors[-50:]) < 0.5
        assert np.mean(errors[-50:]) < np.mean(errors[:10])

    def test_converges_near_true_range(self):
        stream, true_range = synthetic_stream(epochs=300, noise_sigma=2.0)
        hatch = HatchFilter(window=100)
        last = None
        for epoch in stream:
            last = hatch.smooth_epoch(epoch)
        assert last.observations[0].pseudorange == pytest.approx(true_range, abs=0.6)

    def test_no_carrier_passthrough_and_reset(self):
        stream, _true = synthetic_stream(epochs=5)
        hatch = HatchFilter()
        for epoch in stream[:3]:
            hatch.smooth_epoch(epoch)
        assert hatch.tracked_prns == [7]
        bare = stream[3].with_observations(
            [
                SatelliteObservation(
                    prn=7,
                    position=stream[3].observations[0].position,
                    pseudorange=stream[3].observations[0].pseudorange,
                )
            ]
        )
        out = hatch.smooth_epoch(bare)
        assert out.observations[0].carrier_range is None
        assert hatch.tracked_prns == []  # channel reset

    def test_outage_resets_channel(self):
        stream, _true = synthetic_stream(epochs=10)
        hatch = HatchFilter(max_gap_seconds=5.0)
        hatch.smooth_epoch(stream[0])
        # Jump 20 s ahead: beyond the gap, so the filter restarts and
        # the first post-outage epoch passes through unsmoothed.
        late = ObservationEpoch(
            time=T0 + 20.0, observations=stream[5].observations
        )
        out = hatch.smooth_epoch(late)
        assert out.observations[0].pseudorange == (
            stream[5].observations[0].pseudorange
        )

    def test_time_going_backwards_raises(self):
        stream, _true = synthetic_stream(epochs=3)
        hatch = HatchFilter()
        hatch.smooth_epoch(stream[2])
        with pytest.raises(ConfigurationError, match="time order"):
            hatch.smooth_epoch(stream[0])

    def test_manual_reset(self):
        stream, _true = synthetic_stream(epochs=3)
        hatch = HatchFilter()
        for epoch in stream:
            hatch.smooth_epoch(epoch)
        hatch.reset(7)
        assert hatch.tracked_prns == []


class TestEndToEnd:
    def test_smoothing_improves_position_accuracy(self):
        station = get_station("SRZN")
        dataset = ObservationDataset(
            station,
            DatasetConfig(duration_seconds=180.0, track_carrier=True),
        )
        hatch = HatchFilter(window=100)
        solver = NewtonRaphsonSolver()
        raw_errors, smoothed_errors = [], []
        for index in range(dataset.epoch_count):
            epoch = dataset.epoch_at(index)
            smoothed = hatch.smooth_epoch(epoch)
            if index >= 60:
                raw_errors.append(solver.solve(epoch).distance_to(station.position))
                smoothed_errors.append(
                    solver.solve(smoothed).distance_to(station.position)
                )
        assert np.mean(smoothed_errors) < 0.8 * np.mean(raw_errors)
        assert np.std(smoothed_errors) < np.std(raw_errors)


class TestCarrierGeneration:
    def test_dataset_carrier_present_when_enabled(self):
        dataset = ObservationDataset(
            get_station("YYR1"),
            DatasetConfig(duration_seconds=5.0, track_carrier=True),
        )
        epoch = dataset.epoch_at(0)
        assert all(obs.carrier_range is not None for obs in epoch.observations)

    def test_dataset_carrier_absent_by_default(self):
        dataset = ObservationDataset(
            get_station("YYR1"), DatasetConfig(duration_seconds=5.0)
        )
        epoch = dataset.epoch_at(0)
        assert all(obs.carrier_range is None for obs in epoch.observations)

    def test_carrier_minus_code_nearly_constant(self):
        """Phase - code = ambiguity - 2*iono + noise: constant at the
        sub-meter level over a short window for each satellite."""
        dataset = ObservationDataset(
            get_station("SRZN"),
            DatasetConfig(duration_seconds=30.0, track_carrier=True),
        )
        first = dataset.epoch_at(0)
        last = dataset.epoch_at(29)
        first_by_prn = {obs.prn: obs for obs in first.observations}
        for obs in last.observations:
            if obs.prn not in first_by_prn:
                continue
            start = first_by_prn[obs.prn]
            delta_start = start.carrier_range - start.pseudorange
            delta_end = obs.carrier_range - obs.pseudorange
            assert abs(delta_end - delta_start) < 30.0  # noise-level drift
