"""Unit tests for the shared observation data model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.observations import EpochTruth, ObservationEpoch, SatelliteObservation
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


def make_obs(prn, pseudorange=2.2e7):
    return SatelliteObservation(
        prn=prn,
        position=np.array([2.0e7, 1.0e7 + prn * 1e5, 5.0e6]),
        pseudorange=pseudorange,
        elevation=0.5 + prn * 0.01,
    )


class TestSatelliteObservation:
    def test_position_coerced_to_array(self):
        obs = SatelliteObservation(prn=1, position=[1e7, 1e7, 1e7], pseudorange=2e7)
        assert isinstance(obs.position, np.ndarray)

    def test_rejects_bad_position(self):
        with pytest.raises(ConfigurationError):
            SatelliteObservation(prn=1, position=[1.0, 2.0], pseudorange=2e7)

    def test_rejects_nonpositive_pseudorange(self):
        with pytest.raises(ConfigurationError):
            make_obs(1, pseudorange=0.0)

    def test_rejects_nan_pseudorange(self):
        with pytest.raises(ConfigurationError):
            make_obs(1, pseudorange=float("nan"))


class TestEpochTruth:
    def test_holds_values(self):
        truth = EpochTruth(receiver_position=np.ones(3), clock_bias_meters=12.0)
        assert truth.clock_bias_meters == 12.0

    def test_rejects_bad_position(self):
        with pytest.raises(ConfigurationError):
            EpochTruth(receiver_position=np.ones(2), clock_bias_meters=0.0)


class TestObservationEpoch:
    def test_basic_accessors(self):
        epoch = ObservationEpoch(time=T0, observations=tuple(make_obs(p) for p in (3, 1, 2)))
        assert len(epoch) == 3
        assert epoch.satellite_count == 3
        assert epoch.prns == (3, 1, 2)
        assert epoch.satellite_positions().shape == (3, 3)
        assert epoch.pseudoranges().shape == (3,)

    def test_iterable(self):
        epoch = ObservationEpoch(time=T0, observations=(make_obs(1), make_obs(2)))
        assert [obs.prn for obs in epoch] == [1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ObservationEpoch(time=T0, observations=())

    def test_rejects_duplicate_prns(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ObservationEpoch(time=T0, observations=(make_obs(1), make_obs(1)))


class TestSubset:
    @pytest.fixture
    def epoch(self):
        return ObservationEpoch(
            time=T0, observations=tuple(make_obs(p) for p in (5, 3, 8, 1)),
            truth=EpochTruth(receiver_position=np.ones(3), clock_bias_meters=1.0),
        )

    def test_default_order_prefix(self, epoch):
        subset = epoch.subset(2)
        assert subset.prns == (5, 3)

    def test_preserves_time_and_truth(self, epoch):
        subset = epoch.subset(2)
        assert subset.time == epoch.time
        assert subset.truth is epoch.truth

    def test_custom_order(self, epoch):
        subset = epoch.subset(3, order=[3, 2, 0, 1])
        assert subset.prns == (1, 8, 5)

    def test_full_subset_identity(self, epoch):
        assert epoch.subset(4).prns == epoch.prns

    def test_rejects_zero(self, epoch):
        with pytest.raises(ConfigurationError):
            epoch.subset(0)

    def test_rejects_too_many(self, epoch):
        with pytest.raises(ConfigurationError):
            epoch.subset(5)

    def test_rejects_bad_order(self, epoch):
        with pytest.raises(ConfigurationError, match="permutation"):
            epoch.subset(2, order=[0, 0, 1, 2])

    def test_with_observations(self, epoch):
        replaced = epoch.with_observations([make_obs(42)])
        assert replaced.prns == (42,)
        assert replaced.truth is epoch.truth
