"""Tests for the seeded scenario generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.validation import Scenario, ScenarioConfig, ScenarioGenerator
from repro.validation.scenarios import scenario_with_noise


@pytest.fixture(scope="module")
def generator():
    return ScenarioGenerator()


class TestDeterminism:
    def test_same_seed_same_scenario_bitwise(self, generator):
        a = generator.generate(7)
        b = generator.generate(7)
        assert a.seed == b.seed == 7
        assert a.clock_bias_meters == b.clock_bias_meters
        assert a.flatness == b.flatness
        assert a.conditioning == b.conditioning
        np.testing.assert_array_equal(a.epoch.pseudoranges(), b.epoch.pseudoranges())
        np.testing.assert_array_equal(
            a.epoch.satellite_positions(), b.epoch.satellite_positions()
        )

    def test_fresh_generator_agrees(self):
        # Purity across instances: no hidden mutable generator state.
        np.testing.assert_array_equal(
            ScenarioGenerator().generate(11).epoch.pseudoranges(),
            ScenarioGenerator().generate(11).epoch.pseudoranges(),
        )

    def test_different_seeds_differ(self, generator):
        a, b = generator.generate(0), generator.generate(1)
        assert not np.array_equal(a.epoch.pseudoranges(), b.epoch.pseudoranges())

    def test_stream_is_consecutive_seeds(self, generator):
        scenarios = list(generator.stream(start_seed=5, count=4))
        assert [s.seed for s in scenarios] == [5, 6, 7, 8]
        np.testing.assert_array_equal(
            scenarios[2].epoch.pseudoranges(),
            generator.generate(7).epoch.pseudoranges(),
        )


class TestScenarioShape:
    @pytest.mark.parametrize("seed", range(20))
    def test_respects_config_bounds(self, generator, seed):
        scenario = generator.generate(seed)
        cfg = scenario.config
        assert cfg.min_satellites <= scenario.satellite_count <= cfg.max_satellites
        assert abs(scenario.clock_bias_meters) <= cfg.max_clock_bias_meters
        assert 0.0 <= scenario.flatness <= cfg.max_flatness
        assert scenario.conditioning >= 1.0

    @pytest.mark.parametrize("seed", range(20))
    def test_pseudoranges_encode_truth_exactly(self, generator, seed):
        # Noise-free scenarios are exact by construction: every
        # pseudorange is ||s - x|| + bias to float precision, which is
        # what makes cross-solver agreement a pure numerics check.
        scenario = generator.generate(seed)
        ranges = np.linalg.norm(
            scenario.epoch.satellite_positions() - scenario.truth_position, axis=1
        )
        # One ulp at 2.6e7 m is ~4e-9 m; 1e-7 allows the float
        # rounding of the norm+bias sum and nothing else.
        np.testing.assert_allclose(
            scenario.epoch.pseudoranges(),
            ranges + scenario.clock_bias_meters,
            rtol=0,
            atol=1e-7,
        )

    def test_satellite_count_band_is_reachable(self, generator):
        counts = {generator.generate(seed).satellite_count for seed in range(200)}
        cfg = generator.config
        assert min(counts) == cfg.min_satellites
        assert max(counts) == cfg.max_satellites

    def test_flatness_degrades_conditioning(self, generator):
        # The whole point of the flatness sweep: near-coplanar skies
        # must actually produce worse-conditioned designs.  Compare
        # within one generator (so only the flatness draw separates the
        # groups); empirically the high-flatness mean is ~5x the
        # low-flatness mean, so 2x is a robust floor.
        scenarios = [generator.generate(seed) for seed in range(400)]
        flat = [s.conditioning for s in scenarios if s.flatness > 0.8]
        round_ = [s.conditioning for s in scenarios if s.flatness < 0.2]
        assert flat and round_
        assert np.mean(flat) > 2.0 * np.mean(round_)

    def test_truth_is_on_or_near_the_ellipsoid(self, generator):
        for seed in range(10):
            radius = float(np.linalg.norm(generator.generate(seed).truth_position))
            assert 6.3e6 < radius < 6.4e6


class TestConfig:
    def test_to_dict_round_trips(self):
        cfg = ScenarioConfig(
            min_satellites=5,
            max_satellites=9,
            max_clock_bias_meters=1e4,
            max_flatness=0.5,
            noise_sigma=2.0,
        )
        assert ScenarioConfig.from_dict(cfg.to_dict()) == cfg

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_satellites": 3},
            {"min_satellites": 9, "max_satellites": 5},
            {"max_clock_bias_meters": -1.0},
            {"max_clock_bias_meters": float("inf")},
            {"max_flatness": 1.0},
            {"max_flatness": -0.1},
            {"noise_sigma": -1.0},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(**kwargs)


class TestNoisyTwin:
    def test_same_geometry_different_pseudoranges(self, generator):
        clean = generator.generate(3)
        noisy = scenario_with_noise(clean, noise_sigma=2.0)
        np.testing.assert_array_equal(
            noisy.epoch.satellite_positions(), clean.epoch.satellite_positions()
        )
        assert noisy.config.noise_sigma == 2.0
        assert not np.array_equal(
            noisy.epoch.pseudoranges(), clean.epoch.pseudoranges()
        )
        # The noise is zero-mean and small: pseudoranges move by O(sigma).
        assert np.max(
            np.abs(noisy.epoch.pseudoranges() - clean.epoch.pseudoranges())
        ) < 20.0

    def test_noisy_twin_is_deterministic(self, generator):
        clean = generator.generate(3)
        a = scenario_with_noise(clean, noise_sigma=2.0)
        b = scenario_with_noise(clean, noise_sigma=2.0)
        np.testing.assert_array_equal(a.epoch.pseudoranges(), b.epoch.pseudoranges())
