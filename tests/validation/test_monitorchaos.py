"""Tests for the spoof chaos campaign (``repro-gps fuzz --spoof``)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.integrity.monitors import MonitorConfig
from repro.validation.monitorchaos import (
    ARM_CLEAN,
    ATTACK_FAMILIES,
    FamilyStats,
    MonitorChaosCase,
    MonitorChaosConfig,
    MonitorChaosReport,
    _arm_for,
    build_stream,
    run_monitor_chaos,
)
from repro.validation.scenarios import ScenarioConfig, ScenarioGenerator


def small_config(**overrides):
    defaults = dict(scenarios=15, epochs_per_stream=32, max_flatness=0.3)
    defaults.update(overrides)
    return MonitorChaosConfig(**defaults)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        MonitorChaosConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"scenarios": 3},
            {"epochs_per_stream": 1},
            {"onset_seconds": 0.0},
            {"onset_seconds": 100.0, "epochs_per_stream": 40},
            {"onset_seconds": 5.0},  # inside the learning window
            {"sigma_meters": 0.0},
            {"sigma_meters": float("nan")},
            {"batch_size": 0},
            {"detection_floor": 0.0},
            {"detection_floor": 1.5},
            {"false_alarm_budget": -0.1},
            {"false_alarm_budget": 1.0},
        ],
    )
    def test_rejected_configs(self, overrides):
        with pytest.raises(ConfigurationError):
            MonitorChaosConfig(**overrides)

    def test_to_dict_round_trips_the_knobs(self):
        config = small_config()
        data = config.to_dict()
        assert data["scenarios"] == 15
        assert data["monitors"] == MonitorConfig().to_dict()


class TestArmAssignment:
    def test_every_fifth_seed_is_clean(self):
        arms = [_arm_for(i) for i in range(10)]
        assert arms[0] == ARM_CLEAN
        assert arms[5] == ARM_CLEAN
        assert arms[1:5] == list(ATTACK_FAMILIES)

    def test_all_arms_covered_in_one_cycle(self):
        arms = {_arm_for(i) for i in range(len(ATTACK_FAMILIES) + 1)}
        assert arms == {ARM_CLEAN, *ATTACK_FAMILIES}


class TestBuildStream:
    def test_stream_is_stationary_with_fresh_noise_and_cn0(self):
        config = small_config()
        scenario = ScenarioGenerator(ScenarioConfig()).generate(7)
        stream = build_stream(scenario, config, seed=7)
        assert len(stream) == config.epochs_per_stream
        # Times are stream-relative 1 Hz ticks.
        assert [e.time.seconds_of_week for e in stream[:3]] == [0.0, 1.0, 2.0]
        # Same sky every epoch, distinct noise draws.
        first, second = stream[0], stream[1]
        assert [o.prn for o in first.observations] == [
            o.prn for o in second.observations
        ]
        assert [o.pseudorange for o in first.observations] != [
            o.pseudorange for o in second.observations
        ]
        # C/N0 attached everywhere, and truth rides along for grading.
        for epoch in stream:
            assert epoch.truth is not None
            assert all(o.cn0_dbhz is not None for o in epoch.observations)

    def test_stream_is_a_pure_function_of_the_seed(self):
        config = small_config()
        scenario = ScenarioGenerator(ScenarioConfig()).generate(11)
        one = build_stream(scenario, config, seed=11)
        two = build_stream(scenario, config, seed=11)
        for a, b in zip(one, two):
            assert [o.pseudorange for o in a.observations] == [
                o.pseudorange for o in b.observations
            ]
            assert [o.cn0_dbhz for o in a.observations] == [
                o.cn0_dbhz for o in b.observations
            ]


class TestCampaign:
    def test_small_campaign_detects_every_family(self):
        report = run_monitor_chaos(small_config(scenarios=25))
        assert report.attacks == 20
        assert report.clean_streams == 5
        for family in ATTACK_FAMILIES:
            stats = report.families[family]
            assert stats.attacks == 5
            assert stats.detected >= 4, family
        assert report.ok

    def test_campaign_is_deterministic(self):
        config = small_config()
        assert (
            run_monitor_chaos(config).to_dict()
            == run_monitor_chaos(config).to_dict()
        )

    def test_clean_arm_grades_against_epoch_count(self):
        report = run_monitor_chaos(small_config())
        assert (
            report.clean_epochs
            == report.clean_streams * report.config.epochs_per_stream
        )
        assert report.false_alarm_rate <= report.config.false_alarm_budget

    def test_report_dict_carries_gates_and_mistakes(self):
        report = run_monitor_chaos(small_config())
        data = report.to_dict()
        assert set(data["gates"]) == {"detection", "false_alarm"}
        assert data["gates"]["detection"]["passed"] == report.detection_ok
        assert data["ok"] == report.ok
        for mistake in data["mistakes"]:
            assert set(mistake) == {
                "seed",
                "family",
                "outcome",
                "detect_second",
                "harm_second",
            }


class TestGateArithmetic:
    def _report(self, in_time, attacks, clean_epochs, false_epochs):
        stats = FamilyStats(
            attacks=attacks,
            detected=in_time,
            detected_in_time=in_time,
            time_to_detect=tuple(float(i) for i in range(in_time)),
        )
        return MonitorChaosReport(
            config=small_config(),
            families={"meaconing": stats},
            clean_streams=1,
            clean_epochs=clean_epochs,
            false_alarm_streams=1 if false_epochs else 0,
            false_alarm_epochs=false_epochs,
            blocked_attack_epochs=0,
            mistakes=(
                MonitorChaosCase(
                    seed=0,
                    family="meaconing",
                    outcome="missed",
                    detect_second=None,
                    harm_second=None,
                ),
            ),
        )

    def test_detection_floor_is_inclusive(self):
        report = self._report(
            in_time=18, attacks=20, clean_epochs=100, false_epochs=0
        )
        assert report.detection_rate == pytest.approx(0.90)
        assert report.detection_ok and report.ok

    def test_detection_below_floor_fails(self):
        report = self._report(
            in_time=17, attacks=20, clean_epochs=100, false_epochs=0
        )
        assert not report.detection_ok and not report.ok

    def test_false_alarm_budget_is_inclusive(self):
        report = self._report(
            in_time=20, attacks=20, clean_epochs=100, false_epochs=2
        )
        assert report.false_alarm_rate == pytest.approx(0.02)
        assert report.false_alarm_ok and report.ok

    def test_false_alarm_above_budget_fails(self):
        report = self._report(
            in_time=20, attacks=20, clean_epochs=100, false_epochs=3
        )
        assert not report.false_alarm_ok and not report.ok

    def test_family_latency_percentiles(self):
        stats = FamilyStats(
            attacks=4,
            detected=3,
            detected_in_time=3,
            time_to_detect=(1.0, 2.0, 6.0),
        )
        data = stats.to_dict()
        assert data["time_to_detect_seconds"]["mean"] == pytest.approx(3.0)
        assert data["time_to_detect_seconds"]["max"] == 6.0

    def test_empty_family_reports_null_latency(self):
        stats = FamilyStats(
            attacks=0, detected=0, detected_in_time=0, time_to_detect=()
        )
        data = stats.to_dict()
        assert data["detection_rate"] == 1.0
        assert data["time_to_detect_seconds"]["mean"] is None


class TestSpoofCli:
    def test_spoof_mode_prints_gates_and_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "spoof.json"
        code = main(
            [
                "fuzz",
                "--spoof",
                "--scenarios",
                "10",
                "--spoof-out",
                str(out),
            ]
        )
        printed = capsys.readouterr().out
        assert code == 0
        assert "spoof chaos:" in printed
        assert "detection:" in printed and "false alarms:" in printed
        verdict = json.loads(out.read_text())
        assert verdict["ok"] is True
        assert set(verdict["families"]) == set(ATTACK_FAMILIES)

    def test_spoof_rejects_inject(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--spoof", "--inject", "spike"])
        assert code == 1
        assert "drop" in capsys.readouterr().err

    def test_spoof_and_fde_are_mutually_exclusive(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--spoof", "--fde"])
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err
