"""Tests for the differential oracles (scalar, batch, and stream paths)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.validation import ScenarioConfig, ScenarioGenerator, run_differential
from repro.validation.faults import PseudorangeSpike
from repro.validation.oracles import (
    ORACLE_PATHS,
    agreement_tolerance,
    run_stream_differential,
)
from repro.validation.scenarios import scenario_with_noise


@pytest.fixture(scope="module")
def generator():
    return ScenarioGenerator()


class TestAgreementTolerance:
    def test_scales_with_conditioning(self, generator):
        scenarios = [generator.generate(seed) for seed in range(100)]
        worst = max(scenarios, key=lambda s: s.conditioning)
        best = min(scenarios, key=lambda s: s.conditioning)
        assert agreement_tolerance(worst) > agreement_tolerance(best)

    def test_noise_widens_the_tolerance(self, generator):
        clean = generator.generate(0)
        noisy = scenario_with_noise(clean, noise_sigma=2.0)
        assert agreement_tolerance(noisy) > 10.0 * agreement_tolerance(clean)


class TestCleanAgreement:
    @pytest.mark.parametrize("seed", range(25))
    def test_all_paths_agree_on_clean_scenarios(self, generator, seed):
        report = run_differential(generator.generate(seed))
        assert report.agreed, [d.describe() for d in report.disagreements]
        # Noise-free default: the truth itself is one of the compared
        # references, so agreement is also an accuracy statement.
        answered = [o for o in report.outcomes if o.answered]
        assert len(answered) >= 4

    def test_solved_biases_match_the_scenario(self, generator):
        scenario = generator.generate(1)
        report = run_differential(scenario)
        for outcome in report.outcomes:
            if outcome.answered and outcome.clock_bias is not None:
                assert outcome.clock_bias == pytest.approx(
                    scenario.clock_bias_meters, abs=report.tolerance_meters
                )

    def test_report_is_json_ready(self, generator):
        json.dumps(run_differential(generator.generate(2)).to_dict())

    def test_path_subset_runs_only_those(self, generator):
        report = run_differential(generator.generate(3), paths=("nr", "bancroft"))
        assert tuple(o.path for o in report.outcomes) == ("nr", "bancroft")

    def test_unknown_path_rejected(self, generator):
        with pytest.raises(ConfigurationError, match="unknown oracle"):
            run_differential(generator.generate(0), paths=("nr", "warp"))

    def test_tolerance_override_respected(self, generator):
        report = run_differential(generator.generate(4), tolerance_meters=123.0)
        assert report.tolerance_meters == 123.0


class TestFourSatelliteAmbiguity:
    # With exactly four satellites the trilateration system has two
    # exact roots; solvers may legitimately pick different ones.  Seed 6
    # under a 4-satellite-only config is a measured instance (found by
    # seed scan; deterministic because scenarios are pure in the seed).
    AMBIGUOUS_SEED = 6

    @pytest.fixture(scope="class")
    def four_sat(self):
        return ScenarioGenerator(ScenarioConfig(min_satellites=4, max_satellites=4))

    def test_mirror_roots_classified_as_ambiguity(self, four_sat):
        report = run_differential(four_sat.generate(self.AMBIGUOUS_SEED))
        assert report.ambiguities, "seed no longer ambiguous — regenerate the scan"
        assert report.agreed
        # Both members of each ambiguous pair reproduce the
        # measurements, so the separation is a geometry fact, not noise.
        for record in report.ambiguities:
            assert record.separation_meters > record.tolerance_meters

    def test_ambiguities_never_classified_above_four_sats(self, generator):
        for seed in range(25):
            scenario = generator.generate(seed)
            if scenario.satellite_count > 4:
                assert not run_differential(scenario).ambiguities


class TestFaultedEpochs:
    def test_spike_produces_disagreement_not_crash(self, generator):
        scenario = generator.generate(10)
        faulted = PseudorangeSpike(magnitude_meters=5.0e4).apply(
            scenario.epoch, np.random.default_rng(0)
        )
        report = run_differential(scenario, epoch=faulted)
        # Solvers answer (the fault is semantically valid data) but the
        # linearized and iterative paths absorb the spike differently.
        assert not report.agreed
        # With a replacement epoch the truth is excluded by default —
        # a faulted epoch is *supposed* to miss the truth.
        assert all(o.path != "truth" for o in report.outcomes)

    def test_rejections_recorded_not_raised(self, generator):
        scenario = generator.generate(11)
        undersized = scenario.epoch.subset(3, list(range(scenario.satellite_count)))
        report = run_differential(scenario, epoch=undersized)
        assert set(report.rejections) == set(ORACLE_PATHS)


class TestStreamDifferential:
    def test_bulk_paths_agree_with_scalar(self, generator):
        scenarios = [generator.generate(seed) for seed in range(12)]
        report = run_stream_differential(scenarios, workers=2)
        assert report.agreed, report.disagreements
        assert report.epochs == 12
        assert report.max_engine_separation_meters < 1.0
        assert report.max_replay_separation_meters < 1e-9

    def test_rejects_empty_stream(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            run_stream_differential([])
