"""Tests for the seeded fuzz harness: budgets, artifacts, replay."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.validation import FuzzConfig, FuzzHarness, ScenarioConfig
from repro.validation.faults import (
    NonFiniteMeasurement,
    PseudorangeSpike,
    SatelliteDropout,
)
from repro.validation.fuzzer import replay_artifact


def _config(**overrides):
    kwargs = {"budget_seconds": None, "max_scenarios": 5, "stream_check_every": 0}
    kwargs.update(overrides)
    return FuzzConfig(**kwargs)


class TestConfigValidation:
    def test_requires_at_least_one_budget(self):
        with pytest.raises(ConfigurationError, match="never terminates"):
            FuzzConfig(budget_seconds=None, max_scenarios=None)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"budget_seconds": 0.0},
            {"budget_seconds": None, "max_scenarios": 0},
            {"fault_rate": 1.5},
            {"fault_rate": -0.1},
            {"budget_seconds": 10.0, "stream_check_every": -1},
        ],
    )
    def test_rejects_bad_budgets_and_rates(self, kwargs):
        with pytest.raises(ConfigurationError):
            FuzzConfig(**kwargs)


class TestCleanRuns:
    def test_scenario_budget_is_exact(self):
        report = FuzzHarness(_config(max_scenarios=7)).run()
        assert report.scenarios == 7
        assert report.passes + report.rejected + report.explained + len(
            report.failures
        ) >= report.scenarios
        assert report.ok
        assert report.failures == ()

    def test_clean_population_all_passes(self):
        report = FuzzHarness(_config(max_scenarios=10)).run()
        assert report.passes == 10
        assert report.rejected == report.explained == 0

    def test_runs_are_deterministic(self):
        a = FuzzHarness(_config(max_scenarios=6)).run().to_dict()
        b = FuzzHarness(_config(max_scenarios=6)).run().to_dict()
        a.pop("elapsed_seconds")
        b.pop("elapsed_seconds")
        assert a == b

    def test_start_seed_shifts_the_population(self):
        harness = FuzzHarness(_config(start_seed=100, max_scenarios=1))
        case = harness.run_case(100)
        assert case.seed == 100
        assert case.status == "pass"

    def test_stream_checks_fire_on_schedule(self):
        report = FuzzHarness(
            _config(max_scenarios=10, stream_check_every=5)
        ).run()
        assert report.stream_checks == 2

    def test_wall_clock_budget_stops_the_run(self):
        # A generous scenario cap with a tiny time budget: the clock,
        # not the cap, must end the run.
        report = FuzzHarness(
            FuzzConfig(
                budget_seconds=0.5, max_scenarios=1_000_000, stream_check_every=0
            )
        ).run()
        assert 0 < report.scenarios < 1_000_000
        assert report.elapsed_seconds >= 0.5


class TestFaultedRuns:
    def test_structural_faults_are_rejected_everywhere(self):
        for fault in (NonFiniteMeasurement(), SatelliteDropout()):
            report = FuzzHarness(
                _config(max_scenarios=4, fault_rate=1.0, fault=fault)
            ).run()
            assert report.rejected == 4, fault.name
            assert report.ok

    def test_semantic_fault_disagreements_are_explained(self, tmp_path):
        report = FuzzHarness(
            _config(
                max_scenarios=3,
                fault_rate=1.0,
                fault=PseudorangeSpike(),
                artifacts_dir=tmp_path,
            )
        ).run()
        assert report.explained == 3
        assert report.ok
        assert len(report.artifact_paths) == 3

    def test_sampled_faults_with_partial_rate(self):
        # fault=None samples from the registry; with rate 0.5 some
        # scenarios stay clean — statuses must partition the run.
        report = FuzzHarness(_config(max_scenarios=20, fault_rate=0.5)).run()
        assert report.scenarios == 20
        assert report.passes > 0
        assert report.rejected + report.explained > 0
        assert report.ok


class TestArtifacts:
    def test_artifact_payload_is_replayable_json(self, tmp_path):
        report = FuzzHarness(
            _config(
                max_scenarios=1,
                fault_rate=1.0,
                fault=PseudorangeSpike(),
                artifacts_dir=tmp_path,
            )
        ).run()
        (path,) = report.artifact_paths
        payload = json.loads(open(path).read())
        assert payload["status"] == "explained"
        assert payload["fault"]["name"] == "spike"
        assert payload["scenario_config"] == ScenarioConfig().to_dict()

    def test_replay_reproduces_the_verdict(self, tmp_path):
        report = FuzzHarness(
            _config(
                max_scenarios=2,
                fault_rate=1.0,
                fault=PseudorangeSpike(),
                artifacts_dir=tmp_path,
            )
        ).run()
        for path in report.artifact_paths:
            recorded = json.loads(open(path).read())
            result = replay_artifact(path)
            assert result.seed == recorded["seed"]
            assert result.status == recorded["status"]
            assert result.kind == recorded["kind"]
            assert list(result.detail) == recorded["detail"]

    def test_replay_is_deterministic(self, tmp_path):
        report = FuzzHarness(
            _config(
                max_scenarios=1,
                fault_rate=1.0,
                fault=PseudorangeSpike(),
                artifacts_dir=tmp_path,
            )
        ).run()
        (path,) = report.artifact_paths
        assert replay_artifact(path).to_dict() == replay_artifact(path).to_dict()

    def test_no_artifacts_without_a_directory(self):
        report = FuzzHarness(
            _config(max_scenarios=2, fault_rate=1.0, fault=PseudorangeSpike())
        ).run()
        assert report.explained == 2
        assert report.artifact_paths == ()


class TestCrashCapture:
    def test_generator_crash_becomes_a_crash_case(self, monkeypatch):
        harness = FuzzHarness(_config(max_scenarios=1))

        def boom(seed):
            raise RuntimeError("synthetic generator crash")

        monkeypatch.setattr(harness._generator, "generate", boom)
        case = harness.run_case(0)
        assert case.status == "failed"
        assert case.kind == "crash"
        assert any("synthetic generator crash" in line for line in case.detail)

    def test_crashes_fail_the_run(self, monkeypatch, tmp_path):
        harness = FuzzHarness(_config(max_scenarios=2, artifacts_dir=tmp_path))

        def boom(seed):
            raise RuntimeError("synthetic generator crash")

        monkeypatch.setattr(harness._generator, "generate", boom)
        report = harness.run()
        assert not report.ok
        assert all(f.kind == "crash" for f in report.failures)
        # Crashes are persisted like any other failure.
        assert len(report.artifact_paths) == len(report.failures)
