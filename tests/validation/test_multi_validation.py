"""Multi-constellation validation: scenarios, oracles, relabeling.

Pins three contracts: (1) single-system scenario generation is
bit-for-bit the legacy stream (golden hash), (2) all six
per-constellation solver paths agree on multi scenarios, and (3)
relabeling which code a constellation carries never changes any
answer — at zero tolerance.
"""

import hashlib

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.validation import (
    MULTI_ORACLE_PATHS,
    Scenario,
    ScenarioConfig,
    ScenarioGenerator,
    relabeled_epoch,
    run_differential,
    run_multi_differential,
    run_relabeling,
)


def multi_generator(systems=("G", "R"), **kwargs):
    return ScenarioGenerator(ScenarioConfig(systems=systems, **kwargs))


class TestMultiScenarioConfig:
    def test_systems_normalized(self):
        config = ScenarioConfig(systems=("g", "r"))
        assert config.systems == ("G", "R")

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(systems=("G", "G"))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(systems=())

    def test_to_dict_round_trips_systems(self):
        config = ScenarioConfig(systems=("G", "E"))
        assert ScenarioConfig(**config.to_dict()) == config


class TestMultiScenarioShape:
    def test_deterministic_by_seed(self):
        a = multi_generator().generate(7)
        b = multi_generator().generate(7)
        assert np.array_equal(a.epoch.dense()[1], b.epoch.dense()[1])
        assert a.clock_biases == b.clock_biases

    def test_truth_records_per_system_biases(self):
        scenario = multi_generator().generate(3)
        biases = dict(scenario.clock_biases)
        assert set(biases) == {"G", "R"}
        config = ScenarioConfig()
        for bias in biases.values():
            assert abs(bias) <= config.max_clock_bias_meters

    def test_every_system_contributes_enough(self):
        for seed in range(20):
            scenario = multi_generator(systems=("G", "R", "E")).generate(seed)
            counts = {}
            for obs in scenario.epoch.observations:
                counts[obs.system] = counts.get(obs.system, 0) + 1
            assert set(counts) == {"G", "R", "E"}
            assert min(counts.values()) >= 3

    def test_pseudoranges_encode_truth_and_biases(self):
        scenario = multi_generator().generate(11)
        truth = scenario.epoch.truth.receiver_position
        biases = dict(scenario.clock_biases)
        for obs in scenario.epoch.observations:
            expected = np.linalg.norm(obs.position - truth) + biases[obs.system]
            assert obs.pseudorange == pytest.approx(expected, abs=1e-6)

    def test_single_system_has_no_bias_tuple(self):
        scenario = ScenarioGenerator(ScenarioConfig()).generate(5)
        assert scenario.epoch.truth.clock_biases is None


class TestLegacyStreamGoldenHash:
    def test_k1_stream_bitwise_pinned(self):
        # The K=1 generator must keep consuming exactly the legacy rng
        # stream: hash the first 20 seeds' scenario bytes and pin them.
        # This hash was captured from the pre-multi-constellation
        # generator; if it moves, historic fuzz seeds no longer replay.
        digest = hashlib.sha256()
        generator = ScenarioGenerator(ScenarioConfig())
        for seed in range(20):
            scenario = generator.generate(seed)
            positions, pseudoranges, _prns, _systems = scenario.epoch.dense()
            digest.update(positions.tobytes())
            digest.update(pseudoranges.tobytes())
            digest.update(np.float64(scenario.clock_bias_meters).tobytes())
        assert digest.hexdigest() == (
            "621dde8d9975757e04a15b895e77bc594152e1c3e7d46fb5aba95b23c38786af"
        )


class TestMultiDifferential:
    def test_paths_cover_all_multi_solvers(self):
        assert MULTI_ORACLE_PATHS == (
            "nr",
            "dlo",
            "dlg",
            "batch_nr",
            "batch_dlo",
            "batch_dlg",
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_clean_scenarios_agree(self, seed):
        report = run_multi_differential(multi_generator().generate(seed))
        assert report.agreed, report.disagreements

    def test_noisy_three_system_scenarios_agree(self):
        generator = multi_generator(systems=("G", "R", "C"), noise_sigma=2.0)
        for seed in range(4):
            report = run_multi_differential(generator.generate(seed))
            assert report.agreed, report.disagreements


class TestFiftyScenarioK1Suite:
    """The 50-scenario single-constellation differential sweep.

    Every solver path — the paper's scalar trio plus the batched
    kernels — on 50 seeded K=1 scenarios: the multi-constellation
    plumbing must leave the single-clock solve exactly agreed.
    """

    @pytest.mark.parametrize("seed", range(50))
    def test_k1_differential(self, seed):
        scenario = ScenarioGenerator(ScenarioConfig()).generate(seed)
        report = run_differential(scenario)
        assert report.agreed, report.disagreements


class TestRelabeling:
    @pytest.mark.parametrize("seed", range(6))
    def test_relabeling_is_bitwise(self, seed):
        # Zero tolerance: first-appearance group layout makes the
        # relabeled solve literally the same arithmetic.
        report = run_relabeling(
            multi_generator().generate(seed), tolerance_meters=0.0
        )
        assert report.passed, report.deviations

    def test_relabeled_epoch_remaps_truth(self):
        scenario = multi_generator().generate(2)
        mapping = {"G": "E", "R": "C"}
        relabeled = relabeled_epoch(scenario.epoch, mapping)
        assert {obs.system for obs in relabeled.observations} == {"E", "C"}
        original = dict(scenario.epoch.truth.clock_biases)
        remapped = dict(relabeled.truth.clock_biases)
        assert remapped == {"E": original["G"], "C": original["R"]}

    def test_rejects_incomplete_mapping(self):
        scenario = multi_generator().generate(0)
        with pytest.raises(ConfigurationError):
            relabeled_epoch(scenario.epoch, {"G": "E"})

    def test_rejects_non_injective_mapping(self):
        scenario = multi_generator().generate(0)
        with pytest.raises(ConfigurationError):
            relabeled_epoch(scenario.epoch, {"G": "E", "R": "E"})
