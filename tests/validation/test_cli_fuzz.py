"""End-to-end tests for the ``repro-gps fuzz`` command."""

import json
import os

import pytest

from repro.cli import _parse_budget, main


class TestParseBudget:
    @pytest.mark.parametrize(
        "text,seconds",
        [("45", 45.0), ("60s", 60.0), ("2m", 120.0), ("1h", 3600.0), (" 10S ", 10.0)],
    )
    def test_accepted_spellings(self, text, seconds):
        assert _parse_budget(text) == seconds

    @pytest.mark.parametrize("text", ["", "fast", "10q", "-5", "0"])
    def test_rejected_spellings(self, text):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            _parse_budget(text)

    def test_bad_budget_exits_nonzero_via_main(self, capsys):
        code = main(["fuzz", "--budget", "fast"])
        assert code == 1
        assert "invalid --budget" in capsys.readouterr().err


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--scenarios",
                "5",
                "--seed",
                "0",
                "--artifacts-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzzed 5 scenarios" in out
        assert "0 unexplained failures" in out
        assert list(tmp_path.iterdir()) == []

    def test_injected_fault_persists_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--scenarios",
                "2",
                "--inject",
                "spike",
                "--artifacts-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        # Explained fault disagreements are not failures: exit 0.
        assert code == 0
        assert "2 fault-explained" in out
        artifacts = sorted(tmp_path.iterdir())
        assert len(artifacts) == 2
        for artifact in artifacts:
            assert json.loads(artifact.read_text())["fault"]["name"] == "spike"

    def test_replay_reproduces_and_exits_zero(self, tmp_path, capsys):
        main(
            [
                "fuzz",
                "--scenarios",
                "1",
                "--inject",
                "spike",
                "--artifacts-dir",
                str(tmp_path),
            ]
        )
        (artifact,) = tmp_path.iterdir()
        capsys.readouterr()
        code = main(["fuzz", "--replay", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict reproduced" in out

    def test_replay_detects_a_changed_verdict(self, tmp_path, capsys):
        main(
            [
                "fuzz",
                "--scenarios",
                "1",
                "--inject",
                "spike",
                "--artifacts-dir",
                str(tmp_path),
            ]
        )
        (artifact,) = tmp_path.iterdir()
        payload = json.loads(artifact.read_text())
        payload["detail"] = ["doctored detail line"]
        artifact.write_text(json.dumps(payload))
        capsys.readouterr()
        code = main(["fuzz", "--replay", str(artifact)])
        assert code == 1
        assert "VERDICT CHANGED" in capsys.readouterr().out

    def test_structural_inject_is_rejected_cleanly(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--scenarios",
                "2",
                "--inject",
                "non_finite",
                "--artifacts-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 rejected" in out

    def test_unknown_inject_name_lists_choices(self, capsys):
        """The CLI refuses unknown fault names with the valid menu."""
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--inject", "gremlin"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'gremlin'" in err
        for name in ("spike", "meaconing", "slow_drag", "clock_pull",
                     "jamming_ramp"):
            assert name in err

    def test_spoof_profiles_are_injectable(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--scenarios",
                "2",
                "--inject",
                "clock_pull",
                "--artifacts-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 unexplained failures" in out

    def test_replay_with_unknown_fault_name_exits_cleanly(
        self, tmp_path, capsys
    ):
        """A doctored/stale artifact fails with the valid-name menu, not
        a traceback."""
        main(
            [
                "fuzz",
                "--scenarios",
                "1",
                "--inject",
                "spike",
                "--artifacts-dir",
                str(tmp_path),
            ]
        )
        (artifact,) = tmp_path.iterdir()
        payload = json.loads(artifact.read_text())
        payload["fault"] = {"name": "gremlin"}
        artifact.write_text(json.dumps(payload))
        capsys.readouterr()
        code = main(["fuzz", "--replay", str(artifact)])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown fault profile 'gremlin'" in err
        assert "valid profiles" in err
        assert "meaconing" in err

    def test_replay_with_bad_fault_parameters_exits_cleanly(
        self, tmp_path, capsys
    ):
        main(
            [
                "fuzz",
                "--scenarios",
                "1",
                "--inject",
                "spike",
                "--artifacts-dir",
                str(tmp_path),
            ]
        )
        (artifact,) = tmp_path.iterdir()
        payload = json.loads(artifact.read_text())
        payload["fault"] = {"name": "spike", "wattage": 11.0}
        artifact.write_text(json.dumps(payload))
        capsys.readouterr()
        code = main(["fuzz", "--replay", str(artifact)])
        assert code == 1
        assert "bad parameters for fault profile 'spike'" in capsys.readouterr().err

    def test_metrics_out_writes_fuzz_counters(self, tmp_path, capsys):
        metrics = tmp_path / "fuzz.json"
        code = main(
            [
                "fuzz",
                "--scenarios",
                "3",
                "--artifacts-dir",
                str(tmp_path / "artifacts"),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        dumped = json.dumps(snapshot)
        assert "repro_fuzz_scenarios_total" in dumped
