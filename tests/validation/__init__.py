"""Tests for the repro.validation differential/fuzz subsystem."""
