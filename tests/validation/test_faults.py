"""Tests for the composable fault-injection profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.validation import ScenarioGenerator
from repro.validation.faults import (
    EXPECT_ANSWERED,
    EXPECT_REJECTED,
    FAULT_REGISTRY,
    SPOOF_FAULTS,
    ClockJump,
    ClockPull,
    CompositeFault,
    DuplicateSatellite,
    JammingRamp,
    Meaconing,
    NonFiniteMeasurement,
    PseudorangeSpike,
    SatelliteDropout,
    SlowPositionDrag,
    SpoofFault,
    fault_from_spec,
)


@pytest.fixture
def epoch():
    return ScenarioGenerator().generate(42).epoch


def _rng():
    return np.random.default_rng(99)


class TestExpectations:
    def test_semantic_faults_expect_answers(self):
        assert PseudorangeSpike().expectation == EXPECT_ANSWERED
        assert ClockJump().expectation == EXPECT_ANSWERED

    def test_structural_faults_expect_rejection(self):
        assert SatelliteDropout().expectation == EXPECT_REJECTED
        assert NonFiniteMeasurement().expectation == EXPECT_REJECTED
        assert DuplicateSatellite().expectation == EXPECT_REJECTED

    def test_composite_rejection_dominates(self):
        composite = PseudorangeSpike() | NonFiniteMeasurement()
        assert composite.expectation == EXPECT_REJECTED
        assert (PseudorangeSpike() | ClockJump()).expectation == EXPECT_ANSWERED


class TestApply:
    def test_spike_hits_exactly_count_satellites(self, epoch):
        fault = PseudorangeSpike(magnitude_meters=1.0e4, count=2)
        faulted = fault.apply(epoch, _rng())
        delta = faulted.pseudoranges() - epoch.pseudoranges()
        assert np.count_nonzero(delta) == 2
        np.testing.assert_allclose(delta[delta != 0.0], 1.0e4)

    def test_clock_jump_shifts_every_pseudorange(self, epoch):
        faulted = ClockJump(jump_meters=123.0).apply(epoch, _rng())
        np.testing.assert_allclose(
            faulted.pseudoranges() - epoch.pseudoranges(), 123.0
        )

    def test_dropout_leaves_requested_count(self, epoch):
        faulted = SatelliteDropout(remaining=3).apply(epoch, _rng())
        assert faulted.satellite_count == 3
        original = {o.prn for o in epoch.observations}
        assert {o.prn for o in faulted.observations} <= original

    @pytest.mark.parametrize("value", ["nan", "inf", "-inf"])
    def test_non_finite_pseudorange(self, epoch, value):
        faulted = NonFiniteMeasurement(value=value).apply(epoch, _rng())
        assert np.count_nonzero(~np.isfinite(faulted.pseudoranges())) == 1

    def test_non_finite_position(self, epoch):
        faulted = NonFiniteMeasurement(target="position").apply(epoch, _rng())
        positions = faulted.satellite_positions()
        assert np.count_nonzero(~np.isfinite(positions)) == 1

    def test_duplicate_repeats_one_prn(self, epoch):
        faulted = DuplicateSatellite().apply(epoch, _rng())
        assert faulted.satellite_count == epoch.satellite_count + 1
        prns = [o.prn for o in faulted.observations]
        assert len(prns) == len(set(prns)) + 1

    def test_composite_applies_in_order(self, epoch):
        composite = ClockJump(jump_meters=100.0) | ClockJump(jump_meters=23.0)
        faulted = composite.apply(epoch, _rng())
        np.testing.assert_allclose(
            faulted.pseudoranges() - epoch.pseudoranges(), 123.0
        )

    def test_input_epoch_never_mutated(self, epoch):
        before = epoch.pseudoranges().copy()
        for name, cls in FAULT_REGISTRY.items():
            cls().apply(epoch, _rng())
        np.testing.assert_array_equal(epoch.pseudoranges(), before)

    def test_apply_is_deterministic_per_rng_seed(self, epoch):
        for name, cls in FAULT_REGISTRY.items():
            a = cls().apply(epoch, np.random.default_rng(5))
            b = cls().apply(epoch, np.random.default_rng(5))
            np.testing.assert_array_equal(
                a.pseudoranges(), b.pseudoranges(), err_msg=name
            )


class TestSpecRoundTrip:
    def test_registry_faults_round_trip(self):
        for name, cls in FAULT_REGISTRY.items():
            fault = cls()
            rebuilt = fault_from_spec(fault.spec())
            assert type(rebuilt) is type(fault)
            assert rebuilt.spec() == fault.spec()

    def test_parameters_survive_round_trip(self):
        fault = PseudorangeSpike(magnitude_meters=7.5e3, count=3)
        rebuilt = fault_from_spec(fault.spec())
        assert rebuilt.magnitude_meters == 7.5e3
        assert rebuilt.count == 3

    def test_composite_round_trips(self):
        composite = PseudorangeSpike(magnitude_meters=1e3) | DuplicateSatellite()
        rebuilt = fault_from_spec(composite.spec())
        assert isinstance(rebuilt, CompositeFault)
        assert rebuilt.spec() == composite.spec()
        assert rebuilt.expectation == EXPECT_REJECTED

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault"):
            fault_from_spec({"name": "gremlin"})

    def test_spec_is_json_ready(self):
        import json

        for cls in FAULT_REGISTRY.values():
            json.dumps(cls().spec())


class TestSpoofFaults:
    """The coordinated attack profiles: time-ramped, coherent, capped."""

    def test_registry_subset_and_tags(self):
        assert set(SPOOF_FAULTS) == {
            "meaconing", "slow_drag", "clock_pull", "jamming_ramp"
        }
        for cls in SPOOF_FAULTS.values():
            assert issubclass(cls, SpoofFault)
            assert cls.expectation == EXPECT_ANSWERED
            assert cls.family == "spoof"
            assert cls.tolerance_meters > 0

    def test_onset_gates_every_profile(self, epoch):
        # Scenario epochs sit at seconds_of_week == seed % week; an
        # onset past that leaves the epoch untouched.
        onset = float(epoch.time.seconds_of_week) + 100.0
        for cls in SPOOF_FAULTS.values():
            faulted = cls(onset_seconds=onset).apply(epoch, _rng())
            np.testing.assert_array_equal(
                faulted.pseudoranges(), epoch.pseudoranges(), err_msg=cls.name
            )
            assert [o.cn0_dbhz for o in faulted.observations] == [
                o.cn0_dbhz for o in epoch.observations
            ], cls.name

    def test_meaconing_delays_all_and_flattens_cn0(self, epoch):
        faulted = Meaconing(delay_meters=250.0, cn0_dbhz=44.0).apply(
            epoch, _rng()
        )
        np.testing.assert_allclose(
            faulted.pseudoranges() - epoch.pseudoranges(), 250.0
        )
        assert {o.cn0_dbhz for o in faulted.observations} == {44.0}

    def test_slow_drag_is_exactly_coherent(self, epoch):
        """The dragged epoch must solve to truth + offset, residual-free."""
        from repro.api import SolverConfig, solve

        onset = float(epoch.time.seconds_of_week) - 30.0
        drag = SlowPositionDrag(
            rate_mps=1.0, direction=(0.0, 0.0, 1.0), onset_seconds=onset
        )
        faulted = drag.apply(epoch, _rng())
        fix = solve(faulted, SolverConfig(algorithm="nr"))
        expected = np.asarray(epoch.truth.receiver_position) + np.array(
            [0.0, 0.0, 30.0]
        )
        np.testing.assert_allclose(fix.position, expected, atol=1e-3)

    def test_slow_drag_caps_at_max_offset(self, epoch):
        drag = SlowPositionDrag(
            rate_mps=1.0e6, max_offset_meters=100.0, onset_seconds=0.0
        )
        faulted = drag.apply(epoch, _rng())
        delta = np.abs(faulted.pseudoranges() - epoch.pseudoranges())
        # A 100 m receiver displacement changes each range by <= 100 m.
        assert np.all(delta <= 100.0 + 1e-9)
        assert np.any(delta > 1.0)

    def test_slow_drag_without_truth_is_rejected(self, epoch):
        import dataclasses

        bare = dataclasses.replace(epoch, truth=None)
        with pytest.raises(ConfigurationError, match="truth"):
            SlowPositionDrag().apply(bare, _rng())

    def test_clock_pull_ramps_commonly_and_caps(self, epoch):
        onset = float(epoch.time.seconds_of_week) - 10.0
        pull = ClockPull(rate_mps=2.0, onset_seconds=onset)
        faulted = pull.apply(epoch, _rng())
        np.testing.assert_allclose(
            faulted.pseudoranges() - epoch.pseudoranges(), 20.0
        )
        capped = ClockPull(
            rate_mps=1.0e9, max_pull_meters=500.0, onset_seconds=0.0
        ).apply(epoch, _rng())
        np.testing.assert_allclose(
            capped.pseudoranges() - epoch.pseudoranges(), 500.0
        )

    def test_jamming_ramp_sinks_cn0_to_floor(self, epoch):
        from repro.signals import SignalFeatureModel

        carrying = SignalFeatureModel(seed=3).attach(epoch)
        onset = float(epoch.time.seconds_of_week) - 10.0
        ramp = JammingRamp(
            ramp_db_per_second=1.0, floor_dbhz=25.0, onset_seconds=onset
        )
        faulted = ramp.apply(carrying, _rng())
        for before, after in zip(carrying.observations, faulted.observations):
            assert after.cn0_dbhz == max(before.cn0_dbhz - 10.0, 25.0)
        # Pseudoranges untouched: jamming degrades signal, not geometry.
        np.testing.assert_array_equal(
            faulted.pseudoranges(), carrying.pseudoranges()
        )

    def test_jamming_ramp_leaves_cn0less_epochs_silent(self, epoch):
        faulted = JammingRamp(onset_seconds=0.0).apply(epoch, _rng())
        assert all(o.cn0_dbhz is None for o in faulted.observations)

    def test_spoof_specs_round_trip_with_parameters(self):
        profiles = [
            Meaconing(delay_meters=123.0, cn0_dbhz=41.0, onset_seconds=5.0),
            SlowPositionDrag(
                rate_mps=2.5,
                direction=(0.0, 1.0, 0.0),
                max_offset_meters=250.0,
                onset_seconds=7.0,
            ),
            ClockPull(rate_mps=3.0, max_pull_meters=999.0, onset_seconds=1.0),
            JammingRamp(
                ramp_db_per_second=0.25, floor_dbhz=22.0, onset_seconds=2.0
            ),
        ]
        for fault in profiles:
            rebuilt = fault_from_spec(fault.spec())
            assert type(rebuilt) is type(fault)
            assert rebuilt.spec() == fault.spec()

    def test_spoof_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            Meaconing(delay_meters=0.0)
        with pytest.raises(ConfigurationError):
            SlowPositionDrag(rate_mps=-1.0)
        with pytest.raises(ConfigurationError):
            SlowPositionDrag(direction=(0.0, 0.0, 0.0))
        with pytest.raises(ConfigurationError):
            ClockPull(max_pull_meters=float("inf"))
        with pytest.raises(ConfigurationError):
            JammingRamp(ramp_db_per_second=0.0)
        with pytest.raises(ConfigurationError):
            Meaconing(onset_seconds=-1.0)


class TestUnknownFaultErrors:
    def test_unknown_name_lists_valid_profiles(self):
        with pytest.raises(ConfigurationError) as excinfo:
            fault_from_spec({"name": "gremlin"})
        message = str(excinfo.value)
        for name in FAULT_REGISTRY:
            assert name in message
        assert "composite" in message

    def test_bad_parameters_name_the_profile(self):
        with pytest.raises(ConfigurationError, match="bad parameters.*spike"):
            fault_from_spec({"name": "spike", "wattage": 11.0})


class TestValidation:
    def test_spike_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            PseudorangeSpike(magnitude_meters=0.0)
        with pytest.raises(ConfigurationError):
            PseudorangeSpike(count=0)

    def test_clock_jump_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            ClockJump(jump_meters=0.0)

    def test_dropout_rejects_zero_remaining(self):
        with pytest.raises(ConfigurationError):
            SatelliteDropout(remaining=0)

    def test_non_finite_rejects_bad_choices(self):
        with pytest.raises(ConfigurationError):
            NonFiniteMeasurement(value="huge")
        with pytest.raises(ConfigurationError):
            NonFiniteMeasurement(target="elevation")

    def test_empty_composite_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeFault(())
