"""Tests for the composable fault-injection profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.validation import ScenarioGenerator
from repro.validation.faults import (
    EXPECT_ANSWERED,
    EXPECT_REJECTED,
    FAULT_REGISTRY,
    ClockJump,
    CompositeFault,
    DuplicateSatellite,
    NonFiniteMeasurement,
    PseudorangeSpike,
    SatelliteDropout,
    fault_from_spec,
)


@pytest.fixture
def epoch():
    return ScenarioGenerator().generate(42).epoch


def _rng():
    return np.random.default_rng(99)


class TestExpectations:
    def test_semantic_faults_expect_answers(self):
        assert PseudorangeSpike().expectation == EXPECT_ANSWERED
        assert ClockJump().expectation == EXPECT_ANSWERED

    def test_structural_faults_expect_rejection(self):
        assert SatelliteDropout().expectation == EXPECT_REJECTED
        assert NonFiniteMeasurement().expectation == EXPECT_REJECTED
        assert DuplicateSatellite().expectation == EXPECT_REJECTED

    def test_composite_rejection_dominates(self):
        composite = PseudorangeSpike() | NonFiniteMeasurement()
        assert composite.expectation == EXPECT_REJECTED
        assert (PseudorangeSpike() | ClockJump()).expectation == EXPECT_ANSWERED


class TestApply:
    def test_spike_hits_exactly_count_satellites(self, epoch):
        fault = PseudorangeSpike(magnitude_meters=1.0e4, count=2)
        faulted = fault.apply(epoch, _rng())
        delta = faulted.pseudoranges() - epoch.pseudoranges()
        assert np.count_nonzero(delta) == 2
        np.testing.assert_allclose(delta[delta != 0.0], 1.0e4)

    def test_clock_jump_shifts_every_pseudorange(self, epoch):
        faulted = ClockJump(jump_meters=123.0).apply(epoch, _rng())
        np.testing.assert_allclose(
            faulted.pseudoranges() - epoch.pseudoranges(), 123.0
        )

    def test_dropout_leaves_requested_count(self, epoch):
        faulted = SatelliteDropout(remaining=3).apply(epoch, _rng())
        assert faulted.satellite_count == 3
        original = {o.prn for o in epoch.observations}
        assert {o.prn for o in faulted.observations} <= original

    @pytest.mark.parametrize("value", ["nan", "inf", "-inf"])
    def test_non_finite_pseudorange(self, epoch, value):
        faulted = NonFiniteMeasurement(value=value).apply(epoch, _rng())
        assert np.count_nonzero(~np.isfinite(faulted.pseudoranges())) == 1

    def test_non_finite_position(self, epoch):
        faulted = NonFiniteMeasurement(target="position").apply(epoch, _rng())
        positions = faulted.satellite_positions()
        assert np.count_nonzero(~np.isfinite(positions)) == 1

    def test_duplicate_repeats_one_prn(self, epoch):
        faulted = DuplicateSatellite().apply(epoch, _rng())
        assert faulted.satellite_count == epoch.satellite_count + 1
        prns = [o.prn for o in faulted.observations]
        assert len(prns) == len(set(prns)) + 1

    def test_composite_applies_in_order(self, epoch):
        composite = ClockJump(jump_meters=100.0) | ClockJump(jump_meters=23.0)
        faulted = composite.apply(epoch, _rng())
        np.testing.assert_allclose(
            faulted.pseudoranges() - epoch.pseudoranges(), 123.0
        )

    def test_input_epoch_never_mutated(self, epoch):
        before = epoch.pseudoranges().copy()
        for name, cls in FAULT_REGISTRY.items():
            cls().apply(epoch, _rng())
        np.testing.assert_array_equal(epoch.pseudoranges(), before)

    def test_apply_is_deterministic_per_rng_seed(self, epoch):
        for name, cls in FAULT_REGISTRY.items():
            a = cls().apply(epoch, np.random.default_rng(5))
            b = cls().apply(epoch, np.random.default_rng(5))
            np.testing.assert_array_equal(
                a.pseudoranges(), b.pseudoranges(), err_msg=name
            )


class TestSpecRoundTrip:
    def test_registry_faults_round_trip(self):
        for name, cls in FAULT_REGISTRY.items():
            fault = cls()
            rebuilt = fault_from_spec(fault.spec())
            assert type(rebuilt) is type(fault)
            assert rebuilt.spec() == fault.spec()

    def test_parameters_survive_round_trip(self):
        fault = PseudorangeSpike(magnitude_meters=7.5e3, count=3)
        rebuilt = fault_from_spec(fault.spec())
        assert rebuilt.magnitude_meters == 7.5e3
        assert rebuilt.count == 3

    def test_composite_round_trips(self):
        composite = PseudorangeSpike(magnitude_meters=1e3) | DuplicateSatellite()
        rebuilt = fault_from_spec(composite.spec())
        assert isinstance(rebuilt, CompositeFault)
        assert rebuilt.spec() == composite.spec()
        assert rebuilt.expectation == EXPECT_REJECTED

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault"):
            fault_from_spec({"name": "gremlin"})

    def test_spec_is_json_ready(self):
        import json

        for cls in FAULT_REGISTRY.values():
            json.dumps(cls().spec())


class TestValidation:
    def test_spike_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            PseudorangeSpike(magnitude_meters=0.0)
        with pytest.raises(ConfigurationError):
            PseudorangeSpike(count=0)

    def test_clock_jump_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            ClockJump(jump_meters=0.0)

    def test_dropout_rejects_zero_remaining(self):
        with pytest.raises(ConfigurationError):
            SatelliteDropout(remaining=0)

    def test_non_finite_rejects_bad_choices(self):
        with pytest.raises(ConfigurationError):
            NonFiniteMeasurement(value="huge")
        with pytest.raises(ConfigurationError):
            NonFiniteMeasurement(target="elevation")

    def test_empty_composite_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeFault(())
