"""Tests for the metamorphic invariants (permutation / translation /
clock-shift) over every solver path, batch paths included."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.validation import ScenarioConfig, ScenarioGenerator, run_metamorphic
from repro.validation.metamorphic import METAMORPHIC_INVARIANTS
from repro.validation.oracles import ORACLE_PATHS


@pytest.fixture(scope="module")
def generator():
    return ScenarioGenerator()


class TestCleanInvariants:
    @pytest.mark.parametrize("seed", range(10))
    def test_all_invariants_hold_on_all_paths(self, generator, seed):
        # ORACLE_PATHS includes the batch solvers (batch_nr/dlo/dlg),
        # so one passing report covers scalar and batch paths at once.
        report = run_metamorphic(generator.generate(seed))
        assert report.passed, [d.describe() for d in report.deviations]
        assert report.checks > 0

    def test_near_coplanar_geometry_still_holds(self):
        # The invariants must survive the worst of the geometry sweep,
        # not just round skies.
        gen = ScenarioGenerator(ScenarioConfig(max_flatness=0.98))
        scenarios = [gen.generate(seed) for seed in range(60)]
        worst = max(scenarios, key=lambda s: s.conditioning)
        report = run_metamorphic(worst)
        assert report.passed, [d.describe() for d in report.deviations]

    def test_deterministic_in_the_scenario(self, generator):
        scenario = generator.generate(5)
        assert (
            run_metamorphic(scenario).to_dict() == run_metamorphic(scenario).to_dict()
        )

    def test_report_is_json_ready(self, generator):
        json.dumps(run_metamorphic(generator.generate(6)).to_dict())


class TestSelection:
    def test_invariant_subset_limits_checks(self, generator):
        scenario = generator.generate(7)
        one = run_metamorphic(scenario, invariants=("permutation",))
        all_ = run_metamorphic(scenario)
        assert 0 < one.checks < all_.checks

    def test_path_subset_limits_checks(self, generator):
        scenario = generator.generate(7)
        one = run_metamorphic(scenario, paths=("nr",))
        assert one.checks == len(METAMORPHIC_INVARIANTS)

    def test_unknown_path_rejected(self, generator):
        with pytest.raises(ConfigurationError, match="unknown oracle"):
            run_metamorphic(generator.generate(0), paths=("nr", "warp"))

    def test_unknown_invariant_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            run_metamorphic(generator.generate(0), invariants=("rotation",))


class TestFourSatelliteAmbiguity:
    # Seed 145 under a 4-satellite-only config flips Bancroft between
    # its two exact roots across the translation — measured by seed
    # scan, deterministic thereafter.  The flip must be recorded as an
    # ambiguity, never as an invariant violation.
    AMBIGUOUS_SEED = 145

    def test_root_flip_is_ambiguity_not_deviation(self):
        gen = ScenarioGenerator(ScenarioConfig(min_satellites=4, max_satellites=4))
        report = run_metamorphic(gen.generate(self.AMBIGUOUS_SEED))
        assert report.ambiguities, "seed no longer ambiguous — regenerate the scan"
        assert report.passed


class TestCoverageShape:
    def test_full_run_counts_paths_times_invariants(self, generator):
        # A scenario where every path answers the base epoch executes
        # len(paths) x len(invariants) checks; fewer means silent skips.
        scenario = generator.generate(8)
        report = run_metamorphic(scenario)
        if not report.skipped:
            assert report.checks == len(ORACLE_PATHS) * len(METAMORPHIC_INVARIANTS)
