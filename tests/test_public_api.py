"""Public API contract tests.

These guard the packaging surface rather than behaviour: every name a
subpackage advertises in ``__all__`` must resolve, every public
callable must carry a docstring, and the root package must re-export
the primary workflow types.  Breakage here is what downstream users
hit first.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.utils",
    "repro.timebase",
    "repro.geodesy",
    "repro.orbits",
    "repro.constellation",
    "repro.atmosphere",
    "repro.clocks",
    "repro.signals",
    "repro.estimation",
    "repro.core",
    "repro.solvers",
    "repro.engine",
    "repro.api",
    "repro.service",
    "repro.dgps",
    "repro.motion",
    "repro.stations",
    "repro.rinex",
    "repro.evaluation",
    "repro.telemetry",
    "repro.validation",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_no_duplicate_exports(self, package_name):
        package = importlib.import_module(package_name)
        assert len(package.__all__) == len(set(package.__all__))

    def test_public_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        for name in package.__all__:
            member = getattr(package, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                assert inspect.getdoc(member), (
                    f"{package_name}.{name} has no docstring"
                )

    def test_package_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} has no module docstring"


class TestRootSurface:
    def test_primary_workflow_importable_from_root(self):
        from repro import (  # noqa: F401
            BancroftSolver,
            DatasetConfig,
            DLGSolver,
            DLOSolver,
            GpsReceiver,
            GpsTime,
            HatchFilter,
            NavigationEkf,
            NewtonRaphsonSolver,
            ObservationDataset,
            RaimMonitor,
            VelocitySolver,
            get_station,
        )

    def test_facade_and_service_importable_from_root(self):
        from repro import (  # noqa: F401
            AsyncPositioningClient,
            PositioningService,
            QueueFullError,
            RequestTimeoutError,
            ServiceConfig,
            ServiceError,
            ServiceResult,
            SolverConfig,
            solve,
            solve_batch,
        )

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_public_classes_have_documented_methods(self):
        """Spot-check: the main solvers' public methods are documented."""
        from repro import DLGSolver, GpsReceiver, NewtonRaphsonSolver

        for cls in (NewtonRaphsonSolver, DLGSolver, GpsReceiver):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"

    def test_exceptions_rooted_at_repro_error(self):
        import repro
        from repro import ReproError

        for name in repro.__all__:
            member = getattr(repro, name)
            if inspect.isclass(member) and issubclass(member, Exception):
                assert issubclass(member, ReproError)
