"""Unit tests for trajectory models."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geodesy import ecef_to_geodetic, geodetic_to_ecef
from repro.motion import (
    GreatCircleTrajectory,
    LinearTrajectory,
    StaticTrajectory,
    WaypointTrajectory,
)
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


class TestStatic:
    def test_constant(self):
        position = np.array([1e6, 2e6, 3e6])
        trajectory = StaticTrajectory(position)
        np.testing.assert_array_equal(trajectory.position_at(T0 + 1000.0), position)

    def test_zero_velocity(self):
        trajectory = StaticTrajectory(np.array([1e6, 2e6, 3e6]))
        np.testing.assert_array_equal(trajectory.velocity_at(T0), np.zeros(3))

    def test_returns_copies(self):
        position = np.array([1e6, 2e6, 3e6])
        trajectory = StaticTrajectory(position)
        trajectory.position_at(T0)[0] = 0.0
        assert trajectory.position_at(T0)[0] == 1e6


class TestLinear:
    def test_propagation(self):
        trajectory = LinearTrajectory(
            np.array([0.0, 0.0, 6.4e6]), np.array([100.0, 0.0, 0.0]), T0
        )
        np.testing.assert_allclose(
            trajectory.position_at(T0 + 10.0), [1000.0, 0.0, 6.4e6]
        )

    def test_velocity_exact(self):
        velocity = np.array([10.0, -20.0, 5.0])
        trajectory = LinearTrajectory(np.zeros(3) + 6.4e6, velocity, T0)
        np.testing.assert_array_equal(trajectory.velocity_at(T0 + 7.0), velocity)


class TestGreatCircle:
    def test_altitude_held(self):
        trajectory = GreatCircleTrajectory(
            start_latitude=math.radians(40.0),
            start_longitude=math.radians(-100.0),
            altitude_m=10_000.0,
            heading=math.radians(90.0),
            speed_mps=250.0,
            epoch=T0,
        )
        for dt in (0.0, 600.0, 3600.0):
            _lat, _lon, height = ecef_to_geodetic(trajectory.position_at(T0 + dt))
            assert height == pytest.approx(10_000.0, abs=50.0)

    def test_ground_speed(self):
        trajectory = GreatCircleTrajectory(
            start_latitude=0.3, start_longitude=1.0, altitude_m=0.0,
            heading=0.7, speed_mps=200.0, epoch=T0,
        )
        p0 = trajectory.position_at(T0)
        p1 = trajectory.position_at(T0 + 10.0)
        assert np.linalg.norm(p1 - p0) == pytest.approx(2000.0, rel=0.02)

    def test_due_east_keeps_latitude(self):
        trajectory = GreatCircleTrajectory(
            start_latitude=0.0, start_longitude=0.0, altitude_m=0.0,
            heading=math.radians(90.0), speed_mps=300.0, epoch=T0,
        )
        latitude, longitude, _h = ecef_to_geodetic(trajectory.position_at(T0 + 1200.0))
        assert latitude == pytest.approx(0.0, abs=1e-6)
        assert longitude > 0

    def test_due_north_increases_latitude(self):
        trajectory = GreatCircleTrajectory(
            start_latitude=0.1, start_longitude=0.5, altitude_m=0.0,
            heading=0.0, speed_mps=300.0, epoch=T0,
        )
        latitude, _lon, _h = ecef_to_geodetic(trajectory.position_at(T0 + 600.0))
        assert latitude > 0.1

    def test_rejects_negative_speed(self):
        with pytest.raises(ConfigurationError):
            GreatCircleTrajectory(0.0, 0.0, 0.0, 0.0, -1.0, T0)


class TestWaypoints:
    def test_interpolation(self):
        a = geodetic_to_ecef(0.5, 0.5, 100.0)
        b = a + np.array([1000.0, 0.0, 0.0])
        trajectory = WaypointTrajectory([(T0, a), (T0 + 10.0, b)])
        np.testing.assert_allclose(
            trajectory.position_at(T0 + 5.0), a + [500.0, 0.0, 0.0]
        )

    def test_clamps_outside_span(self):
        a = np.array([1e6, 0.0, 6.3e6])
        b = a + 100.0
        trajectory = WaypointTrajectory([(T0 + 10.0, a), (T0 + 20.0, b)])
        np.testing.assert_array_equal(trajectory.position_at(T0), a)
        np.testing.assert_array_equal(trajectory.position_at(T0 + 100.0), b)

    def test_rejects_single_waypoint(self):
        with pytest.raises(ConfigurationError):
            WaypointTrajectory([(T0, np.zeros(3))])

    def test_rejects_unordered_times(self):
        with pytest.raises(ConfigurationError, match="increasing"):
            WaypointTrajectory(
                [(T0 + 10.0, np.zeros(3)), (T0, np.ones(3))]
            )


class TestTrajectoryProperties:
    def test_great_circle_speed_constant_everywhere(self):
        """Property: the ground speed matches the configured speed at
        every probe time and for every heading."""
        from hypothesis import given, settings, strategies as st

        @given(
            heading=st.floats(min_value=0.0, max_value=2 * math.pi),
            latitude=st.floats(min_value=-1.2, max_value=1.2),
            probe=st.floats(min_value=0.0, max_value=3600.0),
        )
        @settings(max_examples=60, deadline=None)
        def check(heading, latitude, probe):
            trajectory = GreatCircleTrajectory(
                start_latitude=latitude,
                start_longitude=0.7,
                altitude_m=5000.0,
                heading=heading,
                speed_mps=200.0,
                epoch=T0,
            )
            speed = np.linalg.norm(trajectory.velocity_at(T0 + probe))
            assert speed == pytest.approx(200.0, rel=0.02)

        check()

    def test_waypoint_interpolation_stays_on_segment(self):
        """Property: interpolated points lie between their bracketing
        waypoints (convexity)."""
        from hypothesis import given, settings, strategies as st

        a = np.array([6.4e6, 0.0, 0.0])
        b = np.array([6.4e6, 5000.0, 2000.0])
        trajectory = WaypointTrajectory([(T0, a), (T0 + 100.0, b)])

        @given(t=st.floats(min_value=0.0, max_value=100.0))
        @settings(max_examples=60, deadline=None)
        def check(t):
            point = trajectory.position_at(T0 + t)
            for axis in range(3):
                low, high = min(a[axis], b[axis]), max(a[axis], b[axis])
                assert low - 1e-6 <= point[axis] <= high + 1e-6

        check()

    def test_linear_velocity_matches_numeric(self):
        trajectory = LinearTrajectory(
            np.array([6.4e6, 0.0, 0.0]), np.array([3.0, -7.0, 11.0]), T0
        )
        numeric = (
            trajectory.position_at(T0 + 10.5) - trajectory.position_at(T0 + 9.5)
        )
        np.testing.assert_allclose(numeric, [3.0, -7.0, 11.0], atol=1e-9)
