"""Integration tests for kinematic scenarios."""

import math

import numpy as np
import pytest

from repro import Constellation, NewtonRaphsonSolver
from repro.errors import ConfigurationError
from repro.motion import GreatCircleTrajectory, KinematicScenario, StaticTrajectory
from repro.stations import get_station
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


@pytest.fixture(scope="module")
def constellation():
    return Constellation.nominal(T0, rng=np.random.default_rng(3))


@pytest.fixture(scope="module")
def aircraft(constellation):
    trajectory = GreatCircleTrajectory(
        start_latitude=math.radians(40.0),
        start_longitude=math.radians(-100.0),
        altitude_m=10_000.0,
        heading=math.radians(80.0),
        speed_mps=250.0,
        epoch=T0,
    )
    return KinematicScenario(
        trajectory, constellation, start_time=T0, duration_seconds=60.0
    )


class TestScenario:
    def test_epoch_truth_follows_trajectory(self, aircraft):
        for index in (0, 30, 59):
            epoch = aircraft.epoch_at(index)
            expected = aircraft.trajectory.position_at(epoch.time)
            np.testing.assert_allclose(
                epoch.truth.receiver_position, expected, atol=1e-6
            )

    def test_solvable_along_the_path(self, aircraft):
        solver = NewtonRaphsonSolver()
        for index in range(0, 60, 10):
            epoch = aircraft.epoch_at(index)
            fix = solver.solve(epoch)
            assert fix.distance_to(epoch.truth.receiver_position) < 30.0

    def test_truth_actually_moves(self, aircraft):
        first = aircraft.epoch_at(0).truth.receiver_position
        last = aircraft.epoch_at(59).truth.receiver_position
        distance = np.linalg.norm(last - first)
        assert distance == pytest.approx(59 * 250.0, rel=0.05)

    def test_deterministic(self, constellation):
        trajectory = StaticTrajectory(get_station("SRZN").position)
        a = KinematicScenario(trajectory, constellation, T0, 5.0, seed=9)
        b = KinematicScenario(trajectory, constellation, T0, 5.0, seed=9)
        np.testing.assert_array_equal(
            a.epoch_at(2).pseudoranges(), b.epoch_at(2).pseudoranges()
        )

    def test_carrier_tracking_optional(self, constellation):
        trajectory = StaticTrajectory(get_station("SRZN").position)
        scenario = KinematicScenario(
            trajectory, constellation, T0, 3.0, track_carrier=True
        )
        epoch = scenario.epoch_at(0)
        assert all(obs.carrier_range is not None for obs in epoch.observations)

    def test_index_bounds(self, aircraft):
        with pytest.raises(ConfigurationError):
            aircraft.epoch_at(60)

    def test_epochs_iterator_count(self, constellation):
        trajectory = StaticTrajectory(get_station("SRZN").position)
        scenario = KinematicScenario(trajectory, constellation, T0, 5.0)
        assert sum(1 for _epoch in scenario.epochs()) == 5
