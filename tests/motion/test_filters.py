"""Unit tests for the alpha-beta tracking filter."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.motion import AlphaBetaFilter
from repro.timebase import GpsTime

T0 = GpsTime(week=1540, seconds_of_week=0.0)


class TestConfiguration:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaFilter(alpha=1.0)

    def test_rejects_bad_beta(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaFilter(alpha=0.5, beta=10.0)

    def test_predict_without_state_raises(self):
        with pytest.raises(ConfigurationError):
            AlphaBetaFilter().predict(T0)


class TestTracking:
    def test_first_update_passthrough(self):
        tracker = AlphaBetaFilter()
        measurement = np.array([1e6, 2e6, 3e6])
        np.testing.assert_array_equal(tracker.update(T0, measurement), measurement)

    def test_converges_to_constant_velocity(self):
        tracker = AlphaBetaFilter(alpha=0.5, beta=0.2)
        velocity = np.array([100.0, -50.0, 10.0])
        start = np.array([1e6, 2e6, 3e6])
        for i in range(60):
            tracker.update(T0 + float(i), start + velocity * i)
        np.testing.assert_allclose(tracker.velocity, velocity, atol=0.5)
        predicted = tracker.predict(T0 + 65.0)
        np.testing.assert_allclose(predicted, start + velocity * 65.0, atol=5.0)

    def test_smooths_noise(self):
        rng = np.random.default_rng(0)
        tracker = AlphaBetaFilter(alpha=0.3, beta=0.05)
        velocity = np.array([50.0, 0.0, 0.0])
        start = np.array([1e6, 2e6, 3e6])
        raw_errors, smoothed_errors = [], []
        for i in range(200):
            truth = start + velocity * i
            measurement = truth + rng.normal(0.0, 3.0, size=3)
            smoothed = tracker.update(T0 + float(i), measurement)
            if i >= 50:
                raw_errors.append(np.linalg.norm(measurement - truth))
                smoothed_errors.append(np.linalg.norm(smoothed - truth))
        assert np.mean(smoothed_errors) < 0.7 * np.mean(raw_errors)

    def test_duplicate_timestamp_blends(self):
        tracker = AlphaBetaFilter(alpha=0.5)
        tracker.update(T0, np.zeros(3))
        result = tracker.update(T0, np.array([2.0, 0.0, 0.0]))
        np.testing.assert_allclose(result, [1.0, 0.0, 0.0])

    def test_time_backwards_raises(self):
        tracker = AlphaBetaFilter()
        tracker.update(T0 + 10.0, np.zeros(3))
        with pytest.raises(ConfigurationError, match="time order"):
            tracker.update(T0, np.zeros(3))

    def test_reset(self):
        tracker = AlphaBetaFilter()
        tracker.update(T0, np.ones(3))
        tracker.reset()
        assert tracker.position is None
        np.testing.assert_array_equal(tracker.velocity, np.zeros(3))
