"""Differential proof: the batch FDE gate equals its scalar reference.

Two independent implementations of the same integrity rule —
:class:`RaimMonitor` (per-epoch, dense re-solves) and
:class:`BatchFde` (stacked Sherman-Morrison) — are driven over the
same seeded scenario population, clean and spiked, and must agree on
every verdict, every excluded PRN, and the test statistics themselves.

A second layer checks the linear algebra under the exclusion path: the
stacked leave-one-out subsets solved through the O(m) diag+rank-one
Sherman-Morrison whitening must match a dense Cholesky GLS re-solve of
the same subset at 1e-9 relative.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.clocks import ConstantClockBiasPredictor
from repro.estimation import gls_solve_diag_rank1, gls_solve_whitened
from repro.integrity import BatchFde, FdeConfig, RaimMonitor
from repro.solvers.direct_linear import (
    DLGSolver,
    build_difference_system,
    difference_covariance,
    difference_covariance_components,
)
from repro.validation.scenarios import ScenarioConfig, ScenarioGenerator

SIGMA = 3.0
PFA = 1e-2
SPIKE = 100.0


def scenario_population():
    """Seeded epochs (clean + spiked twin) with their oracle biases."""
    generator = ScenarioGenerator(
        ScenarioConfig(
            min_satellites=6,
            max_satellites=10,
            noise_sigma=SIGMA,
            max_flatness=0.5,
        )
    )
    population = []
    for seed in range(25):
        scenario = generator.generate(seed)
        epoch = scenario.epoch
        victim = seed % epoch.satellite_count
        spiked = epoch.with_observations(
            [
                replace(obs, pseudorange=obs.pseudorange + SPIKE)
                if index == victim
                else obs
                for index, obs in enumerate(epoch.observations)
            ]
        )
        population.append((seed, epoch, scenario.clock_bias_meters))
        population.append((seed, spiked, scenario.clock_bias_meters))
    return population


class TestBatchMatchesScalar:
    def test_identical_verdicts_prns_and_statistics(self):
        gate = BatchFde(FdeConfig(sigma_meters=SIGMA, p_false_alarm=PFA))
        statuses_seen = set()
        for seed, epoch, bias in scenario_population():
            monitor = RaimMonitor(
                solver=DLGSolver(
                    clock_predictor=ConstantClockBiasPredictor(bias)
                ),
                sigma_meters=SIGMA,
                p_false_alarm=PFA,
            )
            scalar = monitor.check(epoch)
            solutions, record = gate.solve_batch([epoch], [bias])
            verdict = record.verdict(0)

            if scalar.passed and scalar.excluded_prn is None:
                expected = "passed"
            elif scalar.passed:
                expected = "repaired"
            else:
                expected = "unusable"
            context = f"seed {seed}, m={epoch.satellite_count}"
            assert verdict.status == expected, context
            assert verdict.excluded_prn == scalar.excluded_prn, context
            statuses_seen.add(expected)

            # Same subset, same whitening — the statistics and gates
            # must agree to float round-off, not just the verdict.
            assert verdict.test_statistic == pytest.approx(
                scalar.test_statistic, rel=1e-9
            ), context
            assert verdict.threshold == pytest.approx(
                scalar.threshold, rel=1e-12
            ), context
            np.testing.assert_allclose(
                solutions[0], scalar.fix.position, rtol=0, atol=1e-4,
                err_msg=context,
            )
        # The population must actually exercise the interesting paths:
        # clean passes and repaired exclusions (100 m against 3 m noise
        # flags every spiked epoch).
        assert "passed" in statuses_seen
        assert "repaired" in statuses_seen


class TestShermanMorrisonAgainstDense:
    def test_loo_subsets_match_dense_gls_at_1e9(self, make_epoch):
        # Every leave-one-out subset of a spiked epoch, solved both
        # ways: the structured O(m) path the batch gate stacks, and a
        # dense Cholesky GLS on the materialized eq. 4-26 covariance.
        epoch = make_epoch(count=8, noise_sigma=1.0, seed=11)
        epoch = epoch.with_observations(
            [
                replace(obs, pseudorange=obs.pseudorange + SPIKE)
                if index == 3
                else obs
                for index, obs in enumerate(epoch.observations)
            ]
        )
        positions = epoch.satellite_positions()
        pseudoranges = epoch.pseudoranges()
        for drop in range(epoch.satellite_count):
            keep = [j for j in range(epoch.satellite_count) if j != drop]
            sub_positions = positions[keep]
            sub_ranges = pseudoranges[keep]
            design, rhs = build_difference_system(sub_positions, sub_ranges)
            diag, scale = difference_covariance_components(sub_ranges)
            sm_solution, sm_norm = gls_solve_diag_rank1(design, rhs, diag, scale)
            dense_solution, dense_norm = gls_solve_whitened(
                design, rhs, difference_covariance(sub_ranges)
            )
            np.testing.assert_allclose(
                sm_solution, dense_solution, rtol=1e-9,
                err_msg=f"drop index {drop}",
            )
            assert sm_norm == pytest.approx(dense_norm, rel=1e-9)

    def test_repaired_position_is_the_dense_subset_solution(self, make_epoch):
        # End to end: the position the batch gate serves for a repaired
        # epoch is exactly the dense GLS solution of the subset it
        # excluded.
        epoch = make_epoch(count=8, noise_sigma=1.0, seed=4)
        victim = 5
        epoch = epoch.with_observations(
            [
                replace(obs, pseudorange=obs.pseudorange + SPIKE)
                if index == victim
                else obs
                for index, obs in enumerate(epoch.observations)
            ]
        )
        gate = BatchFde(FdeConfig(sigma_meters=1.0, p_false_alarm=1e-3))
        solutions, record = gate.solve_batch([epoch], [0.0])
        verdict = record.verdict(0)
        assert verdict.status == "repaired"
        keep = [
            index
            for index, obs in enumerate(epoch.observations)
            if obs.prn != verdict.excluded_prn
        ]
        design, rhs = build_difference_system(
            epoch.satellite_positions()[keep], epoch.pseudoranges()[keep]
        )
        dense_solution, _ = gls_solve_whitened(
            design, rhs, difference_covariance(epoch.pseudoranges()[keep])
        )
        np.testing.assert_allclose(solutions[0], dense_solution, rtol=1e-9)
