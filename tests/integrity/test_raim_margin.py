"""Pinning tests for RaimMonitor's exclusion selection rule.

The scalar monitor ranks passing leave-one-out subsets by *normalized
margin* ``statistic / threshold`` with a keep-first tie-break.  The
batch FDE gate reimplements the same rule with ``argmin`` over priced
margins, so this selection behaviour is load-bearing: these tests pin
it with a scripted solver whose residual norms are chosen per subset.
"""

import numpy as np
import pytest

from repro.core.types import PositionFix
from repro.errors import GeometryError
from repro.integrity import RaimMonitor, chi_square_quantile


class ScriptedSolver:
    """Returns a scripted residual norm keyed by the dropped PRN.

    ``subset_norms[prn]`` is the norm reported when ``prn`` is absent
    from the epoch; the full constellation gets ``full_norm``.
    """

    name = "scripted"

    def __init__(self, all_prns, full_norm, subset_norms):
        self.all_prns = frozenset(all_prns)
        self.full_norm = float(full_norm)
        self.subset_norms = dict(subset_norms)

    def solve(self, epoch):
        present = {obs.prn for obs in epoch.observations}
        missing = self.all_prns - present
        if missing:
            (prn,) = missing
            norm = self.subset_norms[prn]
        else:
            norm = self.full_norm
        return PositionFix(
            position=np.zeros(3),
            clock_bias_meters=0.0,
            algorithm=self.name,
            iterations=1,
            converged=True,
            residual_norm=float(norm),
        )


def monitor_for(norms, make_epoch, count=6, full_norm=50.0):
    epoch = make_epoch(count=count)
    prns = [obs.prn for obs in epoch.observations]
    solver = ScriptedSolver(prns, full_norm, norms)
    return epoch, RaimMonitor(solver=solver, sigma_meters=1.0, p_false_alarm=1e-3)


class TestMarginSelection:
    def test_lowest_margin_wins_regardless_of_index(self, make_epoch):
        # All subsets are m=5 (dof 1, threshold ~10.83); norms below
        # sqrt(threshold) pass.  PRN 4's subset has the smallest
        # statistic, so it must be excluded even though PRN 1's subset
        # also passes and comes first.
        norms = {1: 1.0, 2: 20.0, 3: 20.0, 4: 0.5, 5: 20.0, 6: 20.0}
        epoch, monitor = monitor_for(norms, make_epoch)
        result = monitor.check(epoch)
        assert result.passed
        assert result.excluded_prn == 4
        assert result.test_statistic == pytest.approx(0.25)
        assert result.threshold == pytest.approx(
            chi_square_quantile(1.0 - 1e-3, 1), rel=1e-12
        )

    def test_equal_margins_keep_first_candidate(self, make_epoch):
        # PRNs 1 and 3 tie exactly; the rule keeps the first (lowest
        # drop index), so the selection is deterministic under
        # permutation of equal margins.
        norms = {1: 2.0, 2: 20.0, 3: 2.0, 4: 20.0, 5: 20.0, 6: 20.0}
        epoch, monitor = monitor_for(norms, make_epoch)
        result = monitor.check(epoch)
        assert result.passed
        assert result.excluded_prn == 1

    def test_no_passing_subset_is_unrepaired(self, make_epoch):
        norms = {prn: 20.0 for prn in range(1, 7)}
        epoch, monitor = monitor_for(norms, make_epoch)
        result = monitor.check(epoch)
        assert not result.passed
        assert result.excluded_prn is None
        # The reported statistic is the full-set one that flagged.
        assert result.test_statistic == pytest.approx(50.0**2)

    def test_passing_full_set_never_excludes(self, make_epoch):
        norms = {prn: 0.1 for prn in range(1, 7)}
        epoch, monitor = monitor_for(norms, make_epoch, full_norm=0.5)
        result = monitor.check(epoch)
        assert result.passed
        assert result.excluded_prn is None

    def test_five_satellites_detect_but_cannot_exclude(self, make_epoch):
        # m=5 flags but exclusion needs m - 1 >= 5 for a residual test.
        norms = {prn: 0.1 for prn in range(1, 6)}
        epoch, monitor = monitor_for(norms, make_epoch, count=5)
        result = monitor.check(epoch)
        assert not result.passed
        assert result.excluded_prn is None

    def test_four_satellites_have_no_redundancy(self, make_epoch):
        epoch, monitor = monitor_for({}, make_epoch, count=4)
        with pytest.raises(GeometryError):
            monitor.check(epoch)
