"""State-machine tests for the cross-epoch satellite health tracker.

Time here is the admission counter, so every transition is stepped
explicitly: healthy -> suspect -> quarantined -> probation -> healthy,
plus the one-strike probation rule and the reinstatement backoff that
turns a flapping satellite's quarantines exponentially longer.
"""

import pytest

from repro.errors import ConfigurationError
from repro.integrity import HEALTH_STATES, HealthConfig, SatelliteHealthTracker

ALL_PRNS = tuple(range(1, 9))


def small_config(**overrides):
    settings = dict(
        window_epochs=10,
        exclusion_threshold=2,
        quarantine_epochs=4,
        probation_epochs=2,
        backoff_factor=2.0,
        max_quarantine_epochs=100,
        min_satellites=5,
    )
    settings.update(overrides)
    return HealthConfig(**settings)


def quarantine(tracker, prn):
    """Drive ``prn`` to quarantined via threshold exclusions."""
    for _ in range(tracker.config.exclusion_threshold):
        tracker.record_exclusion(prn)
    assert tracker.state(prn) == "quarantined"


class TestTransitions:
    def test_unknown_prn_is_healthy(self):
        tracker = SatelliteHealthTracker(small_config())
        assert tracker.state(99) == "healthy"
        assert tracker.admit(ALL_PRNS) == ()

    def test_single_exclusion_is_suspect_not_quarantined(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        tracker.record_exclusion(1)
        assert tracker.state(1) == "suspect"
        assert tracker.admit(ALL_PRNS) == ()

    def test_threshold_in_window_quarantines(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        quarantine(tracker, 1)
        assert tracker.quarantined_prns() == (1,)
        assert tracker.admit(ALL_PRNS) == (1,)

    def test_exclusions_outside_window_are_forgotten(self):
        tracker = SatelliteHealthTracker(small_config(window_epochs=3))
        tracker.admit(ALL_PRNS)
        tracker.record_exclusion(1)
        for _ in range(4):  # let the first exclusion age out
            tracker.admit(ALL_PRNS)
        assert tracker.state(1) == "healthy"
        tracker.record_exclusion(1)
        assert tracker.state(1) == "suspect"  # still one short of threshold

    def test_quarantine_expires_into_probation(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)  # epoch 1
        quarantine(tracker, 1)  # until epoch 1 + 4 = 5
        for _ in range(3):  # epochs 2..4: still serving
            assert tracker.admit(ALL_PRNS) == (1,)
        assert tracker.admit(ALL_PRNS) == ()  # epoch 5: released
        assert tracker.state(1) == "probation"

    def test_probation_served_clean_returns_to_healthy(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        quarantine(tracker, 1)
        for _ in range(4):
            tracker.admit(ALL_PRNS)
        assert tracker.state(1) == "probation"
        for _ in range(tracker.config.probation_epochs):
            tracker.admit(ALL_PRNS)
            tracker.record_clean(ALL_PRNS)
        assert tracker.state(1) == "healthy"

    def test_probation_is_one_strike(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        quarantine(tracker, 1)
        for _ in range(4):
            tracker.admit(ALL_PRNS)
        assert tracker.state(1) == "probation"
        tracker.record_exclusion(1)  # one exclusion, straight back in
        assert tracker.state(1) == "quarantined"

    def test_exclusions_while_quarantined_are_ignored(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        quarantine(tracker, 1)
        tracker.record_exclusion(1)  # no double-counting
        # Still released on the original schedule.
        for _ in range(3):
            assert tracker.admit(ALL_PRNS) == (1,)
        assert tracker.admit(ALL_PRNS) == ()
        assert tracker.state(1) == "probation"


class TestBackoff:
    def test_requarantine_doubles_the_sentence(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        quarantine(tracker, 1)  # first sentence: 4 epochs
        for _ in range(4):
            tracker.admit(ALL_PRNS)
        tracker.record_exclusion(1)  # probation strike -> second sentence: 8
        served = 0
        while tracker.state(1) == "quarantined":
            tracker.admit(ALL_PRNS)
            served += 1
            assert served < 50, "quarantine never expired"
        assert served == 8

    def test_sentence_is_capped(self):
        tracker = SatelliteHealthTracker(
            small_config(quarantine_epochs=4, max_quarantine_epochs=6)
        )
        tracker.admit(ALL_PRNS)
        quarantine(tracker, 1)
        for _ in range(4):
            tracker.admit(ALL_PRNS)
        tracker.record_exclusion(1)  # backoff says 8, cap says 6
        served = 0
        while tracker.state(1) == "quarantined":
            tracker.admit(ALL_PRNS)
            served += 1
            assert served < 50
        assert served == 6


class TestAdmissionFloor:
    def test_pre_exclusion_keeps_min_satellites(self):
        tracker = SatelliteHealthTracker(
            small_config(quarantine_epochs=50, min_satellites=5)
        )
        tracker.admit(ALL_PRNS)
        for prn in (1, 2, 3, 4):
            quarantine(tracker, prn)
        # 8 satellites, floor 5: only 3 of the 4 quarantined PRNs may
        # be excluded.  Equal strikes tie-break on PRN, so 4 is the one
        # readmitted.
        assert tracker.admit(ALL_PRNS) == (1, 2, 3)

    def test_small_epoch_readmits_everything(self):
        tracker = SatelliteHealthTracker(
            small_config(quarantine_epochs=50, min_satellites=5)
        )
        tracker.admit(ALL_PRNS)
        quarantine(tracker, 1)
        assert tracker.admit((1, 2, 3, 4, 5)) == ()

    def test_worst_strikes_stay_excluded_first(self):
        tracker = SatelliteHealthTracker(
            small_config(quarantine_epochs=2, min_satellites=5)
        )
        tracker.admit(ALL_PRNS)  # epoch 1
        # PRN 7 earns two strikes: quarantine, release, re-offend.
        quarantine(tracker, 7)  # strikes 1, until epoch 3
        tracker.admit(ALL_PRNS)  # epoch 2
        tracker.admit(ALL_PRNS)  # epoch 3: released
        assert tracker.state(7) == "probation"
        tracker.record_exclusion(7)  # strikes 2, until epoch 7
        # Three more quarantined PRNs with one strike each.
        for prn in (1, 2, 3):
            quarantine(tracker, prn)  # until epoch 5
        # 7 satellites, floor 5: budget for 2 exclusions.  PRN 7 has
        # the most strikes so it stays out; the PRN tie-break among
        # the one-strike candidates keeps 1.
        assert tracker.admit((1, 2, 3, 7, 8, 9, 10)) == (1, 7)


class TestReporting:
    def test_state_counts_covers_all_states(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        tracker.record_exclusion(1)  # suspect
        quarantine(tracker, 2)  # quarantined
        counts = tracker.state_counts()
        assert set(counts) == set(HEALTH_STATES)
        assert counts["suspect"] == 1
        assert counts["quarantined"] == 1
        assert counts["healthy"] == 0  # only tracked PRNs are counted

    def test_to_dict_is_json_ready(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        quarantine(tracker, 3)
        document = tracker.to_dict()
        assert document["epoch"] == 1
        assert document["quarantined_prns"] == [3]
        assert document["config"]["exclusion_threshold"] == 2

    def test_publish_is_safe_with_telemetry_disabled(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.publish()  # must not raise


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"window_epochs": 0},
            {"exclusion_threshold": 0},
            {"quarantine_epochs": 0},
            {"probation_epochs": 0},
            {"backoff_factor": 0.5},
            {"max_quarantine_epochs": 1, "quarantine_epochs": 4},
            {"min_satellites": 3},
        ],
    )
    def test_rejects_bad_settings(self, overrides):
        with pytest.raises(ConfigurationError):
            small_config(**overrides)
