"""The ``repro.core.raim`` -> ``repro.integrity`` move keeps old imports alive."""

import warnings

import pytest

import repro.core.raim as legacy
from repro.integrity import raim as current


class TestDeprecatedShim:
    def test_old_names_resolve_to_the_moved_objects(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert legacy.RaimMonitor is current.RaimMonitor
            assert legacy.RaimResult is current.RaimResult
            assert legacy.chi_square_quantile is current.chi_square_quantile

    def test_access_emits_deprecation_warning_naming_the_new_home(self):
        with pytest.warns(DeprecationWarning, match="repro.integrity"):
            legacy.RaimMonitor

    def test_unknown_names_still_raise_attribute_error(self):
        with pytest.raises(AttributeError):
            legacy.NotARaimThing

    def test_dir_lists_the_moved_module(self):
        listing = dir(legacy)
        assert "RaimMonitor" in listing
        assert "chi_square_quantile" in listing
