"""The FDE chaos harness: determinism, grading, and gate arithmetic.

The CI job runs the full 400-scenario population through the CLI;
these tests keep the harness itself honest on a small population —
same config twice must grade identically, the category counts must
partition the population, and the gates must be pure functions of the
counts.
"""

import pytest

from repro.errors import ConfigurationError
from repro.validation import FdeChaosConfig, FdeChaosReport, run_fde_chaos

SMALL = FdeChaosConfig(scenarios=40, start_seed=0)


@pytest.fixture(scope="module")
def small_report():
    return run_fde_chaos(SMALL)


class TestDeterminism:
    def test_same_config_same_report(self, small_report):
        again = run_fde_chaos(FdeChaosConfig(scenarios=40, start_seed=0))
        assert again.to_dict() == small_report.to_dict()

    def test_population_partitions(self, small_report):
        report = small_report
        assert report.clean + report.faulted == SMALL.scenarios
        assert (
            report.identified
            + report.misidentified
            + report.detected_unrepaired
            + report.missed
            == report.faulted
        )
        assert report.false_alarms <= report.clean
        # fault_rate 0.5 over 40 seeds: both halves must be populated.
        assert report.faulted > 0 and report.clean > 0

    def test_mistakes_reference_real_seeds(self, small_report):
        seed_band = range(SMALL.start_seed, SMALL.start_seed + SMALL.scenarios)
        for case in small_report.mistakes:
            assert case.seed in seed_band

    def test_zero_fault_rate_is_all_clean(self):
        report = run_fde_chaos(
            FdeChaosConfig(scenarios=10, start_seed=0, fault_rate=0.0)
        )
        assert report.faulted == 0
        assert report.clean == 10
        assert report.identification_rate == 1.0  # vacuous gate holds


class TestGateArithmetic:
    def build(self, **overrides):
        fields = dict(
            config=FdeChaosConfig(),
            faulted=100,
            identified=96,
            misidentified=2,
            detected_unrepaired=1,
            missed=1,
            clean=100,
            false_alarms=1,
            mistakes=(),
        )
        fields.update(overrides)
        return FdeChaosReport(**fields)

    def test_passing_report(self):
        report = self.build()
        assert report.identification_rate == pytest.approx(0.96)
        assert report.false_alarm_rate == pytest.approx(0.01)
        assert report.identification_ok and report.false_alarm_ok and report.ok

    def test_identification_floor_fails_the_run(self):
        report = self.build(identified=90, misidentified=8)
        assert not report.identification_ok
        assert not report.ok

    def test_false_alarm_budget_fails_the_run(self):
        # Default budget: 2.0 x 0.01 = 2% of clean epochs.
        report = self.build(false_alarms=3)
        assert not report.false_alarm_ok
        assert not report.ok

    def test_to_dict_carries_both_gates(self):
        document = self.build().to_dict()
        assert document["ok"] is True
        assert document["gates"]["identification"]["passed"] is True
        assert document["gates"]["false_alarm"]["budget"] == pytest.approx(0.02)
        assert document["config"]["scenarios"] == 400


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"scenarios": 0},
            {"spike_meters": 0.0},
            {"fault_rate": 1.5},
            {"sigma_meters": 0.0},
            {"p_false_alarm": 0.0},
            {"min_satellites": 5},
            {"max_satellites": 4},
            {"identification_floor": 0.0},
            {"false_alarm_slack": 0.5},
        ],
    )
    def test_rejects_bad_settings(self, overrides):
        with pytest.raises(ConfigurationError):
            FdeChaosConfig(**overrides)
