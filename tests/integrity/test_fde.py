"""Unit tests for the batch FDE gate and its compact record type."""

from dataclasses import replace

import numpy as np
import pytest

from repro.engine import PositioningEngine
from repro.errors import ConfigurationError
from repro.integrity import (
    NO_EXCLUSION,
    BatchFde,
    FdeConfig,
    FdeRecord,
    STATUS_PASSED,
    STATUS_REPAIRED,
    STATUS_UNCHECKED,
    STATUS_UNUSABLE,
    chi_square_quantile,
)

SIGMA = 0.5


def spike(epoch, index, magnitude=200.0):
    """The epoch with ``magnitude`` meters added to one pseudorange."""
    observations = [
        replace(obs, pseudorange=obs.pseudorange + magnitude) if j == index else obs
        for j, obs in enumerate(epoch.observations)
    ]
    return epoch.with_observations(observations)


@pytest.fixture
def fde():
    return BatchFde(FdeConfig(sigma_meters=SIGMA, p_false_alarm=1e-3))


class TestDetection:
    def test_clean_stream_all_pass(self, make_stream, fde):
        epochs = make_stream(12, count=8, noise_sigma=SIGMA)
        solutions, record = fde.solve_batch(epochs, np.zeros(12))
        assert record.counts() == {
            "passed": 12, "repaired": 0, "unusable": 0, "unchecked": 0
        }
        assert record.usable.all()
        assert (record.excluded_prns == NO_EXCLUSION).all()
        # 0.5 m range noise amplified by dilution of precision: position
        # errors stay meter-scale, nowhere near a detectable fault.
        truth = np.stack([e.truth.receiver_position for e in epochs])
        assert np.linalg.norm(solutions - truth, axis=1).max() < 20.0
        # The stored gate is the m=8 detection threshold for every row.
        expected = chi_square_quantile(1.0 - 1e-3, 4)
        np.testing.assert_allclose(record.thresholds, expected)

    def test_noise_free_statistics_are_tiny(self, make_stream, fde):
        epochs = make_stream(4, count=8, noise_sigma=0.0)
        _, record = fde.solve_batch(epochs, np.zeros(4))
        assert (record.statuses == STATUS_PASSED).all()
        assert record.statistics.max() < 1e-6

    def test_four_satellites_are_unchecked(self, make_stream, fde):
        epochs = make_stream(3, count=4)
        solutions, record = fde.solve_batch(epochs, np.zeros(3))
        assert (record.statuses == STATUS_UNCHECKED).all()
        assert np.isnan(record.statistics).all()
        assert np.isnan(record.thresholds).all()
        assert not record.usable.any()
        # Positions still solve; only the integrity verdict is absent.
        truth = np.stack([e.truth.receiver_position for e in epochs])
        assert np.linalg.norm(solutions - truth, axis=1).max() < 1e-3


class TestExclusion:
    def test_spiked_epoch_repaired_with_correct_prn(self, make_stream, fde):
        epochs = make_stream(8, count=8, noise_sigma=SIGMA)
        victim = 2  # PRN 3
        epochs[3] = spike(epochs[3], victim)
        solutions, record = fde.solve_batch(epochs, np.zeros(8))
        verdict = record.verdict(3)
        assert verdict.status == "repaired"
        assert verdict.usable
        assert verdict.excluded_prn == epochs[3].observations[victim].prn
        assert verdict.test_statistic <= verdict.threshold
        # Repaired rows carry the post-exclusion threshold (one fewer
        # satellite, one fewer degree of freedom).
        assert verdict.threshold == pytest.approx(
            chi_square_quantile(1.0 - 1e-3, 3), rel=1e-12
        )
        # The repaired position is clean again.
        error = np.linalg.norm(
            solutions[3] - epochs[3].truth.receiver_position
        )
        assert error < 5.0
        # The batchmates are untouched.
        others = [i for i in range(8) if i != 3]
        assert (record.statuses[others] == STATUS_PASSED).all()

    def test_five_satellites_flag_but_cannot_exclude(self, make_stream, fde):
        epochs = make_stream(4, count=5, noise_sigma=SIGMA)
        epochs[1] = spike(epochs[1], 0)
        _, record = fde.solve_batch(epochs, np.zeros(4))
        assert record.statuses[1] == STATUS_UNUSABLE
        assert record.excluded_prns[1] == NO_EXCLUSION
        assert not record.verdict(1).usable

    def test_detect_only_mode_skips_exclusion(self, make_stream):
        gate = BatchFde(
            FdeConfig(sigma_meters=SIGMA, p_false_alarm=1e-3, exclude=False)
        )
        epochs = make_stream(4, count=8, noise_sigma=SIGMA)
        epochs[2] = spike(epochs[2], 4)
        _, record = gate.solve_batch(epochs, np.zeros(4))
        assert record.statuses[2] == STATUS_UNUSABLE
        assert record.excluded_prns[2] == NO_EXCLUSION

    def test_unusable_rows_keep_full_set_solution(self, make_stream):
        gate = BatchFde(
            FdeConfig(sigma_meters=SIGMA, p_false_alarm=1e-3, exclude=False)
        )
        plain = BatchFde(FdeConfig(sigma_meters=SIGMA, p_false_alarm=1e-3))
        epochs = make_stream(2, count=8, noise_sigma=SIGMA)
        epochs[0] = spike(epochs[0], 1)
        detect_only, _ = gate.solve_batch(epochs, np.zeros(2))
        with_repair, record = plain.solve_batch(epochs, np.zeros(2))
        # Detect-only keeps the contaminated full-set position; the
        # repairing gate replaces it.
        assert record.statuses[0] == STATUS_REPAIRED
        assert np.linalg.norm(detect_only[0] - with_repair[0]) > 1.0


class TestFdeRecord:
    def test_scatter_reassembles_stream_order(self):
        bucket_a = FdeRecord(
            statuses=np.array([STATUS_PASSED, STATUS_REPAIRED], dtype=np.int8),
            statistics=np.array([1.0, 2.0]),
            thresholds=np.array([9.0, 9.0]),
            excluded_prns=np.array([NO_EXCLUSION, 7], dtype=np.int32),
        )
        bucket_b = FdeRecord(
            statuses=np.array([STATUS_UNUSABLE], dtype=np.int8),
            statistics=np.array([30.0]),
            thresholds=np.array([9.0]),
            excluded_prns=np.array([NO_EXCLUSION], dtype=np.int32),
        )
        merged = FdeRecord.scatter([((0, 3), bucket_a), ((1,), bucket_b)], total=4)
        assert len(merged) == 4
        assert merged.verdict(0).status == "passed"
        assert merged.verdict(1).status == "unusable"
        assert merged.verdict(2).status == "unchecked"  # unclaimed row
        assert merged.verdict(3).status == "repaired"
        assert merged.verdict(3).excluded_prn == 7
        assert np.isnan(merged.statistics[2])

    def test_counts_and_to_dict(self):
        record = FdeRecord(
            statuses=np.array(
                [STATUS_PASSED, STATUS_REPAIRED, STATUS_REPAIRED], dtype=np.int8
            ),
            statistics=np.array([1.0, 2.0, 3.0]),
            thresholds=np.array([9.0, 7.0, 7.0]),
            excluded_prns=np.array([NO_EXCLUSION, 5, 5], dtype=np.int32),
        )
        assert record.counts() == {
            "passed": 1, "repaired": 2, "unusable": 0, "unchecked": 0
        }
        document = record.to_dict()
        assert document["counts"]["repaired"] == 2
        assert document["excluded_prn_counts"] == {"5": 2}

    def test_unchecked_constructor(self):
        record = FdeRecord.unchecked(3)
        assert len(record) == 3
        assert (record.statuses == STATUS_UNCHECKED).all()
        assert not record.usable.any()

    def test_verdicts_materializes_all(self):
        record = FdeRecord.unchecked(2)
        assert [v.status for v in record.verdicts()] == ["unchecked", "unchecked"]


class TestConfig:
    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ConfigurationError):
            FdeConfig(sigma_meters=0.0)

    @pytest.mark.parametrize("pfa", [0.0, 1.0, -0.1])
    def test_rejects_false_alarm_outside_open_interval(self, pfa):
        with pytest.raises(ConfigurationError):
            FdeConfig(p_false_alarm=pfa)

    def test_to_dict_round_trips_fields(self):
        config = FdeConfig(sigma_meters=2.0, p_false_alarm=1e-2, exclude=False)
        assert config.to_dict() == {
            "sigma_meters": 2.0, "p_false_alarm": 1e-2, "exclude": False
        }


class TestEngineIntegration:
    def test_fde_requires_dlg(self):
        with pytest.raises(ConfigurationError):
            PositioningEngine(algorithm="dlo", fde_config=FdeConfig())

    def test_stream_verdicts_cover_drops_and_small_buckets(self, make_stream):
        # Mixed stream: full buckets are screened, the m=4 epoch has no
        # redundancy, and the undersized epoch is dropped — all three
        # must land in one stream-ordered record.
        epochs = make_stream(5, count=[8, 4, 8, 3, 8], noise_sigma=SIGMA)
        epochs[2] = spike(epochs[2], 5)
        engine = PositioningEngine(
            algorithm="dlg",
            fde_config=FdeConfig(sigma_meters=SIGMA, p_false_alarm=1e-3),
        )
        result = engine.solve_stream(
            epochs, biases=np.zeros(5), on_undersized="drop"
        )
        fde = result.diagnostics.fde
        assert fde is not None and len(fde) == 5
        assert fde.verdict(0).status == "passed"
        assert fde.verdict(1).status == "unchecked"  # m=4: no test
        assert fde.verdict(2).status == "repaired"
        assert fde.verdict(3).status == "unchecked"  # dropped epoch
        assert fde.verdict(4).status == "passed"
        assert fde.verdict(2).excluded_prn == epochs[2].observations[5].prn

    def test_plain_engine_reports_no_fde(self, make_stream):
        engine = PositioningEngine(algorithm="dlg")
        assert not engine.fde_enabled
        result = engine.solve_stream(
            make_stream(2, count=8), biases=np.zeros(2)
        )
        assert result.diagnostics.fde is None
