"""Monitor-strike interplay with the satellite health tracker.

Property tests for the three contracts ISSUE 10 pins down: the
``min_satellites`` admission floor holds under arbitrary monitor-driven
quarantine pressure, reinstatement backoff still compounds when the
strikes come from monitors, and a monitor strike plus an FDE exclusion
against the same PRN in one admitted epoch count as ONE piece of
evidence, never two.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity import HealthConfig, SatelliteHealthTracker

ALL_PRNS = tuple(range(1, 11))


def small_config(**overrides):
    settings_ = dict(
        window_epochs=10,
        exclusion_threshold=2,
        quarantine_epochs=4,
        probation_epochs=2,
        backoff_factor=2.0,
        max_quarantine_epochs=100,
        min_satellites=5,
    )
    settings_.update(overrides)
    return HealthConfig(**settings_)


def monitor_quarantine(tracker, prn):
    """Drive ``prn`` to quarantined via monitor strikes alone."""
    while tracker.state(prn) != "quarantined":
        tracker.admit(ALL_PRNS)
        assert tracker.record_monitor_strike(prn)


class TestAdmissionFloor:
    @given(
        struck=st.lists(
            st.sampled_from(ALL_PRNS), min_size=1, max_size=10, unique=True
        ),
        min_satellites=st.integers(min_value=4, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_floor_holds_under_any_monitor_pressure(
        self, struck, min_satellites
    ):
        tracker = SatelliteHealthTracker(
            small_config(min_satellites=min_satellites)
        )
        for prn in struck:
            monitor_quarantine(tracker, prn)
        excluded = tracker.admit(ALL_PRNS)
        assert len(ALL_PRNS) - len(excluded) >= min_satellites
        assert set(excluded) <= set(struck)

    def test_worst_strikers_stay_excluded_when_trimming(self):
        tracker = SatelliteHealthTracker(small_config(min_satellites=8))
        # PRN 1 earns two quarantines (more strikes), PRNs 2-3 one each.
        monitor_quarantine(tracker, 1)
        for _ in range(200):
            if tracker.state(1) != "quarantined":
                break
            tracker.admit(ALL_PRNS)
        monitor_quarantine(tracker, 1)
        monitor_quarantine(tracker, 2)
        monitor_quarantine(tracker, 3)
        excluded = tracker.admit(ALL_PRNS)
        # Budget is 10 - 8 = 2: the twice-struck PRN 1 must survive the
        # trim, and the deterministic PRN tie-break picks 2 over 3.
        assert len(excluded) == 2
        assert 1 in excluded


class TestBackoffParity:
    @given(rounds=st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_monitor_driven_backoff_compounds_like_fde(self, rounds):
        config = small_config()
        by_monitor = SatelliteHealthTracker(config)
        by_fde = SatelliteHealthTracker(config)
        durations = {"monitor": [], "fde": []}
        for _ in range(rounds):
            monitor_quarantine(by_monitor, 7)
            start = by_monitor.epoch
            while by_monitor.state(7) == "quarantined":
                by_monitor.admit(ALL_PRNS)
            durations["monitor"].append(by_monitor.epoch - start)

            while by_fde.state(7) != "quarantined":
                by_fde.admit(ALL_PRNS)
                by_fde.record_exclusion(7)
            start = by_fde.epoch
            while by_fde.state(7) == "quarantined":
                by_fde.admit(ALL_PRNS)
            durations["fde"].append(by_fde.epoch - start)
        # Same backoff schedule regardless of the strike source, and
        # strictly growing until the cap.
        assert durations["monitor"] == durations["fde"]
        uncapped = [
            d
            for d in durations["monitor"]
            if d < config.max_quarantine_epochs
        ]
        assert uncapped == sorted(uncapped)
        assert len(set(uncapped)) == len(uncapped)

    def test_probation_one_strike_applies_to_monitor_strikes(self):
        tracker = SatelliteHealthTracker(small_config())
        monitor_quarantine(tracker, 4)
        while tracker.state(4) == "quarantined":
            tracker.admit(ALL_PRNS)
        assert tracker.state(4) == "probation"
        tracker.admit(ALL_PRNS)
        assert tracker.record_monitor_strike(4)
        assert tracker.state(4) == "quarantined"


class TestSameEpochDedup:
    @given(
        order=st.permutations(["fde", "monitor"]),
        threshold=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_fde_and_monitor_same_epoch_count_once(self, order, threshold):
        tracker = SatelliteHealthTracker(
            small_config(exclusion_threshold=threshold)
        )
        # threshold - 1 epochs of double strikes must NOT quarantine;
        # with double counting they would after ceil(threshold / 2).
        for _ in range(threshold - 1):
            tracker.admit(ALL_PRNS)
            for source in order:
                if source == "fde":
                    tracker.record_exclusion(9)
                else:
                    tracker.record_monitor_strike(9)
            assert tracker.state(9) == "suspect"
        tracker.admit(ALL_PRNS)
        tracker.record_monitor_strike(9)
        assert tracker.state(9) == "quarantined"

    def test_monitor_strike_after_fde_reports_deduped(self):
        tracker = SatelliteHealthTracker(small_config())
        tracker.admit(ALL_PRNS)
        tracker.record_exclusion(5)
        assert tracker.record_monitor_strike(5) is False
        tracker.admit(ALL_PRNS)
        assert tracker.record_monitor_strike(5) is True

    def test_repeat_monitor_strikes_same_epoch_count_once(self):
        tracker = SatelliteHealthTracker(
            small_config(exclusion_threshold=2)
        )
        tracker.admit(ALL_PRNS)
        assert tracker.record_monitor_strike(6) is True
        assert tracker.record_monitor_strike(6) is False
        assert tracker.state(6) == "suspect"

    def test_strike_against_quarantined_prn_is_ignored(self):
        tracker = SatelliteHealthTracker(small_config())
        monitor_quarantine(tracker, 2)
        until = tracker._records[2].quarantine_until
        tracker.admit(ALL_PRNS)
        assert tracker.record_monitor_strike(2) is False
        # The sentence is unchanged — no re-quarantine, no extension.
        assert tracker._records[2].quarantine_until == until
