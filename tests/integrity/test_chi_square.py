"""Regression tests for the chi-square quantile, exact at one dof.

The dof == 1 case is RAIM's m=5 detection gate *and* every m=6
exclusion subset's test, so it must be exact, not Wilson-Hilferty
(whose cube-root normalization is off by several percent there).  The
identity ``chi2_1(p) = Phi^-1((1 + p) / 2)^2`` reduces the quantile to
Acklam's normal quantile, accurate to ~1e-9 relative — these checks
pin that tightly against textbook table values.
"""

import pytest

from repro.errors import ConfigurationError
from repro.integrity import chi_square_quantile

#: Exact chi-square quantiles at one degree of freedom (upper-tail
#: probabilities RAIM actually uses).  Values from the standard normal
#: quantile squared, 7 significant digits.
DOF1_TABLE = (
    (0.90, 2.705543),
    (0.95, 3.841459),
    (0.975, 5.023886),
    (0.99, 6.634897),
    (0.999, 10.827566),
    (0.9999, 15.136705),
)


class TestDofOneExact:
    @pytest.mark.parametrize("probability, expected", DOF1_TABLE)
    def test_matches_exact_table(self, probability, expected):
        # 1e-6 relative: far tighter than Wilson-Hilferty could pass
        # (its dof=1 error is percent-scale), well inside Acklam's
        # ~1e-9 accuracy.
        assert chi_square_quantile(probability, 1) == pytest.approx(
            expected, rel=1e-6
        )

    def test_wilson_hilferty_would_fail_this(self):
        # Guard the guard: the dof=1 branch must NOT be the dof>=2
        # approximation.  Evaluate Wilson-Hilferty by hand at dof=1 and
        # confirm it is percent-level wrong where the identity is exact.
        import math

        z = 3.090232  # Phi^-1(0.999)
        wilson_hilferty = 1.0 * (
            1.0 - 2.0 / 9.0 + z * math.sqrt(2.0 / 9.0)
        ) ** 3
        assert abs(wilson_hilferty - 10.827566) / 10.827566 > 0.01
        assert chi_square_quantile(0.999, 1) == pytest.approx(
            10.827566, rel=1e-6
        )


class TestHigherDof:
    @pytest.mark.parametrize(
        "probability, dof, expected",
        [
            (0.95, 2, 5.991),
            (0.99, 2, 9.210),
            (0.95, 5, 11.070),
            (0.99, 8, 20.090),
        ],
    )
    def test_wilson_hilferty_within_a_percent(self, probability, dof, expected):
        assert chi_square_quantile(probability, dof) == pytest.approx(
            expected, rel=0.02
        )

    def test_monotone_in_probability_and_dof(self):
        for dof in (1, 2, 5):
            assert chi_square_quantile(0.99, dof) > chi_square_quantile(0.95, dof)
        for probability in (0.95, 0.999):
            assert chi_square_quantile(probability, 3) > chi_square_quantile(
                probability, 1
            )


class TestValidation:
    @pytest.mark.parametrize("probability", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_probability_outside_open_interval(self, probability):
        with pytest.raises(ConfigurationError):
            chi_square_quantile(probability, 1)

    def test_rejects_nonpositive_dof(self):
        with pytest.raises(ConfigurationError):
            chi_square_quantile(0.95, 0)
