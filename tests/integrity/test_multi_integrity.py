"""Integrity under per-constellation solving: dof, chi-square, FDE.

The widened state changes the redundancy bookkeeping everywhere a
chi-square test runs: NR has ``m - 3 - K`` residual dof, the
differenced solvers ``m - 3 - 2K``, and exclusion must never drop a
satellite whose constellation would be left a singleton.
"""

import math

import numpy as np
import pytest

from repro.api import SolverConfig, build_scene
from repro.blocks import EpochBlock
from repro.errors import ConfigurationError
from repro.integrity import BatchFde, FdeConfig, RaimMonitor, chi_square_quantile
from dataclasses import replace as dataclass_replace
from repro.solvers import BatchDLGSolver

GR_BIASES = {"G": 120.0, "R": -45.0}


def multi_epochs(count=8, noise_sigma=3.0, lanes=None):
    lanes = {"G": 6, "R": 5} if lanes is None else lanes
    return [
        build_scene(
            lanes, clock_bias_meters=GR_BIASES, seed=seed, noise_sigma=noise_sigma
        )
        for seed in range(count)
    ]


def spike(epoch, slot, offset_meters):
    observations = list(epoch.observations)
    target = observations[slot]
    observations[slot] = dataclass_replace(
        target, pseudorange=target.pseudorange + offset_meters
    )
    return dataclass_replace(epoch, observations=tuple(observations))


class TestChiSquareQuantile:
    def test_dof_1_is_squared_normal_quantile(self):
        # chi2_1(0.95) = Phi^-1(0.975)^2 = 1.959964^2
        assert chi_square_quantile(0.95, 1) == pytest.approx(3.841459, abs=1e-4)

    def test_dof_2_is_exponential(self):
        for p in (0.5, 0.9, 0.99, 0.999):
            assert chi_square_quantile(p, 2) == pytest.approx(
                -2.0 * math.log(1.0 - p), rel=1e-12
            )

    def test_dof_3_reference_value(self):
        # Wilson-Hilferty at chi2_3(0.95): exact value 7.8147, the
        # approximation is good to ~0.5% here.
        assert chi_square_quantile(0.95, 3) == pytest.approx(7.8147, rel=1e-2)

    def test_monotone_in_dof(self):
        values = [chi_square_quantile(0.99, dof) for dof in range(1, 12)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            chi_square_quantile(0.0, 4)
        with pytest.raises(ConfigurationError):
            chi_square_quantile(1.0, 4)
        with pytest.raises(ConfigurationError):
            chi_square_quantile(0.95, 0)


class TestRaimMultiDof:
    @pytest.mark.parametrize("algorithm,dof", [("nr", 6), ("dlo", 4), ("dlg", 4)])
    def test_monitor_uses_solver_dof(self, algorithm, dof):
        # m=11, K=2: NR dof = 11-3-2, differenced dof = 11-3-4.
        solver = SolverConfig(
            algorithm=algorithm, constellations="per_constellation"
        ).build_solver()
        monitor = RaimMonitor(solver=solver)
        epoch = multi_epochs(count=1, noise_sigma=0.0)[0]
        assert monitor._solver_dof(epoch) == dof
        result = monitor.check(epoch)
        assert result.passed

    def test_duck_typed_fallback_is_m_minus_4(self, make_epoch):
        class ScriptedSolver:
            def solve(self, epoch):
                raise NotImplementedError

        monitor = RaimMonitor(solver=ScriptedSolver())
        assert monitor._solver_dof(make_epoch(count=9)) == 5


class TestMultiFde:
    def fde(self, **config):
        solver = BatchDLGSolver(constellations="per_constellation")
        return BatchFde(config=FdeConfig(**config), solver=solver)

    def test_clean_stream_passes(self):
        epochs = multi_epochs()
        block = EpochBlock.from_epochs(epochs)
        result, record = self.fde(sigma_meters=5.0).solve_block_multi(block)
        counts = record.counts()
        assert counts["passed"] == len(epochs)
        assert counts["unusable"] == counts["repaired"] == 0
        truth = np.stack([epoch.truth.receiver_position for epoch in epochs])
        assert np.max(np.linalg.norm(result.positions - truth, axis=1)) < 50.0

    def test_spiked_epoch_repaired_with_prn_identified(self):
        epochs = multi_epochs()
        spiked_slot = 2  # a G satellite in a 6-strong constellation
        injected_prn = epochs[3].observations[spiked_slot].prn
        epochs[3] = spike(epochs[3], spiked_slot, 500.0)
        block = EpochBlock.from_epochs(epochs)
        result, record = self.fde(sigma_meters=5.0).solve_block_multi(block)
        verdict = record.verdict(3)
        assert verdict.status == "repaired"
        assert verdict.excluded_prn == injected_prn
        truth = epochs[3].truth.receiver_position
        assert np.linalg.norm(result.positions[3] - truth) < 50.0
        # Repaired rows update the bias lanes in place too.
        assert result.constellation_biases[3, 0] == pytest.approx(120.0, abs=50.0)

    def test_exclusion_never_drops_into_a_singleton(self):
        # R contributes exactly 2 satellites.  A detectable G fault must
        # repair by dropping the spiked G satellite — never an R one,
        # whose survivor would be a singleton with an unobservable bias.
        epochs = multi_epochs(lanes={"G": 7, "R": 2})
        g_slot = 2
        assert epochs[1].observations[g_slot].system == "G"
        injected_prn = epochs[1].observations[g_slot].prn
        epochs[1] = spike(epochs[1], g_slot, 500.0)
        block = EpochBlock.from_epochs(epochs)
        _result, record = self.fde(sigma_meters=5.0).solve_block_multi(block)
        verdict = record.verdict(1)
        assert verdict.status == "repaired"
        assert verdict.excluded_prn == injected_prn
        excluded_slot = [obs.prn for obs in epochs[1].observations].index(
            verdict.excluded_prn
        )
        assert epochs[1].observations[excluded_slot].system == "G"

    def test_two_satellite_constellation_fault_aliases_into_its_bias(self):
        # A 2-satellite constellation contributes one differenced
        # equation with its own free bias unknown, so a fault there is
        # invisible to the residual test by construction: the epoch
        # passes, the position (carried by the other constellation)
        # stays accurate, and the spike lands in the faulty system's
        # bias lane.
        epochs = multi_epochs(lanes={"G": 7, "R": 2}, noise_sigma=1.0)
        r_slot = 7
        assert epochs[1].observations[r_slot].system == "R"
        epochs[1] = spike(epochs[1], r_slot, 500.0)
        block = EpochBlock.from_epochs(epochs)
        result, record = self.fde(sigma_meters=5.0).solve_block_multi(block)
        assert record.verdict(1).status == "passed"
        truth = epochs[1].truth.receiver_position
        assert np.linalg.norm(result.positions[1] - truth) < 20.0
        r_lane = result.systems.index("R")
        assert abs(result.constellation_biases[1, r_lane] - (-45.0)) > 200.0

    def test_detection_floor_is_4_plus_2k(self):
        # m=7, K=2: dof = 7-3-4 = 0 -> no test possible, all unchecked.
        epochs = multi_epochs(lanes={"G": 4, "R": 3})
        block = EpochBlock.from_epochs(epochs)
        _result, record = self.fde(sigma_meters=5.0).solve_block_multi(block)
        assert record.counts()["unchecked"] == len(epochs)
