"""Tests for the signal-plausibility monitor plane.

Structured around the suite's three contracts:

* **Detection** — each spoof/interference signature trips the monitor
  built for it (uniform meaconed C/N0 → consistency, common-mode
  suppression → AGC proxy, pseudorange ramp → clock drift, fix walk →
  stationarity, per-satellite power step → drop), while a clean seeded
  stream stays nominal end to end.
* **Graceful escalation** — raw breaches are ``suspect``; only M-of-N
  persistence confirms ``spoofed``.
* **Batch-boundary independence** — chopping one stream into any batch
  sizes yields bitwise-identical severities and statistics, the
  invariant shard parity rests on.
"""

import numpy as np
import pytest

from repro.blocks import pack_stream
from repro.errors import ConfigurationError
from repro.integrity import (
    AndFiltered,
    EpochMonitorVerdict,
    MOfNFiltered,
    MonitorConfig,
    MonitorSuite,
    MonitorVerdict,
    SEVERITY_NOMINAL,
)
from repro.integrity.monitors import MonitorOutput, StreamingMonitor
from repro.observations import EpochTruth, ObservationEpoch, SatelliteObservation
from repro.signals import SignalFeatureModel
from repro.timebase import GpsTime

TRUTH = np.array([3623420.0, -5214015.0, 602359.0])
N_EPOCHS = 40


def build_epoch(t, count=8, seed=7, cn0_override=None, range_extra=0.0):
    """One synthetic epoch; same satellite geometry for every ``t``."""
    rng = np.random.default_rng(seed)
    up = TRUTH / np.linalg.norm(TRUTH)
    observations = []
    for prn in range(1, count + 1):
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        direction += up
        direction /= np.linalg.norm(direction)
        position = TRUTH + direction * rng.uniform(2.0e7, 2.6e7)
        pseudorange = float(np.linalg.norm(position - TRUTH)) + range_extra
        observations.append(
            SatelliteObservation(
                prn=prn,
                position=position,
                pseudorange=pseudorange,
                cn0_dbhz=cn0_override,
            )
        )
    return ObservationEpoch(
        time=GpsTime(week=1540, seconds_of_week=float(t)),
        observations=tuple(observations),
        truth=EpochTruth(receiver_position=TRUTH, clock_bias_meters=0.0),
    )


@pytest.fixture
def clean_stream():
    """40 epochs with realistic seeded C/N0 plus noisy solved fixes."""
    model = SignalFeatureModel(seed=42)
    epochs = [model.attach(build_epoch(t)) for t in range(N_EPOCHS)]
    positions = np.tile(TRUTH, (N_EPOCHS, 1)) + np.random.default_rng(1).normal(
        0.0, 2.0, (N_EPOCHS, 3)
    )
    return epochs, positions


def shift_cn0(epoch, delta, prns=None):
    """A copy of ``epoch`` with C/N0 shifted by ``delta`` (dB)."""
    observations = [
        SatelliteObservation(
            prn=obs.prn,
            position=obs.position,
            pseudorange=obs.pseudorange,
            system=obs.system,
            cn0_dbhz=(
                obs.cn0_dbhz + delta
                if obs.cn0_dbhz is not None and (prns is None or obs.prn in prns)
                else obs.cn0_dbhz
            ),
        )
        for obs in epoch.observations
    ]
    return epoch.with_observations(observations)


class TestVerdictObjects:
    def test_monitor_verdict_round_trips(self):
        verdict = MonitorVerdict(
            monitor="cn0_drop",
            severity="suspect",
            statistic=9.5,
            threshold=8.0,
            flagged=("G03", "G07"),
        )
        assert MonitorVerdict.from_dict(verdict.to_dict()) == verdict

    def test_epoch_verdict_round_trips_and_unions_flags(self):
        epoch_verdict = EpochMonitorVerdict(
            severity="spoofed",
            monitors=(
                MonitorVerdict("a", "spoofed", 1.0, 0.5, ("G07", "G03")),
                MonitorVerdict("b", "suspect", 2.0, 1.5, ("G03", "E01")),
            ),
        )
        assert epoch_verdict.flagged == ("E01", "G03", "G07")
        rebuilt = EpochMonitorVerdict.from_dict(epoch_verdict.to_dict())
        assert rebuilt == epoch_verdict


class TestCleanStream:
    def test_everything_nominal(self, clean_stream):
        epochs, positions = clean_stream
        record = MonitorConfig().build().observe_stream(
            pack_stream(epochs), positions
        )
        assert record.counts() == {
            "nominal": N_EPOCHS,
            "suspect": 0,
            "spoofed": 0,
        }
        assert record.verdict(0) is None
        assert record.flagged_keys(0) == ()

    def test_stream_without_cn0_lane_keeps_cn0_monitors_silent(self):
        epochs = [build_epoch(t) for t in range(N_EPOCHS)]  # no C/N0
        positions = np.tile(TRUTH, (N_EPOCHS, 1))
        record = MonitorConfig().build().observe_stream(
            pack_stream(epochs), positions
        )
        assert int(record.severities.max()) == SEVERITY_NOMINAL

    def test_failed_solves_are_skipped(self, clean_stream):
        epochs, positions = clean_stream
        holed = positions.copy()
        holed[5] = np.nan
        holed[21] = np.nan
        record = MonitorConfig().build().observe_stream(
            pack_stream(epochs), holed
        )
        assert int(record.severities.max()) == SEVERITY_NOMINAL


class TestDetection:
    def test_uniform_cn0_trips_consistency(self, clean_stream):
        epochs, positions = clean_stream
        # Meaconing signature: one transmitter hands every channel the
        # same power, erasing the elevation dependence.
        attacked = epochs[:20] + [
            build_epoch(t, cn0_override=45.0) for t in range(20, N_EPOCHS)
        ]
        record = MonitorConfig().build().observe_stream(
            pack_stream(attacked), positions
        )
        assert int(record.severities[:20].max()) == SEVERITY_NOMINAL
        assert (record.severities[20:] == 2).any()
        verdict = record.verdict(int(np.flatnonzero(record.severities == 2)[0]))
        assert "cn0_consistency" in {v.monitor for v in verdict.monitors}

    def test_common_mode_suppression_trips_agc_proxy(self, clean_stream):
        epochs, positions = clean_stream
        attacked = [
            shift_cn0(epoch, -min(14.0, max(0.0, (t - 14) * 0.8)))
            for t, epoch in enumerate(epochs)
        ]
        record = MonitorConfig().build().observe_stream(
            pack_stream(attacked), positions
        )
        first_spoofed = np.flatnonzero(record.severities == 2)
        assert len(first_spoofed)
        verdict = record.verdict(int(first_spoofed[0]))
        assert "cn0_agc" in {v.monitor for v in verdict.monitors}

    def test_deep_suppression_trips_absolute_threshold(self, clean_stream):
        epochs, positions = clean_stream
        attacked = epochs[:20] + [
            shift_cn0(epoch, -25.0) for epoch in epochs[20:]
        ]
        record = MonitorConfig().build().observe_stream(
            pack_stream(attacked), positions
        )
        verdict = record.verdict(int(np.flatnonzero(record.severities == 2)[0]))
        assert "cn0_threshold" in {v.monitor for v in verdict.monitors}

    def test_per_satellite_power_step_flags_the_satellite(self, clean_stream):
        epochs, positions = clean_stream
        attacked = epochs[:20] + [
            shift_cn0(epoch, -12.0, prns={3}) for epoch in epochs[20:]
        ]
        record = MonitorConfig().build().observe_stream(
            pack_stream(attacked), positions
        )
        assert int(record.severities[20]) >= 1
        verdict = record.verdict(20)
        drop = {v.monitor: v for v in verdict.monitors}["cn0_drop"]
        assert drop.flagged == ("G03",)
        # prn*4 + system id (GPS=0)
        assert record.flagged_keys(20) == (12,)

    def test_pseudorange_ramp_trips_clock_drift(self, clean_stream):
        epochs, positions = clean_stream
        model = SignalFeatureModel(seed=42)
        attacked = [
            model.attach(
                build_epoch(t, range_extra=max(0.0, (t - 19) * 10.0))
            )
            for t in range(N_EPOCHS)
        ]
        record = MonitorConfig().build().observe_stream(
            pack_stream(attacked), positions
        )
        assert int(record.severities[:20].max()) == SEVERITY_NOMINAL
        verdict = record.verdict(int(np.flatnonzero(record.severities == 2)[0]))
        assert "clock_drift" in {v.monitor for v in verdict.monitors}

    def test_position_walk_trips_stationary_monitor(self, clean_stream):
        epochs, positions = clean_stream
        dragged = positions.copy()
        for t in range(20, N_EPOCHS):
            dragged[t, 0] += (t - 19) * 3.0
        record = MonitorConfig().build().observe_stream(
            pack_stream(epochs), dragged
        )
        verdict = record.verdict(int(np.flatnonzero(record.severities == 2)[0]))
        assert "stationary_position" in {v.monitor for v in verdict.monitors}

    def test_position_jump_trips_velocity_monitor(self, clean_stream):
        epochs, positions = clean_stream
        jumped = positions.copy()
        jumped[25:] += 400.0  # 400 m step between two 1 s epochs
        record = MonitorConfig().build().observe_stream(
            pack_stream(epochs), jumped
        )
        flagged = [
            record.verdict(i)
            for i in np.flatnonzero(record.severities >= 1)
        ]
        monitors = {v.monitor for verdict in flagged for v in verdict.monitors}
        assert "stationary_velocity" in monitors


class TestEscalation:
    def test_single_breach_is_suspect_not_spoofed(self, clean_stream):
        epochs, positions = clean_stream
        # One isolated bad epoch: a deep common-mode dip.
        attacked = list(epochs)
        attacked[25] = shift_cn0(epochs[25], -10.0)
        record = MonitorConfig().build().observe_stream(
            pack_stream(attacked), positions
        )
        assert int(record.severities[25]) == 1
        assert int(record.severities.max()) == 1

    def test_persistent_breach_confirms_spoofed(self, clean_stream):
        epochs, positions = clean_stream
        attacked = epochs[:20] + [
            shift_cn0(epoch, -10.0) for epoch in epochs[20:]
        ]
        config = MonitorConfig(confirm_epochs=3, confirm_window=5)
        record = config.build().observe_stream(pack_stream(attacked), positions)
        assert int(record.severities[20]) == 1
        assert int(record.severities[21]) == 1
        assert int(record.severities[22]) == 2  # third breach in window


class TestBatchParity:
    @pytest.mark.parametrize("chunk", [1, 7, 10])
    def test_chunked_observation_is_bitwise_identical(self, clean_stream, chunk):
        epochs, positions = clean_stream
        model = SignalFeatureModel(seed=42)
        attacked = [
            model.attach(
                build_epoch(t, range_extra=max(0.0, (t - 19) * 10.0))
            )
            for t in range(N_EPOCHS)
        ]
        whole = MonitorConfig().build().observe_stream(
            pack_stream(attacked), positions
        )
        suite = MonitorConfig().build()
        severities, statistics = [], []
        for lo in range(0, N_EPOCHS, chunk):
            part = suite.observe_stream(
                pack_stream(attacked[lo : lo + chunk]),
                positions[lo : lo + chunk],
            )
            severities.append(part.severities)
            statistics.append(part.statistics)
        np.testing.assert_array_equal(
            whole.severities, np.concatenate(severities)
        )
        np.testing.assert_array_equal(
            whole.statistics, np.concatenate(statistics, axis=1)
        )

    def test_reset_forgets_carried_state(self, clean_stream):
        epochs, positions = clean_stream
        suite = MonitorConfig().build()
        first = suite.observe_stream(pack_stream(epochs), positions)
        suite.reset()
        second = suite.observe_stream(pack_stream(epochs), positions)
        np.testing.assert_array_equal(first.severities, second.severities)
        np.testing.assert_array_equal(first.statistics, second.statistics)


class _ScriptedMonitor(StreamingMonitor):
    """Breaches exactly on the scripted epoch offsets (test double)."""

    def __init__(self, name, breach_epochs):
        self.name = name
        self._breach_epochs = set(breach_epochs)
        self._cursor = 0

    def reset(self):
        self._cursor = 0

    def observe(self, ctx):
        n = len(ctx)
        offsets = np.arange(self._cursor, self._cursor + n)
        self._cursor += n
        breach = np.array([o in self._breach_epochs for o in offsets])
        return MonitorOutput(
            breach=breach,
            statistic=breach.astype(float),
            threshold=np.full(n, 0.5),
        )


class TestCombinators:
    def _context_stream(self, n):
        epochs = [build_epoch(t) for t in range(n)]
        return pack_stream(epochs), np.tile(TRUTH, (n, 1))

    def test_and_filtered_requires_every_child(self):
        packed, positions = self._context_stream(6)
        combined = AndFiltered(
            "both",
            [
                _ScriptedMonitor("a", {1, 2, 3}),
                _ScriptedMonitor("b", {2, 3, 4}),
            ],
        )
        suite = MonitorSuite([combined], confirm_epochs=2, confirm_window=2)
        record = suite.observe_stream(packed, positions)
        assert record.monitor_severities[0].astype(bool).tolist() == [
            False, False, True, True, False, False,
        ]

    def test_m_of_n_filtered_needs_persistence(self):
        packed, positions = self._context_stream(8)
        filtered = MOfNFiltered(
            _ScriptedMonitor("flappy", {0, 2, 3, 4}), required=2, window=3
        )
        suite = MonitorSuite([filtered], confirm_epochs=1, confirm_window=1)
        record = suite.observe_stream(packed, positions)
        # Epoch 2 sees breaches {0, 2} in its window {0,1,2}: confirmed.
        assert record.monitor_severities[0].astype(bool).tolist() == [
            False, False, True, True, True, False, False, False,
        ]

    def test_combinator_validation(self):
        with pytest.raises(ConfigurationError):
            AndFiltered("empty", [])
        with pytest.raises(ConfigurationError):
            MOfNFiltered(_ScriptedMonitor("x", set()), required=4, window=3)


class TestConfig:
    def test_round_trips_through_dict(self):
        config = MonitorConfig(cn0_drop_db=6.5, stationary=False)
        assert MonitorConfig.from_dict(config.to_dict()) == config

    def test_build_honors_stationary_flag(self):
        armed = MonitorConfig(stationary=True).build()
        rover = MonitorConfig(stationary=False).build()
        assert "stationary_position" in armed.names
        assert "stationary_position" not in rover.names
        assert "stationary_velocity" not in rover.names

    @pytest.mark.parametrize(
        "overrides",
        [
            {"confirm_epochs": 0},
            {"confirm_epochs": 6, "confirm_window": 5},
            {"cn0_drop_db": -1.0},
            {"cn0_min_flagged": 0},
            {"clock_drift_window": 0},
            {"learn_epochs": 1},
            {"zenith_dbhz": 30.0},  # below horizon default
            {"max_gap_seconds": 0.0},
        ],
    )
    def test_rejects_bad_settings(self, overrides):
        with pytest.raises(ConfigurationError):
            MonitorConfig(**overrides)

    def test_suite_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            MonitorSuite(
                [_ScriptedMonitor("dup", set()), _ScriptedMonitor("dup", set())]
            )

    def test_suite_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            MonitorSuite([])
