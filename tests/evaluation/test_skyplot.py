"""Unit tests for the ASCII sky plot."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.evaluation import render_skyplot, skyplot_for_epoch


class TestRenderSkyplot:
    def test_compass_and_zenith_marks(self):
        plot = render_skyplot([])
        lines = plot.splitlines()
        assert "N" in lines[0]
        assert "S" in lines[-2]  # last line is the legend
        assert any("E" in line for line in lines)
        assert any("W" in line for line in lines)
        assert any("+" in line for line in lines)

    def test_zenith_satellite_at_center(self):
        plot = render_skyplot([(7, math.pi / 2, 0.0)], radius=8)
        lines = plot.splitlines()
        center_row = lines[8]
        assert "0" in center_row
        assert center_row.index("0") == 16  # column 2*radius

    def test_north_horizon_satellite_at_top(self):
        plot = render_skyplot([(3, 0.0, 0.0)], radius=8)
        lines = plot.splitlines()
        assert "0" in lines[0]

    def test_below_horizon_skipped(self):
        plot = render_skyplot([(3, -0.1, 0.0)])
        assert "legend: " in plot.splitlines()[-1]
        assert "G03" not in plot

    def test_legend_maps_marks_to_prns(self):
        plot = render_skyplot(
            [(14, 1.0, 0.5), (7, 0.5, 2.0), (31, 0.3, 4.0)]
        )
        legend = plot.splitlines()[-1]
        assert "0=G14" in legend
        assert "1=G07" in legend
        assert "2=G31" in legend

    def test_east_west_positions(self):
        east = render_skyplot([(1, math.radians(10.0), math.radians(90.0))], radius=8)
        west = render_skyplot([(1, math.radians(10.0), math.radians(270.0))], radius=8)
        east_row = east.splitlines()[8]
        west_row = west.splitlines()[8]
        assert east_row.rindex("0") > 16
        assert west_row.index("0") < 16

    def test_rejects_tiny_radius(self):
        with pytest.raises(ConfigurationError):
            render_skyplot([], radius=2)


class TestSkyplotForEpoch:
    def test_renders_all_visible_satellites(self, srzn_dataset):
        epoch = srzn_dataset.epoch_at(0)
        plot = skyplot_for_epoch(epoch)
        legend = plot.splitlines()[-1]
        for prn in epoch.prns:
            assert f"G{prn:02d}" in legend
