"""Integration tests for the experiment runners."""

import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.evaluation import (
    ExperimentConfig,
    ReplayClockBiasPredictor,
    StationPipeline,
    run_station_experiment,
)
from repro.evaluation.experiments import prn_order_subset
from repro.stations import DatasetConfig, get_station
from repro.timebase import GpsTime


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig(
        satellite_counts=(4, 6, 8),
        warmup_epochs=20,
        recalibration_interval=30,
        evaluation_stride=10,
        max_evaluation_epochs=20,
        timing_repeats=1,
        timing_epochs=5,
        dataset=DatasetConfig(duration_seconds=400.0),
    )


@pytest.fixture(scope="module")
def srzn_result(quick_config):
    return run_station_experiment(get_station("SRZN"), quick_config)


class TestReplayPredictor:
    def test_record_and_replay(self):
        replay = ReplayClockBiasPredictor()
        t = GpsTime(week=1540, seconds_of_week=10.0)
        assert not replay.is_ready
        replay.record(t, 42.0)
        assert replay.is_ready
        assert replay.predict_bias_meters(t) == 42.0
        assert len(replay) == 1

    def test_unknown_epoch_raises(self):
        replay = ReplayClockBiasPredictor()
        replay.record(GpsTime(week=1540, seconds_of_week=0.0), 1.0)
        with pytest.raises(EstimationError, match="no recorded"):
            replay.predict_bias_meters(GpsTime(week=1540, seconds_of_week=99.0))

    def test_observe_is_noop(self):
        replay = ReplayClockBiasPredictor()
        replay.observe(GpsTime(week=1540, seconds_of_week=0.0), 1.0)
        assert not replay.is_ready


class TestExperimentConfig:
    def test_rejects_small_counts(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(satellite_counts=(3,))

    def test_rejects_empty_counts(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(satellite_counts=())


class TestPipeline:
    def test_collect_causal(self, quick_config):
        pipeline = StationPipeline(get_station("SRZN"), quick_config)
        epochs, replay = pipeline.collect()
        assert len(epochs) > 0
        assert len(replay) == len(epochs)
        # Every collected epoch has its bias pre-recorded.
        for epoch in epochs:
            replay.predict_bias_meters(epoch.time)

    def test_prn_order_subset(self, quick_config):
        pipeline = StationPipeline(get_station("SRZN"), quick_config)
        epochs, _replay = pipeline.collect()
        subset = prn_order_subset(epochs[0], 4)
        assert list(subset.prns) == sorted(subset.prns)
        assert subset.satellite_count == 4


class TestStationResult:
    def test_all_algorithms_present(self, srzn_result):
        assert set(srzn_result.error_m) == {"NR", "DLO", "DLG"}
        assert set(srzn_result.time_ns) == {"NR", "DLO", "DLG"}

    def test_rates_exclude_baseline(self, srzn_result):
        assert set(srzn_result.accuracy_rate_pct) == {"DLO", "DLG"}
        assert set(srzn_result.time_rate_pct) == {"DLO", "DLG"}

    def test_fig_5_1_shape_closed_form_faster(self, srzn_result):
        """The paper's headline: both closed-form methods run far
        below NR's time, DLO at or below DLG."""
        for m, theta in srzn_result.time_rate_pct["DLO"].items():
            assert theta < 70.0, f"DLO theta at m={m} is {theta}"
        for m, theta in srzn_result.time_rate_pct["DLG"].items():
            assert theta < 90.0, f"DLG theta at m={m} is {theta}"

    def test_fig_5_2_shape_accuracy_close_to_nr(self, srzn_result):
        for algorithm in ("DLO", "DLG"):
            for m, eta in srzn_result.accuracy_rate_pct[algorithm].items():
                assert 80.0 < eta < 250.0, f"{algorithm} eta at m={m} is {eta}"

    def test_epochs_used_recorded(self, srzn_result):
        assert srzn_result.epochs_used[4] > 0


class TestBancroftSeries:
    def test_bancroft_included_when_requested(self):
        config = ExperimentConfig(
            satellite_counts=(5, 7),
            warmup_epochs=10,
            recalibration_interval=20,
            evaluation_stride=10,
            max_evaluation_epochs=10,
            timing_repeats=1,
            timing_epochs=4,
            include_bancroft=True,
            dataset=DatasetConfig(duration_seconds=200.0),
        )
        result = run_station_experiment(get_station("YYR1"), config)
        assert "Bancroft" in result.error_m
        assert "Bancroft" in result.accuracy_rate_pct
        # Bancroft is closed-form: far below NR's time.
        for theta in result.time_rate_pct["Bancroft"].values():
            assert theta < 100.0


class TestPaperFullConfig:
    def test_full_day_parameters(self):
        config = ExperimentConfig.paper_full()
        assert config.dataset.epoch_count == 86_400
        assert config.max_evaluation_epochs == 1440
        assert config.evaluation_stride == 60
