"""Unit tests for the timing harness."""

import time

import pytest

from repro.core import PositionFix
from repro.core.base import PositioningAlgorithm
from repro.errors import ConfigurationError
from repro.evaluation import TimingStats, time_callable, time_solver, time_solver_stats


class SleepySolver(PositioningAlgorithm):
    """A solver with a controllable, measurable cost."""

    name = "sleepy"
    min_satellites = 1

    def __init__(self, seconds):
        self.seconds = seconds
        self.calls = 0

    def solve(self, epoch):
        self.calls += 1
        deadline = time.perf_counter() + self.seconds
        while time.perf_counter() < deadline:
            pass
        return PositionFix(position=[0.0, 0.0, 0.0], algorithm=self.name)


class TestTimeSolver:
    def test_measures_roughly_right(self, make_epoch):
        solver = SleepySolver(0.001)
        per_solve_ns = time_solver(solver, [make_epoch()] * 5, repeats=2)
        assert per_solve_ns == pytest.approx(1e6, rel=0.5)

    def test_warmup_rounds_run(self, make_epoch):
        solver = SleepySolver(0.0)
        time_solver(solver, [make_epoch()] * 3, repeats=2, warmup_rounds=2)
        # 2 warmup rounds + 2 timed rounds over 3 epochs.
        assert solver.calls == 12

    def test_faster_solver_measures_faster(self, make_epoch):
        epochs = [make_epoch()] * 5
        fast = time_solver(SleepySolver(0.0002), epochs, repeats=2)
        slow = time_solver(SleepySolver(0.002), epochs, repeats=2)
        assert fast < slow

    def test_rejects_empty_epochs(self):
        with pytest.raises(ConfigurationError):
            time_solver(SleepySolver(0.0), [], repeats=1)

    def test_rejects_zero_repeats(self, make_epoch):
        with pytest.raises(ConfigurationError):
            time_solver(SleepySolver(0.0), [make_epoch()], repeats=0)


class TestTimeSolverStats:
    def test_returns_full_record(self, make_epoch):
        stats = time_solver_stats(SleepySolver(0.001), [make_epoch()] * 4, repeats=3)
        assert isinstance(stats, TimingStats)
        assert stats.repeats == 3
        assert stats.items == 4
        assert stats.mean_ns == pytest.approx(1e6, rel=0.5)

    def test_percentiles_ordered(self, make_epoch):
        stats = time_solver_stats(SleepySolver(0.0005), [make_epoch()] * 3, repeats=5)
        assert stats.best_ns <= stats.p50_ns <= stats.p95_ns

    def test_mean_covers_all_passes(self, make_epoch):
        stats = time_solver_stats(SleepySolver(0.0005), [make_epoch()] * 3, repeats=5)
        assert stats.best_ns <= stats.mean_ns

    def test_items_per_second_inverts_best(self, make_epoch):
        stats = time_solver_stats(SleepySolver(0.001), [make_epoch()] * 2, repeats=2)
        assert stats.items_per_second == pytest.approx(1e9 / stats.best_ns)

    def test_time_solver_returns_best_pass_mean(self, make_epoch):
        epochs = [make_epoch()] * 3
        best = time_solver(SleepySolver(0.0005), epochs, repeats=2)
        assert best == pytest.approx(5e5, rel=0.5)


class TestTimeCallable:
    def test_times_bulk_operation_per_item(self):
        def bulk():
            deadline = time.perf_counter() + 0.004
            while time.perf_counter() < deadline:
                pass

        stats = time_callable(bulk, items=4, repeats=2)
        assert stats.best_ns == pytest.approx(1e6, rel=0.5)
        assert stats.items == 4

    def test_warmup_runs_before_timing(self):
        calls = {"n": 0}

        def bulk():
            calls["n"] += 1

        time_callable(bulk, items=1, repeats=2, warmup_rounds=3)
        assert calls["n"] == 5

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, items=0)
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, items=1, repeats=0)
