"""Unit tests for the timing harness."""

import time

import pytest

from repro.core import PositionFix
from repro.core.base import PositioningAlgorithm
from repro.errors import ConfigurationError
from repro.evaluation import time_solver


class SleepySolver(PositioningAlgorithm):
    """A solver with a controllable, measurable cost."""

    name = "sleepy"
    min_satellites = 1

    def __init__(self, seconds):
        self.seconds = seconds
        self.calls = 0

    def solve(self, epoch):
        self.calls += 1
        deadline = time.perf_counter() + self.seconds
        while time.perf_counter() < deadline:
            pass
        return PositionFix(position=[0.0, 0.0, 0.0], algorithm=self.name)


class TestTimeSolver:
    def test_measures_roughly_right(self, make_epoch):
        solver = SleepySolver(0.001)
        per_solve_ns = time_solver(solver, [make_epoch()] * 5, repeats=2)
        assert per_solve_ns == pytest.approx(1e6, rel=0.5)

    def test_warmup_rounds_run(self, make_epoch):
        solver = SleepySolver(0.0)
        time_solver(solver, [make_epoch()] * 3, repeats=2, warmup_rounds=2)
        # 2 warmup rounds + 2 timed rounds over 3 epochs.
        assert solver.calls == 12

    def test_faster_solver_measures_faster(self, make_epoch):
        epochs = [make_epoch()] * 5
        fast = time_solver(SleepySolver(0.0002), epochs, repeats=2)
        slow = time_solver(SleepySolver(0.002), epochs, repeats=2)
        assert fast < slow

    def test_rejects_empty_epochs(self):
        with pytest.raises(ConfigurationError):
            time_solver(SleepySolver(0.0), [], repeats=1)

    def test_rejects_zero_repeats(self, make_epoch):
        with pytest.raises(ConfigurationError):
            time_solver(SleepySolver(0.0), [make_epoch()], repeats=0)
