"""Unit tests for the timing harness."""

import time

import pytest

from repro.core import PositionFix
from repro.core.base import PositioningAlgorithm
from repro.errors import ConfigurationError
from repro.evaluation import TimingStats, time_callable, time_solver, time_solver_stats
from repro.evaluation.timing import _percentile


class SleepySolver(PositioningAlgorithm):
    """A solver with a controllable, measurable cost."""

    name = "sleepy"
    min_satellites = 1

    def __init__(self, seconds):
        self.seconds = seconds
        self.calls = 0

    def solve(self, epoch):
        self.calls += 1
        deadline = time.perf_counter() + self.seconds
        while time.perf_counter() < deadline:
            pass
        return PositionFix(position=[0.0, 0.0, 0.0], algorithm=self.name)


class TestTimeSolver:
    def test_measures_roughly_right(self, make_epoch):
        solver = SleepySolver(0.001)
        per_solve_ns = time_solver(solver, [make_epoch()] * 5, repeats=2)
        assert per_solve_ns == pytest.approx(1e6, rel=0.5)

    def test_warmup_rounds_run(self, make_epoch):
        solver = SleepySolver(0.0)
        time_solver(solver, [make_epoch()] * 3, repeats=2, warmup_rounds=2)
        # 2 warmup rounds + 2 timed rounds over 3 epochs.
        assert solver.calls == 12

    def test_faster_solver_measures_faster(self, make_epoch):
        epochs = [make_epoch()] * 5
        fast = time_solver(SleepySolver(0.0002), epochs, repeats=2)
        slow = time_solver(SleepySolver(0.002), epochs, repeats=2)
        assert fast < slow

    def test_rejects_empty_epochs(self):
        with pytest.raises(ConfigurationError):
            time_solver(SleepySolver(0.0), [], repeats=1)

    def test_rejects_zero_repeats(self, make_epoch):
        with pytest.raises(ConfigurationError):
            time_solver(SleepySolver(0.0), [make_epoch()], repeats=0)


class TestTimeSolverStats:
    def test_returns_full_record(self, make_epoch):
        stats = time_solver_stats(SleepySolver(0.001), [make_epoch()] * 4, repeats=3)
        assert isinstance(stats, TimingStats)
        assert stats.repeats == 3
        assert stats.items == 4
        assert stats.mean_ns == pytest.approx(1e6, rel=0.5)

    def test_percentiles_ordered(self, make_epoch):
        stats = time_solver_stats(SleepySolver(0.0005), [make_epoch()] * 3, repeats=5)
        assert stats.best_ns <= stats.p50_ns <= stats.p95_ns

    def test_mean_covers_all_passes(self, make_epoch):
        stats = time_solver_stats(SleepySolver(0.0005), [make_epoch()] * 3, repeats=5)
        assert stats.best_ns <= stats.mean_ns

    def test_items_per_second_inverts_best(self, make_epoch):
        stats = time_solver_stats(SleepySolver(0.001), [make_epoch()] * 2, repeats=2)
        assert stats.items_per_second == pytest.approx(1e9 / stats.best_ns)

    def test_time_solver_returns_best_pass_mean(self, make_epoch):
        epochs = [make_epoch()] * 3
        best = time_solver(SleepySolver(0.0005), epochs, repeats=2)
        assert best == pytest.approx(5e5, rel=0.5)


class TestPercentile:
    """Nearest-rank regression anchors for repeats = 1, 2, and 20."""

    def test_single_value_every_fraction(self):
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert _percentile([7.0], fraction) == 7.0

    def test_two_values_median_is_upper_neighbor(self):
        # The old int(round(...)) used banker's rounding: round(0.5)
        # is 0, so the p50 of two passes silently reported the MINIMUM.
        assert _percentile([1.0, 2.0], 0.50) == 2.0

    def test_two_values_p95_is_max(self):
        assert _percentile([1.0, 2.0], 0.95) == 2.0

    def test_twenty_values_nearest_rank(self):
        values = [float(i) for i in range(20)]
        # fraction * 19 rounded half-up: 9.5 -> rank 10, 18.05 -> 18.
        assert _percentile(values, 0.50) == 10.0
        assert _percentile(values, 0.95) == 18.0

    def test_extreme_fractions_clamp_to_ends(self):
        values = [float(i) for i in range(20)]
        assert _percentile(values, 0.0) == 0.0
        assert _percentile(values, 1.0) == 19.0

    def test_stats_median_of_two_passes_uses_slower_pass(self):
        # End to end through time_callable: with exactly two timed
        # passes, p50 must not collapse onto best_ns.
        durations = iter([0.0, 0.004, 0.0])  # warm-up, then slow/fast passes

        def bulk():
            deadline = time.perf_counter() + next(durations, 0.0)
            while time.perf_counter() < deadline:
                pass

        stats = time_callable(bulk, items=1, repeats=2, warmup_rounds=1)
        assert stats.p50_ns > stats.best_ns


class TestTimeCallable:
    def test_times_bulk_operation_per_item(self):
        def bulk():
            deadline = time.perf_counter() + 0.004
            while time.perf_counter() < deadline:
                pass

        stats = time_callable(bulk, items=4, repeats=2)
        assert stats.best_ns == pytest.approx(1e6, rel=0.5)
        assert stats.items == 4

    def test_warmup_runs_before_timing(self):
        calls = {"n": 0}

        def bulk():
            calls["n"] += 1

        time_callable(bulk, items=1, repeats=2, warmup_rounds=3)
        assert calls["n"] == 5

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, items=0)
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, items=1, repeats=0)
