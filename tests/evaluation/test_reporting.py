"""Unit tests for report formatting."""

from repro.evaluation import format_rate_table, format_table_5_1
from repro.evaluation.experiments import StationResult
from repro.evaluation.reporting import format_station_report
from repro.stations import all_stations, get_station


class TestTable51:
    def test_contains_all_rows(self):
        text = format_table_5_1(all_stations(), {"SRZN": 86400})
        for site in ("SRZN", "YYR1", "FAI1", "KYCP"):
            assert site in text
        assert "86400" in text
        assert "Steering" in text and "Threshold" in text

    def test_coordinates_verbatim(self):
        text = format_table_5_1(all_stations(), {})
        assert "3623420.032" in text
        assert "-5060514.896" in text


class TestRateTable:
    def test_layout(self):
        rates = {"DLO": {4: 18.5, 6: 19.0}, "DLG": {4: 40.0, 6: 45.5}}
        text = format_rate_table("title", rates, (4, 6))
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "m=4" in lines[1] and "m=6" in lines[1]
        assert any("DLO" in line and "18.5%" in line for line in lines)

    def test_missing_cell_dashed(self):
        rates = {"DLO": {4: 18.5}}
        text = format_rate_table("t", rates, (4, 10))
        assert "-" in text


class TestStationReport:
    def test_full_report_renders(self):
        result = StationResult(
            station=get_station("SRZN"),
            satellite_counts=(4, 5),
            epochs_used={4: 10, 5: 10},
            error_m={
                "NR": {4: 3.0, 5: 2.5},
                "DLO": {4: 3.3, 5: 3.0},
                "DLG": {4: 3.2, 5: 2.8},
            },
            time_ns={
                "NR": {4: 300_000.0, 5: 310_000.0},
                "DLO": {4: 60_000.0, 5: 65_000.0},
                "DLG": {4: 120_000.0, 5: 130_000.0},
            },
        )
        text = format_station_report(result)
        assert "SRZN" in text
        assert "Fig 5.1" in text and "Fig 5.2" in text
        assert "110.0%" in text  # DLO eta at m=4 = 3.3/3.0
        assert "20.0%" in text  # DLO theta at m=4 = 60/300


class TestAsciiSeries:
    def _series(self):
        return {
            "DLO": {4: 18.0, 6: 19.5, 8: 20.0},
            "DLG": {4: 35.0, 6: 42.0, 8: 50.0},
        }

    def test_renders_title_axis_and_legend(self):
        from repro.evaluation import format_ascii_series

        text = format_ascii_series("theta", self._series(), (4, 6, 8))
        lines = text.splitlines()
        assert lines[0] == "theta"
        assert "m=4" in lines[-2] and "m=8" in lines[-2]
        assert "o=DLG" in lines[-1] and "x=DLO" in lines[-1]

    def test_extremes_on_boundary_rows(self):
        from repro.evaluation import format_ascii_series

        text = format_ascii_series("t", self._series(), (4, 6, 8), height=8)
        lines = text.splitlines()
        # Max value (50.0) labels the top row, min (18.0) the bottom.
        assert "50.0%" in lines[1]
        assert "18.0%" in lines[8]

    def test_flat_series_does_not_crash(self):
        from repro.evaluation import format_ascii_series

        text = format_ascii_series("t", {"DLO": {4: 5.0, 6: 5.0}}, (4, 6))
        assert "o=DLO" in text

    def test_empty_series(self):
        from repro.evaluation import format_ascii_series

        text = format_ascii_series("t", {"DLO": {}}, (4, 6))
        assert "no data" in text
