"""Unit tests for GNSS error statistics."""

import numpy as np
import pytest

from repro.core import PositionFix
from repro.errors import ConfigurationError
from repro.evaluation import ErrorStatistics, enu_error
from repro.geodesy import enu_to_ecef, geodetic_to_ecef


@pytest.fixture
def truth():
    return geodetic_to_ecef(np.radians(40.0), np.radians(-100.0), 200.0)


class TestEnuError:
    def test_pure_up_error(self, truth):
        estimate = enu_to_ecef(np.array([0.0, 0.0, 5.0]), truth)
        east, north, up = enu_error(estimate, truth)
        assert east == pytest.approx(0.0, abs=1e-6)
        assert north == pytest.approx(0.0, abs=1e-6)
        assert up == pytest.approx(5.0, abs=1e-6)

    def test_pure_east_error(self, truth):
        estimate = enu_to_ecef(np.array([-3.0, 0.0, 0.0]), truth)
        east, _north, _up = enu_error(estimate, truth)
        assert east == pytest.approx(-3.0, abs=1e-6)

    def test_zero_error(self, truth):
        assert enu_error(truth, truth) == pytest.approx((0.0, 0.0, 0.0))


class TestErrorStatistics:
    def test_known_values(self):
        errors = [(3.0, 4.0, 0.0), (0.0, 0.0, 5.0)]
        stats = ErrorStatistics.from_errors(errors)
        assert stats.count == 2
        # 3D errors are 5 and 5.
        assert stats.mean_3d == pytest.approx(5.0)
        assert stats.rms_3d == pytest.approx(5.0)
        assert stats.max_3d == pytest.approx(5.0)
        # Horizontal errors are 5 and 0.
        assert stats.cep50 == pytest.approx(2.5)
        assert stats.rms_horizontal == pytest.approx(np.sqrt(12.5))
        assert stats.rms_vertical == pytest.approx(np.sqrt(12.5))
        assert stats.mean_vertical_signed == pytest.approx(2.5)

    def test_cep_ordering(self):
        rng = np.random.default_rng(0)
        errors = [(x, y, z) for x, y, z in rng.normal(0, 2, size=(500, 3))]
        stats = ErrorStatistics.from_errors(errors)
        assert stats.cep50 < stats.cep95 <= stats.max_3d + 1e-9

    def test_from_fixes(self, truth):
        fixes = [
            PositionFix(position=enu_to_ecef(np.array([1.0, 0.0, 0.0]), truth)),
            PositionFix(position=enu_to_ecef(np.array([0.0, 2.0, 0.0]), truth)),
        ]
        stats = ErrorStatistics.from_fixes(fixes, truth)
        assert stats.count == 2
        assert stats.mean_3d == pytest.approx(1.5, abs=1e-6)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ErrorStatistics.from_errors([])

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            ErrorStatistics.from_errors([(1.0, 2.0)])

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            ErrorStatistics.from_errors([(1.0, 2.0, float("nan"))])

    def test_str_format(self):
        stats = ErrorStatistics.from_errors([(1.0, 0.0, 0.0)])
        text = str(stats)
        assert "rms3d=" in text and "cep95=" in text

    def test_sign_convention_preserved(self):
        errors = [(0.0, 0.0, -4.0), (0.0, 0.0, -2.0)]
        stats = ErrorStatistics.from_errors(errors)
        assert stats.mean_vertical_signed == pytest.approx(-3.0)
        assert stats.rms_vertical == pytest.approx(np.sqrt(10.0))


class TestStatisticsProperties:
    def test_invariants_over_random_samples(self):
        from hypothesis import given, settings, strategies as st

        triples = st.lists(
            st.tuples(
                st.floats(min_value=-100.0, max_value=100.0),
                st.floats(min_value=-100.0, max_value=100.0),
                st.floats(min_value=-100.0, max_value=100.0),
            ),
            min_size=1,
            max_size=40,
        )

        @given(errors=triples)
        @settings(max_examples=80, deadline=None)
        def check(errors):
            stats = ErrorStatistics.from_errors(errors)
            assert stats.count == len(errors)
            assert 0.0 <= stats.cep50 <= stats.cep95
            assert stats.mean_3d <= stats.rms_3d + 1e-9  # Jensen
            assert stats.rms_3d <= stats.max_3d + 1e-9
            assert abs(stats.mean_vertical_signed) <= stats.rms_vertical + 1e-9
            # Pythagoras on RMS components.
            assert stats.rms_3d == pytest.approx(
                np.hypot(stats.rms_horizontal, stats.rms_vertical), rel=1e-9
            )

        check()
