"""Unit tests for the paper's metrics (Section 5.1)."""

import numpy as np
import pytest

from repro.core import PositionFix
from repro.errors import ConfigurationError
from repro.evaluation import absolute_error, accuracy_rate, execution_time_rate


class TestAbsoluteError:
    def test_matches_eq_5_1(self):
        fix = PositionFix(position=[1.0, 2.0, 2.0])
        assert absolute_error(fix, np.zeros(3)) == pytest.approx(3.0)

    def test_zero_for_perfect_fix(self):
        truth = np.array([1e6, 2e6, 3e6])
        fix = PositionFix(position=truth)
        assert absolute_error(fix, truth) == 0.0


class TestAccuracyRate:
    def test_equal_errors_is_100(self):
        assert accuracy_rate(2.0, 2.0) == pytest.approx(100.0)

    def test_worse_than_nr_above_100(self):
        assert accuracy_rate(2.4, 2.0) == pytest.approx(120.0)

    def test_better_than_nr_below_100(self):
        assert accuracy_rate(1.0, 2.0) == pytest.approx(50.0)

    def test_rejects_zero_baseline(self):
        with pytest.raises(ConfigurationError):
            accuracy_rate(1.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            accuracy_rate(-1.0, 2.0)


class TestExecutionTimeRate:
    def test_paper_headline_one_fifth(self):
        # "our new methods take about one fifth of the computation time".
        assert execution_time_rate(1.0, 5.0) == pytest.approx(20.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            execution_time_rate(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            execution_time_rate(1.0, 0.0)
