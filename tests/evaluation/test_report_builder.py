"""Unit tests for markdown report building."""

import pytest

from repro.errors import ConfigurationError
from repro.evaluation import build_markdown_report, write_markdown_report
from repro.evaluation.experiments import StationResult
from repro.stations import get_station


@pytest.fixture
def results():
    def make(site):
        return StationResult(
            station=get_station(site),
            satellite_counts=(4, 6),
            epochs_used={4: 50, 6: 48},
            error_m={
                "NR": {4: 3.0, 6: 2.5},
                "DLO": {4: 3.3, 6: 3.1},
                "DLG": {4: 3.2, 6: 2.7},
            },
            time_ns={
                "NR": {4: 300_000.0, 6: 310_000.0},
                "DLO": {4: 60_000.0, 6: 62_000.0},
                "DLG": {4: 95_000.0, 6: 99_000.0},
            },
        )

    return {"SRZN": make("SRZN"), "KYCP": make("KYCP")}


class TestBuildMarkdownReport:
    def test_contains_all_sections(self, results):
        text = build_markdown_report(results)
        assert "# GPS algorithm reproduction results" in text
        assert "## Execution time rate" in text
        assert "## Accuracy rate" in text
        assert "## Raw aggregates" in text
        assert "## Shape charts" in text

    def test_station_headers_and_clock_types(self, results):
        text = build_markdown_report(results)
        assert "### SRZN (Steering clock)" in text
        assert "### KYCP (Threshold clock)" in text

    def test_rate_values_rendered(self, results):
        text = build_markdown_report(results)
        assert "20.0 %" in text   # DLO theta at m=4
        assert "110.0 %" in text  # DLO eta at m=4

    def test_markdown_tables_well_formed(self, results):
        text = build_markdown_report(results)
        table_lines = [line for line in text.splitlines() if line.startswith("|")]
        assert table_lines
        for line in table_lines:
            assert line.count("|") == 4  # 3 columns -> 4 pipes

    def test_notes_included(self, results):
        text = build_markdown_report(results, notes="methodology note here")
        assert "methodology note here" in text

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            build_markdown_report({})


class TestWriteMarkdownReport:
    def test_writes_file(self, tmp_path, results):
        path = write_markdown_report(tmp_path / "report.md", results)
        assert path.exists()
        assert "Shape charts" in path.read_text()
