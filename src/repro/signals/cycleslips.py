"""Carrier cycle-slip detection.

A cycle slip is a sudden integer jump in the carrier-phase ambiguity —
the receiver's tracking loop lost lock for a moment (obstruction,
interference, high dynamics).  Undetected slips poison everything that
trusts phase continuity, most directly the Hatch filter: the smoothed
pseudorange inherits the jump as a bias.

The detector below uses the classic *code-minus-carrier* observable:

    cmc = rho - Phi = 2 I - lambda N + code noise

Between consecutive epochs the ionosphere term moves by millimeters
and the code noise by meters, but a slip moves ``lambda N`` by integer
wavelengths all at once.  A jump in ``cmc`` beyond a threshold
(several sigmas of the code noise) flags the satellite, and the caller
resets its smoothing channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch


@dataclass
class _SlipChannel:
    last_cmc: float
    last_time: float


class CycleSlipDetector:
    """Per-satellite code-minus-carrier jump detection.

    Parameters
    ----------
    threshold_meters:
        A between-epoch ``cmc`` change beyond this flags a slip.  Set
        it several sigmas above the *differenced* code noise (noise
        appears twice); the default suits meter-level code noise.
    max_gap_seconds:
        A satellite unseen longer than this restarts cleanly (no slip
        flagged — there is no continuity to break).

    Usage::

        detector = CycleSlipDetector()
        hatch = HatchFilter()
        for epoch in epochs:
            for prn in detector.check_epoch(epoch):
                hatch.reset(prn)
            fixes = solver.solve(hatch.smooth_epoch(epoch))
    """

    def __init__(
        self,
        threshold_meters: float = 5.0,
        max_gap_seconds: float = 10.0,
    ) -> None:
        if threshold_meters <= 0:
            raise ConfigurationError("threshold_meters must be positive")
        if max_gap_seconds <= 0:
            raise ConfigurationError("max_gap_seconds must be positive")
        self.threshold = float(threshold_meters)
        self.max_gap = float(max_gap_seconds)
        self._channels: Dict[int, _SlipChannel] = {}
        self._slip_count = 0

    # ------------------------------------------------------------------
    @property
    def slip_count(self) -> int:
        """Total slips flagged so far."""
        return self._slip_count

    def reset(self, prn: Optional[int] = None) -> None:
        """Forget continuity state for one PRN, or all."""
        if prn is None:
            self._channels.clear()
        else:
            self._channels.pop(prn, None)

    # ------------------------------------------------------------------
    def check_epoch(self, epoch: ObservationEpoch) -> List[int]:
        """Update continuity state; return PRNs that slipped this epoch.

        Observations without carrier are ignored (and drop their
        channel).  Feed epochs in time order.
        """
        now = epoch.time.to_gps_seconds()
        slipped: List[int] = []
        for observation in epoch.observations:
            prn = observation.prn
            if observation.carrier_range is None:
                self._channels.pop(prn, None)
                continue
            cmc = observation.pseudorange - observation.carrier_range

            channel = self._channels.get(prn)
            if channel is not None and now < channel.last_time:
                raise ConfigurationError(
                    "epochs must be fed to the slip detector in time order"
                )
            if channel is None or now - channel.last_time > self.max_gap:
                self._channels[prn] = _SlipChannel(last_cmc=cmc, last_time=now)
                continue

            if abs(cmc - channel.last_cmc) > self.threshold:
                slipped.append(prn)
                self._slip_count += 1
            channel.last_cmc = cmc
            channel.last_time = now
        return slipped
