"""Carrier-smoothed pseudoranges (the Hatch filter).

Code pseudoranges are noisy (meter-level) but unambiguous; carrier
phase is millimeter-quiet but offset by an unknown constant per pass.
The Hatch filter blends them: each epoch it propagates the previous
smoothed pseudorange forward by the *phase delta* (nearly noiseless)
and blends in a small fraction of the raw code measurement, converging
to code-level absolute accuracy with phase-level noise.

The window is capped because code and phase diverge slowly (the
ionosphere delays code but advances phase), so the filter must forget
on the divergence timescale.

This is the standard accuracy upgrade a production receiver layers
*under* the positioning algorithm — DLO/DLG consume the smoothed
epochs unchanged, so the paper's speed win composes with the smoothing
accuracy win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch, SatelliteObservation


@dataclass
class _ChannelState:
    """Per-satellite smoothing state."""

    count: int
    smoothed: float
    last_carrier: float
    last_time: float


class HatchFilter:
    """Carrier-smoothing filter over a stream of observation epochs.

    Parameters
    ----------
    window:
        Smoothing window length in epochs (the effective averaging
        depth; 100 is the classic choice at 1 Hz).
    max_gap_seconds:
        A satellite unseen for longer than this gets a fresh filter
        (its ambiguity may have changed across the outage — a cycle
        slip in real receivers).
    """

    def __init__(self, window: int = 100, max_gap_seconds: float = 10.0) -> None:
        if window < 2:
            raise ConfigurationError("window must be at least 2 epochs")
        if max_gap_seconds <= 0:
            raise ConfigurationError("max_gap_seconds must be positive")
        self.window = int(window)
        self.max_gap = float(max_gap_seconds)
        self._channels: Dict[int, _ChannelState] = {}

    # ------------------------------------------------------------------
    def reset(self, prn: Optional[int] = None) -> None:
        """Forget state for one PRN, or all of them."""
        if prn is None:
            self._channels.clear()
        else:
            self._channels.pop(prn, None)

    @property
    def tracked_prns(self):
        """PRNs with live smoothing state, sorted."""
        return sorted(self._channels)

    # ------------------------------------------------------------------
    def smooth_epoch(self, epoch: ObservationEpoch) -> ObservationEpoch:
        """Return the epoch with carrier-smoothed pseudoranges.

        Observations without a carrier measurement pass through
        unsmoothed (and reset their channel).  Call with consecutive
        epochs of one receiver; feeding epochs out of order raises.
        """
        now = epoch.time.to_gps_seconds()
        smoothed_observations = []
        for observation in epoch.observations:
            smoothed_observations.append(self._smooth_one(observation, now))
        return epoch.with_observations(smoothed_observations)

    # ------------------------------------------------------------------
    def _smooth_one(
        self, observation: SatelliteObservation, now: float
    ) -> SatelliteObservation:
        prn = observation.prn
        carrier = observation.carrier_range
        if carrier is None:
            self._channels.pop(prn, None)
            return observation

        state = self._channels.get(prn)
        if state is not None and now < state.last_time:
            raise ConfigurationError(
                "epochs must be fed to the Hatch filter in time order"
            )
        if state is None or now - state.last_time > self.max_gap:
            # (Re)initialize on first sight or after an outage.
            self._channels[prn] = _ChannelState(
                count=1,
                smoothed=observation.pseudorange,
                last_carrier=carrier,
                last_time=now,
            )
            return observation

        n = min(state.count + 1, self.window)
        propagated = state.smoothed + (carrier - state.last_carrier)
        smoothed = observation.pseudorange / n + propagated * (n - 1) / n

        state.count = n
        state.smoothed = smoothed
        state.last_carrier = carrier
        state.last_time = now

        return SatelliteObservation(
            prn=prn,
            position=observation.position,
            pseudorange=smoothed,
            elevation=observation.elevation,
            azimuth=observation.azimuth,
            carrier_range=carrier,
        )
