"""Pseudorange synthesis and receiver-side correction.

Two halves, mirroring a real processing chain:

* :class:`PseudorangeSimulator` plays the physics: light-time
  iteration, Sagnac rotation, satellite clock error, "true" ionosphere
  and troposphere, and thermal noise, on top of the receiver clock
  model.  It produces :class:`RawPseudorange` records.
* :class:`MeasurementCorrector` plays the receiver firmware: it applies
  the *broadcast* satellite clock polynomial and the receiver's own
  (imperfect) atmospheric models.  What survives the correction is the
  paper's ``eps_S`` (small, satellite-dependent, zero-mean-ish) riding
  on the receiver clock bias ``eps_R``.

The simulator's truth models and the corrector's receiver models are
configured independently — their mismatch is what makes the residual
errors realistic instead of zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.atmosphere import KlobucharModel, SaastamoinenModel
from repro.clocks.models import ReceiverClockModel
from repro.constants import (
    DEFAULT_ELEVATION_MASK,
    IONO_L2_SCALE,
    L1_WAVELENGTH,
    SPEED_OF_LIGHT,
)
from repro.constellation import Constellation
from repro.errors import ConfigurationError
from repro.geodesy import ecef_to_geodetic
from repro.observations import EpochTruth, ObservationEpoch, SatelliteObservation
from repro.signals.noise import PseudorangeNoiseModel
from repro.signals.sagnac import signal_travel_time
from repro.timebase import GpsTime
from repro.utils.validation import require_shape


@dataclass(frozen=True)
class RawPseudorange:
    """An uncorrected measurement plus the truth components that built it.

    The truth fields exist for tests and diagnostics; the receiver-side
    corrector only reads ``prn``, ``pseudorange``, ``carrier_range``,
    ``satellite_position`` and the angles.
    """

    prn: int
    pseudorange: float
    satellite_position: np.ndarray  # receive-frame ECEF at transmit time
    elevation: float
    azimuth: float
    transmit_time: GpsTime
    geometric_range: float
    satellite_clock_meters: float
    ionosphere_meters: float
    troposphere_meters: float
    noise_meters: float
    receiver_clock_meters: float
    #: Raw L1 carrier phase in meters (``lambda * phase``), including
    #: the integer-ambiguity offset; ``None`` when carrier tracking is
    #: disabled on the simulator.
    carrier_range: Optional[float] = None
    #: Raw Doppler-derived range rate (m/s), including receiver and
    #: satellite clock drifts; ``None`` when Doppler is disabled.
    range_rate: Optional[float] = None
    #: Raw L2 pseudorange (meters): same structure as L1 but with the
    #: ionospheric delay scaled by (f1/f2)^2; ``None`` when
    #: single-frequency.
    pseudorange_l2: Optional[float] = None


class PseudorangeSimulator:
    """Generates raw pseudoranges for a static or moving receiver.

    Parameters
    ----------
    constellation:
        The space segment.
    receiver_clock:
        Truth model of the receiver clock bias (``eps_R``).
    ionosphere, troposphere:
        The *true* atmospheric state.  Pass perturbed models here and
        stock models to the corrector to create realistic residuals.
    noise:
        Thermal noise / diffuse multipath model.
    elevation_mask:
        Satellites below this elevation (radians) are not observed.
    track_carrier:
        Whether to also synthesize L1 carrier-phase measurements
        (millimeter noise, per-satellite integer ambiguity, ionosphere
        with the phase-advance sign).
    carrier_noise_meters:
        1-sigma of the carrier phase noise (meters).
    carrier_seed:
        Seed deriving the per-PRN integer ambiguities; fixed per
        simulator so phase stays continuous across epochs (which is
        what carrier smoothing exploits).
    track_doppler:
        Whether to synthesize Doppler range rates
        (``(v_sat - v_recv) . u + c (drift_recv - drift_sat)`` plus
        noise); pass the receiver velocity to :meth:`simulate_epoch`.
    doppler_noise_mps:
        1-sigma of the range-rate noise (m/s).
    track_dual_frequency:
        Whether to also synthesize L2 pseudoranges (ionosphere scaled
        by ``(f1/f2)^2``) for ionosphere-free processing.
    l2_noise_factor:
        L2 noise sigma relative to L1's.
    multipath:
        Optional :class:`~repro.signals.multipath.MultipathModel`
        adding time-correlated reflection bias to code (and a little to
        carrier); ``None`` disables it.
    """

    def __init__(
        self,
        constellation: Constellation,
        receiver_clock: ReceiverClockModel,
        ionosphere: Optional[KlobucharModel] = None,
        troposphere: Optional[SaastamoinenModel] = None,
        noise: Optional[PseudorangeNoiseModel] = None,
        elevation_mask: float = DEFAULT_ELEVATION_MASK,
        track_carrier: bool = False,
        carrier_noise_meters: float = 0.003,
        carrier_seed: int = 0,
        track_doppler: bool = False,
        doppler_noise_mps: float = 0.05,
        track_dual_frequency: bool = False,
        l2_noise_factor: float = 1.2,
        multipath=None,
    ) -> None:
        self._constellation = constellation
        self._receiver_clock = receiver_clock
        self._ionosphere = ionosphere if ionosphere is not None else KlobucharModel()
        self._troposphere = (
            troposphere if troposphere is not None else SaastamoinenModel()
        )
        self._noise = noise if noise is not None else PseudorangeNoiseModel()
        self._elevation_mask = float(elevation_mask)
        self._track_carrier = bool(track_carrier)
        if carrier_noise_meters < 0:
            raise ConfigurationError("carrier_noise_meters must be >= 0")
        self._carrier_noise = float(carrier_noise_meters)
        self._carrier_seed = int(carrier_seed)
        self._ambiguities: dict = {}
        self._track_doppler = bool(track_doppler)
        if doppler_noise_mps < 0:
            raise ConfigurationError("doppler_noise_mps must be >= 0")
        self._doppler_noise = float(doppler_noise_mps)
        self._track_dual_frequency = bool(track_dual_frequency)
        if l2_noise_factor < 0:
            raise ConfigurationError("l2_noise_factor must be >= 0")
        self._l2_noise_factor = float(l2_noise_factor)
        self._multipath = multipath

    def _carrier_ambiguity_meters(self, prn: int) -> float:
        """Per-satellite integer ambiguity, fixed for the simulator's
        lifetime (one 'pass' worth of phase continuity)."""
        ambiguity = self._ambiguities.get(prn)
        if ambiguity is None:
            rng = np.random.default_rng([self._carrier_seed, prn])
            ambiguity = int(rng.integers(-5_000_000, 5_000_000)) * L1_WAVELENGTH
            self._ambiguities[prn] = ambiguity
        return ambiguity

    @property
    def constellation(self) -> Constellation:
        """The simulated space segment."""
        return self._constellation

    @property
    def receiver_clock(self) -> ReceiverClockModel:
        """The truth receiver clock model."""
        return self._receiver_clock

    def simulate_epoch(
        self,
        receiver_ecef: np.ndarray,
        time: GpsTime,
        rng: np.random.Generator,
        receiver_velocity: Optional[np.ndarray] = None,
    ) -> List[RawPseudorange]:
        """Simulate all raw measurements at one receive instant.

        ``time`` is the *true* GPS time of reception; the receiver's
        clock error enters the pseudoranges, not the epoch timestamp
        (station data is time-tagged against corrected time).
        ``receiver_velocity`` (ECEF m/s, default static) only matters
        when Doppler tracking is enabled.
        """
        receiver = require_shape("receiver_ecef", receiver_ecef, (3,))
        if receiver_velocity is None:
            receiver_velocity = np.zeros(3)
        else:
            receiver_velocity = require_shape(
                "receiver_velocity", receiver_velocity, (3,)
            )
        latitude, longitude, height = ecef_to_geodetic(receiver)
        receiver_clock_m = SPEED_OF_LIGHT * self._receiver_clock.bias_seconds(time)
        receiver_drift = (
            self._receiver_clock.drift_rate(time) if self._track_doppler else 0.0
        )

        raw: List[RawPseudorange] = []
        for visible in self._constellation.visible_from(
            receiver, time, self._elevation_mask
        ):
            ephemeris = visible.satellite.ephemeris
            travel_time, transmit_position = signal_travel_time(
                lambda tau, eph=ephemeris: eph.satellite_position(time - tau),
                receiver,
            )
            transmit_time = time - travel_time
            geometric_range = float(np.linalg.norm(transmit_position - receiver))

            satellite_clock_m = SPEED_OF_LIGHT * ephemeris.satellite_clock_offset(
                transmit_time
            )
            iono_m = self._ionosphere.delay_meters(
                latitude, longitude, visible.elevation, visible.azimuth, time
            )
            tropo_m = self._troposphere.delay_meters(visible.elevation, height)
            noise_m = self._noise.sample(visible.elevation, rng)
            multipath_m = (
                self._multipath.code_bias(visible.prn, visible.elevation, time)
                if self._multipath is not None
                else 0.0
            )

            pseudorange = (
                geometric_range
                + receiver_clock_m
                - satellite_clock_m
                + iono_m
                + tropo_m
                + noise_m
                + multipath_m
            )
            carrier = None
            if self._track_carrier:
                # Phase: ionosphere advances (-I), and the ambiguity is
                # a constant per pass; noise is millimetric.
                carrier = (
                    geometric_range
                    + receiver_clock_m
                    - satellite_clock_m
                    - iono_m
                    + tropo_m
                    + self._carrier_ambiguity_meters(visible.prn)
                )
                if self._multipath is not None:
                    carrier += self._multipath.carrier_bias(
                        visible.prn, visible.elevation, time
                    )
                if self._carrier_noise:
                    carrier += float(rng.normal(0.0, self._carrier_noise))
            pseudorange_l2 = None
            if self._track_dual_frequency:
                noise_l2 = (
                    self._noise.sample(visible.elevation, rng) * self._l2_noise_factor
                )
                pseudorange_l2 = (
                    geometric_range
                    + receiver_clock_m
                    - satellite_clock_m
                    + IONO_L2_SCALE * iono_m
                    + tropo_m
                    + noise_l2
                    + multipath_m
                )
            range_rate = None
            if self._track_doppler:
                line_of_sight = (transmit_position - receiver) / geometric_range
                satellite_velocity = ephemeris.satellite_velocity(transmit_time)
                satellite_drift = ephemeris.af1 + 2.0 * ephemeris.af2 * (
                    transmit_time.time_of_week_difference(ephemeris.toc)
                )
                range_rate = (
                    float((satellite_velocity - receiver_velocity) @ line_of_sight)
                    + SPEED_OF_LIGHT * (receiver_drift - satellite_drift)
                )
                if self._doppler_noise:
                    range_rate += float(rng.normal(0.0, self._doppler_noise))
            raw.append(
                RawPseudorange(
                    prn=visible.prn,
                    pseudorange=pseudorange,
                    satellite_position=transmit_position,
                    elevation=visible.elevation,
                    azimuth=visible.azimuth,
                    transmit_time=transmit_time,
                    geometric_range=geometric_range,
                    satellite_clock_meters=satellite_clock_m,
                    ionosphere_meters=iono_m,
                    troposphere_meters=tropo_m,
                    noise_meters=noise_m,
                    receiver_clock_meters=receiver_clock_m,
                    carrier_range=carrier,
                    range_rate=range_rate,
                    pseudorange_l2=pseudorange_l2,
                )
            )
        return raw


#: Sentinel meaning "use the stock model" (as opposed to ``None``,
#: which disables the correction entirely — e.g. a low-cost receiver
#: that relies on DGPS instead of atmospheric modeling).
_STOCK = object()


class MeasurementCorrector:
    """Receiver-side deterministic corrections.

    Applies, per measurement:

    * the broadcast satellite clock polynomial (fully known, so this
      component corrects exactly), and
    * the receiver's ionosphere/troposphere models evaluated at the
      receiver's *surveyed* position — these only approximate the truth,
      leaving the residual ``eps_S``.

    Pass ``ionosphere=None`` / ``troposphere=None`` to skip the
    respective correction (the atmospheric error then stays in the
    pseudorange in full — the configuration of a receiver that depends
    on differential corrections instead).
    """

    def __init__(
        self,
        constellation: Constellation,
        ionosphere=_STOCK,
        troposphere=_STOCK,
    ) -> None:
        self._constellation = constellation
        self._ionosphere: Optional[KlobucharModel] = (
            KlobucharModel() if ionosphere is _STOCK else ionosphere
        )
        self._troposphere: Optional[SaastamoinenModel] = (
            SaastamoinenModel() if troposphere is _STOCK else troposphere
        )

    def correct(
        self,
        raw: RawPseudorange,
        approximate_receiver_ecef: np.ndarray,
        time: GpsTime,
    ) -> SatelliteObservation:
        """Produce the corrected observation the solvers consume."""
        receiver = require_shape(
            "approximate_receiver_ecef", approximate_receiver_ecef, (3,)
        )
        latitude, longitude, height = ecef_to_geodetic(receiver)
        ephemeris = self._constellation.satellite(raw.prn).ephemeris

        satellite_clock_m = SPEED_OF_LIGHT * ephemeris.satellite_clock_offset(
            raw.transmit_time
        )
        iono_m = (
            self._ionosphere.delay_meters(
                latitude, longitude, raw.elevation, raw.azimuth, time
            )
            if self._ionosphere is not None
            else 0.0
        )
        tropo_m = (
            self._troposphere.delay_meters(raw.elevation, height)
            if self._troposphere is not None
            else 0.0
        )

        corrected = raw.pseudorange + satellite_clock_m - iono_m - tropo_m
        if corrected <= 0:
            raise ConfigurationError(
                f"corrected pseudorange for PRN {raw.prn} is non-positive; "
                "correction models are inconsistent with the measurement"
            )
        carrier = None
        if raw.carrier_range is not None:
            # Phase sees the ionosphere with the opposite sign.
            carrier = raw.carrier_range + satellite_clock_m + iono_m - tropo_m
        pseudorange_l2 = None
        if raw.pseudorange_l2 is not None:
            pseudorange_l2 = (
                raw.pseudorange_l2
                + satellite_clock_m
                - IONO_L2_SCALE * iono_m
                - tropo_m
            )
            if pseudorange_l2 <= 0:
                raise ConfigurationError(
                    f"corrected L2 pseudorange for PRN {raw.prn} is non-positive"
                )
        range_rate = None
        satellite_velocity = None
        if raw.range_rate is not None:
            # Remove the broadcast satellite clock drift; attach the
            # ephemeris-derived satellite velocity the velocity solver
            # needs.  The receiver's own drift stays in as the solved-for
            # unknown (the velocity-domain eps_R).
            satellite_drift = ephemeris.af1 + 2.0 * ephemeris.af2 * (
                raw.transmit_time.time_of_week_difference(ephemeris.toc)
            )
            range_rate = raw.range_rate + SPEED_OF_LIGHT * satellite_drift
            satellite_velocity = ephemeris.satellite_velocity(raw.transmit_time)
        return SatelliteObservation(
            prn=raw.prn,
            position=raw.satellite_position,
            pseudorange=corrected,
            elevation=raw.elevation,
            azimuth=raw.azimuth,
            carrier_range=carrier,
            pseudorange_l2=pseudorange_l2,
            range_rate=range_rate,
            velocity=satellite_velocity,
        )

    def correct_epoch(
        self,
        raw_measurements: List[RawPseudorange],
        approximate_receiver_ecef: np.ndarray,
        time: GpsTime,
        truth: Optional[EpochTruth] = None,
    ) -> ObservationEpoch:
        """Correct a whole epoch and package it as :class:`ObservationEpoch`."""
        observations = tuple(
            self.correct(raw, approximate_receiver_ecef, time)
            for raw in raw_measurements
        )
        return ObservationEpoch(time=time, observations=observations, truth=truth)
