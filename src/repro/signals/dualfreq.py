"""Dual-frequency processing: the ionosphere-free combination.

The ionosphere is dispersive — its group delay scales as ``1/f^2`` —
so two pseudoranges on different carriers pin it down exactly:

    rho_IF = (f1^2 rho_1 - f2^2 rho_2) / (f1^2 - f2^2)

removes the first-order ionospheric delay entirely (including any
residual left by an imperfect single-frequency model correction, since
the model estimate enters both bands in the same ``1/f^2`` ratio and
cancels).  The price is noise amplification: for GPS L1/L2 the
combination coefficients are ~(+2.546, -1.546), inflating independent
per-band noise by a factor ~3.

This is the standard accuracy upgrade for dual-frequency receivers
and, like Hatch smoothing, it composes with the paper's fast solvers —
the combined epoch feeds NR/DLO/DLG unchanged.
"""

from __future__ import annotations

from repro.constants import L1_FREQUENCY, L2_FREQUENCY
from repro.errors import GeometryError
from repro.observations import ObservationEpoch, SatelliteObservation

#: Combination coefficients: rho_IF = ALPHA_L1 * rho1 + ALPHA_L2 * rho2.
_F1_SQ = L1_FREQUENCY**2
_F2_SQ = L2_FREQUENCY**2
ALPHA_L1 = _F1_SQ / (_F1_SQ - _F2_SQ)
ALPHA_L2 = -_F2_SQ / (_F1_SQ - _F2_SQ)

#: Noise amplification of the combination for equal per-band sigmas.
NOISE_AMPLIFICATION = (ALPHA_L1**2 + ALPHA_L2**2) ** 0.5


def ionosphere_free_pseudorange(pseudorange_l1: float, pseudorange_l2: float) -> float:
    """The ionosphere-free pseudorange from one satellite's two bands."""
    return ALPHA_L1 * pseudorange_l1 + ALPHA_L2 * pseudorange_l2


def ionosphere_free_epoch(
    epoch: ObservationEpoch,
    min_satellites: int = 4,
) -> ObservationEpoch:
    """Combine a dual-frequency epoch into ionosphere-free pseudoranges.

    Satellites without an L2 measurement are dropped.  The returned
    epoch's ``pseudorange`` is the combination (its ``pseudorange_l2``
    is cleared); geometry, carrier, and Doppler fields pass through.
    """
    combined = []
    for observation in epoch.observations:
        if observation.pseudorange_l2 is None:
            continue
        pseudorange = ionosphere_free_pseudorange(
            observation.pseudorange, observation.pseudorange_l2
        )
        if pseudorange <= 0:
            raise GeometryError(
                f"ionosphere-free combination for PRN {observation.prn} is "
                "non-positive; band measurements are inconsistent"
            )
        combined.append(
            SatelliteObservation(
                prn=observation.prn,
                position=observation.position,
                pseudorange=pseudorange,
                elevation=observation.elevation,
                azimuth=observation.azimuth,
                carrier_range=observation.carrier_range,
                range_rate=observation.range_rate,
                velocity=observation.velocity,
            )
        )
    if len(combined) < min_satellites:
        raise GeometryError(
            f"only {len(combined)} satellites carry both bands; "
            f"{min_satellites} required"
        )
    return epoch.with_observations(combined)
