"""Signal-feature model: C/N0 synthesis and plausibility features.

The point solvers only ever read geometry and pseudoranges; everything
a tracking channel *also* reports — carrier-to-noise density (C/N0),
front-end gain (AGC), carrier/code coherence — is invisible to them.
That is exactly the blind spot a coherent spoofer exploits: a replayed
or dragged signal set keeps the residuals small while its *signal*
signature (one transmitter's power profile instead of a sky of
independent ones) is glaring.

This module is the feature side of the signal-plausibility plane
(:mod:`repro.integrity.monitors` is the decision side):

* :func:`nominal_cn0_dbhz` — the elevation-dependent open-sky C/N0
  curve every monitor compares against;
* :class:`SignalFeatureModel` — a seeded synthesizer attaching
  realistic C/N0 to simulated epochs (the monitors' test harnesses and
  the spoof chaos campaign both draw from it);
* :func:`agc_proxy_db` — the common-mode C/N0 deviation, a software
  proxy for the AGC excursions jamming produces;
* :func:`carrier_code_divergence` / :func:`divergence_rate` — the
  carrier/code coherence feature (code-only manipulation diverges the
  two observables at a rate ionospheric drift cannot explain).

Everything is vectorized over the columnar lanes
(:class:`~repro.blocks.EpochBlock` C/N0 is ``(N, m)`` NaN-padded), so
the monitor plane rides the same zero-copy arrays as the solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch, SatelliteObservation

__all__ = [
    "SignalFeatureConfig",
    "SignalFeatureModel",
    "nominal_cn0_dbhz",
    "elevations_from_geometry",
    "agc_proxy_db",
    "carrier_code_divergence",
    "divergence_rate",
]

#: Default open-sky C/N0 at zenith / at the horizon mask (dB-Hz).
#: The sine-of-elevation interpolation between them matches the
#: standard antenna-gain-dominated model used by receiver monitors.
DEFAULT_ZENITH_DBHZ = 50.0
DEFAULT_HORIZON_DBHZ = 36.0


def nominal_cn0_dbhz(
    elevations: np.ndarray,
    zenith_dbhz: float = DEFAULT_ZENITH_DBHZ,
    horizon_dbhz: float = DEFAULT_HORIZON_DBHZ,
) -> np.ndarray:
    """Expected open-sky C/N0 (dB-Hz) at the given elevations (radians).

    ``horizon + (zenith - horizon) * sin(elevation)``, clamped to the
    upper hemisphere; NaN elevations pass through as NaN so padded
    lanes stay padded.  Works on any array shape.
    """
    elevations = np.asarray(elevations, dtype=float)
    gain = np.sin(np.clip(elevations, 0.0, np.pi / 2.0))
    return horizon_dbhz + (zenith_dbhz - horizon_dbhz) * gain


def elevations_from_geometry(
    positions: np.ndarray, receiver: np.ndarray
) -> np.ndarray:
    """Satellite elevations (radians) from ECEF geometry, vectorized.

    ``positions`` is ``(..., m, 3)``, ``receiver`` broadcastable
    ``(..., 3)``; the local vertical is the geocentric up at the
    receiver (sub-milliradian from the geodetic normal — irrelevant for
    a C/N0 curve).  Rows with a non-finite receiver yield NaN.
    """
    positions = np.asarray(positions, dtype=float)
    receiver = np.asarray(receiver, dtype=float)
    los = positions - receiver[..., np.newaxis, :]
    los_norm = np.linalg.norm(los, axis=-1)
    up = receiver / np.linalg.norm(receiver, axis=-1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        sin_el = np.sum(los * up[..., np.newaxis, :], axis=-1) / los_norm
    return np.arcsin(np.clip(sin_el, -1.0, 1.0))


def agc_proxy_db(cn0: np.ndarray, nominal: np.ndarray) -> np.ndarray:
    """Common-mode C/N0 deviation (dB), an AGC-excursion proxy.

    The per-epoch mean of ``cn0 - nominal`` over reporting satellites
    (NaN-aware).  Broadband interference drives the front end's AGC —
    and with it every channel's C/N0 — down *together*; per-satellite
    effects (multipath, a single blocked ray) do not.  Input shapes
    ``(..., m)``; returns ``(...,)``, NaN where no satellite reports.
    """
    deviation = np.asarray(cn0, dtype=float) - np.asarray(nominal, dtype=float)
    with np.errstate(invalid="ignore"):
        counts = np.isfinite(deviation).sum(axis=-1)
        sums = np.nansum(np.where(np.isfinite(deviation), deviation, 0.0), axis=-1)
    return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


def carrier_code_divergence(epoch: ObservationEpoch) -> np.ndarray:
    """Per-satellite carrier-minus-code divergence (meters), NaN-padded.

    ``carrier_range - pseudorange`` per observation; constant per pass
    (the carrier ambiguity) apart from twice the ionospheric delay, so
    its *rate* (:func:`divergence_rate`) is bounded by ionospheric
    dynamics — code-only spoofing breaks that bound.
    """
    return np.array(
        [
            (obs.carrier_range - obs.pseudorange)
            if obs.carrier_range is not None
            else np.nan
            for obs in epoch.observations
        ],
        dtype=float,
    )


def divergence_rate(
    previous: np.ndarray, current: np.ndarray, dt_seconds: float
) -> np.ndarray:
    """Carrier/code divergence rate (m/s) between two aligned epochs."""
    if not np.isfinite(dt_seconds) or dt_seconds <= 0:
        raise ConfigurationError("dt_seconds must be positive and finite")
    return (np.asarray(current, dtype=float) - np.asarray(previous, dtype=float)) / (
        float(dt_seconds)
    )


@dataclass(frozen=True)
class SignalFeatureConfig:
    """Shape of the synthesized C/N0 population.

    Attributes
    ----------
    zenith_dbhz, horizon_dbhz:
        The endpoints of the elevation-dependent nominal curve.
    noise_sigma_db:
        Per-observation Gaussian scatter around the curve (thermal +
        multipath flicker).
    """

    zenith_dbhz: float = DEFAULT_ZENITH_DBHZ
    horizon_dbhz: float = DEFAULT_HORIZON_DBHZ
    noise_sigma_db: float = 1.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.zenith_dbhz) or not np.isfinite(self.horizon_dbhz):
            raise ConfigurationError("C/N0 curve endpoints must be finite")
        if self.zenith_dbhz <= self.horizon_dbhz:
            raise ConfigurationError(
                "zenith_dbhz must exceed horizon_dbhz (gain rises with elevation)"
            )
        if not np.isfinite(self.noise_sigma_db) or self.noise_sigma_db < 0:
            raise ConfigurationError("noise_sigma_db must be non-negative")

    def nominal(self, elevations: np.ndarray) -> np.ndarray:
        """The configured nominal curve at ``elevations`` (radians)."""
        return nominal_cn0_dbhz(elevations, self.zenith_dbhz, self.horizon_dbhz)


class SignalFeatureModel:
    """Seeded C/N0 synthesizer for simulated observation streams.

    A pure function of ``(config, seed, epoch order)``: attaching the
    same stream twice produces bit-identical lanes, which is what lets
    the spoof chaos campaign and its replay artifacts agree.
    """

    def __init__(
        self, config: Optional[SignalFeatureConfig] = None, seed: int = 0
    ) -> None:
        self._config = config if config is not None else SignalFeatureConfig()
        self._rng = np.random.default_rng(seed)

    @property
    def config(self) -> SignalFeatureConfig:
        """The population shape."""
        return self._config

    def attach(self, epoch: ObservationEpoch) -> ObservationEpoch:
        """A new epoch whose observations carry synthesized C/N0.

        Elevations come from each observation when the producer set
        them, else from geometry against the epoch's truth position;
        with neither, the zenith value is used (flat sky).
        """
        elevations = np.array(
            [obs.elevation for obs in epoch.observations], dtype=float
        )
        if not elevations.any() and epoch.truth is not None:
            positions = epoch.dense()[0]
            elevations = elevations_from_geometry(
                positions, epoch.truth.receiver_position
            )
        nominal = self._config.nominal(elevations)
        noise = self._rng.normal(
            0.0, self._config.noise_sigma_db, size=len(epoch.observations)
        )
        cn0 = nominal + noise
        observations: List[SatelliteObservation] = [
            SatelliteObservation(
                prn=obs.prn,
                position=obs.position,
                pseudorange=obs.pseudorange,
                elevation=obs.elevation,
                azimuth=obs.azimuth,
                carrier_range=obs.carrier_range,
                pseudorange_l2=obs.pseudorange_l2,
                range_rate=obs.range_rate,
                velocity=obs.velocity,
                system=obs.system,
                cn0_dbhz=float(cn0[index]),
            )
            for index, obs in enumerate(epoch.observations)
        ]
        return epoch.with_observations(observations)

    def attach_stream(
        self, epochs: Iterable[ObservationEpoch]
    ) -> List[ObservationEpoch]:
        """Attach C/N0 to every epoch of a stream, in order."""
        return [self.attach(epoch) for epoch in epochs]
