"""Stochastic pseudorange error model.

Models the code-tracking thermal noise and diffuse multipath that
remain after all deterministic corrections.  The variance is
elevation-dependent (low satellites are noisier), which is the realism
knob; setting ``elevation_weighting=False`` gives the strictly
identically-distributed errors of the paper's analytical assumptions
(eq. 4-14/4-15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PseudorangeNoiseModel:
    """Zero-mean Gaussian pseudorange noise.

    Attributes
    ----------
    sigma_meters:
        1-sigma noise at zenith (elevation 90 degrees).
    elevation_weighting:
        If true, the standard deviation scales as ``1/sin(elevation)``
        (clamped at 5 degrees), the conventional GNSS weighting model.
        If false, all satellites get ``sigma_meters`` regardless of
        elevation — matching the paper's equal-variance assumption
        exactly.
    """

    sigma_meters: float = 1.0
    elevation_weighting: bool = True

    def __post_init__(self) -> None:
        if self.sigma_meters < 0:
            raise ConfigurationError("sigma_meters must be >= 0")

    def sigma_at(self, elevation: float) -> float:
        """Effective 1-sigma (meters) for a satellite at ``elevation`` rad."""
        if not self.elevation_weighting:
            return self.sigma_meters
        clamped = max(elevation, math.radians(5.0))
        return self.sigma_meters / math.sin(clamped)

    def sample(self, elevation: float, rng: np.random.Generator) -> float:
        """Draw one noise realization (meters)."""
        sigma = self.sigma_at(elevation)
        if sigma == 0.0:
            return 0.0
        return float(rng.normal(0.0, sigma))
