"""Signal layer: pseudorange synthesis and receiver-side correction.

This is where the paper's measurement model (eq. 3-5):

    rho_e_i = rho_i + eps_S_i + eps_R

comes to life: the simulator produces pseudoranges containing the true
geometric range, the receiver clock bias ``eps_R`` (from a clock model),
and the satellite-dependent error ``eps_S`` (satellite clock residual,
atmospheric residuals, thermal noise).
"""

from repro.signals.sagnac import sagnac_rotation, signal_travel_time
from repro.signals.noise import PseudorangeNoiseModel
from repro.signals.pseudorange import (
    PseudorangeSimulator,
    RawPseudorange,
    MeasurementCorrector,
)
from repro.signals.smoothing import HatchFilter
from repro.signals.multipath import MultipathModel
from repro.signals.cycleslips import CycleSlipDetector
from repro.signals.dualfreq import (
    ionosphere_free_epoch,
    ionosphere_free_pseudorange,
    NOISE_AMPLIFICATION,
)
from repro.signals.features import (
    SignalFeatureConfig,
    SignalFeatureModel,
    agc_proxy_db,
    carrier_code_divergence,
    divergence_rate,
    elevations_from_geometry,
    nominal_cn0_dbhz,
)

__all__ = [
    "sagnac_rotation",
    "signal_travel_time",
    "PseudorangeNoiseModel",
    "PseudorangeSimulator",
    "RawPseudorange",
    "MeasurementCorrector",
    "HatchFilter",
    "MultipathModel",
    "CycleSlipDetector",
    "ionosphere_free_epoch",
    "ionosphere_free_pseudorange",
    "NOISE_AMPLIFICATION",
    "SignalFeatureConfig",
    "SignalFeatureModel",
    "agc_proxy_db",
    "carrier_code_divergence",
    "divergence_rate",
    "elevations_from_geometry",
    "nominal_cn0_dbhz",
]
