"""Earth-rotation (Sagnac) effect and light-time iteration.

A GPS signal spends ~70 ms in flight; the ECEF frame rotates ~36 m at
the equator in that time.  Computing ranges consistently therefore
requires (a) finding the *transmit* time by light-time iteration and
(b) rotating the transmit-time satellite position into the receive-time
ECEF frame.  Both utilities live here and are used by the pseudorange
simulator; receivers performing the inverse correction use the same
rotation.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

from repro.constants import EARTH_ROTATION_RATE, SPEED_OF_LIGHT
from repro.errors import ConvergenceError
from repro.utils.validation import require_shape


def sagnac_rotation(position_ecef: np.ndarray, travel_time: float) -> np.ndarray:
    """Rotate an ECEF position by the earth rotation over ``travel_time``.

    Expresses a satellite position computed at transmit time in the
    ECEF frame of the receive instant (rotation by ``omega_e * tau``
    about the +z axis).
    """
    position = require_shape("position_ecef", position_ecef, (3,))
    theta = EARTH_ROTATION_RATE * travel_time
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    rotation = np.array(
        [
            [cos_t, sin_t, 0.0],
            [-sin_t, cos_t, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    return rotation @ position


def signal_travel_time(
    satellite_position_at: Callable[[float], np.ndarray],
    receiver_ecef: np.ndarray,
    receive_offset: float = 0.0,
    tolerance: float = 1e-12,
    max_iterations: int = 10,
) -> Tuple[float, np.ndarray]:
    """Solve the light-time equation for one satellite-receiver pair.

    Parameters
    ----------
    satellite_position_at:
        Callable mapping *seconds before the receive instant* to the
        satellite ECEF position at that earlier instant (in that
        instant's ECEF frame).
    receiver_ecef:
        Receiver ECEF position at the receive instant.
    receive_offset:
        Initial guess refinement offset; normally 0.
    tolerance:
        Convergence threshold on the travel time (seconds); 1e-12 s
        corresponds to 0.3 mm of range.
    max_iterations:
        Iteration budget.

    Returns
    -------
    (travel_time_seconds, satellite_position)
        The converged travel time and the satellite position at the
        transmit instant *rotated into the receive-time ECEF frame*.
    """
    receiver = require_shape("receiver_ecef", receiver_ecef, (3,))
    travel_time = 0.075 + receive_offset  # ~GPS mean, good first guess

    for _iteration in range(max_iterations):
        transmit_position = satellite_position_at(travel_time)
        rotated = sagnac_rotation(transmit_position, travel_time)
        geometric_range = float(np.linalg.norm(rotated - receiver))
        new_travel_time = geometric_range / SPEED_OF_LIGHT
        if abs(new_travel_time - travel_time) < tolerance:
            return new_travel_time, rotated
        travel_time = new_travel_time

    raise ConvergenceError(
        "light-time iteration failed to converge", iterations=max_iterations
    )
