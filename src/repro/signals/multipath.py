"""Deterministic specular multipath model.

Reflected signal paths add a slowly oscillating, elevation-dependent
bias to code pseudoranges (meters) and a much smaller one to carrier
phase (centimeters).  Unlike thermal noise it is *correlated in time*
(the reflection geometry changes slowly), which is exactly the error
class carrier smoothing attacks and white-noise models miss.

The model: per satellite,

    mp(t) = A * exp(-el / el_scale) * sin(2 pi t / T + phase(prn))

with a per-PRN phase so satellites decorrelate, deterministic in
``(prn, t)`` so data sets stay exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.timebase import GpsTime


@dataclass(frozen=True)
class MultipathModel:
    """Elevation-dependent oscillating multipath bias.

    Attributes
    ----------
    code_amplitude_meters:
        Peak code multipath at the horizon (before elevation decay).
    carrier_fraction:
        Carrier-phase multipath as a fraction of the code multipath
        (~1 % physically: bounded by a quarter wavelength).
    elevation_scale:
        e-folding elevation (radians): high satellites see little
        multipath because reflections arrive from below the antenna.
    period_seconds:
        Oscillation period of the reflection geometry.
    """

    code_amplitude_meters: float = 1.5
    carrier_fraction: float = 0.01
    elevation_scale: float = math.radians(25.0)
    period_seconds: float = 600.0

    def __post_init__(self) -> None:
        if self.code_amplitude_meters < 0:
            raise ConfigurationError("code_amplitude_meters must be >= 0")
        if not 0.0 <= self.carrier_fraction <= 1.0:
            raise ConfigurationError("carrier_fraction must be in [0, 1]")
        if self.elevation_scale <= 0:
            raise ConfigurationError("elevation_scale must be positive")
        if self.period_seconds <= 0:
            raise ConfigurationError("period_seconds must be positive")

    def code_bias(self, prn: int, elevation: float, time: GpsTime) -> float:
        """Code-pseudorange multipath (meters) for one satellite."""
        envelope = self.code_amplitude_meters * math.exp(
            -max(elevation, 0.0) / self.elevation_scale
        )
        # Fold the (large) GPS timestamp by the period before scaling so
        # the sine argument stays small and the cycle repeats exactly.
        cycle = math.fmod(time.to_gps_seconds(), self.period_seconds)
        phase = 2.0 * math.pi * cycle / self.period_seconds
        # Golden-angle PRN offsets spread satellites around the cycle.
        phase += 2.399963 * prn
        return envelope * math.sin(phase)

    def carrier_bias(self, prn: int, elevation: float, time: GpsTime) -> float:
        """Carrier-phase multipath (meters) for one satellite."""
        return self.carrier_fraction * self.code_bias(prn, elevation, time)
