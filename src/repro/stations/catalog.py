"""The four observation stations of Table 5.1.

The paper evaluates on 24-hour data sets from four CORS land
observation stations.  Their surveyed ECEF coordinates, collection
dates, and clock correction types are reproduced verbatim from Table
5.1; our simulator generates observations *for these exact locations*
with the matching clock behaviour, which is what makes the per-station
panels of Figures 5.1/5.2 reproducible without network access to the
CORS archive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.geodesy import ecef_to_geodetic


@dataclass(frozen=True)
class Station:
    """A land observation station (one Table 5.1 row).

    Attributes
    ----------
    number:
        The "No." column (1..4).
    site_id:
        Four-character CORS site identifier.
    ecef:
        Surveyed ECEF coordinates (meters) — the ground truth every
        position error is measured against (eq. 5-1).
    collection_date:
        The paper's data collection date (YYYY/MM/DD).
    clock_correction:
        ``"Steering"`` or ``"Threshold"`` — how the station disciplines
        its receiver clock (drives the bias-prediction mode, §5.2.2).
    """

    number: int
    site_id: str
    ecef: Tuple[float, float, float]
    collection_date: str
    clock_correction: str

    @property
    def position(self) -> np.ndarray:
        """Surveyed position as an ndarray (meters, ECEF)."""
        return np.array(self.ecef, dtype=float)

    @property
    def geodetic(self) -> Tuple[float, float, float]:
        """Geodetic ``(latitude_rad, longitude_rad, height_m)``."""
        latitude, longitude, height = ecef_to_geodetic(self.position)
        return latitude, longitude, height

    @property
    def uses_steering_clock(self) -> bool:
        """True when the station steers its clock continuously."""
        return self.clock_correction == "Steering"


#: Table 5.1, verbatim.
STATIONS: Dict[str, Station] = {
    station.site_id: station
    for station in (
        Station(
            number=1,
            site_id="SRZN",
            ecef=(3623420.032, -5214015.434, 602359.096),
            collection_date="2009/08/12",
            clock_correction="Steering",
        ),
        Station(
            number=2,
            site_id="YYR1",
            ecef=(1885341.558, -3321428.098, 5091171.168),
            collection_date="2009/10/23",
            clock_correction="Steering",
        ),
        Station(
            number=3,
            site_id="FAI1",
            ecef=(-2304740.630, -1448716.218, 5748842.956),
            collection_date="2009/10/29",
            clock_correction="Steering",
        ),
        Station(
            number=4,
            site_id="KYCP",
            ecef=(411598.861, -5060514.896, 3847795.506),
            collection_date="2009/10/10",
            clock_correction="Threshold",
        ),
    )
}


def get_station(site_id: str) -> Station:
    """Look up a Table 5.1 station by site id (case-insensitive)."""
    try:
        return STATIONS[site_id.upper()]
    except KeyError:
        raise DatasetError(
            f"unknown station {site_id!r}; available: {sorted(STATIONS)}"
        ) from None


def all_stations() -> List[Station]:
    """All Table 5.1 stations in table order."""
    return sorted(STATIONS.values(), key=lambda s: s.number)
