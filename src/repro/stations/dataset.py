"""Data-set generation: the substitute for the paper's CORS downloads.

The paper's Section 5.2.1 data sets are 24-hour, 1 Hz observation
streams — 86 400 "data items", each carrying every visible satellite's
coordinates and pseudorange (8 to 12 satellites per item).  This module
produces streams with the same structure from the simulated substrate:

* the satellites come from the nominal 31-SV constellation;
* the receiver sits at the station's surveyed Table 5.1 coordinates;
* the receiver clock follows the station's clock-correction type
  (steering or threshold);
* the pseudoranges carry satellite clock error, ionosphere,
  troposphere, and thermal noise, then pass through the receiver-side
  corrector — leaving the residual ``eps_S`` plus the clock bias
  ``eps_R`` the algorithms must cope with.

The truth (receiver position + clock bias) is attached to each epoch
for evaluation.  All randomness is seeded, so a ``(station, config)``
pair defines its data set bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional

import numpy as np

from repro.atmosphere import KlobucharModel, SaastamoinenModel
from repro.clocks.models import ReceiverClockModel, SteeringClock, ThresholdClock
from repro.constants import SECONDS_PER_DAY, SPEED_OF_LIGHT
from repro.constellation import Constellation
from repro.errors import ConfigurationError, DatasetError
from repro.observations import EpochTruth, ObservationEpoch
from repro.signals import (
    MeasurementCorrector,
    MultipathModel,
    PseudorangeNoiseModel,
    PseudorangeSimulator,
)
from repro.stations.catalog import Station
from repro.timebase import GpsTime


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of a generated observation data set.

    The defaults reproduce the paper's collection setup: 24 hours of
    1 Hz data from the 31-satellite constellation.  Tests and quick
    examples override ``duration_seconds``/``interval_seconds`` to keep
    runtimes sensible; the statistical structure does not depend on the
    span.

    Attributes
    ----------
    start_time:
        GPS time of the first epoch.
    duration_seconds, interval_seconds:
        Observation span and cadence; ``epoch_count`` is their ratio.
    satellite_count:
        Space vehicles in the simulated constellation.
    elevation_mask:
        Visibility mask (radians).
    noise_sigma_meters:
        Zenith 1-sigma of the pseudorange thermal noise.
    elevation_weighted_noise:
        Whether noise grows toward the horizon (realism) or stays
        constant (the paper's exact i.i.d. assumption).
    ionosphere_scale, troposphere_scale:
        Multipliers applied to the *true* atmospheric delays relative
        to the receiver's correction models; values away from 1.0
        leave realistic correction residuals (``eps_S``).
    steering_offset_seconds, steering_drift, clock_wander_seconds:
        Steering-clock truth parameters (offset ``D``, drift ``r``,
        slow wander amplitude).
    threshold_drift, threshold_reset_seconds:
        Threshold-clock truth parameters (free-running drift and the
        sawtooth reset threshold).
    seed:
        Root seed; every stochastic component derives from it.
    """

    start_time: GpsTime = field(default_factory=lambda: GpsTime(week=1540, seconds_of_week=0.0))
    duration_seconds: float = float(SECONDS_PER_DAY)
    interval_seconds: float = 1.0
    satellite_count: int = 31
    #: 7.5 degrees reproduces the paper's 8-12 visible satellites per item.
    elevation_mask: float = math.radians(7.5)
    noise_sigma_meters: float = 0.8
    elevation_weighted_noise: bool = True
    ionosphere_scale: float = 1.25
    troposphere_scale: float = 1.05
    steering_offset_seconds: float = 5e-8
    steering_drift: float = 2e-10
    clock_wander_seconds: float = 2e-9
    threshold_drift: float = 2e-7
    threshold_reset_seconds: float = 1e-3
    #: Also synthesize L1 carrier phase (enables Hatch smoothing and
    #: two-observable RINEX export).
    track_carrier: bool = False
    carrier_noise_meters: float = 0.003
    #: Also synthesize Doppler range rates (stations are static, so
    #: the observable is dominated by satellite motion and clock drift
    #: — useful for velocity-solver validation against a known-zero).
    track_doppler: bool = False
    #: Also synthesize L2 pseudoranges for ionosphere-free processing.
    dual_frequency: bool = False
    #: Peak code multipath at the horizon (meters); 0 disables the
    #: model.  Off by default: the paper's evaluation data is from
    #: open-sky survey stations.
    multipath_amplitude_meters: float = 0.0
    #: How often the control segment re-issues ephemerides.  Two hours
    #: keeps every evaluation inside the 4-hour broadcast fit interval
    #: across the full-day span, as the real system does.  ``0``
    #: disables refresh (single upload at the start).
    ephemeris_refresh_seconds: float = 7200.0
    seed: int = 20100610

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ConfigurationError("duration_seconds must be positive")
        if self.interval_seconds <= 0:
            raise ConfigurationError("interval_seconds must be positive")
        if self.ephemeris_refresh_seconds < 0:
            raise ConfigurationError("ephemeris_refresh_seconds must be >= 0")
        if not 1 <= self.satellite_count <= 63:
            raise ConfigurationError("satellite_count must be in [1, 63]")
        if self.noise_sigma_meters < 0:
            raise ConfigurationError("noise_sigma_meters must be >= 0")
        if self.ionosphere_scale < 0 or self.troposphere_scale < 0:
            raise ConfigurationError("atmospheric scales must be >= 0")

    @property
    def epoch_count(self) -> int:
        """Number of data items the data set contains."""
        return int(round(self.duration_seconds / self.interval_seconds))

    def with_overrides(self, **overrides) -> "DatasetConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


class _ScaledKlobuchar(KlobucharModel):
    """A Klobuchar model whose output is scaled by a constant factor.

    Used as the *truth* ionosphere: the receiver corrects with the
    unscaled model, so a scale of 1.25 leaves a 25 % residual — about
    what single-frequency broadcast correction achieves in practice.
    """

    def __init__(self, scale: float) -> None:
        super().__init__()
        object.__setattr__(self, "_scale", float(scale))

    def delay_seconds(self, *args, **kwargs) -> float:  # noqa: D102
        return self._scale * super().delay_seconds(*args, **kwargs)


class ObservationDataset:
    """A reproducible stream of observation epochs for one station.

    Epochs are generated lazily by :meth:`epochs` (memory-light for the
    86 400-item full-day configuration) or eagerly by :meth:`realize`.
    """

    def __init__(self, station: Station, config: Optional[DatasetConfig] = None) -> None:
        self.station = station
        self.config = config if config is not None else DatasetConfig()

        root = np.random.SeedSequence([self.config.seed, station.number])
        constellation_seed, noise_seed = root.spawn(2)
        constellation_rng = np.random.default_rng(constellation_seed)
        self._noise_seed = noise_seed

        self._constellation = Constellation.nominal(
            epoch=self.config.start_time,
            satellite_count=self.config.satellite_count,
            rng=constellation_rng,
        )
        self._clock_model = self._build_clock_model(constellation_rng)

        truth_ionosphere = _ScaledKlobuchar(self.config.ionosphere_scale)
        truth_troposphere = SaastamoinenModel(
            pressure_hpa=1013.25 * self.config.troposphere_scale,
            temperature_k=288.15,
            relative_humidity=0.6,
        )
        noise = PseudorangeNoiseModel(
            sigma_meters=self.config.noise_sigma_meters,
            elevation_weighting=self.config.elevation_weighted_noise,
        )
        self._simulator = PseudorangeSimulator(
            constellation=self._constellation,
            receiver_clock=self._clock_model,
            ionosphere=truth_ionosphere,
            troposphere=truth_troposphere,
            noise=noise,
            elevation_mask=self.config.elevation_mask,
            track_carrier=self.config.track_carrier,
            carrier_noise_meters=self.config.carrier_noise_meters,
            carrier_seed=self.config.seed,
            track_doppler=self.config.track_doppler,
            track_dual_frequency=self.config.dual_frequency,
            multipath=(
                MultipathModel(
                    code_amplitude_meters=self.config.multipath_amplitude_meters
                )
                if self.config.multipath_amplitude_meters > 0
                else None
            ),
        )
        # The receiver corrects with the stock (unscaled) models.
        self._corrector = MeasurementCorrector(self._constellation)

        # Ephemeris refresh bookkeeping: window 0 is the initial upload
        # from the almanac; window w re-references every ephemeris to
        # toe = start + w * refresh so the whole span stays inside the
        # broadcast fit interval.
        self._base_ephemerides = list(self._constellation.ephemerides())
        self._current_window = 0

    # ------------------------------------------------------------------
    @property
    def constellation(self) -> Constellation:
        """The simulated space segment behind this data set."""
        return self._constellation

    @property
    def clock_model(self) -> ReceiverClockModel:
        """The truth receiver clock model (for oracle predictors/tests)."""
        return self._clock_model

    @property
    def epoch_count(self) -> int:
        """Number of data items in the configured span."""
        return self.config.epoch_count

    # ------------------------------------------------------------------
    def epoch_at(self, index: int, rng: Optional[np.random.Generator] = None) -> ObservationEpoch:
        """Generate the ``index``-th epoch (0-based).

        ``rng`` defaults to a generator seeded per-epoch, so random
        access yields exactly the same epoch as streaming does.
        """
        if not 0 <= index < self.epoch_count:
            raise DatasetError(
                f"epoch index {index} out of range [0, {self.epoch_count})"
            )
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.config.seed, self.station.number, index])
            )
        time = self.config.start_time + index * self.config.interval_seconds
        self._apply_ephemeris_window(index)
        receiver = self.station.position

        raw = self._simulator.simulate_epoch(receiver, time, rng)
        if not raw:
            raise DatasetError(
                f"no visible satellites at epoch {index} ({time}); "
                "constellation or mask configuration is unrealistic"
            )
        truth = EpochTruth(
            receiver_position=receiver,
            clock_bias_meters=SPEED_OF_LIGHT * self._clock_model.bias_seconds(time),
        )
        return self._corrector.correct_epoch(raw, receiver, time, truth)

    def epochs(
        self,
        start_index: int = 0,
        stop_index: Optional[int] = None,
        stride: int = 1,
    ) -> Iterator[ObservationEpoch]:
        """Stream epochs ``start_index, start_index+stride, ...``.

        ``stride`` lets the evaluation harness sample a long data set
        (e.g. one epoch a minute from the 24-hour span) without paying
        for all 86 400 items.
        """
        if stride < 1:
            raise DatasetError("stride must be >= 1")
        stop = self.epoch_count if stop_index is None else min(stop_index, self.epoch_count)
        for index in range(start_index, stop, stride):
            yield self.epoch_at(index)

    def realize(self, max_epochs: Optional[int] = None, stride: int = 1) -> List[ObservationEpoch]:
        """Eagerly generate up to ``max_epochs`` epochs into a list."""
        result: List[ObservationEpoch] = []
        for epoch in self.epochs(stride=stride):
            result.append(epoch)
            if max_epochs is not None and len(result) >= max_epochs:
                break
        return result

    # ------------------------------------------------------------------
    def _window_for_index(self, index: int) -> int:
        refresh = self.config.ephemeris_refresh_seconds
        if refresh <= 0:
            return 0
        return int(index * self.config.interval_seconds // refresh)

    def _apply_ephemeris_window(self, index: int) -> None:
        """Upload the ephemerides for the index's refresh window."""
        window = self._window_for_index(index)
        if window == self._current_window:
            return
        refresh = self.config.ephemeris_refresh_seconds
        toe = self.config.start_time + window * refresh
        for base in self._base_ephemerides:
            ephemeris = base if window == 0 else base.advanced_to(toe)
            self._constellation.satellite(base.prn).set_ephemeris(ephemeris)
        self._current_window = window

    def navigation_records(self, stop_index: Optional[int] = None):
        """All ephemeris uploads covering epochs ``[0, stop_index)``.

        The full navigation-file content for the span: one record per
        satellite per refresh window, toe-ordered, ready for
        :func:`repro.rinex.write_navigation_file`.
        """
        stop = self.epoch_count if stop_index is None else min(stop_index, self.epoch_count)
        if stop <= 0:
            raise DatasetError("stop_index must be positive")
        last_window = self._window_for_index(stop - 1)
        records = []
        refresh = self.config.ephemeris_refresh_seconds
        for window in range(last_window + 1):
            toe = self.config.start_time + window * refresh
            for base in self._base_ephemerides:
                records.append(base if window == 0 else base.advanced_to(toe))
        return records

    # ------------------------------------------------------------------
    def _build_clock_model(self, rng: np.random.Generator) -> ReceiverClockModel:
        config = self.config
        if self.station.uses_steering_clock:
            return SteeringClock(
                epoch=config.start_time,
                offset_seconds=config.steering_offset_seconds
                * float(rng.uniform(0.5, 1.5)),
                drift=config.steering_drift * float(rng.uniform(0.5, 1.5)),
                wander_amplitude_seconds=config.clock_wander_seconds,
            )
        return ThresholdClock(
            epoch=config.start_time,
            initial_offset_seconds=float(
                rng.uniform(0.0, 0.5 * config.threshold_reset_seconds)
            ),
            drift=config.threshold_drift * float(rng.uniform(0.8, 1.2)),
            threshold_seconds=config.threshold_reset_seconds,
            wander_amplitude_seconds=config.clock_wander_seconds,
        )


def generate_dataset(
    station: Station,
    config: Optional[DatasetConfig] = None,
) -> ObservationDataset:
    """Build the data set for a station (thin, name-matching-the-paper
    convenience over the :class:`ObservationDataset` constructor)."""
    return ObservationDataset(station, config)
