"""Observation stations and data-set generation (paper Section 5.2)."""

from repro.stations.catalog import Station, STATIONS, get_station, all_stations
from repro.stations.dataset import DatasetConfig, ObservationDataset, generate_dataset

__all__ = [
    "Station",
    "STATIONS",
    "get_station",
    "all_stations",
    "DatasetConfig",
    "ObservationDataset",
    "generate_dataset",
]
