"""Chaos-testing the signal-plausibility monitors: seeded spoof storms.

:mod:`repro.validation.fdechaos` grades the residual gate against the
faults residuals *can* see; this module grades the monitor plane
(:mod:`repro.integrity.monitors`) against the attacks residuals
*cannot* — coherent spoofing and interference from
:class:`~repro.validation.faults.SpoofFault` profiles.  A run is a
pure function of its :class:`MonitorChaosConfig`:

* each seed draws one scenario (receiver, sky, clock bias) and expands
  it into a 1 Hz *stream* — same geometry every epoch, fresh seeded
  pseudorange noise, seeded C/N0 from
  :class:`~repro.signals.SignalFeatureModel`;
* seeds cycle through five arms — clean, meaconing, slow position
  drag, clock pull, jamming ramp — with per-seed attack parameters
  drawn from the seed's own stream and a fixed mid-stream onset (past
  the stationary monitors' learning window);
* every stream runs through a fresh monitor-armed
  :class:`~repro.service.executor.BatchExecutor` in serving-sized
  batches — the exact code path the service and shard workers run,
  confirmed-``spoofed`` blocking included.

The report grades three things (release gates of
``repro-gps fuzz --spoof``):

* **detection** — of the attacked streams, how many raised a verdict
  at or after onset *before the served position error crossed the
  profile's* ``tolerance_meters`` *harm budget* (attacks that never
  move the fix — meaconing, clock pull — just need detecting at all);
* **false alarms** — the fraction of clean-stream epochs carrying any
  verdict (per-stream counts are recorded too);
* **time to detect** — onset-to-first-verdict latency per family,
  recorded in ``BENCH_monitors.json`` for trend tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api import SolverConfig
from repro.errors import ConfigurationError
from repro.integrity.monitors import MonitorConfig
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.signals import SignalFeatureConfig, SignalFeatureModel
from repro.timebase import GpsTime
from repro.validation.faults import (
    ClockPull,
    JammingRamp,
    Meaconing,
    SlowPositionDrag,
    SpoofFault,
)
from repro.validation.scenarios import ScenarioConfig, ScenarioGenerator

#: Campaign arm order: seed index modulo 5 picks one.  Arm 0 is the
#: clean (false-alarm) arm; the rest are the attack families.
ARM_CLEAN = "clean"
ATTACK_FAMILIES: Tuple[str, ...] = (
    "meaconing",
    "slow_drag",
    "clock_pull",
    "jamming_ramp",
)

#: Seed offsets for the independent per-scenario streams (disjoint
#: from the fuzzer's fault offsets by construction — these only seed
#: streams the fuzzer never draws).
_STREAM_NOISE_OFFSET = 7_000_003
_ATTACK_PARAM_OFFSET = 7_000_017


@dataclass(frozen=True)
class MonitorChaosConfig:
    """Everything one spoof chaos run depends on.

    Attributes
    ----------
    scenarios:
        Stream count; seeds advance consecutively from ``start_seed``
        and cycle clean/meaconing/slow-drag/clock-pull/jamming-ramp.
    epochs_per_stream:
        Stream length at 1 Hz.  Must leave room for the monitors'
        learning window *and* a post-onset observation span.
    onset_seconds:
        When attacks switch on (stream time starts at zero).  The
        default sits past the stationary monitors' 8-epoch learning
        window with margin.
    sigma_meters:
        Per-epoch pseudorange noise — what makes the solved-fix
        scatter (and thus the stationarity thresholds) realistic.
    min_satellites, max_satellites, max_flatness:
        The scenario geometry band (see
        :class:`~repro.validation.scenarios.ScenarioConfig`).
    monitors:
        The suite under test.  The default arms everything with
        default tuning — the campaign grades the shipped
        configuration, not a bespoke one.
    batch_size:
        Serving-batch granularity streams are chunked into (monitor
        verdicts are batch-boundary invariant; this just mirrors how
        the service would feed the suite).
    detection_floor:
        Minimum fraction of attacked streams detected in time.
    false_alarm_budget:
        Ceiling on the clean-epoch verdict rate.
    """

    scenarios: int = 400
    start_seed: int = 0
    epochs_per_stream: int = 40
    onset_seconds: float = 15.0
    sigma_meters: float = 3.0
    min_satellites: int = 6
    max_satellites: int = 10
    max_flatness: float = 0.5
    monitors: MonitorConfig = MonitorConfig()
    batch_size: int = 16
    detection_floor: float = 0.90
    false_alarm_budget: float = 0.02

    def __post_init__(self) -> None:
        if self.scenarios < len(ATTACK_FAMILIES) + 1:
            raise ConfigurationError(
                "need at least one scenario per campaign arm "
                f"({len(ATTACK_FAMILIES) + 1})"
            )
        if self.epochs_per_stream < 2:
            raise ConfigurationError("epochs_per_stream must be at least 2")
        if not 0.0 < self.onset_seconds < self.epochs_per_stream - 1:
            raise ConfigurationError(
                "onset_seconds must fall inside the stream"
            )
        if self.onset_seconds <= self.monitors.learn_epochs:
            raise ConfigurationError(
                "onset_seconds must clear the monitors' learning window "
                "(attacks during learning would poison the reference)"
            )
        if self.sigma_meters <= 0 or not np.isfinite(self.sigma_meters):
            raise ConfigurationError("sigma_meters must be positive and finite")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if not 0.0 < self.detection_floor <= 1.0:
            raise ConfigurationError("detection_floor must be in (0, 1]")
        if not 0.0 <= self.false_alarm_budget < 1.0:
            raise ConfigurationError("false_alarm_budget must be in [0, 1)")

    def to_dict(self) -> Dict:
        return {
            "scenarios": self.scenarios,
            "start_seed": self.start_seed,
            "epochs_per_stream": self.epochs_per_stream,
            "onset_seconds": self.onset_seconds,
            "sigma_meters": self.sigma_meters,
            "min_satellites": self.min_satellites,
            "max_satellites": self.max_satellites,
            "max_flatness": self.max_flatness,
            "monitors": self.monitors.to_dict(),
            "batch_size": self.batch_size,
            "detection_floor": self.detection_floor,
            "false_alarm_budget": self.false_alarm_budget,
        }


@dataclass(frozen=True)
class MonitorChaosCase:
    """One stream the suite got wrong (seed + what happened)."""

    seed: int
    family: str
    outcome: str  # "missed" | "late" | "false_alarm"
    detect_second: Optional[float]
    harm_second: Optional[float]

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "family": self.family,
            "outcome": self.outcome,
            "detect_second": self.detect_second,
            "harm_second": self.harm_second,
        }


@dataclass(frozen=True)
class FamilyStats:
    """Detection statistics for one attack family."""

    attacks: int
    detected: int
    detected_in_time: int
    time_to_detect: Tuple[float, ...]

    @property
    def detection_rate(self) -> float:
        return self.detected_in_time / self.attacks if self.attacks else 1.0

    def to_dict(self) -> Dict:
        times = np.asarray(self.time_to_detect, dtype=float)
        return {
            "attacks": self.attacks,
            "detected": self.detected,
            "detected_in_time": self.detected_in_time,
            "detection_rate": self.detection_rate,
            "time_to_detect_seconds": {
                "mean": float(times.mean()) if times.size else None,
                "p90": (
                    float(np.percentile(times, 90)) if times.size else None
                ),
                "max": float(times.max()) if times.size else None,
            },
        }


@dataclass(frozen=True)
class MonitorChaosReport:
    """Aggregate verdict of one spoof chaos run."""

    config: MonitorChaosConfig
    families: Dict[str, FamilyStats]
    clean_streams: int
    clean_epochs: int
    false_alarm_streams: int
    false_alarm_epochs: int
    blocked_attack_epochs: int
    mistakes: Tuple[MonitorChaosCase, ...]

    @property
    def attacks(self) -> int:
        return sum(stats.attacks for stats in self.families.values())

    @property
    def detected_in_time(self) -> int:
        return sum(s.detected_in_time for s in self.families.values())

    @property
    def detection_rate(self) -> float:
        """Attacked streams detected before their harm budget, overall."""
        return self.detected_in_time / self.attacks if self.attacks else 1.0

    @property
    def false_alarm_rate(self) -> float:
        """Clean epochs carrying any verdict."""
        return (
            self.false_alarm_epochs / self.clean_epochs
            if self.clean_epochs
            else 0.0
        )

    @property
    def detection_ok(self) -> bool:
        return self.detection_rate >= self.config.detection_floor

    @property
    def false_alarm_ok(self) -> bool:
        return self.false_alarm_rate <= self.config.false_alarm_budget

    @property
    def ok(self) -> bool:
        return self.detection_ok and self.false_alarm_ok

    def to_dict(self) -> Dict:
        return {
            "config": self.config.to_dict(),
            "families": {
                name: stats.to_dict() for name, stats in self.families.items()
            },
            "attacks": self.attacks,
            "detected_in_time": self.detected_in_time,
            "detection_rate": self.detection_rate,
            "clean_streams": self.clean_streams,
            "clean_epochs": self.clean_epochs,
            "false_alarm_streams": self.false_alarm_streams,
            "false_alarm_epochs": self.false_alarm_epochs,
            "false_alarm_rate": self.false_alarm_rate,
            "blocked_attack_epochs": self.blocked_attack_epochs,
            "gates": {
                "detection": {
                    "floor": self.config.detection_floor,
                    "rate": self.detection_rate,
                    "passed": self.detection_ok,
                },
                "false_alarm": {
                    "budget": self.config.false_alarm_budget,
                    "rate": self.false_alarm_rate,
                    "passed": self.false_alarm_ok,
                },
            },
            "ok": self.ok,
            "mistakes": [case.to_dict() for case in self.mistakes],
        }


def build_stream(
    scenario, config: MonitorChaosConfig, seed: int
) -> List[ObservationEpoch]:
    """One 1 Hz observation stream from a scenario, C/N0 attached.

    Same sky every epoch (the stationary-receiver regime the monitors
    are tuned for), fresh seeded pseudorange noise per epoch, times
    starting at zero so ``onset_seconds`` is stream-relative.
    """
    truth = scenario.epoch.truth
    receiver = np.asarray(truth.receiver_position, dtype=float)
    bias = scenario.clock_bias_meters
    noise_rng = np.random.default_rng(seed + _STREAM_NOISE_OFFSET)
    model = SignalFeatureModel(SignalFeatureConfig(), seed=seed)
    template = scenario.epoch.observations
    ranges = [
        float(np.linalg.norm(np.asarray(obs.position, dtype=float) - receiver))
        for obs in template
    ]
    epochs: List[ObservationEpoch] = []
    for t in range(config.epochs_per_stream):
        noise = noise_rng.normal(0.0, config.sigma_meters, size=len(template))
        observations = [
            SatelliteObservation(
                prn=obs.prn,
                position=obs.position,
                pseudorange=ranges[index] + bias + float(noise[index]),
                system=obs.system,
            )
            for index, obs in enumerate(template)
        ]
        epochs.append(
            model.attach(
                ObservationEpoch(
                    time=GpsTime(week=2200, seconds_of_week=float(t)),
                    observations=tuple(observations),
                    truth=truth,
                )
            )
        )
    return epochs


def _draw_attack(family: str, config: MonitorChaosConfig, seed: int) -> SpoofFault:
    """One attack instance with seed-drawn parameters."""
    rng = np.random.default_rng(seed + _ATTACK_PARAM_OFFSET)
    onset = config.onset_seconds
    if family == "meaconing":
        return Meaconing(
            delay_meters=float(rng.uniform(200.0, 800.0)),
            cn0_dbhz=float(rng.uniform(41.0, 47.0)),
            onset_seconds=onset,
        )
    if family == "slow_drag":
        direction = rng.normal(size=3)
        return SlowPositionDrag(
            rate_mps=float(rng.uniform(1.0, 4.0)),
            direction=tuple(direction / np.linalg.norm(direction)),
            onset_seconds=onset,
        )
    if family == "clock_pull":
        return ClockPull(
            rate_mps=float(rng.uniform(6.0, 20.0)), onset_seconds=onset
        )
    if family == "jamming_ramp":
        return JammingRamp(
            ramp_db_per_second=float(rng.uniform(0.5, 1.5)),
            floor_dbhz=20.0,
            onset_seconds=onset,
        )
    raise ConfigurationError(f"unknown attack family {family!r}")


def _arm_for(index: int) -> str:
    """Campaign arm for the ``index``-th seed (clean every fifth)."""
    slot = index % (len(ATTACK_FAMILIES) + 1)
    return ARM_CLEAN if slot == 0 else ATTACK_FAMILIES[slot - 1]


def run_monitor_chaos(
    config: Optional[MonitorChaosConfig] = None,
) -> MonitorChaosReport:
    """One spoof chaos run: generate streams, attack, serve, grade."""
    from repro.service.executor import BatchExecutor
    from repro.service.types import ServiceConfig

    config = config if config is not None else MonitorChaosConfig()
    generator = ScenarioGenerator(
        ScenarioConfig(
            min_satellites=config.min_satellites,
            max_satellites=config.max_satellites,
            max_flatness=config.max_flatness,
        )
    )
    service_config = ServiceConfig(
        solver=SolverConfig(algorithm="dlg"),
        max_batch_size=config.batch_size,
        monitors=config.monitors,
    )

    detected: Dict[str, List[bool]] = {f: [] for f in ATTACK_FAMILIES}
    in_time: Dict[str, List[bool]] = {f: [] for f in ATTACK_FAMILIES}
    latencies: Dict[str, List[float]] = {f: [] for f in ATTACK_FAMILIES}
    clean_streams = clean_epochs = 0
    false_alarm_streams = false_alarm_epochs = 0
    blocked_attack_epochs = 0
    mistakes: List[MonitorChaosCase] = []

    for index in range(config.scenarios):
        seed = config.start_seed + index
        family = _arm_for(index)
        scenario = generator.generate(seed)
        stream = build_stream(scenario, config, seed)
        tolerance = np.inf
        if family != ARM_CLEAN:
            attack = _draw_attack(family, config, seed)
            tolerance = attack.tolerance_meters
            rng = np.random.default_rng(seed + _ATTACK_PARAM_OFFSET + 1)
            stream = [attack.apply(epoch, rng) for epoch in stream]

        # A fresh executor per stream: monitor / health state must not
        # leak across scenarios.  Chunked at serving granularity.
        executor = BatchExecutor(service_config)
        biases = [scenario.clock_bias_meters] * len(stream)
        outcomes = []
        for start in range(0, len(stream), config.batch_size):
            chunk = stream[start : start + config.batch_size]
            chunk_outcomes, _meta = executor.execute(
                chunk, biases[start : start + config.batch_size]
            )
            outcomes.extend(chunk_outcomes)

        truth_position = np.asarray(
            scenario.epoch.truth.receiver_position, dtype=float
        )
        detect_second: Optional[float] = None
        harm_second: Optional[float] = None
        flagged_epochs = 0
        for t, outcome in enumerate(outcomes):
            status, position, _bias, _solver, _error, _verdict, monitor = outcome
            if monitor is not None:
                flagged_epochs += 1
                if detect_second is None and t >= config.onset_seconds:
                    detect_second = float(t)
                if status == "failed" and t >= config.onset_seconds:
                    blocked_attack_epochs += family != ARM_CLEAN
            if (
                harm_second is None
                and t >= config.onset_seconds
                and status == "ok"
                and position is not None
                and float(np.linalg.norm(position - truth_position))
                > tolerance
            ):
                harm_second = float(t)

        if family == ARM_CLEAN:
            clean_streams += 1
            clean_epochs += len(outcomes)
            if flagged_epochs:
                false_alarm_streams += 1
                false_alarm_epochs += flagged_epochs
                mistakes.append(
                    MonitorChaosCase(
                        seed=seed,
                        family=family,
                        outcome="false_alarm",
                        detect_second=detect_second,
                        harm_second=None,
                    )
                )
            continue

        was_detected = detect_second is not None
        was_in_time = was_detected and (
            harm_second is None or detect_second <= harm_second
        )
        detected[family].append(was_detected)
        in_time[family].append(was_in_time)
        if was_detected:
            latencies[family].append(detect_second - config.onset_seconds)
        if not was_in_time:
            mistakes.append(
                MonitorChaosCase(
                    seed=seed,
                    family=family,
                    outcome="missed" if not was_detected else "late",
                    detect_second=detect_second,
                    harm_second=harm_second,
                )
            )

    families = {
        family: FamilyStats(
            attacks=len(detected[family]),
            detected=sum(detected[family]),
            detected_in_time=sum(in_time[family]),
            time_to_detect=tuple(latencies[family]),
        )
        for family in ATTACK_FAMILIES
    }
    return MonitorChaosReport(
        config=config,
        families=families,
        clean_streams=clean_streams,
        clean_epochs=clean_epochs,
        false_alarm_streams=false_alarm_streams,
        false_alarm_epochs=false_alarm_epochs,
        blocked_attack_epochs=blocked_attack_epochs,
        mistakes=tuple(mistakes),
    )
