"""Metamorphic invariants: transformed input, predictable output.

Where the differential oracle checks *solvers against each other*, the
metamorphic checks compare *each solver against itself* under input
transformations with exactly known effect:

* **permutation** — reordering the satellites of an epoch must not move
  any solver's fix (the equations are a set, not a sequence; only the
  floating-point summation order changes);
* **translation** — rigidly translating every satellite (and the truth)
  by a vector ``t`` while keeping pseudoranges must translate the fix by
  exactly ``t`` (the ECEF frame has no preferred origin at GPS scales;
  offsets stay small enough that Bancroft's plausible-radius root
  selection is unaffected);
* **clock shift** — adding ``delta`` to every pseudorange is
  indistinguishable from a receiver clock ``delta`` meters further
  ahead: positions must not move, and solvers that estimate the bias
  (NR, Bancroft) must report it shifted by exactly ``delta``.
  Closed-form paths are handed the correspondingly shifted prediction.
* **relabeling** (:func:`run_relabeling`, per-constellation mode) —
  renaming which RINEX code each constellation carries (G satellites
  become E satellites, and so on, injectively) must not move any fix:
  the grouped solvers key on group *structure* in first-appearance
  order, never on the code values, so the relabeled solve is the same
  arithmetic and the positions must match bit for bit.

Every comparison is *same path versus same path*, which mostly cancels
the four-satellite mirror-root ambiguity — a solver usually picks the
same root before and after a transformation.  *Usually*: with two
exactly-valid roots the selection can tie-break on rounding noise, and
the transformation perturbs exactly that noise, so Bancroft (and,
rarely, NR's iteration basin) can flip roots between the original and
transformed epoch.  Exactly as in the differential oracle, a deviation
where **both** fixes reproduce their own epoch's pseudoranges to
sub-centimeter is classified as an
:attr:`~MetamorphicReport.ambiguities` entry, not a violation — both
answers satisfy the transformed problem.

Deviations are judged against the same geometry-scaled tolerance as the
differential oracle — the transformations leave the differenced design's
conditioning (essentially) unchanged, so the same floating-point error
model applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.constellation.systems import SYSTEM_CODES
from repro.errors import ConfigurationError, ReproError
from repro.observations import EpochTruth, ObservationEpoch, SatelliteObservation
from repro.validation.oracles import (
    MULTI_ORACLE_PATHS,
    ORACLE_PATHS,
    _exact_solution,
    _multi_solver_runners,
    _solver_runners,
    agreement_tolerance,
)
from repro.validation.scenarios import Scenario

#: The invariant names, in the order they run.
METAMORPHIC_INVARIANTS: Tuple[str, ...] = ("permutation", "translation", "clock_shift")

#: Magnitude (meters) of the rigid translation applied to the
#: constellation.  Large enough that an equivariance bug is glaring,
#: small enough that Bancroft's plausible-radius root selection
#: (6.0e6..7.5e6 m band) still accepts the translated fix.
_TRANSLATION_METERS = 3.0e4

#: Half-range (meters) of the pseudorange shift used for the clock
#: linearity check (~33 microseconds of clock).
_CLOCK_SHIFT_METERS = 1.0e4


@dataclass(frozen=True)
class MetamorphicDeviation:
    """One (invariant, path) pair that broke its transformation law."""

    invariant: str
    path: str
    deviation_meters: float
    tolerance_meters: float

    def describe(self) -> str:
        """Human-readable one-liner for reports and artifacts."""
        return (
            f"{self.invariant}/{self.path}: deviation "
            f"{self.deviation_meters:.6g} m > tol {self.tolerance_meters:.3g} m"
        )


@dataclass(frozen=True)
class MetamorphicReport:
    """All metamorphic verdicts for one scenario."""

    seed: int
    checks: int
    deviations: Tuple[MetamorphicDeviation, ...]
    ambiguities: Tuple[MetamorphicDeviation, ...]
    skipped: Tuple[str, ...]
    max_deviation_meters: float

    @property
    def passed(self) -> bool:
        """Whether every executed check held its invariant."""
        return not self.deviations

    def to_dict(self) -> Dict:
        """JSON-ready form for artifacts and telemetry snapshots."""
        return {
            "seed": self.seed,
            "checks": self.checks,
            "max_deviation_meters": self.max_deviation_meters,
            "skipped": list(self.skipped),
            "deviations": [d.describe() for d in self.deviations],
            "ambiguities": [d.describe() for d in self.ambiguities],
        }


def _permuted_epoch(epoch: ObservationEpoch, rng: np.random.Generator) -> ObservationEpoch:
    order = list(rng.permutation(len(epoch)))
    return epoch.subset(len(epoch), order)


def _translated_epoch(epoch: ObservationEpoch, offset: np.ndarray) -> ObservationEpoch:
    observations = [
        SatelliteObservation(
            prn=obs.prn,
            position=obs.position + offset,
            pseudorange=obs.pseudorange,
            elevation=obs.elevation,
            azimuth=obs.azimuth,
        )
        for obs in epoch.observations
    ]
    truth = epoch.truth
    translated = ObservationEpoch(
        time=epoch.time,
        observations=tuple(observations),
        truth=EpochTruth(
            receiver_position=truth.receiver_position + offset,
            clock_bias_meters=truth.clock_bias_meters,
        )
        if truth is not None
        else None,
    )
    return translated


def _shifted_epoch(epoch: ObservationEpoch, delta: float) -> ObservationEpoch:
    observations = [
        SatelliteObservation(
            prn=obs.prn,
            position=obs.position,
            pseudorange=obs.pseudorange + delta,
            elevation=obs.elevation,
            azimuth=obs.azimuth,
        )
        for obs in epoch.observations
    ]
    truth = epoch.truth
    return ObservationEpoch(
        time=epoch.time,
        observations=tuple(observations),
        truth=EpochTruth(
            receiver_position=truth.receiver_position,
            clock_bias_meters=truth.clock_bias_meters + delta,
        )
        if truth is not None
        else None,
    )


def run_metamorphic(
    scenario: Scenario,
    paths: Sequence[str] = ORACLE_PATHS,
    invariants: Sequence[str] = METAMORPHIC_INVARIANTS,
    rng: Optional[np.random.Generator] = None,
) -> MetamorphicReport:
    """Check every requested invariant on every requested solver path.

    Parameters
    ----------
    scenario:
        The generated scenario supplying the epoch, the clock bias the
        closed-form paths are predicted, and the tolerance geometry.
    paths:
        Subset of :data:`~repro.validation.oracles.ORACLE_PATHS`.
    invariants:
        Subset of :data:`METAMORPHIC_INVARIANTS`.
    rng:
        Randomness source for the permutation and the translation
        direction; defaults to a generator seeded from the scenario
        seed, keeping the whole check a pure function of the scenario.

    A path that rejects the *base* epoch (e.g. a geometry failure) is
    recorded in :attr:`MetamorphicReport.skipped` rather than failed —
    rejection consistency is the differential oracle's job.  A path
    that answers the base epoch but rejects a transformed one is an
    invariant violation (deviation ``inf``).
    """
    unknown = [p for p in paths if p not in ORACLE_PATHS]
    if unknown:
        raise ConfigurationError(f"unknown oracle paths: {unknown}")
    unknown_invariants = [i for i in invariants if i not in METAMORPHIC_INVARIANTS]
    if unknown_invariants:
        raise ConfigurationError(f"unknown invariants: {unknown_invariants}")
    if rng is None:
        rng = np.random.default_rng(scenario.seed)

    tolerance = agreement_tolerance(scenario)
    epoch = scenario.epoch
    bias = scenario.clock_bias_meters

    direction = rng.normal(size=3)
    direction /= np.linalg.norm(direction)
    offset = direction * _TRANSLATION_METERS
    delta = float(rng.uniform(0.25, 1.0) * _CLOCK_SHIFT_METERS * (1 if rng.integers(2) else -1))
    permuted = _permuted_epoch(epoch, rng)
    translated = _translated_epoch(epoch, offset)
    shifted = _shifted_epoch(epoch, delta)

    transformed: Dict[str, ObservationEpoch] = {
        "permutation": permuted,
        "translation": translated,
        "clock_shift": shifted,
    }

    base_runners = _solver_runners(bias)
    shifted_runners = _solver_runners(bias + delta)
    ambiguity_possible = epoch.satellite_count == 4

    deviations = []
    ambiguities = []
    skipped = []
    checks = 0
    max_deviation = 0.0
    for path in paths:
        try:
            base_position, base_bias = base_runners[path](epoch)
        except ReproError:
            skipped.append(path)
            continue
        base_position = np.asarray(base_position, dtype=float)

        for invariant in invariants:
            runners = shifted_runners if invariant == "clock_shift" else base_runners
            checks += 1
            try:
                position, solved_bias = runners[path](transformed[invariant])
            except ReproError:
                deviations.append(
                    MetamorphicDeviation(
                        invariant=invariant,
                        path=path,
                        deviation_meters=float("inf"),
                        tolerance_meters=tolerance,
                    )
                )
                continue
            position = np.asarray(position, dtype=float)

            expected = base_position
            if invariant == "translation":
                expected = base_position + offset
            deviation = float(np.linalg.norm(position - expected))
            if (
                invariant == "clock_shift"
                and base_bias is not None
                and solved_bias is not None
            ):
                # Bias linearity: the solved bias must move by delta.
                deviation = max(
                    deviation, abs((solved_bias - base_bias) - delta)
                )
            max_deviation = max(max_deviation, deviation)
            if np.isfinite(deviation) and deviation <= tolerance:
                continue
            record = MetamorphicDeviation(
                invariant=invariant,
                path=path,
                deviation_meters=deviation,
                tolerance_meters=tolerance,
            )
            if (
                ambiguity_possible
                and np.isfinite(deviation)
                and _exact_solution(epoch, base_position, base_bias)
                and _exact_solution(transformed[invariant], position, solved_bias)
            ):
                ambiguities.append(record)
            else:
                deviations.append(record)

    return MetamorphicReport(
        seed=scenario.seed,
        checks=checks,
        deviations=tuple(deviations),
        ambiguities=tuple(ambiguities),
        skipped=tuple(skipped),
        max_deviation_meters=max_deviation,
    )


def relabeled_epoch(
    epoch: ObservationEpoch, mapping: Dict[str, str]
) -> ObservationEpoch:
    """The same epoch with every system code renamed through ``mapping``.

    ``mapping`` must be injective over the systems present (renaming two
    constellations onto one code would merge their clocks — a different
    problem, not a relabeling).  Truth biases follow their constellation
    to its new code.
    """
    present = {obs.system for obs in epoch.observations}
    missing = sorted(present - set(mapping))
    if missing:
        raise ConfigurationError(
            "relabeling mapping misses systems: " + ", ".join(missing)
        )
    targets = [mapping[system] for system in sorted(present)]
    if len(set(targets)) != len(targets):
        raise ConfigurationError("relabeling mapping must be injective")
    observations = tuple(
        dataclass_replace(obs, system=mapping[obs.system])
        for obs in epoch.observations
    )
    truth = epoch.truth
    if truth is not None:
        truth = EpochTruth(
            receiver_position=truth.receiver_position,
            clock_bias_meters=truth.clock_bias_meters,
            clock_biases=(
                tuple(
                    (mapping.get(system, system), bias)
                    for system, bias in truth.clock_biases
                )
                if truth.clock_biases is not None
                else None
            ),
        )
    return ObservationEpoch(time=epoch.time, observations=observations, truth=truth)


def run_relabeling(
    scenario: Scenario,
    paths: Sequence[str] = MULTI_ORACLE_PATHS,
    rng: Optional[np.random.Generator] = None,
    tolerance_meters: Optional[float] = None,
) -> MetamorphicReport:
    """Constellation-relabeling invariance of the per-constellation paths.

    Draws a random injective renaming of the scenario's system codes,
    re-solves every requested path in ``per_constellation`` mode on the
    renamed epoch, and demands the fix stay put.  The grouped solvers
    organize their bias columns by first-appearance order of the system
    *lane*, not by code value, so the relabeled solve performs
    literally identical arithmetic — the default tolerance is the
    scenario's geometry-scaled one, but the observed deviation should
    be exactly zero and a test may pass ``tolerance_meters=0.0``.
    """
    unknown = [p for p in paths if p not in MULTI_ORACLE_PATHS]
    if unknown:
        raise ConfigurationError(f"unknown multi oracle paths: {unknown}")
    if rng is None:
        rng = np.random.default_rng(scenario.seed)
    tolerance = (
        float(tolerance_meters)
        if tolerance_meters is not None
        else agreement_tolerance(scenario)
    )

    epoch = scenario.epoch
    present = sorted({obs.system for obs in epoch.observations})
    shuffled = [SYSTEM_CODES[i] for i in rng.permutation(len(SYSTEM_CODES))]
    mapping = dict(zip(present, shuffled))
    relabeled = relabeled_epoch(epoch, mapping)

    runners = _multi_solver_runners()
    deviations = []
    skipped = []
    checks = 0
    max_deviation = 0.0
    for path in paths:
        try:
            base_position, _base_bias = runners[path](epoch)
        except ReproError:
            skipped.append(path)
            continue
        checks += 1
        try:
            position, _solved_bias = runners[path](relabeled)
        except ReproError:
            deviations.append(
                MetamorphicDeviation(
                    invariant="relabeling",
                    path=path,
                    deviation_meters=float("inf"),
                    tolerance_meters=tolerance,
                )
            )
            continue
        deviation = float(
            np.linalg.norm(
                np.asarray(position, dtype=float)
                - np.asarray(base_position, dtype=float)
            )
        )
        max_deviation = max(max_deviation, deviation)
        if not np.isfinite(deviation) or deviation > tolerance:
            deviations.append(
                MetamorphicDeviation(
                    invariant="relabeling",
                    path=path,
                    deviation_meters=deviation,
                    tolerance_meters=tolerance,
                )
            )

    return MetamorphicReport(
        seed=scenario.seed,
        checks=checks,
        deviations=tuple(deviations),
        ambiguities=(),
        skipped=tuple(skipped),
        max_deviation_meters=max_deviation,
    )
